"""Homomorphic Streaming Core (HSC) model.

One HSC contains the six-stage fully pipelined PBS cluster, the keyswitch
cluster and a local scratchpad (Fig. 4).  The model answers the questions the
evaluation needs:

* the per-LWE **initiation interval** of the PBS pipeline in steady state
  (which sets throughput under core-level batching);
* the **iteration latency** for a single LWE (which sets PBS latency, since
  blind-rotation iterations are strictly sequential);
* per-unit busy intervals for a batch of LWEs over a number of iterations
  (the Gantt-style occupancy trace of Fig. 8);
* the keyswitch time and whether it hides behind the next epoch's PBS.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import StrixConfig
from repro.arch.functional_units import (
    PBS_PIPELINE_ORDER,
    KeyswitchCluster,
    build_pbs_cluster,
)
from repro.arch.memory import LocalScratchpad
from repro.params import TFHEParameters


@dataclass(frozen=True)
class BusyInterval:
    """One busy interval of one functional unit in the occupancy trace."""

    unit: str
    lwe_index: int
    iteration: int
    start_cycle: int
    end_cycle: int

    @property
    def duration(self) -> int:
        """Interval length in cycles."""
        return self.end_cycle - self.start_cycle


@dataclass
class PipelineTiming:
    """Summary of the PBS cluster timing for a parameter set."""

    initiation_interval: int
    iteration_latency: int
    stage_busy_cycles: dict[str, int]
    bottleneck_unit: str

    def utilization(self) -> dict[str, float]:
        """Steady-state utilization of every stage (busy / initiation interval)."""
        return {
            name: busy / self.initiation_interval
            for name, busy in self.stage_busy_cycles.items()
        }


class HomomorphicStreamingCore:
    """Timing model of one HSC."""

    def __init__(self, config: StrixConfig):
        self.config = config
        self.pbs_cluster = build_pbs_cluster(config)
        self.keyswitch_cluster = KeyswitchCluster(config)
        self.local_scratchpad = LocalScratchpad(config)
        # Per-parameter-set memos.  Everything below is a pure function of
        # (params, config) and config is frozen at construction, so caching
        # cannot change any value — it only takes the recomputation off the
        # epoch scheduler's per-node/per-epoch hot path.  Callers treat the
        # returned objects as read-only.
        self._pipeline_timing: dict[TFHEParameters, PipelineTiming] = {}
        self._core_batch_size: dict[TFHEParameters, int] = {}
        self._keyswitch_cycles: dict[TFHEParameters, int] = {}

    # -- PBS cluster ----------------------------------------------------------

    def pipeline_timing(self, params: TFHEParameters) -> PipelineTiming:
        """Per-iteration timing of the PBS cluster for one LWE (memoized)."""
        timing = self._pipeline_timing.get(params)
        if timing is not None:
            return timing
        busy = {
            name: unit.busy_cycles_per_lwe(params)
            for name, unit in self.pbs_cluster.items()
        }
        initiation_interval = max(busy.values())
        bottleneck = max(busy, key=busy.get)
        # A single LWE must stream through the whole pipeline before the next
        # iteration can start (the accumulator feeds the rotator of the next
        # iteration): the dominant fill component is the FFT latency on top of
        # the initiation interval.
        fft_unit = self.pbs_cluster["fft"].unit
        iteration_latency = initiation_interval + fft_unit.latency(params.N)
        timing = PipelineTiming(
            initiation_interval=initiation_interval,
            iteration_latency=iteration_latency,
            stage_busy_cycles=busy,
            bottleneck_unit=bottleneck,
        )
        self._pipeline_timing[params] = timing
        return timing

    def core_batch_size(self, params: TFHEParameters) -> int:
        """Core-level batch size supported by the local scratchpad (memoized)."""
        size = self._core_batch_size.get(params)
        if size is None:
            size = self.local_scratchpad.core_batch_size(params)
            self._core_batch_size[params] = size
        return size

    def pbs_cycles_single(self, params: TFHEParameters) -> int:
        """Cycles for one complete PBS of a single LWE (latency view)."""
        timing = self.pipeline_timing(params)
        return params.n * timing.iteration_latency

    def pbs_cycles_per_lwe_streaming(self, params: TFHEParameters) -> int:
        """Amortized cycles per LWE when the core streams a full batch."""
        timing = self.pipeline_timing(params)
        return params.n * timing.initiation_interval

    # -- keyswitch cluster ------------------------------------------------------

    def keyswitch_cycles(self, params: TFHEParameters) -> int:
        """Cycles to keyswitch one LWE (memoized)."""
        cycles = self._keyswitch_cycles.get(params)
        if cycles is None:
            cycles = self.keyswitch_cluster.busy_cycles_per_lwe(params)
            self._keyswitch_cycles[params] = cycles
        return cycles

    def keyswitch_hidden(self, params: TFHEParameters) -> bool:
        """Whether keyswitching hides behind the next epoch's blind rotation."""
        return self.keyswitch_cluster.is_hidden_behind_pbs(
            params, self.pbs_cycles_per_lwe_streaming(params)
        )

    # -- occupancy trace ---------------------------------------------------------

    def occupancy_trace(
        self,
        params: TFHEParameters,
        lwes_per_core: int,
        iterations: int,
    ) -> list[BusyInterval]:
        """Generate the functional-unit occupancy trace (Fig. 8).

        The PBS cluster is a dataflow pipeline: within an iteration the
        ``lwes_per_core`` ciphertexts stream back-to-back, each stage starts
        an LWE as soon as both the previous stage has produced it and the
        stage itself is free, and the next iteration of a given LWE starts
        once that LWE has fully drained from the previous iteration.
        """
        if lwes_per_core < 1 or iterations < 1:
            raise ValueError("lwes_per_core and iterations must be positive")
        timing = self.pipeline_timing(params)
        stage_names = list(PBS_PIPELINE_ORDER)
        busy = timing.stage_busy_cycles

        # Offsets of each stage relative to the moment its LWE enters the
        # pipeline: a stage can only start once the previous one has produced
        # enough of the polynomial stream; modelled as the previous stages'
        # fill (one initiation interval each for the transform stages, the
        # busy time otherwise, capped by the initiation interval).
        stage_offsets: dict[str, int] = {}
        offset = 0
        for name in stage_names:
            stage_offsets[name] = offset
            fill = min(busy[name], timing.initiation_interval)
            # Streaming stages overlap heavily; the next stage starts after
            # roughly one bus worth of data, modelled as a quarter of the
            # producer's busy time (at least one cycle).
            offset += max(fill // 4, 1)

        intervals: list[BusyInterval] = []
        stage_free_at = {name: 0 for name in stage_names}
        lwe_ready_at = [0 for _ in range(lwes_per_core)]

        for iteration in range(iterations):
            for lwe in range(lwes_per_core):
                entry = lwe_ready_at[lwe]
                finish = entry
                for name in stage_names:
                    start = max(entry + stage_offsets[name], stage_free_at[name])
                    end = start + busy[name]
                    stage_free_at[name] = end
                    intervals.append(
                        BusyInterval(
                            unit=name,
                            lwe_index=lwe,
                            iteration=iteration,
                            start_cycle=start,
                            end_cycle=end,
                        )
                    )
                    finish = end
                lwe_ready_at[lwe] = finish
        return intervals

    def trace_utilization(self, intervals: list[BusyInterval]) -> dict[str, float]:
        """Fraction of the traced window each unit spends busy."""
        if not intervals:
            return {}
        horizon = max(interval.end_cycle for interval in intervals)
        start = min(interval.start_cycle for interval in intervals)
        window = max(horizon - start, 1)
        totals: dict[str, int] = {}
        for interval in intervals:
            totals[interval.unit] = totals.get(interval.unit, 0) + interval.duration
        return {unit: busy / window for unit, busy in totals.items()}
