"""Analytical noise-growth model.

TFHE correctness hinges on the ciphertext noise staying below half the
encoding step.  This module collects the standard variance formulas for the
operations in the PBS/keyswitching pipeline so the analysis layer (and the
tests) can reason about parameter choices without running the slow
functional pipeline, and provides an empirical noise measurement helper.

All variances are expressed relative to the torus (i.e. as ``(sigma/q)^2``),
matching the convention of the parameter sets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.params import TFHEParameters
from repro.tfhe import torus
from repro.tfhe.lwe import LweCiphertext


def fresh_lwe_variance(params: TFHEParameters) -> float:
    """Variance of a freshly encrypted LWE ciphertext."""
    return params.lwe_noise_std**2


def fresh_glwe_variance(params: TFHEParameters) -> float:
    """Variance of a freshly encrypted GLWE ciphertext."""
    return params.glwe_noise_std**2


def external_product_variance(params: TFHEParameters, input_variance: float) -> float:
    """Variance added by one external product (one CMux of blind rotation).

    Standard TFHE bound: the decomposed digits (magnitude <= B/2) amplify the
    GGSW noise, and the rounding dropped by the approximate decomposition
    contributes an additional term.
    """
    base = params.base_pbs
    lb = params.lb
    n_poly = params.N
    k = params.k
    ggsw_variance = params.glwe_noise_std**2
    digit_term = (k + 1) * lb * n_poly * (base**2 / 12.0 + 1.0 / 6.0) * ggsw_variance
    rounding = 1.0 / (2.0 * base**lb)
    rounding_term = (1 + k * n_poly / 2.0) * (rounding**2 / 3.0)
    return input_variance + digit_term + rounding_term


def blind_rotation_variance(params: TFHEParameters) -> float:
    """Variance of the accumulator after a full blind rotation.

    ``n`` external products applied to an initially noiseless (trivial)
    accumulator.
    """
    variance = 0.0
    for _ in range(params.n):
        variance = external_product_variance(params, variance)
    return variance


def keyswitch_variance(params: TFHEParameters, input_variance: float) -> float:
    """Variance added by keyswitching an extracted ciphertext."""
    base = params.base_ks
    lk = params.lk
    input_dim = params.k * params.N
    key_noise = params.lwe_noise_std**2
    digit_term = input_dim * lk * (base**2 / 12.0 + 1.0 / 6.0) * key_noise
    rounding = 1.0 / (2.0 * base**lk)
    rounding_term = input_dim * (rounding**2 / 12.0)
    return input_variance + digit_term + rounding_term


def modulus_switch_variance(params: TFHEParameters, input_variance: float) -> float:
    """Variance after switching to modulus ``2N`` (expressed on the 2N scale)."""
    rounding = 1.0 / (2.0 * 2 * params.N)
    return input_variance + (params.n + 1) * (rounding**2 / 3.0)


def pbs_output_variance(params: TFHEParameters) -> float:
    """End-to-end variance of a bootstrapped-and-keyswitched ciphertext."""
    return keyswitch_variance(params, blind_rotation_variance(params))


def decryption_failure_margin(params: TFHEParameters) -> float:
    """Ratio of the decoding half-step to the PBS output standard deviation.

    Values comfortably above ~4 correspond to negligible failure probability.
    """
    std = np.sqrt(pbs_output_variance(params))
    half_step = params.delta / (2.0 * params.q)
    if std == 0.0:
        return float("inf")
    return half_step / std


@dataclass
class NoiseMeasurement:
    """Empirical noise statistics gathered from decrypted phases."""

    mean: float
    std: float
    max_abs: float
    samples: int

    @classmethod
    def from_phases(
        cls, phases: np.ndarray, expected: np.ndarray, params: TFHEParameters
    ) -> "NoiseMeasurement":
        """Measure the noise of ciphertexts given the expected plaintexts."""
        phases = np.asarray(phases, dtype=np.int64)
        expected = np.asarray(expected, dtype=np.int64)
        errors = torus.to_signed(phases - expected, params.q).astype(np.float64)
        errors /= params.q
        return cls(
            mean=float(np.mean(errors)),
            std=float(np.std(errors)),
            max_abs=float(np.max(np.abs(errors))) if errors.size else 0.0,
            samples=int(errors.size),
        )


def measure_lwe_noise(
    ciphertexts: list[LweCiphertext],
    expected_values: list[int],
    key_bits: np.ndarray,
    params: TFHEParameters,
) -> NoiseMeasurement:
    """Empirically measure the noise of a batch of LWE ciphertexts."""
    phases = np.array([ct.phase(key_bits) for ct in ciphertexts], dtype=np.int64)
    expected = np.array(expected_values, dtype=np.int64)
    return NoiseMeasurement.from_phases(phases, expected, params)
