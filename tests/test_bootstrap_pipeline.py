"""Tests for blind rotation, keyswitching and programmable bootstrapping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.params import TOY_PARAMETERS
from repro.tfhe import encoding
from repro.tfhe.blind_rotate import (
    blind_rotate,
    blind_rotate_plaintext,
    make_constant_test_vector,
    make_test_vector,
    modulus_switch,
)
from repro.tfhe.bootstrap import (
    bootstrap_to_sign,
    identity_bootstrap,
    programmable_bootstrap,
)
from repro.tfhe.keyswitch import keyswitch
from repro.tfhe.lwe import LweCiphertext

PARAMS = TOY_PARAMETERS
P = PARAMS.message_modulus


class TestTestVector:
    def test_length_and_block_structure(self):
        tv = make_test_vector(lambda m: m, PARAMS)
        assert tv.shape == (PARAMS.N,)

    def test_plaintext_rotation_recovers_function(self):
        """For every message, rotating by the ideal phase yields f(m)."""
        def function(m):
            return (3 * m + 1) % P

        tv = make_test_vector(function, PARAMS)
        for message in range(P):
            phase_2n = message * (2 * PARAMS.N) // (2 * P)
            extracted = blind_rotate_plaintext(tv, phase_2n, PARAMS)
            assert encoding.decode(extracted, PARAMS) % P == function(message)

    def test_plaintext_rotation_tolerates_phase_noise(self):
        tv = make_test_vector(lambda m: m, PARAMS)
        block = PARAMS.N // P
        for message in range(P):
            centre = message * (2 * PARAMS.N) // (2 * P)
            for jitter in (-block // 2 + 1, 0, block // 2 - 1):
                extracted = blind_rotate_plaintext(tv, centre + jitter, PARAMS)
                assert encoding.decode(extracted, PARAMS) % P == message

    def test_constant_test_vector(self):
        tv = make_constant_test_vector(PARAMS.q // 8, PARAMS)
        assert np.all(tv == PARAMS.q // 8)
        # Lower-half phases read +q/8; upper-half phases read -q/8.
        assert blind_rotate_plaintext(tv, 0, PARAMS) == PARAMS.q // 8
        assert blind_rotate_plaintext(tv, PARAMS.N, PARAMS) == PARAMS.q - PARAMS.q // 8

    def test_message_modulus_must_divide_degree(self):
        import dataclasses

        bad = dataclasses.replace(PARAMS, N=128, message_bits=2)
        # p=4 divides 128 -> fine; emulate failure with a degree that p does
        # not divide by constructing a tiny fake params object.
        good_tv = make_test_vector(lambda m: m, bad)
        assert good_tv.shape == (128,)


class TestModulusSwitch:
    def test_output_range(self, toy_context, rng):
        ciphertext = toy_context.encrypt(2)
        mask, body = modulus_switch(ciphertext, PARAMS)
        assert mask.min() >= 0 and mask.max() < 2 * PARAMS.N
        assert 0 <= body < 2 * PARAMS.N

    def test_phase_preserved_after_switch(self, toy_context):
        """The switched phase approximates the original phase scaled to 2N."""
        message = 3
        ciphertext = toy_context.encrypt(message)
        mask, body = modulus_switch(ciphertext, PARAMS)
        key = toy_context.lwe_key.bits
        switched_phase = (body - int(np.dot(mask, key))) % (2 * PARAMS.N)
        expected = message * (2 * PARAMS.N) // (2 * P)
        distance = min(
            abs(switched_phase - expected), 2 * PARAMS.N - abs(switched_phase - expected)
        )
        assert distance <= PARAMS.N // (2 * P)


class TestBlindRotation:
    def test_blind_rotate_extracts_function_value(self, toy_context):
        keys = toy_context.server_keys
        def function(m):
            return (m + 1) % P

        tv = make_test_vector(function, PARAMS)
        for message in range(P):
            ciphertext = toy_context.encrypt(message)
            accumulator = blind_rotate(tv, ciphertext, keys.bootstrapping_key, PARAMS)
            extracted = accumulator.sample_extract(0)
            phase = extracted.phase(toy_context.glwe_key.extracted_lwe_key())
            assert encoding.decode(phase, PARAMS) % P == function(message)

    def test_blind_rotate_requires_matching_key_length(self, toy_context):
        keys = toy_context.server_keys
        tv = make_test_vector(lambda m: m, PARAMS)
        wrong = LweCiphertext.trivial(0, PARAMS.n + 1, PARAMS)
        with pytest.raises(ValueError):
            blind_rotate(tv, wrong, keys.bootstrapping_key, PARAMS)


class TestKeyswitch:
    def test_keyswitch_preserves_message(self, toy_context):
        keys = toy_context.server_keys
        extracted_key = toy_context.glwe_key.extracted_lwe_key()
        rng = np.random.default_rng(5)
        for message in range(P):
            value = encoding.encode(message, PARAMS)
            big = LweCiphertext.encrypt(value, extracted_key, PARAMS, rng, noise_std=2.0 ** -25)
            small = keyswitch(big, keys.keyswitching_key, PARAMS)
            assert small.dimension == PARAMS.n
            assert toy_context.decrypt(small) == message

    def test_keyswitch_rejects_wrong_dimension(self, toy_context):
        keys = toy_context.server_keys
        wrong = LweCiphertext.trivial(0, PARAMS.n, PARAMS)
        with pytest.raises(ValueError):
            keyswitch(wrong, keys.keyswitching_key, PARAMS)


class TestProgrammableBootstrap:
    @pytest.mark.parametrize("message", range(P))
    def test_identity_bootstrap(self, toy_context, message):
        keys = toy_context.server_keys
        result = identity_bootstrap(
            toy_context.encrypt(message),
            keys.bootstrapping_key,
            PARAMS,
            keys.keyswitching_key,
        )
        assert toy_context.decrypt(result.ciphertext) == message

    @pytest.mark.parametrize(
        "function",
        [
            lambda m: (m + 1) % P,
            lambda m: (m * m) % P,
            lambda m: (P - 1 - m) % P,
            lambda m: 1 if m >= 2 else 0,
        ],
    )
    def test_arbitrary_univariate_functions(self, toy_context, function):
        keys = toy_context.server_keys
        for message in range(P):
            result = programmable_bootstrap(
                toy_context.encrypt(message),
                function,
                keys.bootstrapping_key,
                PARAMS,
                keys.keyswitching_key,
            )
            assert toy_context.decrypt(result.ciphertext) == function(message) % P

    def test_without_keyswitch_stays_under_extracted_key(self, toy_context):
        keys = toy_context.server_keys
        result = programmable_bootstrap(
            toy_context.encrypt(1), lambda m: m, keys.bootstrapping_key, PARAMS
        )
        assert result.ciphertext.dimension == PARAMS.k * PARAMS.N
        assert toy_context.decrypt(result.ciphertext) == 1

    def test_bootstrap_refreshes_noise(self, toy_context):
        """Bootstrapping a noisy ciphertext yields a fresher one."""
        keys = toy_context.server_keys
        noisy = toy_context.encrypt(1)
        for _ in range(20):
            noisy = noisy + toy_context.encrypt(0)
        refreshed = identity_bootstrap(
            noisy, keys.bootstrapping_key, PARAMS, keys.keyswitching_key
        ).ciphertext
        assert toy_context.decrypt(refreshed) == 1

    def test_bootstrap_to_sign(self, toy_context):
        keys = toy_context.server_keys
        positive = toy_context.lwe_key.encrypt(PARAMS.q // 8, toy_context.rng)
        negative = toy_context.lwe_key.encrypt(PARAMS.q - PARAMS.q // 8, toy_context.rng)
        pos_result = bootstrap_to_sign(positive, keys.bootstrapping_key, PARAMS, keys.keyswitching_key)
        neg_result = bootstrap_to_sign(negative, keys.bootstrapping_key, PARAMS, keys.keyswitching_key)
        assert toy_context.decrypt_boolean(pos_result.ciphertext) is True
        assert toy_context.decrypt_boolean(neg_result.ciphertext) is False

    def test_chained_bootstraps(self, toy_context):
        """Two chained PBS compose their functions."""
        keys = toy_context.server_keys
        first = programmable_bootstrap(
            toy_context.encrypt(1),
            lambda m: (m + 1) % P,
            keys.bootstrapping_key,
            PARAMS,
            keys.keyswitching_key,
        )
        second = programmable_bootstrap(
            first.ciphertext,
            lambda m: (2 * m) % P,
            keys.bootstrapping_key,
            PARAMS,
            keys.keyswitching_key,
        )
        assert toy_context.decrypt(second.ciphertext) == (2 * ((1 + 1) % P)) % P
