"""Negacyclic FFT substrate.

TFHE multiplies polynomials in the negacyclic ring ``Z_q[X]/(X^N + 1)``.
Strix (Section V-A) performs these multiplications with a fully pipelined
complex FFT and a *folding* scheme that transforms an ``N``-point negacyclic
polynomial using an ``N/2``-point complex FFT.  This package provides:

* :mod:`repro.fft.reference` — exact, quadratic-time negacyclic convolution
  and a naive DFT, used as ground truth by the tests.
* :mod:`repro.fft.negacyclic` — the classic twisted full-size FFT transform.
* :mod:`repro.fft.folding` — the half-size folded transform used by the
  paper's FFT unit (Klemsa-style mapping onto ``C[X]/(X^{N/2} - i)``).
* :mod:`repro.fft.registry` — the per-degree instance cache (with hit/miss
  accounting) every hot-path caller shares instead of rebuilding twiddle
  tables per ciphertext.
"""

from repro.fft.reference import naive_negacyclic_convolution, naive_dft
from repro.fft.negacyclic import NegacyclicTransform
from repro.fft.folding import FoldedNegacyclicTransform
from repro.fft.registry import (
    clear_transform_caches,
    get_folded_transform,
    get_negacyclic_transform,
    register_transform_cache_view,
    transform_cache_stats,
)

__all__ = [
    "naive_negacyclic_convolution",
    "naive_dft",
    "NegacyclicTransform",
    "FoldedNegacyclicTransform",
    "get_negacyclic_transform",
    "get_folded_transform",
    "transform_cache_stats",
    "register_transform_cache_view",
    "clear_transform_caches",
]
