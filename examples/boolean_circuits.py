"""Encrypted boolean circuits: adders and comparators over TFHE gates.

TFHE's programmable bootstrapping makes arbitrary boolean logic possible on
encrypted data — the generality the paper contrasts against CKKS.  This
example adds and compares small encrypted integers bit by bit, with every
gate evaluated through a real gate bootstrap, then shows how long the same
circuits would take on Strix versus the GPU baseline.

Run with:  python examples/boolean_circuits.py
"""

from __future__ import annotations

import time

from repro.apps.boolean_circuits import Comparator, RippleCarryAdder, boolean_circuit_graph
from repro.arch.accelerator import StrixAccelerator
from repro.baselines.gpu_model import NuFheGpuModel
from repro.params import PARAM_SET_I, TOY_PARAMETERS
from repro.sim.scheduler import StrixScheduler
from repro.tfhe import TFHEContext


def encrypt_number(context: TFHEContext, value: int, bits: int):
    """Encrypt an integer as little-endian boolean ciphertexts."""
    return [context.encrypt_boolean(bool((value >> i) & 1)) for i in range(bits)]


def decrypt_number(context: TFHEContext, ciphertexts) -> int:
    """Decrypt little-endian boolean ciphertexts back to an integer."""
    return sum(int(context.decrypt_boolean(ct)) << i for i, ct in enumerate(ciphertexts))


def functional_demo() -> None:
    print("== Encrypted 4-bit arithmetic (TOY parameters) ==")
    context = TFHEContext(TOY_PARAMETERS, seed=3)
    context.generate_server_keys()
    gates = context.gates()
    adder = RippleCarryAdder(gates)
    comparator = Comparator(gates)

    a, b = 11, 6
    bits = 4
    start = time.perf_counter()
    encrypted_sum = adder.add(encrypt_number(context, a, bits), encrypt_number(context, b, bits))
    total = decrypt_number(context, encrypted_sum)
    elapsed = time.perf_counter() - start
    print(f"{a} + {b} = {total}   ({RippleCarryAdder.gate_count(bits)} gate bootstraps, {elapsed:.2f} s)")

    greater = comparator.greater_than(
        encrypt_number(context, a, bits), encrypt_number(context, b, bits)
    )
    equal = comparator.equals(encrypt_number(context, b, bits), encrypt_number(context, b, bits))
    print(f"{a} > {b}  -> {context.decrypt_boolean(greater)}")
    print(f"{b} == {b} -> {context.decrypt_boolean(equal)}\n")


def acceleration_projection() -> None:
    print("== Projected execution of 1,024 encrypted 32-bit additions ==")
    scheduler = StrixScheduler(StrixAccelerator())
    gpu = NuFheGpuModel()
    graph = boolean_circuit_graph(PARAM_SET_I, "adder", bits=32, instances=1024)
    strix_time = scheduler.run(graph).total_time_s
    gpu_time = gpu.execute_graph(graph)
    print(f"gate bootstraps:   {graph.total_pbs():,}")
    print(f"Strix:             {strix_time * 1e3:10.1f} ms")
    print(f"GPU (NuFHE model): {gpu_time * 1e3:10.1f} ms")
    print(f"speedup:           {gpu_time / strix_time:10.1f}x")


def main() -> None:
    functional_demo()
    acceleration_projection()


if __name__ == "__main__":
    main()
