"""Ablation: how throughput depends on the available ciphertext parallelism.

The whole premise of two-level batching is that applications expose many
independent ciphertexts per dependency level (Section IV-C sizes an epoch at
``device batch x core batch``).  This study sweeps the number of ciphertexts
available per level and reports the achieved PBS throughput on Strix, on a
hypothetical Strix without core-level batching (each HSC holds a single LWE,
the device-level-only design the GPU approximates), and on the GPU model —
quantifying how much of Strix's advantage comes from each batching level.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.accelerator import StrixAccelerator
from repro.baselines.gpu_model import NuFheGpuModel
from repro.params import PARAM_SET_I, TFHEParameters
from repro.sim.fragments import fragmented_execution_time


@dataclass(frozen=True)
class BatchSensitivityPoint:
    """Achieved throughput at one level of available parallelism."""

    available_ciphertexts: int
    strix_pbs_per_s: float
    device_only_pbs_per_s: float
    gpu_pbs_per_s: float

    @property
    def core_batching_gain(self) -> float:
        """Throughput gain attributable to core-level batching."""
        if self.device_only_pbs_per_s == 0:
            return float("inf")
        return self.strix_pbs_per_s / self.device_only_pbs_per_s


@dataclass(frozen=True)
class BatchSensitivityStudy:
    """The full sweep."""

    parameter_set: str
    points: list[BatchSensitivityPoint]

    def saturation_point(self) -> int:
        """Smallest available-parallelism level reaching 95 % of peak Strix throughput."""
        peak = max(point.strix_pbs_per_s for point in self.points)
        for point in self.points:
            if point.strix_pbs_per_s >= 0.95 * peak:
                return point.available_ciphertexts
        return self.points[-1].available_ciphertexts

    def render(self) -> str:
        """Render the sweep as text."""
        lines = [
            f"Throughput vs available ciphertext parallelism (parameter set {self.parameter_set})",
            f"  {'#LWE':>6} {'Strix (PBS/s)':>15} {'device-only (PBS/s)':>21} "
            f"{'GPU (PBS/s)':>13} {'core-batching gain':>19}",
        ]
        for point in self.points:
            lines.append(
                f"  {point.available_ciphertexts:>6} {point.strix_pbs_per_s:>15,.0f} "
                f"{point.device_only_pbs_per_s:>21,.0f} {point.gpu_pbs_per_s:>13,.0f} "
                f"{point.core_batching_gain:>18.1f}x"
            )
        lines.append(f"  Strix saturates at ~{self.saturation_point()} available ciphertexts")
        return "\n".join(lines)


def batch_sensitivity_study(
    params: TFHEParameters = PARAM_SET_I,
    ciphertext_counts: list[int] | None = None,
    accelerator: StrixAccelerator | None = None,
) -> BatchSensitivityStudy:
    """Run the batching-sensitivity sweep."""
    accelerator = accelerator or StrixAccelerator()
    gpu = NuFheGpuModel()
    counts = ciphertext_counts or [1, 8, 16, 32, 64, 128, 256, 512, 1024, 2048]

    config = accelerator.config
    points = []
    for count in counts:
        # Full Strix: epochs of (device batch x core batch).
        strix_seconds = config.cycles_to_seconds(accelerator.pbs_batch_cycles(params, count))
        strix_throughput = count / strix_seconds if strix_seconds else 0.0

        # Device-level batching only: one LWE per HSC per pass, every pass
        # pays the single-LWE blind-rotation latency plus its (un-hidden)
        # keyswitch.
        pass_cycles = (
            params.n * accelerator.iteration_latency_cycles(params)
            + accelerator.core.keyswitch_cycles(params)
        )
        passes_time = fragmented_execution_time(
            count, config.tvlp, config.cycles_to_seconds(pass_cycles)
        )
        device_only_throughput = count / passes_time if passes_time else 0.0

        gpu_time = fragmented_execution_time(
            count, gpu.sms, gpu.batch_time_ms(params) / 1e3
        )
        gpu_throughput = count / gpu_time if gpu_time else 0.0

        points.append(
            BatchSensitivityPoint(
                available_ciphertexts=count,
                strix_pbs_per_s=strix_throughput,
                device_only_pbs_per_s=device_only_throughput,
                gpu_pbs_per_s=gpu_throughput,
            )
        )
    return BatchSensitivityStudy(parameter_set=params.name, points=points)
