"""Memory system model: scratchpads and the HBM interface.

Strix has a two-level on-chip memory hierarchy (Section IV-B):

* a 21 MB **global scratchpad**, double buffered, holding the bootstrapping
  key fragment and keyswitching key tile currently in use (shared section)
  plus per-core LWE/test-vector staging (private section);
* a 0.625 MB **local scratchpad** per HSC holding the intermediate test
  vectors of the in-flight core-level batch and the keyswitch cluster's
  working set.

The HBM model tracks how many bytes each key/ciphertext stream must deliver
per unit of time and reports the aggregate bandwidth demand, which the
accelerator model compares against the available 300 GB/s to decide whether
an operating point is compute- or memory-bound (Fig. 8 discussion and
Table VII).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import StrixConfig
from repro.params import TFHEParameters

#: Bytes of one Fourier-domain point of a bootstrapping-key polynomial
#: (two 32-bit fixed-point components, matching the VMA datapath).
FOURIER_POINT_BYTES = 8

#: Bytes of one time-domain torus coefficient (32-bit datapath).
COEFFICIENT_BYTES = 4


@dataclass(frozen=True)
class BandwidthDemand:
    """Per-stream external bandwidth demand in GB/s."""

    bootstrapping_key: float
    keyswitching_key: float
    ciphertexts: float

    @property
    def total(self) -> float:
        """Aggregate demand across all streams."""
        return self.bootstrapping_key + self.keyswitching_key + self.ciphertexts


class LocalScratchpad:
    """Per-HSC scratchpad sizing: how many LWEs fit in a core-level batch."""

    def __init__(self, config: StrixConfig):
        self.config = config
        self.capacity_bytes = int(config.local_scratchpad_mb * 2**20)
        self.pbs_capacity_bytes = int(
            self.capacity_bytes * config.local_scratchpad_pbs_fraction
        )
        self.keyswitch_capacity_bytes = self.capacity_bytes - self.pbs_capacity_bytes

    def accumulator_bytes(self, params: TFHEParameters) -> int:
        """Storage for one in-flight accumulator (intermediate test vector)."""
        return (params.k + 1) * params.N * COEFFICIENT_BYTES

    def core_batch_size(self, params: TFHEParameters) -> int:
        """Core-level batch size: intermediate test vectors that fit on chip."""
        return max(self.pbs_capacity_bytes // self.accumulator_bytes(params), 1)


class GlobalScratchpad:
    """Shared key staging buffer feeding the multicast NoC."""

    def __init__(self, config: StrixConfig):
        self.config = config
        self.capacity_bytes = int(config.global_scratchpad_mb * 2**20)

    def bootstrapping_key_fragment_bytes(self, params: TFHEParameters) -> int:
        """Bytes of one GGSW (the bootstrapping-key share of one BR iteration)."""
        polynomials = (params.k + 1) * params.lb * (params.k + 1)
        points = params.N // 2 if self.config.fft_folding else params.N
        return polynomials * points * FOURIER_POINT_BYTES

    def keyswitching_key_bytes(self, params: TFHEParameters) -> int:
        """Total keyswitching key size (time-domain 32-bit coefficients)."""
        return params.k * params.N * params.lk * (params.n + 1) * COEFFICIENT_BYTES

    def keyswitching_key_tile_bytes(self, params: TFHEParameters) -> int:
        """Bytes of one keyswitching-key tile (one decomposition level)."""
        return params.k * params.N * (params.n + 1) * COEFFICIENT_BYTES

    def fits_double_buffered(self, params: TFHEParameters) -> bool:
        """Whether two bsk fragments plus a ksk tile fit in the scratchpad."""
        needed = 2 * self.bootstrapping_key_fragment_bytes(params) + min(
            self.keyswitching_key_tile_bytes(params), self.capacity_bytes // 4
        )
        return needed <= self.capacity_bytes


class HBMModel:
    """External-memory bandwidth demand model."""

    def __init__(self, config: StrixConfig):
        self.config = config
        self.global_scratchpad = GlobalScratchpad(config)
        self.local_scratchpad = LocalScratchpad(config)

    def bandwidth_demand(
        self,
        params: TFHEParameters,
        iteration_cycles: int,
        core_batch: int | None = None,
    ) -> BandwidthDemand:
        """Bandwidth each stream must sustain during blind rotation.

        Parameters
        ----------
        params:
            TFHE parameter set.
        iteration_cycles:
            Cycles one blind-rotation iteration takes for a single LWE in
            steady state (the per-LWE initiation interval).
        core_batch:
            LWEs per core per iteration; defaults to the scratchpad-derived
            core-level batch size.
        """
        if core_batch is None:
            core_batch = self.local_scratchpad.core_batch_size(params)
        cycle_s = 1.0 / self.config.clock_hz
        iteration_time_s = iteration_cycles * cycle_s

        # The bootstrapping key fragment for iteration i+1 must arrive while
        # iteration i runs; it is fetched once and multicast to every core.
        # The prefetch window is one *single-LWE* iteration so the design
        # stays compute bound even for the smallest batches.
        bsk_rate = (
            self.global_scratchpad.bootstrapping_key_fragment_bytes(params)
            / iteration_time_s
        )

        # The keyswitching key streams once per epoch: every LWE of the epoch
        # reuses the same tile sequence while the keyswitch cluster works in
        # the shadow of the next epoch's blind rotation.
        epoch_cycles = params.n * iteration_cycles * max(core_batch, 1)
        epoch_time_s = epoch_cycles * cycle_s
        ksk_rate = self.global_scratchpad.keyswitching_key_bytes(params) / epoch_time_s

        # Ciphertext traffic: inputs (LWE + initial test vector) in, LWE out,
        # for every ciphertext of the epoch across all cores.
        epoch_lwes = max(core_batch, 1) * self.config.tvlp
        per_lwe_bytes = (
            (params.n + 1) * COEFFICIENT_BYTES
            + (params.k + 1) * params.N * COEFFICIENT_BYTES
            + (params.n + 1) * COEFFICIENT_BYTES
        )
        ciphertext_rate = epoch_lwes * per_lwe_bytes / epoch_time_s

        return BandwidthDemand(
            bootstrapping_key=bsk_rate / 1e9,
            keyswitching_key=ksk_rate / 1e9,
            ciphertexts=ciphertext_rate / 1e9,
        )

    def is_memory_bound(self, demand: BandwidthDemand) -> bool:
        """Whether the demand exceeds the available external bandwidth."""
        return demand.total > self.config.hbm_bandwidth_gbps

    def compute_scaling(self, demand: BandwidthDemand) -> float:
        """Throughput scaling factor when memory bound (1.0 otherwise)."""
        if demand.total <= 0:
            return 1.0
        return min(1.0, self.config.hbm_bandwidth_gbps / demand.total)
