"""Cluster interconnect model: ciphertext and key traffic between devices.

The on-chip NoC (:mod:`repro.arch.noc`) moves key material *inside* one
Strix chip; a multi-device deployment also pays for traffic *between* chips
(and between the host and each chip) on a much slower link — PCIe- or
NVLink-class, configured by
:attr:`repro.arch.config.StrixClusterConfig.interconnect_gbps`.

Three payload families matter to the serving layer:

* **ciphertexts** — LWE vectors shipped with every dispatched batch (and
  between pipeline stages in the stage-per-device layout);
* **bootstrapping keys** — one GGSW per LWE-key bit, by far the largest
  payload; shipped when a tenant migrates to a device that does not hold
  its keys — or *re*-shipped when a finite key-memory budget evicted them
  (see :mod:`repro.arch.key_cache`);
* **keyswitching keys** — the second half of a tenant's server-key set,
  shipped together with the BSK on migration.

All byte counts derive from the same :class:`~repro.arch.memory
.GlobalScratchpad` arithmetic the bandwidth model uses, so on-chip and
inter-device accounting can never disagree about key sizes.

Link *failure* is modelled one level up: a :mod:`repro.faults` PARTITION
event makes a device unreachable for new placement (work in flight
completes, keys stay resident, the healed device rejoins warm), and a
DEVICE_DEATH forces the key re-shipping priced here when evicted tenants
land again — the injector attributes those bytes to the causing event.
"""

from __future__ import annotations

from repro.arch.config import StrixClusterConfig
from repro.arch.memory import COEFFICIENT_BYTES, GlobalScratchpad
from repro.params import TFHEParameters


class InterconnectModel:
    """Transfer-time model of the host/device and device/device links.

    One shared link bandwidth (``config.interconnect_gbps``, gigabytes per
    second) prices every payload; per-link contention is not modelled — the
    serving simulation serializes transfers onto device busy horizons
    instead.
    """

    def __init__(self, config: StrixClusterConfig):
        self.config = config
        self._scratchpad = GlobalScratchpad(config.device)

    # -- payload sizes -------------------------------------------------------

    def lwe_bytes(self, params: TFHEParameters) -> int:
        """Serialized size of one LWE ciphertext (``n + 1`` coefficients)."""
        return (params.n + 1) * COEFFICIENT_BYTES

    def ciphertext_bytes(self, params: TFHEParameters, count: int) -> int:
        """Bytes of ``count`` LWE ciphertexts crossing a link."""
        return count * self.lwe_bytes(params)

    def bootstrapping_key_bytes(self, params: TFHEParameters) -> int:
        """Full BSK size: one Fourier-domain GGSW per LWE-key bit."""
        return params.n * self._scratchpad.bootstrapping_key_fragment_bytes(params)

    def keyswitching_key_bytes(self, params: TFHEParameters) -> int:
        """Full KSK size (time-domain coefficients)."""
        return self._scratchpad.keyswitching_key_bytes(params)

    def key_set_bytes(self, params: TFHEParameters) -> int:
        """One tenant's full server-key payload (BSK + KSK)."""
        return self.bootstrapping_key_bytes(params) + self.keyswitching_key_bytes(
            params
        )

    # -- transfer times ------------------------------------------------------

    def transfer_s(self, payload_bytes: int) -> float:
        """Seconds to move ``payload_bytes`` over the interconnect."""
        if payload_bytes <= 0:
            return 0.0
        return payload_bytes / (self.config.interconnect_gbps * 1e9)

    def ciphertext_transfer_s(self, params: TFHEParameters, count: int) -> float:
        """Seconds to ship ``count`` LWE ciphertexts to (or between) devices."""
        return self.transfer_s(self.ciphertext_bytes(params, count))

    def key_shipping_s(self, params: TFHEParameters) -> float:
        """Seconds to ship one tenant's BSK + KSK to a device.

        Charged through :class:`~repro.arch.key_cache.KeyResidencyManager`
        when a tenant *migrates* — its batches land on a device that does
        not hold its keys — and again whenever a finite key-memory budget
        evicted the set and the tenant returns.  The initial placement is
        free (keys are provisioned at tenant onboarding), which keeps the
        one-device cluster bit-for-bit identical to the single-device
        simulator.
        """
        return self.transfer_s(self.key_set_bytes(params))
