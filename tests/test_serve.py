"""Tests of the serving layer (:mod:`repro.serve`): queue, batcher, metrics,
traffic generators, the Server facade (sync trace replay and asyncio) and
per-tenant session management.

Cluster/sharding/backends are covered in ``test_serve_cluster.py``.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.apps.traffic import (
    TRAFFIC_PATTERNS,
    bursty_trace,
    heavy_tail_trace,
    steady_trace,
)
from repro.serve import (
    AdaptiveBatcher,
    Request,
    RequestQueue,
    RoundRobinPolicy,
    ServeConfig,
    Server,
    percentile,
)
from repro.params import TOY_PARAMETERS
from repro.serve.metrics import LatencySummary
from repro.sim.compiler import full_adder_netlist


def make_request(
    request_id: int,
    items: int = 1,
    arrival_s: float = 0.0,
    tenant: str = "t0",
    kind: str = "bootstrap",
) -> Request:
    return Request.make(request_id, tenant, kind, items=items, arrival_s=arrival_s)


# -- requests -------------------------------------------------------------------


def test_request_pbs_costs_per_kind():
    assert make_request(1, items=8, kind="bootstrap").total_pbs == 8
    assert make_request(2, items=8, kind="gate").total_pbs == 8
    assert make_request(3, items=8, kind="encrypt").total_pbs == 0
    inference = Request.make(4, "t0", "inference", items=1, model="NN-20")
    assert inference.total_pbs == 2588  # NN-20's full PBS count


def test_request_validation():
    with pytest.raises(ValueError, match="at least one item"):
        make_request(1, items=0)
    with pytest.raises(ValueError, match="model name"):
        Request.make(1, "t0", "inference")
    with pytest.raises(KeyError, match="NN-20"):
        Request.make(1, "t0", "inference", model="NN-9000")


# -- queue ----------------------------------------------------------------------


def test_queue_fifo_order_and_accounting():
    queue = RequestQueue()
    assert not queue and queue.oldest() is None
    for index in range(3):
        queue.push(make_request(index, items=4, tenant=f"t{index % 2}"))
    assert queue.depth == 3
    assert queue.queued_items == 12
    assert queue.queued_pbs == 12
    assert queue.tenant_depths == {"t0": 2, "t1": 1}
    assert [queue.pop().request_id for _ in range(3)] == [0, 1, 2]
    assert queue.peak_depth == 3
    assert queue.total_enqueued == 3
    assert queue.tenant_depths == {}


# -- adaptive batcher -------------------------------------------------------------


def test_batcher_empty_queue_flushes_nothing():
    """Edge case: polling (and draining) an empty queue yields no batches."""
    queue = RequestQueue()
    batcher = AdaptiveBatcher(capacity_items=8, max_delay_s=1e-3)
    assert batcher.poll(queue, now=10.0) == []
    assert batcher.drain(queue, now=10.0) == []
    assert batcher.next_deadline(queue) is None
    assert batcher.batches_flushed == 0


def test_batcher_flushes_on_capacity():
    queue = RequestQueue()
    batcher = AdaptiveBatcher(capacity_items=8, max_delay_s=1.0)
    for index in range(3):
        queue.push(make_request(index, items=3, arrival_s=0.0))
        flushed = batcher.poll(queue, now=0.0)
        if index < 2:
            assert flushed == []
    # 9 items >= 8 triggers a flush; the third request (3 more items) would
    # push the batch past capacity, so it stays queued for the next trigger.
    assert len(flushed) == 1
    (batch,) = flushed
    assert batch.flush_reason == "full"
    assert batch.total_items == 6
    assert queue.depth == 1
    assert queue.queued_items == 3


def test_batcher_never_splits_a_request_across_batches():
    queue = RequestQueue()
    batcher = AdaptiveBatcher(capacity_items=8, max_delay_s=1.0)
    queue.push(make_request(1, items=5))
    queue.push(make_request(2, items=5))
    queue.push(make_request(3, items=5))
    batches = batcher.poll(queue, now=0.0)
    # 15 items queued: each 5-item request would push a started batch past
    # the 8-item capacity, so two single-request batches flush (capacity kept)
    # and the leftover request waits for its deadline.
    assert [batch.total_items for batch in batches] == [5, 5]
    assert all(len(batch.requests) == 1 for batch in batches)
    assert queue.queued_items == 5


def test_batcher_single_request_deadline_flush():
    """Edge case: one lone request flushes at exactly arrival + max delay."""
    queue = RequestQueue()
    batcher = AdaptiveBatcher(capacity_items=1024, max_delay_s=2e-3)
    queue.push(make_request(1, items=4, arrival_s=1.0))
    assert batcher.next_deadline(queue) == pytest.approx(1.002)
    assert batcher.poll(queue, now=1.0015) == []  # before the deadline
    (batch,) = batcher.poll(queue, now=1.002)
    assert batch.flush_reason == "deadline"
    assert batch.total_items == 4
    assert queue.depth == 0


def test_batcher_oversized_request_ships_alone():
    queue = RequestQueue()
    batcher = AdaptiveBatcher(capacity_items=8, max_delay_s=1.0)
    queue.push(make_request(1, items=50))
    (batch,) = batcher.poll(queue, now=0.0)
    assert batch.flush_reason == "full"
    assert batch.total_items == 50
    assert batch.fill_fraction(8) > 1.0


def test_batcher_validation():
    with pytest.raises(ValueError, match="capacity"):
        AdaptiveBatcher(capacity_items=0, max_delay_s=1.0)
    with pytest.raises(ValueError, match="delay"):
        AdaptiveBatcher(capacity_items=1, max_delay_s=-1.0)


# -- metrics ----------------------------------------------------------------------


def test_percentile_interpolation():
    values = [1.0, 2.0, 3.0, 4.0]
    assert percentile(values, 0) == 1.0
    assert percentile(values, 100) == 4.0
    assert percentile(values, 50) == pytest.approx(2.5)
    with pytest.raises(ValueError, match="empty"):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile(values, 101)


def test_percentile_single_sample_is_exact():
    # A one-element sample must come back bit-for-bit, at every rank.
    value = 0.1 + 0.2  # deliberately not exactly representable
    for q in (0, 37.5, 50, 99, 100):
        assert percentile([value], q) == value


def test_latency_summary_orders_percentiles():
    summary = LatencySummary.from_samples([0.004, 0.001, 0.002, 0.1, 0.003])
    assert summary.count == 5
    assert summary.p50_s <= summary.p99_s <= summary.max_s == 0.1
    assert summary.to_dict()["p50_ms"] == pytest.approx(summary.p50_s * 1e3)
    empty = LatencySummary.from_samples([])
    assert empty.count == 0 and empty.p99_s == 0.0


def test_snapshot_window_s_drops_idle_tenants():
    """A tenant with no completions inside the time window has no p99.

    Without the time bound, a tenant that burst once and went idle keeps
    its stale percentile in every later snapshot — the count-bounded
    window never ages it out on a quiet server.
    """
    trace = [
        make_request(1, items=4, arrival_s=0.001, tenant="cold"),
        make_request(2, items=4, arrival_s=0.002, tenant="hot"),
        make_request(3, items=4, arrival_s=0.090, tenant="hot"),
    ]
    server = Server(devices=2)
    server.replay_begin()
    for request in trace:
        server.replay_offer(request)
    server.replay_drain()
    stale = server.snapshot(now_s=0.1)
    assert set(stale.tenant_p99_s) == {"cold", "hot"}  # cold is inherited
    fresh = server.snapshot(now_s=0.1, window_s=0.05)
    assert "cold" not in fresh.tenant_p99_s
    assert "hot" in fresh.tenant_p99_s
    # A window wide enough to cover everything changes nothing.
    wide = server.snapshot(now_s=0.1, window_s=10.0)
    assert wide.tenant_p99_s == stale.tenant_p99_s
    server.replay_finish(label="window")


# -- traffic generators -------------------------------------------------------------


@pytest.mark.parametrize("pattern", sorted(TRAFFIC_PATTERNS))
def test_traffic_patterns_are_deterministic_and_well_formed(pattern):
    generator = TRAFFIC_PATTERNS[pattern]
    first = generator(1000.0, 0.05, seed=3)
    second = generator(1000.0, 0.05, seed=3)
    assert len(first) > 0
    assert [request.arrival_s for request in first] == [
        request.arrival_s for request in second
    ]
    arrivals = [request.arrival_s for request in first]
    assert arrivals == sorted(arrivals)
    assert all(0.0 <= arrival < 0.05 for arrival in arrivals)
    assert all(request.items >= 1 for request in first)
    assert len({request.tenant for request in first}) > 1


def test_heavy_tail_sizes_are_more_dispersed_than_steady():
    steady = steady_trace(4000.0, 0.2, seed=1)
    heavy = heavy_tail_trace(4000.0, 0.2, seed=1)
    assert max(request.items for request in heavy) > max(
        request.items for request in steady
    )


def test_bursty_trace_has_idle_gaps():
    trace = bursty_trace(8000.0, 0.5, seed=2, burst_s=0.02, idle_s=0.08)
    arrivals = [request.arrival_s for request in trace]
    gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
    # The largest inter-arrival gap spans an off phase, far above the
    # in-burst spacing of ~1/8000 s.
    assert max(gaps) > 20 * (1.0 / 8000.0)


def test_traffic_validation():
    with pytest.raises(ValueError):
        steady_trace(0.0, 1.0)
    with pytest.raises(ValueError):
        heavy_tail_trace(100.0, 1.0, pareto_shape=0.9)
    with pytest.raises(ValueError, match="burst and idle"):
        bursty_trace(1000.0, 1.0, burst_s=0.0, idle_s=0.0)
    with pytest.raises(ValueError, match="mean_items"):
        steady_trace(100.0, 1.0, mean_items=0.0)


def test_top_level_serve_exports_are_lazy_but_resolve():
    import repro

    assert repro.Server is __import__("repro.serve", fromlist=["Server"]).Server
    with pytest.raises(AttributeError):
        repro.does_not_exist


# -- server: trace replay ------------------------------------------------------------


@pytest.fixture(scope="module")
def pattern_reports():
    """One simulated report per arrival pattern (shared across tests)."""
    reports = {}
    for pattern, generator in TRAFFIC_PATTERNS.items():
        server = Server(devices=2, params="I", policy="least-loaded")
        reports[pattern] = server.simulate(
            generator(1200.0, 0.1, seed=11), label=pattern
        )
    return reports


def test_simulate_reports_latency_percentiles_and_utilization(pattern_reports):
    """Acceptance: p50/p99 and per-device utilization for three patterns."""
    assert set(pattern_reports) == {"steady", "bursty", "heavy-tail"}
    for report in pattern_reports.values():
        metrics = report.metrics
        assert metrics.requests > 0
        assert 0.0 < metrics.latency.p50_s <= metrics.latency.p99_s
        assert metrics.requests_per_s > 0 and metrics.pbs_per_s > 0
        assert set(metrics.device_utilization) == {"dev0", "dev1"}
        assert all(0.0 <= u <= 1.0 for u in metrics.device_utilization.values())
        payload = report.to_dict()
        assert payload["latency"]["p99_ms"] >= payload["latency"]["p50_ms"]


def test_simulate_accounts_every_request_exactly_once(pattern_reports):
    for pattern, report in pattern_reports.items():
        trace = TRAFFIC_PATTERNS[pattern](1200.0, 0.1, seed=11)
        assert report.metrics.requests == len(trace)
        assert sorted(o.request.request_id for o in report.outcomes) == sorted(
            request.request_id for request in trace
        )
        # No request completes before it was dispatched, nor is dispatched
        # before it arrived.
        for outcome in report.outcomes:
            assert outcome.completed_s >= outcome.dispatched_s
            assert outcome.dispatched_s >= outcome.request.arrival_s


def test_light_load_latency_is_bounded_by_deadline_plus_service():
    """Under light load the deadline flush bounds queueing delay."""
    server = Server(devices=2, params="I", max_batch_delay_s=1e-3)
    trace = [
        make_request(1, items=4, arrival_s=0.0),
        make_request(2, items=4, arrival_s=0.5),
    ]
    report = server.simulate(trace)
    for outcome in report.outcomes:
        assert outcome.queue_delay_s == pytest.approx(1e-3)
    assert report.metrics.flush_reasons == {"deadline": 2}


def test_submit_then_simulate_uses_the_serving_clock():
    server = Server(devices=1, params="I", max_batch_delay_s=1e-3)
    server.submit("alice", "bootstrap", items=8, at=0.00)
    server.submit("bob", "gate", items=4, at=0.01)
    report = server.simulate()
    assert report.metrics.requests == 2
    assert server.tenants["alice"].pbs == 8
    assert server.tenants["bob"].pbs == 4


def test_affinity_policy_pins_tenants_to_devices():
    server = Server(
        devices=4, params="I", policy="affinity", max_batch_delay_s=1e-4
    )
    trace = [
        make_request(index, items=2, arrival_s=index * 0.01, tenant="sticky")
        for index in range(8)
    ]
    report = server.simulate(trace)
    assert len({outcome.device for outcome in report.outcomes}) == 1


def test_repeated_simulations_are_deterministic():
    """Cluster, batcher and policy state all reset between simulations."""
    server = Server(devices=3, params="I", policy="round-robin")
    trace = steady_trace(1200.0, 0.05, seed=13)
    first = server.simulate(trace)
    second = server.simulate(steady_trace(1200.0, 0.05, seed=13))
    assert [o.device for o in first.outcomes] == [o.device for o in second.outcomes]
    assert first.metrics.latency.p99_s == second.metrics.latency.p99_s
    assert first.metrics.device_utilization == second.metrics.device_utilization


def test_server_run_accepts_params_override():
    server = Server(devices=2, params="I")
    result = server.run(full_adder_netlist(TOY_PARAMETERS, bits=2), params="II")
    assert result.parameter_set == "II"
    default = server.run(full_adder_netlist(TOY_PARAMETERS, bits=2))
    assert default.parameter_set == "I"


def test_server_config_overrides():
    server = Server(ServeConfig(devices=3), policy="round-robin", batch_capacity=64)
    assert len(server.cluster) == 3
    assert server.batch_capacity == 64
    assert server.cluster.policy.name == "round-robin"


def test_server_forwards_cluster_cost_knobs():
    from repro.arch.config import StrixClusterConfig

    config = StrixClusterConfig(
        devices=2, interconnect_gbps=1.0, dispatch_overhead_s=5e-3
    )
    cheap = Server(devices=2, params="I")
    taxed = Server(params="I", cluster=config)
    assert len(taxed.cluster) == 2  # cluster config's device count wins
    assert taxed.cluster.config.dispatch_overhead_s == 5e-3
    trace = [make_request(1, items=64, arrival_s=0.0)]
    slow = taxed.simulate(trace)
    fast = cheap.simulate([make_request(1, items=64, arrival_s=0.0)])
    assert slow.metrics.latency.p50_s > fast.metrics.latency.p50_s


def test_sync_paths_refused_inside_async_context():
    async def scenario():
        async with Server(devices=1, params="I") as server:
            with pytest.raises(RuntimeError, match="async context"):
                server.simulate([make_request(1, items=2)])
            with pytest.raises(RuntimeError, match="async context"):
                server.submit("t0", "bootstrap", items=2)
            with pytest.raises(RuntimeError, match="already has an active"):
                async with server:
                    pass

    asyncio.run(scenario())


def test_async_report_stats_do_not_inherit_sync_history():
    server = Server(devices=1, params="I", max_batch_delay_s=1e-3)
    sync_report = server.simulate(
        [make_request(index, items=2, arrival_s=index * 0.01) for index in range(5)]
    )
    assert sync_report.metrics.batches > 0

    async def scenario():
        async with server:
            await server.submit_async("t0", "bootstrap", items=4)

    asyncio.run(scenario())
    report = server.last_async_report
    assert report is not None
    assert report.metrics.batches == 1
    assert sum(report.metrics.flush_reasons.values()) == 1
    assert report.metrics.peak_queue_depth == 1


# -- server: tenant sessions ----------------------------------------------------------


def test_tenant_sessions_are_cached_and_distinct():
    server = Server(devices=1, params="TOY", seed=5)
    alice = server.session_for("alice")
    bob = server.session_for("bob")
    assert alice is server.session_for("alice")
    assert alice is not bob
    assert alice.params == bob.params
    # Distinct deterministic seeds -> distinct key material.
    assert (
        alice.context.lwe_key.bits.tolist() != bob.context.lwe_key.bits.tolist()
    )


def test_tenant_session_round_trips_real_ciphertexts():
    server = Server(devices=1, params="TOY", seed=5)
    session = server.session_for("alice")
    messages = [0, 1, 2, 3]
    assert session.decrypt_batch(session.encrypt_batch(messages)) == messages


# -- server: async path ----------------------------------------------------------------


def test_async_submission_coalesces_and_resolves_every_future():
    async def scenario():
        async with Server(
            devices=2, params="I", max_batch_delay_s=0.004
        ) as server:
            jobs = [
                server.submit_async(f"tenant{index % 3}", "bootstrap", items=16)
                for index in range(12)
            ]
            return await asyncio.gather(*jobs)

    outcomes = asyncio.run(scenario())
    assert len(outcomes) == 12
    assert all(outcome.completed_s > 0 for outcome in outcomes)
    assert all(outcome.latency_s >= 0 for outcome in outcomes)
    # Twelve small requests coalesce into far fewer batches.
    assert len({outcome.batch_id for outcome in outcomes}) < 12


def test_async_capacity_flush_fires_without_waiting_for_deadline():
    async def scenario():
        async with Server(
            devices=1, params="I", max_batch_delay_s=10.0, batch_capacity=8
        ) as server:
            jobs = [
                server.submit_async("t0", "bootstrap", items=4) for _ in range(2)
            ]
            return await asyncio.wait_for(asyncio.gather(*jobs), timeout=2.0)

    outcomes = asyncio.run(scenario())
    assert len({outcome.batch_id for outcome in outcomes}) == 1


def test_async_context_exposes_a_report_after_close():
    async def scenario():
        server = Server(devices=2, params="I", max_batch_delay_s=0.003)
        async with server:
            await asyncio.gather(
                *(server.submit_async("t0", "bootstrap", items=8) for _ in range(4))
            )
        return server

    server = asyncio.run(scenario())
    report = server.last_async_report
    assert report is not None and report.label == "async"
    assert report.metrics.requests == 4
    assert report.metrics.latency.p99_s >= report.metrics.latency.p50_s > 0


def test_async_close_drains_pending_requests():
    async def scenario():
        server = Server(devices=1, params="I", max_batch_delay_s=10.0)
        async with server:
            job = asyncio.ensure_future(
                server.submit_async("t0", "bootstrap", items=4)
            )
            await asyncio.sleep(0.01)  # deadline far away: still queued
            assert not job.done()
        return await job  # __aexit__ drained the queue

    outcome = asyncio.run(scenario())
    assert outcome.request.items == 4


def test_submit_async_outside_context_raises():
    async def scenario():
        await Server(devices=1, params="I").submit_async("t0", "bootstrap")

    with pytest.raises(RuntimeError, match="async with"):
        asyncio.run(scenario())


def test_async_flush_crash_propagates_to_awaiters_instead_of_hanging():
    """A policy crashing mid-flush must fail pending futures, not strand them."""

    class ExplodingPolicy(RoundRobinPolicy):
        def select(self, busy_until, batch, resident=None):
            raise RuntimeError("boom")

    async def scenario():
        server = Server(
            devices=1, params="I", policy=ExplodingPolicy(), batch_capacity=4
        )
        async with server:
            # 4 items reach capacity and trigger an immediate (crashing) flush.
            await asyncio.wait_for(
                server.submit_async("t0", "bootstrap", items=4), timeout=2.0
            )

    with pytest.raises(RuntimeError, match="boom"):
        asyncio.run(scenario())


def test_server_remains_usable_after_a_crashed_async_context():
    """aclose() must clean up even when the flusher died, not wedge the server."""

    class ExplodingPolicy(RoundRobinPolicy):
        def select(self, busy_until, batch, resident=None):
            raise RuntimeError("boom")

    async def scenario():
        server = Server(
            devices=1, params="I", policy=ExplodingPolicy(), batch_capacity=4
        )
        async with server:
            with pytest.raises(RuntimeError, match="boom"):
                await asyncio.wait_for(
                    server.submit_async("t0", "bootstrap", items=4), timeout=2.0
                )
        return server

    server = asyncio.run(scenario())
    assert server._async_metrics is None  # context fully closed
    # Sync paths work again; a dispatch through the broken policy still
    # raises its own error, but the server is not wedged in async mode.
    with pytest.raises(RuntimeError, match="boom"):
        server.simulate([make_request(1, items=2)])


def test_async_submission_after_flusher_crash_raises_instead_of_hanging():
    class ExplodingPolicy(RoundRobinPolicy):
        def select(self, busy_until, batch, resident=None):
            raise RuntimeError("boom")

    async def scenario():
        server = Server(
            devices=1, params="I", policy=ExplodingPolicy(), batch_capacity=4
        )
        async with server:
            with pytest.raises(RuntimeError, match="boom"):
                await asyncio.wait_for(
                    server.submit_async("t0", "bootstrap", items=4), timeout=2.0
                )
            # A later (sub-capacity) submission must fail fast, not strand.
            with pytest.raises(RuntimeError, match="flush loop has crashed"):
                await server.submit_async("t0", "bootstrap", items=1)

    asyncio.run(scenario())


# -- per-tenant QoS (weighted fair queuing) -----------------------------------------


def test_queue_tenant_heads_and_pop_for_tenant():
    queue = RequestQueue()
    queue.push(make_request(1, items=4, tenant="a", arrival_s=0.0))
    queue.push(make_request(2, items=4, tenant="b", arrival_s=1.0))
    queue.push(make_request(3, items=4, tenant="a", arrival_s=2.0))
    heads = queue.tenant_heads()
    assert heads["a"].request_id == 1 and heads["b"].request_id == 2
    assert queue.oldest_for_tenant("a").request_id == 1
    assert queue.pop_for_tenant("b").request_id == 2
    assert queue.queued_items == 8
    with pytest.raises(KeyError, match="no queued requests"):
        queue.pop_for_tenant("b")
    # FIFO pop still follows global arrival order afterwards.
    assert [queue.pop().request_id, queue.pop().request_id] == [1, 3]


def test_fair_batcher_interleaves_a_flooded_queue():
    queue = RequestQueue()
    fair = AdaptiveBatcher(capacity_items=8, max_delay_s=1.0, qos="fair")
    # A flooder queues 4 requests before the light tenant's first arrives.
    for index in range(4):
        queue.push(make_request(index, items=4, tenant="flood", arrival_s=0.0))
    queue.push(make_request(9, items=1, tenant="light", arrival_s=0.1))
    batches = fair.poll(queue, now=0.1)
    first = batches[0]
    # FIFO would fill the first batch with flood requests only; fair queuing
    # gives the light tenant a slot in it (1 item beats 4 items / weight 1).
    assert "light" in first.tenants


def test_fair_batcher_respects_tenant_weights():
    queue = RequestQueue()
    weighted = AdaptiveBatcher(
        capacity_items=4,
        max_delay_s=1.0,
        qos="fair",
        tenant_weights={"gold": 4.0, "bronze": 1.0},
    )
    for index in range(4):
        queue.push(make_request(index, items=2, tenant="bronze", arrival_s=0.0))
        queue.push(make_request(10 + index, items=2, tenant="gold", arrival_s=0.0))
    shipped: list[str] = []
    while queue:
        for batch in weighted.poll(queue, now=0.0) or weighted.drain(queue, now=0.0):
            shipped.extend(request.tenant for request in batch.requests)
    # The heavier tenant's virtual time advances 4x slower, so its whole
    # backlog ships before the bronze tenant's last request.
    assert shipped.index("gold") < 2
    assert shipped[:2].count("gold") >= 1


def test_fair_queuing_protects_light_tenant_p99():
    """The QoS satellite: a flooding tenant stops inflating everyone's p99."""

    def trace() -> list[Request]:
        requests = []
        request_id = 0
        for burst in range(10):
            at = burst * 1e-3
            for _ in range(5):
                request_id += 1
                requests.append(
                    Request.make(request_id, "flood", "bootstrap", 500, arrival_s=at)
                )
            request_id += 1
            requests.append(
                Request.make(request_id, "light", "bootstrap", 1, arrival_s=at)
            )
        return requests

    fifo = Server(devices=1, qos="fifo").simulate(trace(), label="fifo")
    fair = Server(devices=1, qos="fair").simulate(trace(), label="fair")
    assert fifo.metrics.requests == fair.metrics.requests
    assert fifo.metrics.total_pbs == fair.metrics.total_pbs
    light_fifo = fifo.metrics.tenant_latency["light"]
    light_fair = fair.metrics.tenant_latency["light"]
    assert light_fair.p99_s < light_fifo.p99_s
    assert light_fair.mean_s < light_fifo.mean_s
    # The per-tenant split is part of the serialized report.
    assert "light" in fair.to_dict()["tenant_latency"]


def test_qos_validation():
    with pytest.raises(ValueError, match="unknown QoS"):
        AdaptiveBatcher(capacity_items=8, max_delay_s=1.0, qos="wfq")
    with pytest.raises(ValueError, match="weights must be positive"):
        AdaptiveBatcher(
            capacity_items=8, max_delay_s=1.0, qos="fair", tenant_weights={"t": 0.0}
        )
    with pytest.raises(ValueError, match="unknown QoS"):
        Server(devices=1, qos="strict")


def test_fifo_qos_is_unchanged_by_queue_restructure():
    """Default FIFO service order is exactly global arrival order."""
    queue = RequestQueue()
    batcher = AdaptiveBatcher(capacity_items=6, max_delay_s=1.0)
    for index, tenant in enumerate(["a", "b", "a", "c", "b", "a"]):
        queue.push(make_request(index, items=2, tenant=tenant, arrival_s=index * 0.1))
    shipped: list[int] = []
    while queue:
        for batch in batcher.drain(queue, now=1.0):
            shipped.extend(request.request_id for request in batch.requests)
    assert shipped == [0, 1, 2, 3, 4, 5]
