"""Contiguous stage partitioning of computation graphs.

The pipeline layout assigns one *stage* of a workload to each device.  A
stage is a contiguous range of dependency levels (so every cross-stage edge
points forward), balanced by PBS weight — the quantity that dominates
device occupancy.  The partitioner also reports how many ciphertexts cross
each stage boundary, which is what the interconnect model charges for.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.graph import ComputationGraph, ComputationNode


@dataclass(frozen=True)
class StagePlan:
    """A computation graph split into pipeline stages.

    Attributes
    ----------
    graphs:
        One subgraph per stage, dependencies filtered to in-stage edges
        (cross-stage ordering is enforced by the layout serializing stage
        ``i + 1`` after stage ``i``).
    boundary_ciphertexts:
        Per stage, the ciphertexts that must arrive from earlier stages
        before the stage can run.  Stage 0 reads its inputs from the host,
        so its entry is 0 here (the layout charges the host transfer
        separately).
    """

    graphs: list[ComputationGraph]
    boundary_ciphertexts: list[int]

    @property
    def stages(self) -> int:
        """Number of stages the graph was split into."""
        return len(self.graphs)


def _level_weight(level: list[ComputationNode]) -> int:
    """Balancing weight of one dependency level (PBS-dominated)."""
    pbs = sum(node.pbs_count() for node in level)
    # Pure-linear levels are cheap but not free; weight 1 keeps the greedy
    # cut from assigning a run of linear levels zero width.
    return max(pbs, 1)


def partition_graph_stages(graph: ComputationGraph, stages: int) -> StagePlan:
    """Split ``graph`` into at most ``stages`` contiguous level groups.

    Greedy cut on cumulative PBS weight: each stage closes once it holds at
    least its share of the remaining weight, except when the remaining
    stages would otherwise run out of levels.  A graph with fewer
    dependency levels than requested stages yields fewer (non-empty)
    stages — trailing devices simply idle.
    """
    if stages < 1:
        raise ValueError("a pipeline needs at least one stage")
    levels = graph.levels()
    if not levels:
        return StagePlan(graphs=[], boundary_ciphertexts=[])
    count = min(stages, len(levels))
    weights = [_level_weight(level) for level in levels]
    total = sum(weights)

    groups: list[list[list[ComputationNode]]] = []
    current: list[list[ComputationNode]] = []
    accumulated = 0
    consumed_weight = 0
    for index, level in enumerate(levels):
        current.append(level)
        accumulated += weights[index]
        levels_left = len(levels) - index - 1
        groups_left = count - len(groups) - 1
        if groups_left <= 0:
            continue
        target = (total - consumed_weight) / (groups_left + 1)
        if accumulated >= target or levels_left <= groups_left:
            groups.append(current)
            consumed_weight += accumulated
            current = []
            accumulated = 0
    if current:
        groups.append(current)

    stage_of: dict[str, int] = {}
    for stage_index, group in enumerate(groups):
        for level in group:
            for node in level:
                stage_of[node.name] = stage_index

    graphs: list[ComputationGraph] = []
    boundaries: list[int] = []
    for stage_index, group in enumerate(groups):
        stage_graph = ComputationGraph(
            graph.params, name=f"{graph.name}@stage{stage_index}"
        )
        boundary = 0
        for level in group:
            for node in level:
                crosses = any(
                    stage_of[dep] != stage_index for dep in node.depends_on
                )
                if crosses and stage_index > 0:
                    boundary += node.ciphertexts
                stage_graph.add_node(
                    ComputationNode(
                        name=node.name,
                        kind=node.kind,
                        ciphertexts=node.ciphertexts,
                        operations_per_ciphertext=node.operations_per_ciphertext,
                        depends_on=[
                            dep
                            for dep in node.depends_on
                            if stage_of[dep] == stage_index
                        ],
                    )
                )
        graphs.append(stage_graph)
        boundaries.append(boundary)
    return StagePlan(graphs=graphs, boundary_ciphertexts=boundaries)
