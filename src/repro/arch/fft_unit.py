"""Pipelined FFT unit model (Section V-A, Figure 5).

The Strix (I)FFT unit is a feed-forward pipelined FFT: ``log2(points)``
butterfly stages connected by shuffle units with exponentially shrinking
delay lines, fed by ``CLP`` coefficient lanes.  A new polynomial can enter
every ``points / CLP`` cycles and the unit's fill latency is of the same
order, so a continuous stream of polynomials keeps it at ~100 % utilization.

With the folding scheme an ``N``-point negacyclic transform is computed on a
physical ``N/2``-point unit, halving both the initiation interval (for fixed
lane count) and the hardware cost.

The class couples the *timing/area* model with the *functional* transform
(:mod:`repro.fft`), so a simulated datapath can also produce bit-accurate
values when needed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.arch.config import StrixConfig
from repro.fft.registry import get_folded_transform, get_negacyclic_transform


@dataclass(frozen=True)
class FFTStage:
    """One butterfly stage of the pipelined FFT.

    Attributes
    ----------
    index:
        Stage number (0-based, from the input side).
    butterflies:
        Number of butterfly units in the stage (``CLP / 2``).
    shuffle_delay:
        Length ``L`` of the shuffle unit delay lines feeding the *next*
        stage (0 for the final stage).
    uses_sram_delay:
        Whether the delay lines are large enough (``L >= 32``) to be built
        from SRAM rather than flip-flop shift registers.
    """

    index: int
    butterflies: int
    shuffle_delay: int
    uses_sram_delay: bool


class PipelinedFFTUnit:
    """Timing, structure and area model of one pipelined (I)FFT unit.

    Parameters
    ----------
    max_polynomial_degree:
        Largest negacyclic polynomial degree ``N`` the unit must transform.
    clp:
        Number of coefficient lanes.
    folding:
        Whether the folding scheme is applied (physical size ``N/2``).
    """

    #: Area coefficients fitted to the paper's synthesis results (Table VI):
    #: a folded 8192-point, 4-lane unit occupies 1.81 mm^2 and the non-folded
    #: 16384-point unit occupies 3.13 mm^2 in TSMC 28 nm.
    _AREA_PER_BUTTERFLY_STAGE_MM2 = 0.0102
    _AREA_PER_DELAY_ELEMENT_MM2 = 1.561e-4

    #: Energy proxy: per-unit power from Table III (5.49 W for the four
    #: transform units of one core, i.e. ~1.37 W per folded unit).
    _POWER_PER_AREA_W_PER_MM2 = 0.76

    def __init__(self, max_polynomial_degree: int, clp: int, folding: bool = True):
        if max_polynomial_degree < 4 or max_polynomial_degree & (max_polynomial_degree - 1):
            raise ValueError("polynomial degree must be a power of two >= 4")
        if clp < 1 or clp & (clp - 1):
            raise ValueError("clp must be a power of two >= 1")
        self.max_polynomial_degree = max_polynomial_degree
        self.clp = clp
        self.folding = folding
        self.points = max_polynomial_degree // 2 if folding else max_polynomial_degree
        if self.clp > self.points:
            raise ValueError("clp cannot exceed the number of FFT points")

    # -- structure -----------------------------------------------------------

    @property
    def num_stages(self) -> int:
        """Number of butterfly stages: ``log2(points)``."""
        return int(math.log2(self.points))

    @property
    def butterflies_per_stage(self) -> int:
        """Butterfly units per stage (``CLP / 2``, at least one)."""
        return max(self.clp // 2, 1)

    @property
    def total_butterflies(self) -> int:
        """Total butterfly units in the pipeline."""
        return self.num_stages * self.butterflies_per_stage

    def stages(self) -> list[FFTStage]:
        """Describe every stage with its shuffle-unit delay length."""
        described = []
        for index in range(self.num_stages):
            # The shuffle network between stage `index` and `index+1` reorders
            # groups of size points / 2^(index+1), streamed over CLP lanes.
            remaining = self.points >> (index + 1)
            delay = max(remaining // self.clp, 1) if index < self.num_stages - 1 else 0
            described.append(
                FFTStage(
                    index=index,
                    butterflies=self.butterflies_per_stage,
                    shuffle_delay=delay,
                    uses_sram_delay=delay >= 32,
                )
            )
        return described

    # -- timing ---------------------------------------------------------------

    def initiation_interval(self, polynomial_degree: int | None = None) -> int:
        """Cycles between the start of two consecutive polynomial transforms.

        A polynomial of degree ``N`` streams ``points(N)`` values over
        ``clp`` lanes, so a new polynomial can enter every ``points / clp``
        cycles.
        """
        points = self._points_for(polynomial_degree)
        return max(points // self.clp, 1)

    def latency(self, polynomial_degree: int | None = None) -> int:
        """Fill latency of one transform (paper: ``N / CLP`` for an N-point unit)."""
        return self.initiation_interval(polynomial_degree)

    def pipeline_depth(self) -> int:
        """Register stages from input to output (butterflies + shuffle delays)."""
        return sum(stage.shuffle_delay for stage in self.stages()) + self.num_stages

    def _points_for(self, polynomial_degree: int | None) -> int:
        if polynomial_degree is None:
            return self.points
        if polynomial_degree > self.max_polynomial_degree:
            raise ValueError(
                f"polynomial degree {polynomial_degree} exceeds the unit's maximum "
                f"{self.max_polynomial_degree}"
            )
        return polynomial_degree // 2 if self.folding else polynomial_degree

    # -- cost -----------------------------------------------------------------

    @property
    def area_mm2(self) -> float:
        """Estimated area in mm^2 (TSMC 28 nm, fitted to Table VI)."""
        butterfly_area = self._AREA_PER_BUTTERFLY_STAGE_MM2 * self.clp * self.num_stages
        # Delay-line and twiddle-ROM storage together track the point count:
        # the shuffle delays sum to ~points/clp elements replicated over clp
        # lanes and each stage holds a twiddle table slice.
        storage_area = self._AREA_PER_DELAY_ELEMENT_MM2 * self.points
        return butterfly_area + storage_area

    @property
    def power_w(self) -> float:
        """Estimated power in W."""
        return self.area_mm2 * self._POWER_PER_AREA_W_PER_MM2

    # -- function --------------------------------------------------------------

    def functional_transform(self, polynomial: np.ndarray) -> np.ndarray:
        """Bit-accurate forward transform of a polynomial (for validation)."""
        degree = len(polynomial)
        if self.folding:
            return get_folded_transform(degree).forward(polynomial)
        return get_negacyclic_transform(degree).forward(polynomial)

    def functional_inverse(self, spectrum: np.ndarray, degree: int) -> np.ndarray:
        """Bit-accurate inverse transform (for validation)."""
        if self.folding:
            return get_folded_transform(degree).inverse(spectrum)
        return get_negacyclic_transform(degree).inverse(spectrum)

    @classmethod
    def from_config(cls, config: StrixConfig) -> "PipelinedFFTUnit":
        """Build the FFT unit described by a :class:`StrixConfig`."""
        return cls(config.max_fft_points, config.clp, config.fft_folding)
