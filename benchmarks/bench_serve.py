"""Serving-layer benchmark: arrival patterns and cluster scaling.

Writes ``BENCH_serve.json`` with two families of records:

* ``serve/<pattern>`` — the serving simulation (queue → adaptive batcher →
  sharded cluster) under the steady, bursty and heavy-tail arrival patterns:
  p50/p99 latency, request and PBS throughput, mean batch fill and
  per-device utilization;
* ``cluster/...`` — the Fig. 7 Deep-NN workload on the single-device
  simulator versus the sharded cluster at 2 and 4 devices (latency,
  throughput, speedup, straggler imbalance);
* ``layout/...`` — the scheduling-core seams: data-parallel vs pipeline vs
  elastic placement and the analytical vs event-driven cost model under one
  heavy-tail trace (p99, key shipping, stage transfer).

Run it directly (``--smoke`` shrinks the traces for CI)::

    python benchmarks/bench_serve.py --smoke
"""

from __future__ import annotations

import argparse

from harness import BenchReport, ensure_repro_importable

ensure_repro_importable()

from repro import run  # noqa: E402  (path bootstrap above)
from repro.apps.traffic import bursty_trace, heavy_tail_trace, steady_trace  # noqa: E402
from repro.serve import Server  # noqa: E402

#: The Fig. 7 application workload the cluster scaling study runs.
FIG7_WORKLOAD = "NN-20"


def bench_serving_patterns(
    report: BenchReport, devices: int, duration_s: float, seed: int
) -> None:
    """Simulate the three arrival patterns and record their metrics."""
    traces = {
        "steady": steady_trace(rate_rps=1500.0, duration_s=duration_s, seed=seed),
        "bursty": bursty_trace(
            burst_rate_rps=6000.0, duration_s=duration_s, seed=seed
        ),
        "heavy-tail": heavy_tail_trace(
            rate_rps=1500.0, duration_s=duration_s, seed=seed
        ),
    }
    for pattern, trace in traces.items():
        server = Server(devices=devices, policy="least-loaded", params="I")
        serve_report = server.simulate(trace, label=pattern)
        metrics = serve_report.metrics
        base = f"serve/{pattern}"
        report.add(f"{base}/p50_latency", metrics.latency.p50_s, "s", **serve_report.to_dict())
        report.add(f"{base}/p99_latency", metrics.latency.p99_s, "s")
        report.add(f"{base}/requests_per_s", metrics.requests_per_s, "req/s")
        report.add(f"{base}/pbs_per_s", metrics.pbs_per_s, "PBS/s")
        report.add(
            f"{base}/mean_device_utilization",
            sum(metrics.device_utilization.values())
            / max(len(metrics.device_utilization), 1),
            "fraction",
            per_device=metrics.device_utilization,
        )
        print(serve_report.render())
        print()


def bench_cluster_scaling(report: BenchReport) -> None:
    """Fig. 7 Deep-NN workload: single device versus the sharded cluster."""
    single = run(FIG7_WORKLOAD, backend="strix-sim", params="I")
    report.add(
        "cluster/strix-sim/latency", single.latency_s, "s", workload=FIG7_WORKLOAD
    )
    report.add(
        "cluster/strix-sim/throughput", single.throughput_pbs_per_s, "PBS/s"
    )
    for devices in (2, 4):
        result = run(FIG7_WORKLOAD, backend="strix-cluster", devices=devices)
        speedup = single.latency_s / result.latency_s
        straggler = result.details["straggler"]
        base = f"cluster/{devices}dev"
        report.add(f"{base}/latency", result.latency_s, "s", workload=FIG7_WORKLOAD)
        report.add(f"{base}/throughput", result.throughput_pbs_per_s, "PBS/s")
        report.add(
            f"{base}/speedup_vs_single",
            speedup,
            "x",
            imbalance=straggler["imbalance"],
        )
        print(
            f"{FIG7_WORKLOAD} on {devices} device(s): "
            f"{result.latency_ms:.3f} ms ({speedup:.2f}x vs strix-sim)"
        )
    print()


def bench_layouts_and_cost_models(
    report: BenchReport, duration_s: float, seed: int
) -> None:
    """The scheduling-core seams under one heavy-tail trace."""
    trace = heavy_tail_trace(rate_rps=1200.0, duration_s=duration_s, seed=seed)
    variants = {
        "data-parallel/analytical": {"layout": "data-parallel"},
        "data-parallel/event": {"layout": "data-parallel", "cost_model": "event"},
        "pipeline/analytical": {"layout": "pipeline"},
        "elastic/analytical": {"layout": "elastic"},
    }
    for label, options in variants.items():
        server = Server(devices=4, policy="least-loaded", params="I", **options)
        serve_report = server.simulate(trace, label=label)
        metrics = serve_report.metrics
        base = f"layout/{label}"
        report.add(f"{base}/p99_latency", metrics.latency.p99_s, "s")
        report.add(
            f"{base}/key_shipping",
            metrics.cost_breakdown.get("key_shipping_s", 0.0),
            "s",
        )
        if "stage_transfer_s" in metrics.cost_breakdown:
            report.add(
                f"{base}/stage_transfer",
                metrics.cost_breakdown["stage_transfer_s"],
                "s",
            )
        if "active_devices" in metrics.cost_breakdown:
            report.add(
                f"{base}/peak_active_devices",
                metrics.cost_breakdown["active_devices"],
                "devices",
            )
        print(serve_report.render())
        print()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="small traces for the CI smoke job"
    )
    parser.add_argument("--devices", type=int, default=4, help="cluster size")
    parser.add_argument("--seed", type=int, default=7, help="trace seed")
    parser.add_argument(
        "--output", default=None, help="output path (default: BENCH_serve.json)"
    )
    args = parser.parse_args()

    report = BenchReport("serve")
    duration_s = 0.1 if args.smoke else 0.5
    bench_serving_patterns(report, args.devices, duration_s, args.seed)
    bench_cluster_scaling(report)
    bench_layouts_and_cost_models(report, duration_s, args.seed)
    path = report.write(args.output)
    print(f"[saved {len(report.records)} records to {path}]")


if __name__ == "__main__":
    main()
