"""Fig. 7 reproduction: Zama Deep-NN execution time on CPU, GPU and Strix.

For each of the NN-20 / NN-50 / NN-100 models and each polynomial degree
(1024, 2048, 4096) the Deep-NN computation graph is executed through the
:mod:`repro.runtime` backends — the multi-threaded CPU model, the 72-SM GPU
model and the Strix simulator — with one workload definition; the
result is the grouped bar chart of Fig. 7, reported here as a table plus the
speedup summary the paper quotes (Strix 33-38x over CPU, 8-17x over GPU).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.deep_nn import ZAMA_DEEP_NN_MODELS, DeepNNModel, build_deep_nn_graph
from repro.arch.accelerator import StrixAccelerator
from repro.params import DEEP_NN_PARAMETER_SETS, TFHEParameters
from repro.runtime import AnalyticalBackend, StrixSimBackend


@dataclass(frozen=True)
class DeepNNResult:
    """Execution time of one (model, polynomial degree) pair on all platforms."""

    model: str
    polynomial_degree: int
    pbs_count: int
    cpu_time_ms: float
    gpu_time_ms: float
    strix_time_ms: float

    @property
    def speedup_vs_cpu(self) -> float:
        """Strix speedup over the CPU baseline."""
        return self.cpu_time_ms / self.strix_time_ms

    @property
    def speedup_vs_gpu(self) -> float:
        """Strix speedup over the GPU baseline."""
        return self.gpu_time_ms / self.strix_time_ms


@dataclass(frozen=True)
class DeepNNBenchmark:
    """The full Fig. 7 sweep."""

    results: list[DeepNNResult]
    cpu_threads: int

    def speedup_range_vs_cpu(self) -> tuple[float, float]:
        """(min, max) Strix speedup over CPU across all configurations."""
        speedups = [result.speedup_vs_cpu for result in self.results]
        return min(speedups), max(speedups)

    def speedup_range_vs_gpu(self) -> tuple[float, float]:
        """(min, max) Strix speedup over GPU across all configurations."""
        speedups = [result.speedup_vs_gpu for result in self.results]
        return min(speedups), max(speedups)

    def render(self) -> str:
        """Render the Fig. 7 data as a table."""
        lines = [f"Zama Deep-NN execution time (CPU: {self.cpu_threads} threads)"]
        lines.append(
            f"  {'Model':<8} {'N':>6} {'#PBS':>7} {'CPU (ms)':>12} {'GPU (ms)':>12} "
            f"{'Strix (ms)':>12} {'vs CPU':>8} {'vs GPU':>8}"
        )
        for result in self.results:
            lines.append(
                f"  {result.model:<8} {result.polynomial_degree:>6} {result.pbs_count:>7} "
                f"{result.cpu_time_ms:>12,.0f} {result.gpu_time_ms:>12,.0f} "
                f"{result.strix_time_ms:>12,.1f} {result.speedup_vs_cpu:>7.0f}x "
                f"{result.speedup_vs_gpu:>7.0f}x"
            )
        cpu_low, cpu_high = self.speedup_range_vs_cpu()
        gpu_low, gpu_high = self.speedup_range_vs_gpu()
        lines.append(f"  Strix speedup vs CPU: {cpu_low:.0f}x - {cpu_high:.0f}x")
        lines.append(f"  Strix speedup vs GPU: {gpu_low:.0f}x - {gpu_high:.0f}x")
        return "\n".join(lines)


def deep_nn_benchmark(
    models: dict[str, DeepNNModel] | None = None,
    parameter_sets: dict[int, TFHEParameters] | None = None,
    accelerator: StrixAccelerator | None = None,
    cpu_threads: int = 48,
) -> DeepNNBenchmark:
    """Run the Fig. 7 application benchmark.

    The CPU baseline is the Concrete cost model parallelized over
    ``cpu_threads`` cores (the Zama Deep-NN reference numbers were taken on
    a many-core Xeon Platinum server); the GPU baseline is the NuFHE model
    with full device-level batching.
    """
    models = models or ZAMA_DEEP_NN_MODELS
    parameter_sets = parameter_sets or DEEP_NN_PARAMETER_SETS
    backends = {
        "cpu": AnalyticalBackend("cpu", threads=cpu_threads),
        "gpu": AnalyticalBackend("gpu"),
        "strix": StrixSimBackend(accelerator),
    }

    results = []
    for model_name, model in models.items():
        for degree, params in parameter_sets.items():
            graph = build_deep_nn_graph(model, params)
            times_ms = {
                name: backend.run(graph).latency_ms
                for name, backend in backends.items()
            }
            results.append(
                DeepNNResult(
                    model=model_name,
                    polynomial_degree=degree,
                    pbs_count=graph.total_pbs(),
                    cpu_time_ms=times_ms["cpu"],
                    gpu_time_ms=times_ms["gpu"],
                    strix_time_ms=times_ms["strix"],
                )
            )
    return DeepNNBenchmark(results=results, cpu_threads=cpu_threads)
