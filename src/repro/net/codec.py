"""Payload codecs: serving requests, outcomes and ciphertext batches.

:mod:`repro.net.protocol` moves opaque payload bytes; this module gives the
two application messages their shape:

* ``SUBMIT`` — a compact workload descriptor (tenant, request kind, item
  count, optional Deep-NN model, optional trace timestamp) plus an optional
  LWE ciphertext batch encoded with the bytes-level codecs of
  :mod:`repro.tfhe.serialization` — real encrypted payloads ride the same
  frame as the descriptor the simulation consumes;
* ``RESULT`` — where and when the request executed (batch, device,
  dispatch/completion timestamps), enough for the client to rebuild the
  exact :class:`~repro.serve.request.RequestOutcome` the in-process server
  would have returned.

Both directions are pure ``bytes`` functions, so the codec is testable
without sockets and reusable by any transport.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, replace

from repro.net.protocol import pack_str, unpack_str
from repro.params import TFHEParameters
from repro.serve.request import Request, RequestOutcome
from repro.tfhe.lwe import LweCiphertext
from repro.tfhe.serialization import lwe_from_bytes, lwe_to_bytes

#: SUBMIT flag bits.
HAS_ARRIVAL = 1 << 0
HAS_MODEL = 1 << 1
HAS_CIPHERTEXTS = 1 << 2
HAS_DEADLINE = 1 << 3

_SUBMIT_FIXED = struct.Struct("!QBId")
_DEADLINE = struct.Struct("!d")
_RESULT = struct.Struct("!QQIddd")
_CREDITS = struct.Struct("!H")


@dataclass(frozen=True)
class SubmitMessage:
    """Decoded ``SUBMIT`` payload.

    ``arrival_s`` is the trace timestamp when the client replays a recorded
    trace (deterministic mode) and ``None`` for live traffic, where the
    server stamps arrivals on its own clock.  ``ciphertexts`` holds the raw
    LWE batch bytes when the submission carries real encrypted payloads.

    ``deadline_s`` is *absolute* serving-clock time when ``arrival_s`` is
    carried (replay: the trace's exact deadline field survives the wire
    bit-for-bit) and a *relative* latency budget for live traffic (the
    server resolves it against the arrival it stamps).
    """

    request_id: int
    tenant: str
    kind: str
    items: int
    arrival_s: float | None = None
    model: str | None = None
    ciphertexts: bytes | None = None
    deadline_s: float | None = None

    def to_request(self) -> Request:
        """The serving-layer request this submission describes.

        Replayed submissions rebuild the original trace request bit-for-bit
        (same id, same timestamp, same absolute deadline); live submissions
        leave ``arrival_s`` (and deadline resolution) to the server.
        """
        return Request.make(
            self.request_id,
            self.tenant,
            self.kind,
            self.items,
            arrival_s=self.arrival_s if self.arrival_s is not None else 0.0,
            model=self.model,
            deadline_s=self.deadline_s,
        )

    def decode_ciphertexts(self, params: TFHEParameters) -> list[LweCiphertext]:
        """Decode the attached LWE batch (empty when none was attached)."""
        if self.ciphertexts is None:
            return []
        return lwe_from_bytes(self.ciphertexts, params)


def encode_submit(
    request_id: int,
    tenant: str,
    kind: str,
    items: int,
    arrival_s: float | None = None,
    model: str | None = None,
    ciphertexts: "list[LweCiphertext] | bytes | None" = None,
    deadline_s: float | None = None,
) -> bytes:
    """Encode one ``SUBMIT`` payload.

    ``ciphertexts`` accepts either ready-made bytes (from
    :func:`~repro.tfhe.serialization.lwe_to_bytes`) or a list of
    :class:`~repro.tfhe.lwe.LweCiphertext` to encode in place.
    ``deadline_s`` is absolute when ``arrival_s`` is given, a relative
    budget otherwise (see :class:`SubmitMessage`).
    """
    flags = 0
    if arrival_s is not None:
        flags |= HAS_ARRIVAL
    if model is not None:
        flags |= HAS_MODEL
    if deadline_s is not None:
        flags |= HAS_DEADLINE
    blob = b""
    if ciphertexts is not None:
        blob = ciphertexts if isinstance(ciphertexts, bytes) else lwe_to_bytes(ciphertexts)
        flags |= HAS_CIPHERTEXTS
    payload = _SUBMIT_FIXED.pack(
        request_id, flags, items, arrival_s if arrival_s is not None else 0.0
    )
    if deadline_s is not None:
        payload += _DEADLINE.pack(deadline_s)
    payload += pack_str(tenant) + pack_str(kind)
    if model is not None:
        payload += pack_str(model)
    if blob:
        payload += struct.pack("!I", len(blob)) + blob
    return payload


def decode_submit(payload: bytes) -> SubmitMessage:
    """Decode a ``SUBMIT`` payload (raises :class:`ValueError` when malformed)."""
    if len(payload) < _SUBMIT_FIXED.size:
        raise ValueError("SUBMIT payload is truncated before its fixed fields end")
    request_id, flags, items, arrival_s = _SUBMIT_FIXED.unpack_from(payload, 0)
    offset = _SUBMIT_FIXED.size
    deadline_s = None
    if flags & HAS_DEADLINE:
        if len(payload) < offset + _DEADLINE.size:
            raise ValueError("SUBMIT payload is truncated inside its deadline field")
        (deadline_s,) = _DEADLINE.unpack_from(payload, offset)
        offset += _DEADLINE.size
    tenant, offset = unpack_str(payload, offset)
    kind, offset = unpack_str(payload, offset)
    model = None
    if flags & HAS_MODEL:
        model, offset = unpack_str(payload, offset)
    ciphertexts = None
    if flags & HAS_CIPHERTEXTS:
        if len(payload) < offset + 4:
            raise ValueError("SUBMIT payload is truncated before its ciphertext length")
        (blob_length,) = struct.unpack_from("!I", payload, offset)
        offset += 4
        if len(payload) < offset + blob_length:
            raise ValueError("SUBMIT payload is truncated inside its ciphertext batch")
        ciphertexts = payload[offset : offset + blob_length]
        offset += blob_length
    if offset != len(payload):
        raise ValueError(f"SUBMIT payload has {len(payload) - offset} trailing bytes")
    if not tenant:
        raise ValueError("SUBMIT tenant name cannot be empty")
    return SubmitMessage(
        request_id=request_id,
        tenant=tenant,
        kind=kind,
        items=items,
        arrival_s=arrival_s if flags & HAS_ARRIVAL else None,
        model=model,
        ciphertexts=ciphertexts,
        deadline_s=deadline_s,
    )


def submit_from_request(request: Request, with_arrival: bool = True) -> bytes:
    """Encode a serving-layer :class:`Request` as a ``SUBMIT`` payload.

    With an arrival the request's absolute ``deadline_s`` rides along
    verbatim, so a replayed trace rebuilds it bit-for-bit; without one the
    deadline is rebased to a relative budget for the server to resolve.
    """
    if request.deadline_s is None:
        deadline = None
    elif with_arrival:
        deadline = request.deadline_s
    else:
        deadline = max(request.deadline_s - request.arrival_s, 0.0)
    return encode_submit(
        request.request_id,
        request.tenant,
        request.kind.value,
        request.items,
        arrival_s=request.arrival_s if with_arrival else None,
        model=request.model,
        deadline_s=deadline,
    )


@dataclass(frozen=True)
class ResultMessage:
    """Decoded ``RESULT`` payload.

    ``credits`` piggy-backs the connection's replenished credit count when
    the server runs credit-based flow control (the in-flight window the
    WELCOME advertised); ``None`` on the historical fixed-size payload.
    """

    request_id: int
    batch_id: int
    device: int
    arrival_s: float
    dispatched_s: float
    completed_s: float
    credits: int | None = None

    def to_outcome(self, request: Request) -> RequestOutcome:
        """Rebuild the outcome for the request the client submitted.

        ``arrival_s`` is authoritative from the server (in live mode the
        server stamps it), so the request is realigned to it before the
        outcome is assembled.
        """
        if request.arrival_s != self.arrival_s:
            request = replace(request, arrival_s=self.arrival_s)
        return RequestOutcome(
            request=request,
            batch_id=self.batch_id,
            device=self.device,
            dispatched_s=self.dispatched_s,
            completed_s=self.completed_s,
        )


def encode_result(
    request_id: int,
    batch_id: int,
    device: int,
    arrival_s: float,
    dispatched_s: float,
    completed_s: float,
    credits: int | None = None,
) -> bytes:
    """Encode one ``RESULT`` payload.

    ``credits`` appends the flow-control credit replenishment; ``None``
    keeps the historical fixed-size payload byte-identical.
    """
    payload = _RESULT.pack(
        request_id, batch_id, device, arrival_s, dispatched_s, completed_s
    )
    if credits is not None:
        if not 0 <= credits <= 0xFFFF:
            raise ValueError("RESULT credits must fit a u16")
        payload += _CREDITS.pack(credits)
    return payload


def result_from_outcome(outcome: RequestOutcome, credits: int | None = None) -> bytes:
    """Encode a serving-layer :class:`RequestOutcome` as a ``RESULT`` payload."""
    return encode_result(
        outcome.request.request_id,
        outcome.batch_id,
        outcome.device,
        outcome.request.arrival_s,
        outcome.dispatched_s,
        outcome.completed_s,
        credits=credits,
    )


def decode_result(payload: bytes) -> ResultMessage:
    """Decode a ``RESULT`` payload (with or without trailing credits)."""
    if len(payload) not in (_RESULT.size, _RESULT.size + _CREDITS.size):
        raise ValueError(
            f"RESULT payload must be {_RESULT.size} bytes "
            f"(or +{_CREDITS.size} with credits), got {len(payload)}"
        )
    request_id, batch_id, device, arrival_s, dispatched_s, completed_s = (
        _RESULT.unpack_from(payload, 0)
    )
    credits = None
    if len(payload) == _RESULT.size + _CREDITS.size:
        (credits,) = _CREDITS.unpack_from(payload, _RESULT.size)
    return ResultMessage(
        request_id=request_id,
        batch_id=batch_id,
        device=device,
        arrival_s=arrival_s,
        dispatched_s=dispatched_s,
        completed_s=completed_s,
        credits=credits,
    )
