"""Timing models of the five Strix functional units (Section V).

Each unit exposes ``busy_cycles_per_lwe(params)`` — the number of cycles the
unit is occupied per LWE ciphertext per blind-rotation iteration inside one
HSC — plus simple lane/area/power accounting.  The HSC pipeline model
(:mod:`repro.arch.hsc`) combines them: the slowest unit sets the per-LWE
initiation interval of the streaming pipeline, and the ratio of each unit's
busy time to that interval is its utilization (the quantities plotted in the
paper's Fig. 8 discussion).

The keyswitch cluster reuses the decomposer / VMA / accumulator models with
its own lane configuration (Section IV-A: CLP=8, CoLP=8, PLP=1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.arch.config import StrixConfig
from repro.arch.fft_unit import PipelinedFFTUnit
from repro.params import TFHEParameters


@dataclass(frozen=True)
class UnitTiming:
    """Busy time and utilization of one functional unit for one workload."""

    name: str
    busy_cycles: int
    utilization: float


class FunctionalUnit:
    """Base class: a named unit with an area/power footprint."""

    name: str = "unit"

    def __init__(self, config: StrixConfig):
        self.config = config

    def busy_cycles_per_lwe(self, params: TFHEParameters) -> int:
        """Cycles the unit is busy per LWE per blind-rotation iteration."""
        raise NotImplementedError

    @property
    def instances(self) -> int:
        """Number of physical instances of the unit inside one HSC."""
        return 1

    @property
    def area_mm2(self) -> float:
        """Total area of all instances inside one HSC."""
        raise NotImplementedError

    @property
    def power_w(self) -> float:
        """Total power of all instances inside one HSC."""
        raise NotImplementedError


class RotatorUnit(FunctionalUnit):
    """Negacyclic rotation and subtraction of the accumulator polynomials.

    Processes the ``k + 1`` accumulator polynomials with ``2*CLP`` lanes per
    instance and ``CoLP`` instances; the paper reports ~50 % utilization for
    parameter set I, which this model reproduces.
    """

    name = "rotator"
    _AREA_MM2 = 0.02
    _POWER_W = 0.01

    def busy_cycles_per_lwe(self, params: TFHEParameters) -> int:
        coefficients = (params.k + 1) * params.N
        lanes = self.config.effective_lanes * self.config.colp
        return max(math.ceil(coefficients / lanes), 1)

    @property
    def instances(self) -> int:
        return self.config.colp

    @property
    def area_mm2(self) -> float:
        return self._AREA_MM2 * self.config.effective_lanes / 8.0 * self.config.colp / 2.0

    @property
    def power_w(self) -> float:
        return self._POWER_W * self.config.effective_lanes / 8.0 * self.config.colp / 2.0


class DecomposerUnit(FunctionalUnit):
    """Streaming gadget decomposition (rounding + extraction, Fig. 6).

    Consumes ``k + 1`` polynomials and produces ``(k+1) * lb`` digit
    polynomials per LWE per iteration; built without multipliers, its cost is
    dominated by the per-lane mask/shift/add pipelines and digit buffers.
    """

    name = "decomposer"
    _AREA_MM2 = 0.28
    _POWER_W = 0.02

    def busy_cycles_per_lwe(self, params: TFHEParameters) -> int:
        output_coefficients = (params.k + 1) * params.lb * params.N
        lanes = self.config.effective_lanes * self.config.colp
        return max(math.ceil(output_coefficients / lanes), 1)

    @property
    def instances(self) -> int:
        return self.config.colp

    @property
    def area_mm2(self) -> float:
        return self._AREA_MM2 * self.config.effective_lanes / 8.0 * self.config.colp / 2.0

    @property
    def power_w(self) -> float:
        return self._POWER_W * self.config.effective_lanes / 8.0 * self.config.colp / 2.0


class FFTUnitGroup(FunctionalUnit):
    """The ``PLP`` forward-FFT units of the PBS cluster."""

    name = "fft"

    def __init__(self, config: StrixConfig):
        super().__init__(config)
        self.unit = PipelinedFFTUnit.from_config(config)

    def busy_cycles_per_lwe(self, params: TFHEParameters) -> int:
        polynomials = (params.k + 1) * params.lb
        per_unit = math.ceil(polynomials / self.config.plp)
        return per_unit * self.unit.initiation_interval(params.N)

    @property
    def instances(self) -> int:
        return self.config.plp

    @property
    def area_mm2(self) -> float:
        return self.unit.area_mm2 * self.instances

    @property
    def power_w(self) -> float:
        return self.unit.power_w * self.instances


class IFFTUnitGroup(FFTUnitGroup):
    """The ``PLP`` inverse-FFT units.

    The accumulation split between frequency and time domain (Section IV-B)
    balances the IFFT workload 1:1 with the forward FFT, so the busy time
    matches :class:`FFTUnitGroup`.
    """

    name = "ifft"


class VMAUnit(FunctionalUnit):
    """Vector multiply-accumulate against the bootstrapping key spectra.

    Consumes the Fourier-domain digit polynomials at ``CLP * PLP`` complex
    coefficients per cycle per HSC, multiplying each against the ``CoLP``
    output columns of the GGSW matrix.
    """

    name = "vma"
    _AREA_MM2 = 0.63
    _POWER_W = 0.10

    def busy_cycles_per_lwe(self, params: TFHEParameters) -> int:
        points_per_poly = params.N // 2 if self.config.fft_folding else params.N
        coefficients = (params.k + 1) * params.lb * points_per_poly
        lanes = self.config.clp * self.config.plp
        return max(math.ceil(coefficients / lanes), 1)

    @property
    def instances(self) -> int:
        return self.config.plp

    @property
    def area_mm2(self) -> float:
        return self._AREA_MM2 * (self.config.clp * self.config.plp) / 8.0

    @property
    def power_w(self) -> float:
        return self._POWER_W * (self.config.clp * self.config.plp) / 8.0


class AccumulatorUnit(FunctionalUnit):
    """Time-domain accumulation of the IFFT outputs back into the scratchpad."""

    name = "accumulator"
    _AREA_MM2 = 0.32
    _POWER_W = 0.13

    def busy_cycles_per_lwe(self, params: TFHEParameters) -> int:
        coefficients = (params.k + 1) * params.lb * params.N
        lanes = self.config.effective_lanes * self.config.colp
        return max(math.ceil(coefficients / lanes), 1)

    @property
    def instances(self) -> int:
        return self.config.colp

    @property
    def area_mm2(self) -> float:
        return self._AREA_MM2 * self.config.effective_lanes / 8.0 * self.config.colp / 2.0

    @property
    def power_w(self) -> float:
        return self._POWER_W * self.config.effective_lanes / 8.0 * self.config.colp / 2.0


#: Order of the six pipeline stages of the PBS cluster.
PBS_PIPELINE_ORDER = ("rotator", "decomposer", "fft", "vma", "ifft", "accumulator")


def build_pbs_cluster(config: StrixConfig) -> dict[str, FunctionalUnit]:
    """Instantiate the six-stage PBS cluster of one HSC."""
    return {
        "rotator": RotatorUnit(config),
        "decomposer": DecomposerUnit(config),
        "fft": FFTUnitGroup(config),
        "vma": VMAUnit(config),
        "ifft": IFFTUnitGroup(config),
        "accumulator": AccumulatorUnit(config),
    }


class KeyswitchCluster:
    """Timing model of the keyswitch cluster (decomposer → VMA → accumulator).

    Keyswitching is a plain integer matrix-vector product: every one of the
    ``k*N`` input coefficients is decomposed into ``lk`` digits, each
    multiplying an ``(n+1)``-element row of the keyswitching key.  The
    cluster sustains ``ks_clp * ks_colp`` multiply-accumulates per cycle.
    """

    name = "keyswitch"

    def __init__(self, config: StrixConfig):
        self.config = config

    def macs_per_lwe(self, params: TFHEParameters) -> int:
        """Multiply-accumulate operations for one keyswitch."""
        return params.k * params.N * params.lk * (params.n + 1)

    def busy_cycles_per_lwe(self, params: TFHEParameters) -> int:
        """Cycles to keyswitch one LWE ciphertext inside one HSC."""
        throughput = self.config.ks_clp * self.config.ks_colp
        return max(math.ceil(self.macs_per_lwe(params) / throughput), 1)

    def is_hidden_behind_pbs(self, params: TFHEParameters, pbs_cycles_per_lwe: int) -> bool:
        """Whether keyswitching fits inside the PBS time of the next epoch."""
        return self.busy_cycles_per_lwe(params) <= pbs_cycles_per_lwe
