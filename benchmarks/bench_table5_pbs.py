"""Table V — PBS latency and throughput across platforms.

Regenerates the cross-platform comparison (Concrete CPU, NuFHE GPU, YKP,
XHEC, Matcha, Strix) for parameter sets I-IV and checks the headline
speedups: >1000x over CPU, tens of times over GPU and ~7.4x over Matcha.
"""

from __future__ import annotations

from repro.analysis.tables import pbs_comparison_table


def test_table5_pbs_comparison(benchmark, save_result):
    table = benchmark(pbs_comparison_table)

    assert 900 <= table.speedup_over("Concrete", "I") <= 1300
    assert 25 <= table.speedup_over("NuFHE", "I") <= 55
    assert 6.5 <= table.speedup_over("Matcha", "I") <= 8.5

    strix_i = table.strix_row("I")
    assert strix_i.latency_ms < 0.25
    assert strix_i.throughput_pbs_per_s > 70000
    strix_iv = table.strix_row("IV")
    assert strix_iv.throughput_pbs_per_s > 2000

    save_result("table5_pbs_comparison", table.render())
