"""Docs snippet gate: every ``python`` block in ``docs/*.md`` must run.

The guides promise that their code blocks work as-is; this script keeps the
promise mechanical.  It extracts every fenced ```python block from every
markdown file under ``docs/``, compiles it, and executes it in a fresh
namespace with ``src/`` importable — so a renamed kwarg, a moved module or
a stale assertion in the prose fails CI instead of a reader.

Usage::

    python docs/check_snippets.py            # all docs/*.md
    python docs/check_snippets.py serving.md # one file

``tests/test_docs.py`` runs the same extraction in the tier-1 suite.
"""

from __future__ import annotations

import re
import sys
import time
from pathlib import Path

#: Repository root (``docs/`` lives directly under it).
REPO_ROOT = Path(__file__).resolve().parent.parent

#: Fenced python code blocks: ```python ... ``` (non-greedy, multiline).
_FENCE = re.compile(r"^```python\n(.*?)^```", re.MULTILINE | re.DOTALL)


def ensure_repro_importable() -> None:
    """Make ``src/`` importable when the checker runs as a plain script."""
    src = REPO_ROOT / "src"
    if str(src) not in sys.path:
        sys.path.insert(0, str(src))


def extract_snippets(path: Path) -> list[tuple[str, str]]:
    """``(label, source)`` for every python block in one markdown file."""
    text = path.read_text()
    snippets = []
    for index, match in enumerate(_FENCE.finditer(text)):
        line = text[: match.start()].count("\n") + 2  # first code line
        snippets.append((f"{path.name}:{line} (block {index + 1})", match.group(1)))
    return snippets


def run_snippet(label: str, source: str) -> None:
    """Compile and execute one snippet in a fresh namespace."""
    code = compile(source, label, "exec")
    exec(code, {"__name__": f"docs_snippet_{abs(hash(label))}"})


def main(argv: list[str]) -> int:
    ensure_repro_importable()
    docs = REPO_ROOT / "docs"
    targets = (
        [docs / name for name in argv]
        if argv
        else sorted(docs.glob("*.md"))
    )
    failures = 0
    total = 0
    for path in targets:
        for label, source in extract_snippets(path):
            total += 1
            start = time.perf_counter()
            try:
                run_snippet(label, source)
            except Exception as error:  # noqa: BLE001 - report and keep going
                failures += 1
                print(f"[docs] FAIL {label}: {type(error).__name__}: {error}")
            else:
                elapsed = time.perf_counter() - start
                print(f"[docs] ok   {label} ({elapsed:.2f}s)")
    if failures:
        print(f"[docs] {failures}/{total} snippet(s) failed")
        return 1
    print(f"[docs] all {total} snippet(s) ran cleanly")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
