"""Tests for the event-model schedule cache (``repro.sched.memo``).

Covers the exactness contract (memoized pricing is bit-for-bit equal to
unmemoized pricing, for randomized batch mixes and for every placement
layout), the LRU capacity/eviction behaviour, the counter accounting the
serving report surfaces, and the wiring knobs (``cost_cache_capacity``
through ``Server``, ``StrixCluster`` and the ``strix-cluster`` backend).
"""

from __future__ import annotations

import random

import pytest

from repro import run
from repro.params import PARAM_SET_I, PARAM_SET_II
from repro.sched import (
    DEFAULT_COST_CACHE_CAPACITY,
    EventDrivenCostModel,
    ScheduleCache,
    batch_graph,
    batch_mix_signature,
    graph_signature,
)
from repro.serve import Request, Server, StrixCluster
from repro.serve.batcher import Batch

#: Request shapes the randomized mixes draw from: (kind, model).
MIX_KINDS = (
    ("bootstrap", None),
    ("gate", None),
    ("encrypt", None),
    ("inference", "NN-20"),
    ("inference", "NN-50"),
)


def make_batch(requests, batch_id=0):
    return Batch(
        batch_id=batch_id,
        requests=tuple(requests),
        created_s=0.0,
        flush_reason="full",
    )


def random_batch(rng: random.Random, batch_id: int) -> Batch:
    requests = []
    for index in range(rng.randint(1, 6)):
        kind, model = rng.choice(MIX_KINDS)
        items = rng.randint(1, 48) if model is None else rng.randint(1, 3)
        requests.append(
            Request.make(
                batch_id * 100 + index + 1,
                f"tenant{index % 3}",
                kind,
                items,
                model=model,
            )
        )
    return make_batch(requests, batch_id=batch_id)


def random_trace(seed: int, requests: int) -> list[Request]:
    rng = random.Random(seed)
    trace = []
    for index in range(requests):
        kind, model = rng.choice(MIX_KINDS)
        items = rng.randint(1, 24) if model is None else 1
        trace.append(
            Request.make(
                index + 1,
                f"tenant{index % 4}",
                kind,
                items,
                arrival_s=index * 4e-4,
                model=model,
            )
        )
    return trace


# -- exactness: memoized == unmemoized, bit for bit -----------------------------------


def test_randomized_batch_mixes_price_bit_for_bit():
    """Property sweep: memoized BatchCost equals unmemoized for random mixes."""
    rng = random.Random(1234)
    cluster = StrixCluster(devices=1)
    device = cluster.devices[0]
    raw = EventDrivenCostModel()
    memo = ScheduleCache()
    for batch_id in range(40):
        batch = random_batch(rng, batch_id)
        for params in (PARAM_SET_I, PARAM_SET_II):
            assert memo.batch_cost(batch, params, device) == raw.batch_cost(
                batch, params, device
            )
    assert memo.hits + memo.misses == 80


def test_equal_signatures_imply_equal_costs_regardless_of_request_order():
    """The lowering is canonical: request arrival order cannot skew pricing."""
    rng = random.Random(99)
    cluster = StrixCluster(devices=1)
    device = cluster.devices[0]
    raw = EventDrivenCostModel()
    memo = ScheduleCache()
    for batch_id in range(10):
        batch = random_batch(rng, batch_id)
        shuffled_requests = list(batch.requests)
        rng.shuffle(shuffled_requests)
        shuffled = make_batch(shuffled_requests, batch_id=batch_id + 1000)
        assert batch_mix_signature(batch) == batch_mix_signature(shuffled)
        assert raw.batch_cost(batch, PARAM_SET_I, device) == raw.batch_cost(
            shuffled, PARAM_SET_I, device
        )
        memoized = memo.batch_cost(batch, PARAM_SET_I, device)
        assert memo.batch_cost(shuffled, PARAM_SET_I, device) is memoized


@pytest.mark.parametrize("layout", ["data-parallel", "pipeline", "elastic"])
def test_memoized_serving_is_bit_for_bit_for_every_layout(layout):
    """Cached vs uncached event-model serving: identical reports per layout."""
    trace = random_trace(seed=7, requests=160)
    cached = Server(
        devices=3, params="I", layout=layout, cost_model="event", batch_capacity=24
    )
    uncached = Server(
        devices=3,
        params="I",
        layout=layout,
        cost_model="event",
        batch_capacity=24,
        cost_cache_capacity=0,
    )
    cached_report = cached.simulate(list(trace), label=layout)
    uncached_report = uncached.simulate(list(trace), label=layout)
    assert cached_report.metrics.latency == uncached_report.metrics.latency
    assert cached_report.metrics.queue_delay == uncached_report.metrics.queue_delay
    assert (
        cached_report.metrics.cost_breakdown == uncached_report.metrics.cost_breakdown
    )
    assert [
        (outcome.device, outcome.dispatched_s, outcome.completed_s)
        for outcome in cached_report.outcomes
    ] == [
        (outcome.device, outcome.dispatched_s, outcome.completed_s)
        for outcome in uncached_report.outcomes
    ]
    # The cached server actually cached (and the uncached one didn't).
    assert cached_report.metrics.cost_cache["hits"] > 0
    assert uncached_report.metrics.cost_cache == {}


def test_pipeline_stage_costs_memoize_per_stage_signature():
    """Pipeline serving prices each distinct stage subgraph exactly once."""
    trace = random_trace(seed=21, requests=120)
    server = Server(
        devices=4, params="I", layout="pipeline", cost_model="event", batch_capacity=24
    )
    report = server.simulate(list(trace), label="pipeline")
    counters = report.metrics.cost_cache
    assert counters["misses"] == counters["entries"]  # one simulation per shape
    assert counters["hits"] > counters["misses"]  # repeated shapes dominate
    # One lookup per priced stage: at least one stage per batch, at most
    # one per device (shallow graphs cut into fewer stages than devices).
    batches = report.metrics.batches
    stages_per_batch = len(server.cluster.devices)
    assert batches <= counters["hits"] + counters["misses"]
    assert counters["hits"] + counters["misses"] <= batches * stages_per_batch


def test_graph_signature_ignores_names_but_not_structure():
    first = batch_graph(
        make_batch([Request.make(1, "a", "inference", 1, model="NN-20")]), PARAM_SET_I
    )
    renamed = batch_graph(
        make_batch([Request.make(9, "b", "inference", 1, model="NN-20")], batch_id=3),
        PARAM_SET_I,
    )
    assert graph_signature(first) == graph_signature(renamed)
    scaled = batch_graph(
        make_batch([Request.make(1, "a", "inference", 2, model="NN-20")]), PARAM_SET_I
    )
    assert graph_signature(first) != graph_signature(scaled)


# -- capacity and eviction -------------------------------------------------------------


def bootstrap_batch(items, batch_id=0):
    return make_batch(
        [Request.make(batch_id * 10 + 1, "t", "bootstrap", items)], batch_id=batch_id
    )


def test_lru_eviction_at_capacity():
    cluster = StrixCluster(devices=1)
    device = cluster.devices[0]
    memo = ScheduleCache(capacity=2)
    memo.batch_cost(bootstrap_batch(8), PARAM_SET_I, device)
    memo.batch_cost(bootstrap_batch(16), PARAM_SET_I, device)
    # Touch the first shape so the 16-item one is now least recently used.
    memo.batch_cost(bootstrap_batch(8), PARAM_SET_I, device)
    memo.batch_cost(bootstrap_batch(24), PARAM_SET_I, device)
    assert memo.cache_stats == {"hits": 1, "misses": 3, "evictions": 1, "entries": 2}
    # The evicted 16-item shape re-misses (evicting the 8-item one, now the
    # least recently used); the 24-item shape is still resident and hits.
    memo.batch_cost(bootstrap_batch(16), PARAM_SET_I, device)
    assert memo.misses == 4
    memo.batch_cost(bootstrap_batch(24), PARAM_SET_I, device)
    assert memo.hits == 2
    assert memo.evictions == 2


def test_capacity_must_be_positive():
    with pytest.raises(ValueError, match="capacity"):
        ScheduleCache(capacity=0)


def test_cache_distinguishes_params_structure_and_geometry():
    import dataclasses

    from repro.arch.config import StrixConfig

    memo = ScheduleCache()
    batch = bootstrap_batch(32)
    small = StrixCluster(devices=1, device_config=StrixConfig(tvlp=4))
    large = StrixCluster(devices=1)
    memo.batch_cost(batch, PARAM_SET_I, large.devices[0])
    memo.batch_cost(batch, PARAM_SET_I, small.devices[0])
    assert memo.misses == 2  # different device geometry, no aliasing
    tweaked = dataclasses.replace(PARAM_SET_I, n=PARAM_SET_I.n // 2)
    assert tweaked.name == PARAM_SET_I.name
    memo.batch_cost(batch, tweaked, large.devices[0])
    assert memo.misses == 3  # same name, different structure: no aliasing


# -- counters and wiring ---------------------------------------------------------------


def test_counters_reset_but_entries_survive():
    server = Server(devices=2, params="I", cost_model="event", batch_capacity=16)
    trace = random_trace(seed=3, requests=80)
    first = server.simulate(list(trace), label="first")
    entries = first.metrics.cost_cache["entries"]
    assert entries > 0
    assert first.metrics.cost_cache["misses"] == entries
    second = server.simulate(list(trace), label="second")
    # Counters cleared per simulation; cached schedules persisted, so the
    # second run never simulates at all.
    assert second.metrics.cost_cache["misses"] == 0
    assert second.metrics.cost_cache["hits"] > 0
    assert second.metrics.cost_cache["entries"] == entries
    assert second.metrics.latency == first.metrics.latency


def test_report_surfaces_cost_cache_counters():
    server = Server(devices=2, params="I", cost_model="event", batch_capacity=16)
    report = server.simulate(random_trace(seed=5, requests=60), label="counters")
    counters = report.metrics.cost_cache
    assert counters["hits"] + counters["misses"] == report.metrics.batches
    assert report.to_dict()["cost_cache"] == counters
    assert "schedules:" in report.metrics.render()


def test_analytical_default_has_no_cost_cache():
    server = Server(devices=2, params="I", batch_capacity=16)
    assert server.cluster.cost_cache_stats == {}
    report = server.simulate(random_trace(seed=5, requests=40), label="analytical")
    assert report.metrics.cost_cache == {}
    assert "schedules:" not in report.metrics.render()


def test_cost_cache_capacity_zero_disables_memoization():
    cluster = StrixCluster(devices=1, cost_model="event", cost_cache_capacity=0)
    assert isinstance(cluster.cost_model, EventDrivenCostModel)
    assert not isinstance(cluster.cost_model, ScheduleCache)


def test_default_wrap_uses_default_capacity():
    cluster = StrixCluster(devices=1, cost_model="event")
    assert isinstance(cluster.cost_model, ScheduleCache)
    assert cluster.cost_model.capacity == DEFAULT_COST_CACHE_CAPACITY
    sized = StrixCluster(devices=1, cost_model="event", cost_cache_capacity=7)
    assert sized.cost_model.capacity == 7


def test_prebuilt_schedule_cache_passes_through():
    memo = ScheduleCache(capacity=3)
    cluster = StrixCluster(devices=1, cost_model=memo)
    assert cluster.cost_model is memo  # never double-wrapped


def test_capacity_knob_wins_over_prebuilt_cache():
    memo = ScheduleCache(capacity=3)
    # An explicit 0 unwraps (memoization off even for a pre-wrapped model).
    unwrapped = StrixCluster(devices=1, cost_model=memo, cost_cache_capacity=0)
    assert unwrapped.cost_model is memo.inner
    # An explicit capacity re-sizes around the same inner model.
    resized = StrixCluster(devices=1, cost_model=memo, cost_cache_capacity=9)
    assert isinstance(resized.cost_model, ScheduleCache)
    assert resized.cost_model.capacity == 9
    assert resized.cost_model.inner is memo.inner


def test_backend_reshape_keeps_configured_cost_cache_capacity(monkeypatch):
    from repro.serve import backend as backend_module

    backend = backend_module.StrixClusterBackend(
        devices=2, cost_model="event", cost_cache_capacity=0
    )
    assert isinstance(backend.cluster.cost_model, EventDrivenCostModel)

    captured = {}
    real_cluster = backend_module.StrixCluster

    class SpyCluster(real_cluster):
        def __init__(self, *args, **kwargs):
            captured.update(kwargs)
            super().__init__(*args, **kwargs)

    monkeypatch.setattr(backend_module, "StrixCluster", SpyCluster)
    # A devices= reshape must not silently re-enable memoization the
    # backend was configured without...
    backend.run("NN-20", devices=1)
    assert captured["cost_cache_capacity"] == 0
    # ...while a per-call capacity still overrides for that run.
    backend.run("NN-20", devices=1, cost_cache_capacity=4)
    assert captured["cost_cache_capacity"] == 4
    assert isinstance(backend.cluster.cost_model, EventDrivenCostModel)


def test_backend_run_accepts_cost_cache_capacity():
    result = run(
        "NN-20",
        backend="strix-cluster",
        devices=2,
        cost_model="event",
        cost_cache_capacity=16,
    )
    assert result.backend == "strix-cluster"
    assert result.latency_s > 0
