"""Per-degree transform registry with hit/miss accounting.

Building a :class:`~repro.fft.negacyclic.NegacyclicTransform` or
:class:`~repro.fft.folding.FoldedNegacyclicTransform` recomputes the twiddle
and twist tables — cheap once, wasteful per ciphertext.  Blind rotation
performs thousands of transforms of a handful of distinct degrees, so every
scalar and vectorized caller shares the instances cached here instead of
rebuilding them.

The registry also counts lookups: :func:`transform_cache_stats` returns the
hit/miss counters, and :func:`register_transform_cache_view` re-registers
them as a derived view on a :class:`~repro.obs.metrics.MetricsRegistry`, the
same pattern every other subsystem counter dict follows (see
:mod:`repro.obs.metrics`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.fft.folding import FoldedNegacyclicTransform
from repro.fft.negacyclic import NegacyclicTransform

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.obs.metrics import MetricsRegistry

#: Cached full-size transforms, keyed by polynomial degree.
_FULL: dict[int, NegacyclicTransform] = {}
#: Cached folded (half-size) transforms, keyed by polynomial degree.
_FOLDED: dict[int, FoldedNegacyclicTransform] = {}
#: Lookup counters for both caches (monotonic; cleared only with the caches).
_STATS = {"full_hits": 0, "full_misses": 0, "folded_hits": 0, "folded_misses": 0}


def get_negacyclic_transform(degree: int) -> NegacyclicTransform:
    """Return (and cache) the full-size negacyclic transform for ``degree``."""
    transform = _FULL.get(degree)
    if transform is None:
        _STATS["full_misses"] += 1
        transform = NegacyclicTransform(degree)
        _FULL[degree] = transform
    else:
        _STATS["full_hits"] += 1
    return transform


def get_folded_transform(degree: int) -> FoldedNegacyclicTransform:
    """Return (and cache) the folded negacyclic transform for ``degree``."""
    transform = _FOLDED.get(degree)
    if transform is None:
        _STATS["folded_misses"] += 1
        transform = FoldedNegacyclicTransform(degree)
        _FOLDED[degree] = transform
    else:
        _STATS["folded_hits"] += 1
    return transform


def transform_cache_stats() -> dict[str, int]:
    """Current hit/miss counters plus resident instance counts."""
    return {
        **_STATS,
        "full_entries": len(_FULL),
        "folded_entries": len(_FOLDED),
    }


def register_transform_cache_view(
    registry: "MetricsRegistry", prefix: str = "fft_transform_cache"
) -> None:
    """Expose the transform-cache counters as a derived registry view.

    The counters keep their one source of truth here; the view samples them
    at collection time, so they appear in ``collect()`` snapshots, ``STATS``
    wire frames and Prometheus renders as ``{prefix}_{key}``.
    """
    registry.register_view(
        prefix, transform_cache_stats, "Negacyclic transform cache counters"
    )


def clear_transform_caches() -> None:
    """Drop every cached transform and zero the counters (tests only)."""
    _FULL.clear()
    _FOLDED.clear()
    for key in _STATS:
        _STATS[key] = 0
