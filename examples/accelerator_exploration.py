"""Design-space exploration with the Strix architecture model.

Uses the cycle-level model to answer the questions a hardware architect
would ask before committing to a design point: how fast is each parameter
set (Table V), what does the chip cost (Table III), what does FFT folding
buy (Table VI), where is the compute/memory-bound boundary (Table VII) and
what does the pipeline actually do cycle by cycle (Fig. 8).

Run with:  python examples/accelerator_exploration.py
"""

from __future__ import annotations

from repro.analysis.folding_ablation import folding_ablation
from repro.analysis.tables import (
    area_power_table,
    pbs_comparison_table,
    render_area_power_table,
)
from repro.analysis.tradeoffs import tvlp_clp_tradeoff
from repro.arch.accelerator import StrixAccelerator
from repro.arch.config import StrixConfig
from repro.params import PAPER_PARAMETER_SETS, PARAM_SET_I
from repro.sim.trace import build_occupancy_trace


def main() -> None:
    accelerator = StrixAccelerator()

    print("== PBS microbenchmark (Table V) ==")
    print(pbs_comparison_table(accelerator).render())

    print("\n== Chip cost (Table III) ==")
    print(render_area_power_table(area_power_table(accelerator)))

    print("\n== FFT folding ablation (Table VI) ==")
    print(folding_ablation(PARAM_SET_I).render())

    print("\n== TvLP vs CLP trade-off (Table VII) ==")
    print(tvlp_clp_tradeoff().render())

    print("\n== Functional-unit occupancy, set I, 3 LWEs/core (Fig. 8) ==")
    print(build_occupancy_trace(accelerator, PARAM_SET_I, lwes_per_core=3, iterations=2).render())

    print("\n== What-if: a half-bandwidth, four-core budget variant ==")
    budget = StrixAccelerator(
        StrixConfig(tvlp=4, hbm_bandwidth_gbps=150.0, global_scratchpad_mb=12.0)
    )
    for name, params in PAPER_PARAMETER_SETS.items():
        perf = budget.pbs_performance(params)
        print(
            f"  set {name:3s}: {perf.throughput_pbs_per_s:10,.0f} PBS/s, "
            f"{perf.latency_ms:7.2f} ms latency, "
            f"{'memory' if not perf.compute_bound else 'compute'}-bound"
        )
    cost = budget.chip_cost()
    print(f"  chip cost: {cost.total_area_mm2:.1f} mm^2, {cost.total_power_w:.1f} W")


if __name__ == "__main__":
    main()
