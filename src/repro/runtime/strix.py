"""Strix simulation backend: cycle-level execution on the accelerator model.

Lowers any workload to a :class:`~repro.sim.graph.ComputationGraph`, runs it
through the epoch scheduler on a :class:`~repro.arch.accelerator
.StrixAccelerator`, and reports latency, throughput, per-core utilization
and energy in the common :class:`~repro.runtime.result.RunResult` shape.
"""

from __future__ import annotations

from typing import Any

from repro.arch.accelerator import StrixAccelerator
from repro.arch.energy import EnergyModel
from repro.params import TFHEParameters
from repro.runtime.backend import Backend, register_backend
from repro.runtime.result import RunResult
from repro.runtime.session import Session
from repro.runtime.workload import WorkloadLike, as_graph
from repro.sim.scheduler import StrixScheduler


class StrixSimBackend(Backend):
    """Simulates workloads on the Strix accelerator model."""

    name = "strix-sim"

    def __init__(self, accelerator: StrixAccelerator | None = None):
        self.accelerator = accelerator or StrixAccelerator()
        self.scheduler = StrixScheduler(self.accelerator)
        self.energy_model = EnergyModel(self.accelerator)

    def run(
        self,
        workload: WorkloadLike,
        *,
        params: TFHEParameters | str | None = None,
        session: Session | None = None,
        inputs: Any = None,
        instances: int = 1,
        **options: Any,
    ) -> RunResult:
        """Simulate ``workload`` (replicated ``instances`` times for netlists).

        When a ``session`` is given its accelerator configuration wins over
        this backend's default, so batch geometry stays consistent with the
        session's batch APIs.
        """
        scheduler = self.scheduler
        energy_model = self.energy_model
        if session is not None and session.accelerator is not self.accelerator:
            scheduler = StrixScheduler(session.accelerator)
            energy_model = EnergyModel(session.accelerator)
        graph = as_graph(workload, params, instances)
        schedule = scheduler.run(graph)
        return RunResult(
            workload=graph.name,
            backend=self.name,
            parameter_set=graph.params.name,
            latency_s=schedule.total_time_s,
            pbs_count=schedule.total_pbs,
            utilization=dict(schedule.core_utilization),
            energy_j=energy_model.workload_energy_j(schedule.total_time_s),
            details={"epochs": schedule.total_epochs, "schedule": schedule},
        )


register_backend(StrixSimBackend.name, StrixSimBackend)
