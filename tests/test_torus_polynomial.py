"""Tests for torus arithmetic, negacyclic polynomials and message encoding."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fft.reference import naive_negacyclic_rotation
from repro.params import TOY_PARAMETERS
from repro.tfhe import encoding, polynomial, torus

Q = TOY_PARAMETERS.q


class TestTorus:
    def test_reduce_scalar_and_array(self):
        assert torus.reduce(-1, Q) == Q - 1
        np.testing.assert_array_equal(
            torus.reduce(np.array([Q, Q + 5, -3]), Q), np.array([0, 5, Q - 3])
        )

    def test_to_signed_maps_upper_half_negative(self):
        assert torus.to_signed(Q - 1, Q) == -1
        assert torus.to_signed(Q // 2, Q) == -(Q // 2)
        assert torus.to_signed(5, Q) == 5

    def test_to_signed_roundtrip(self):
        values = np.array([0, 1, Q // 4, Q // 2, Q - 1], dtype=np.int64)
        signed = torus.to_signed(values, Q)
        np.testing.assert_array_equal(torus.reduce(signed, Q), values)

    def test_uniform_in_range(self, rng):
        samples = torus.uniform(1000, Q, rng)
        assert samples.min() >= 0 and samples.max() < Q

    def test_gaussian_noise_zero_std_is_zero(self, rng):
        noise = torus.gaussian_noise(100, 0.0, Q, rng)
        assert not noise.any()

    def test_gaussian_noise_scale(self, rng):
        noise = torus.gaussian_noise(20000, 2.0 ** -16, Q, rng)
        signed = torus.to_signed(noise, Q).astype(np.float64)
        measured_std = signed.std() / Q
        assert 0.5 * 2 ** -16 < measured_std < 2.0 * 2 ** -16

    def test_round_to_multiple(self):
        assert torus.round_to_multiple(1000, 256, Q) == 1024
        assert torus.round_to_multiple(100, 256, Q) == 0

    def test_round_to_multiple_rejects_bad_step(self):
        with pytest.raises(ValueError):
            torus.round_to_multiple(5, 0, Q)

    def test_switch_modulus_scales_proportionally(self):
        # q/2 must map to N under modulus 2N.
        n_poly = TOY_PARAMETERS.N
        assert torus.switch_modulus(Q // 2, Q, 2 * n_poly) == n_poly

    def test_switch_modulus_rounding_error_bounded(self, rng):
        two_n = 2 * TOY_PARAMETERS.N
        values = torus.uniform(500, Q, rng)
        switched = torus.switch_modulus(values, Q, two_n)
        recovered = switched * (Q // two_n)
        error = torus.absolute_distance(values, recovered, Q)
        assert error.max() <= Q // (2 * two_n) + 1

    def test_absolute_distance_wraps(self):
        assert torus.absolute_distance(1, Q - 1, Q) == 2


class TestPolynomial:
    def test_add_sub_roundtrip(self, rng):
        n_poly = 64
        a = torus.uniform(n_poly, Q, rng)
        b = torus.uniform(n_poly, Q, rng)
        np.testing.assert_array_equal(polynomial.sub(polynomial.add(a, b, Q), b, Q), a)

    def test_negate_is_additive_inverse(self, rng):
        a = torus.uniform(32, Q, rng)
        total = polynomial.add(a, polynomial.negate(a, Q), Q)
        assert not total.any()

    @pytest.mark.parametrize("exponent", [0, 1, 5, 63, 64, 100, 127, 128, -1, -37])
    def test_monomial_multiply_matches_reference(self, exponent, rng):
        n_poly = 64
        a = rng.integers(0, Q, n_poly)
        expected = torus.reduce(
            naive_negacyclic_rotation(a, exponent).astype(object), Q
        ).astype(np.int64)
        result = polynomial.monomial_multiply(a, exponent, Q)
        np.testing.assert_array_equal(result, expected)

    def test_monomial_multiply_full_circle_identity(self, rng):
        a = torus.uniform(32, Q, rng)
        np.testing.assert_array_equal(polynomial.monomial_multiply(a, 64, Q), a)

    def test_rotate_and_subtract_zero_exponent_is_zero(self, rng):
        a = torus.uniform(32, Q, rng)
        assert not polynomial.rotate_and_subtract(a, 0, Q).any()

    def test_integer_multiply_matches_naive(self, rng):
        from repro.fft.reference import naive_negacyclic_convolution

        n_poly = 64
        a = torus.uniform(n_poly, Q, rng)
        b = rng.integers(-16, 16, n_poly)
        expected = torus.reduce(
            naive_negacyclic_convolution(a, b, modulus=Q), Q
        ).astype(np.int64)
        np.testing.assert_array_equal(polynomial.integer_multiply(a, b, Q), expected)

    def test_integer_multiply_by_one_is_identity(self, rng):
        a = torus.uniform(128, Q, rng)
        one = np.zeros(128, dtype=np.int64)
        one[0] = 1
        np.testing.assert_array_equal(polynomial.integer_multiply(a, one, Q), a)

    def test_transform_cache_reuses_instances(self):
        assert polynomial.get_transform(64) is polynomial.get_transform(64)

    def test_constant_term(self):
        assert polynomial.constant_term(np.array([7, 1, 2])) == 7


class TestEncoding:
    @pytest.mark.parametrize("message", range(TOY_PARAMETERS.message_modulus))
    def test_encode_decode_roundtrip(self, message):
        assert encoding.decode(encoding.encode(message, TOY_PARAMETERS), TOY_PARAMETERS) == message

    def test_decode_tolerates_noise(self):
        params = TOY_PARAMETERS
        value = encoding.encode(2, params)
        noisy = (value + params.delta // 4) % params.q
        assert encoding.decode(noisy, params) == 2
        noisy = (value - params.delta // 4) % params.q
        assert encoding.decode(noisy, params) == 2

    def test_encode_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            encoding.encode(TOY_PARAMETERS.message_modulus, TOY_PARAMETERS)
        with pytest.raises(ValueError):
            encoding.encode(-1, TOY_PARAMETERS)

    def test_array_roundtrip(self):
        params = TOY_PARAMETERS
        messages = np.arange(params.message_modulus)
        encoded = encoding.encode_array(messages, params)
        np.testing.assert_array_equal(encoding.decode_array(encoded, params), messages)

    def test_array_encode_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            encoding.encode_array(np.array([0, 99]), TOY_PARAMETERS)

    @pytest.mark.parametrize("value", [True, False])
    def test_boolean_roundtrip(self, value):
        encoded = encoding.encode_boolean(value, TOY_PARAMETERS)
        assert encoding.decode_boolean(encoded, TOY_PARAMETERS) is value

    def test_boolean_encoding_is_plus_minus_eighth(self):
        params = TOY_PARAMETERS
        assert encoding.encode_boolean(True, params) == params.q // 8
        assert encoding.encode_boolean(False, params) == params.q - params.q // 8


class TestTorusProperties:
    @given(st.integers(min_value=-(2 ** 40), max_value=2 ** 40))
    @settings(max_examples=200, deadline=None)
    def test_reduce_then_signed_is_congruent(self, value):
        signed = torus.to_signed(value, Q)
        assert (signed - value) % Q == 0
        assert -Q // 2 <= signed < Q // 2

    @given(
        st.lists(st.integers(min_value=0, max_value=Q - 1), min_size=8, max_size=8),
        st.integers(min_value=-512, max_value=512),
        st.integers(min_value=-512, max_value=512),
    )
    @settings(max_examples=100, deadline=None)
    def test_monomial_multiplication_is_homomorphic_in_exponent(self, coeffs, e1, e2):
        """X^(e1) * (X^(e2) * a) == X^(e1+e2) * a in the negacyclic ring."""
        a = np.array(coeffs, dtype=np.int64)
        a = np.resize(a, 8)
        step = polynomial.monomial_multiply(polynomial.monomial_multiply(a, e2, Q), e1, Q)
        direct = polynomial.monomial_multiply(a, e1 + e2, Q)
        np.testing.assert_array_equal(step, direct)

    @given(st.integers(min_value=0, max_value=3), st.integers(min_value=-3, max_value=3))
    @settings(max_examples=60, deadline=None)
    def test_decode_is_noise_tolerant(self, message, jitter_sign):
        params = TOY_PARAMETERS
        jitter = jitter_sign * params.delta // 8
        value = (encoding.encode(message, params) + jitter) % params.q
        assert encoding.decode(value, params) == message
