"""Serialization of ciphertexts and keys.

A practical TFHE deployment moves ciphertexts and evaluation keys between a
client and an evaluation server (or an accelerator's host).  This module
provides a compact ``.npz``-based format for the library's objects, and
size accounting that matches the paper's Table I discussion (KB-level
ciphertexts, 10s–100s MB bootstrapping keys).

Only public material (ciphertexts, bootstrapping / keyswitching keys) gets a
``save``/``load`` pair; secret keys are serialized through a separate
explicit function so it is always obvious when secret material touches disk.
"""

from __future__ import annotations

import struct
from pathlib import Path

import numpy as np

from repro.params import TFHEParameters
from repro.tfhe.batch.types import LweBatch
from repro.tfhe.ggsw import FourierGgswCiphertext
from repro.tfhe.keys import BootstrappingKey, KeySwitchingKey, LweSecretKey
from repro.tfhe.lwe import LweCiphertext


def _check_params_match(stored_name: str, params: TFHEParameters) -> None:
    if stored_name != params.name:
        raise ValueError(
            f"file was written with parameter set {stored_name!r} but "
            f"{params.name!r} was supplied"
        )


# -- LWE ciphertexts -------------------------------------------------------------


def save_lwe_ciphertexts(path: str | Path, ciphertexts: list[LweCiphertext]) -> None:
    """Save a batch of LWE ciphertexts sharing one parameter set."""
    if not ciphertexts:
        raise ValueError("cannot save an empty ciphertext batch")
    params = ciphertexts[0].params
    dimensions = {ct.dimension for ct in ciphertexts}
    if len(dimensions) != 1:
        raise ValueError(f"ciphertexts have mixed dimensions: {sorted(dimensions)}")
    masks = np.stack([ct.mask for ct in ciphertexts])
    bodies = np.array([ct.body for ct in ciphertexts], dtype=np.int64)
    np.savez_compressed(Path(path), masks=masks, bodies=bodies, parameter_set=params.name)


def load_lwe_ciphertexts(path: str | Path, params: TFHEParameters) -> list[LweCiphertext]:
    """Load a batch of LWE ciphertexts saved by :func:`save_lwe_ciphertexts`."""
    with np.load(Path(path), allow_pickle=False) as data:
        _check_params_match(str(data["parameter_set"]), params)
        masks = data["masks"]
        bodies = data["bodies"]
    return [
        LweCiphertext(masks[index], int(bodies[index]), params)
        for index in range(masks.shape[0])
    ]


# -- LWE ciphertexts, bytes level ------------------------------------------------

#: Leading magic of the in-memory LWE batch encoding (versioned separately
#: from the ``.npz`` files: the wire format must stay byte-stable).
LWE_WIRE_MAGIC = b"LWE1"

#: Fixed header of the bytes-level encoding: magic, parameter-set name
#: length, ciphertext count, LWE dimension.
_LWE_WIRE_HEADER = struct.Struct("!4sHII")


def lwe_to_bytes(ciphertexts: list[LweCiphertext]) -> bytes:
    """Encode a batch of LWE ciphertexts as one contiguous byte string.

    The bytes-level sibling of :func:`save_lwe_ciphertexts` for transports
    that are not files — network frames, shared memory, message queues.  The
    layout is deliberately raw (no compression, fixed little-endian
    ``int64`` arrays) so the encoding is byte-deterministic and the size is
    exactly ``header + count * (dimension + 1) * 8`` — the quantity the
    serving tier's interconnect model already reasons about.
    """
    if not ciphertexts:
        raise ValueError("cannot encode an empty ciphertext batch")
    params = ciphertexts[0].params
    dimensions = {ct.dimension for ct in ciphertexts}
    if len(dimensions) != 1:
        raise ValueError(f"ciphertexts have mixed dimensions: {sorted(dimensions)}")
    name = params.name.encode("utf-8")
    masks = np.stack([ct.mask for ct in ciphertexts]).astype("<i8", copy=False)
    bodies = np.array([ct.body for ct in ciphertexts], dtype="<i8")
    header = _LWE_WIRE_HEADER.pack(
        LWE_WIRE_MAGIC, len(name), len(ciphertexts), ciphertexts[0].dimension
    )
    return header + name + masks.tobytes() + bodies.tobytes()


def lwe_from_bytes(data: bytes, params: TFHEParameters) -> list[LweCiphertext]:
    """Decode a batch encoded by :func:`lwe_to_bytes`.

    Rejects wrong magic, a parameter-set mismatch and truncated or oversized
    payloads with :class:`ValueError` — the checks the network codec relies
    on to turn corrupt frames into typed protocol errors.
    """
    view = memoryview(data)
    if len(view) < _LWE_WIRE_HEADER.size:
        raise ValueError("LWE byte batch is truncated before its header ends")
    magic, name_length, count, dimension = _LWE_WIRE_HEADER.unpack_from(view, 0)
    if magic != LWE_WIRE_MAGIC:
        raise ValueError(f"bad LWE batch magic {bytes(magic)!r}")
    offset = _LWE_WIRE_HEADER.size
    if len(view) < offset + name_length:
        raise ValueError("LWE byte batch is truncated inside its parameter name")
    stored_name = bytes(view[offset : offset + name_length]).decode("utf-8")
    _check_params_match(stored_name, params)
    offset += name_length
    expected = offset + count * (dimension + 1) * 8
    if len(view) != expected:
        raise ValueError(
            f"LWE byte batch has {len(view)} bytes but the header implies {expected}"
        )
    masks = np.frombuffer(
        view, dtype="<i8", count=count * dimension, offset=offset
    ).reshape(count, dimension)
    bodies = np.frombuffer(view, dtype="<i8", count=count, offset=offset + count * dimension * 8)
    return [
        LweCiphertext(masks[index], int(bodies[index]), params) for index in range(count)
    ]


# -- stacked LWE batches, bytes level ---------------------------------------------

#: Leading magic of the stacked :class:`~repro.tfhe.batch.LweBatch` encoding.
LWE_BATCH_WIRE_MAGIC = b"LWB1"

#: Fixed header of the stacked encoding: magic, parameter-set name length,
#: batch size, LWE dimension — the same fields as the per-ciphertext wire
#: header, so the two formats are distinguishable by magic alone.
_LWE_BATCH_WIRE_HEADER = struct.Struct("!4sHII")


def lwe_batch_to_bytes(batch: LweBatch) -> bytes:
    """Encode an :class:`~repro.tfhe.batch.LweBatch` as one byte string.

    The stacked sibling of :func:`lwe_to_bytes`: instead of restacking a
    list of scalar ciphertexts, the batch's existing ``(batch, dim)`` mask
    array and ``(batch,)`` body vector are laid out as **one** contiguous
    little-endian ``(batch, dim + 1)`` ``int64`` array (each row is a mask
    followed by its body), so encoding a vectorized pipeline's output is a
    single copy.  The size is exactly ``header + batch * (dim + 1) * 8``.
    """
    params = batch.params
    name = params.name.encode("utf-8")
    stacked = np.empty((len(batch), batch.dimension + 1), dtype="<i8")
    stacked[:, :-1] = batch.masks
    stacked[:, -1] = batch.bodies
    header = _LWE_BATCH_WIRE_HEADER.pack(
        LWE_BATCH_WIRE_MAGIC, len(name), len(batch), batch.dimension
    )
    return header + name + stacked.tobytes()


def lwe_batch_from_bytes(data: bytes, params: TFHEParameters) -> LweBatch:
    """Decode an :class:`~repro.tfhe.batch.LweBatch` from :func:`lwe_batch_to_bytes`.

    Applies the same defensive checks as :func:`lwe_from_bytes`: wrong
    magic, parameter-set mismatch and truncated or oversized payloads all
    raise :class:`ValueError`.
    """
    view = memoryview(data)
    if len(view) < _LWE_BATCH_WIRE_HEADER.size:
        raise ValueError("LWE batch bytes are truncated before the header ends")
    magic, name_length, count, dimension = _LWE_BATCH_WIRE_HEADER.unpack_from(view, 0)
    if magic != LWE_BATCH_WIRE_MAGIC:
        raise ValueError(f"bad stacked LWE batch magic {bytes(magic)!r}")
    offset = _LWE_BATCH_WIRE_HEADER.size
    if len(view) < offset + name_length:
        raise ValueError("LWE batch bytes are truncated inside the parameter name")
    stored_name = bytes(view[offset : offset + name_length]).decode("utf-8")
    _check_params_match(stored_name, params)
    offset += name_length
    expected = offset + count * (dimension + 1) * 8
    if len(view) != expected:
        raise ValueError(
            f"LWE batch has {len(view)} bytes but the header implies {expected}"
        )
    stacked = np.frombuffer(
        view, dtype="<i8", count=count * (dimension + 1), offset=offset
    ).reshape(count, dimension + 1)
    return LweBatch(stacked[:, :-1], stacked[:, -1], params)


# -- evaluation keys ---------------------------------------------------------------


def save_bootstrapping_key(path: str | Path, key: BootstrappingKey) -> None:
    """Save a Fourier-domain bootstrapping key."""
    spectra = np.stack([ggsw.spectra for ggsw in key.ggsw_list])
    np.savez_compressed(Path(path), spectra=spectra, parameter_set=key.params.name)


def load_bootstrapping_key(path: str | Path, params: TFHEParameters) -> BootstrappingKey:
    """Load a bootstrapping key saved by :func:`save_bootstrapping_key`."""
    with np.load(Path(path), allow_pickle=False) as data:
        _check_params_match(str(data["parameter_set"]), params)
        spectra = data["spectra"]
    ggsw_list = [FourierGgswCiphertext(spectra[index], params) for index in range(spectra.shape[0])]
    return BootstrappingKey(ggsw_list, params)


def save_keyswitching_key(path: str | Path, key: KeySwitchingKey) -> None:
    """Save a keyswitching key."""
    np.savez_compressed(Path(path), ciphertexts=key.ciphertexts, parameter_set=key.params.name)


def load_keyswitching_key(path: str | Path, params: TFHEParameters) -> KeySwitchingKey:
    """Load a keyswitching key saved by :func:`save_keyswitching_key`."""
    with np.load(Path(path), allow_pickle=False) as data:
        _check_params_match(str(data["parameter_set"]), params)
        ciphertexts = data["ciphertexts"]
    return KeySwitchingKey(ciphertexts, params)


# -- secret keys (explicit) -----------------------------------------------------------


def save_lwe_secret_key(path: str | Path, key: LweSecretKey) -> None:
    """Save an LWE secret key.  Handle the resulting file as a secret."""
    np.savez_compressed(Path(path), bits=key.bits, parameter_set=key.params.name)


def load_lwe_secret_key(path: str | Path, params: TFHEParameters) -> LweSecretKey:
    """Load an LWE secret key saved by :func:`save_lwe_secret_key`."""
    with np.load(Path(path), allow_pickle=False) as data:
        _check_params_match(str(data["parameter_set"]), params)
        bits = data["bits"]
    return LweSecretKey(bits, params)


# -- size accounting -------------------------------------------------------------------


def serialized_sizes(params: TFHEParameters) -> dict[str, int]:
    """Nominal serialized sizes (bytes) of the main objects for a parameter set.

    These are the uncompressed, in-memory sizes — the quantities the paper's
    Table I and the Strix memory system reason about.
    """
    return {
        "lwe_ciphertext": params.lwe_ciphertext_bytes,
        "glwe_ciphertext": params.glwe_ciphertext_bytes,
        "ggsw_ciphertext": params.ggsw_ciphertext_bytes,
        "bootstrapping_key": params.bootstrapping_key_fourier_bytes,
        "keyswitching_key": params.keyswitching_key_bytes,
    }
