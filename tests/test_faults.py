"""Chaos property suite for the fault-injection subsystem (Seam 7).

Three invariants, pinned across layouts, policies and seeded random fault
mixes:

* **determinism** — same seed, same schedule: the :class:`ServeReport` is
  bit-for-bit identical across runs, on every layout;
* **conservation** — ``completed + lost == submitted`` under every fault
  mix (no request silently vanishes, none is double-counted);
* **byte-identity** — an empty schedule, and a schedule whose every fault
  heals before the first batch flushes, leave the report byte-identical
  to a fault-free run.
"""

import asyncio
import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.traffic import steady_trace
from repro.faults import (
    ON_DEATH_POLICIES,
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultSchedule,
    RequestLostError,
)
from repro.serve import Server

LAYOUTS = ("data-parallel", "pipeline", "elastic")

RATE = 2000.0
DURATION = 0.1


def _trace(seed: int = 7):
    return steady_trace(rate_rps=RATE, duration_s=DURATION, seed=seed)


def _submitted(seed: int = 7) -> int:
    return len(_trace(seed))


def _report_blob(report) -> str:
    """Canonical JSON of everything the report observed (for bit-identity)."""
    return json.dumps(
        {
            "metrics": report.metrics.to_dict(),
            "outcomes": [
                (
                    outcome.request.request_id,
                    outcome.batch_id,
                    outcome.device,
                    outcome.dispatched_s,
                    outcome.completed_s,
                )
                for outcome in report.outcomes
            ],
        },
        sort_keys=True,
    )


def _serve(schedule, layout="data-parallel", on_death="retry", seed=7, **kw):
    server = Server(devices=4, layout=layout, faults=schedule, on_death=on_death, **kw)
    return server, server.simulate(_trace(seed), label="chaos")


MID_DEATH = FaultSchedule.of(FaultSchedule.death(device=1, at_s=DURATION / 2))


# -- schedule construction and queries ------------------------------------------------


def test_schedule_sorts_and_sizes():
    late = FaultSchedule.death(device=0, at_s=0.9)
    early = FaultSchedule.partition(device=1, at_s=0.1, heal_s=0.2)
    schedule = FaultSchedule.of(late, early)
    assert schedule.events == (early, late)
    assert len(schedule) == 2 and bool(schedule)
    assert not FaultSchedule.empty()
    assert len(FaultSchedule.empty()) == 0


def test_event_validation():
    with pytest.raises(ValueError):
        FaultEvent(FaultKind.DEVICE_DEATH, device=-1, inject_s=0.0)
    with pytest.raises(ValueError):
        FaultEvent(FaultKind.DEVICE_DEATH, device=0, inject_s=-1.0)
    with pytest.raises(ValueError):
        FaultEvent(FaultKind.DEVICE_DEATH, device=0, inject_s=0.5, heal_s=0.5)
    with pytest.raises(ValueError):
        FaultSchedule.slowdown(device=0, factor=1.0, at_s=0.0)
    with pytest.raises(ValueError):
        FaultEvent(FaultKind.DEVICE_DEATH, device=0, inject_s=0.0, slow_factor=2.0)
    # String kinds coerce.
    assert FaultEvent("death", 0, 0.0).kind is FaultKind.DEVICE_DEATH


def test_event_to_dict():
    death = FaultSchedule.death(device=2, at_s=0.25)
    assert death.to_dict() == {
        "kind": "death",
        "device": 2,
        "inject_s": 0.25,
        "heal_s": None,
    }
    slow = FaultSchedule.slowdown(device=1, factor=2.5, at_s=0.1, heal_s=0.2)
    assert slow.to_dict()["slow_factor"] == 2.5
    assert slow.to_dict()["heal_s"] == 0.2


def test_time_indexed_queries():
    schedule = FaultSchedule.of(
        FaultSchedule.death(device=1, at_s=0.1, heal_s=0.3),
        FaultSchedule.partition(device=2, at_s=0.2, heal_s=0.4),
        FaultSchedule.slowdown(device=0, factor=2.0, at_s=0.0, heal_s=0.5),
        FaultSchedule.slowdown(device=0, factor=3.0, at_s=0.1, heal_s=0.2),
    )
    assert not schedule.dead_at(1, 0.05)
    assert schedule.dead_at(1, 0.1) and schedule.dead_at(1, 0.29)
    assert not schedule.dead_at(1, 0.3)  # heal boundary is exclusive
    assert schedule.partitioned_at(2, 0.25)
    assert not schedule.placeable_at(2, 0.25)
    assert schedule.placeable_at(0, 0.25)  # slow devices still place
    assert schedule.available_indices(0.25, 4) == [0, 3]
    assert schedule.available_indices(0.45, 4) == [0, 1, 2, 3]
    # Overlapping slowdowns compose multiplicatively.
    assert schedule.slow_factor_at(0, 0.15) == pytest.approx(6.0)
    assert schedule.slow_factor_at(0, 0.45) == pytest.approx(2.0)
    assert schedule.slow_factor_at(0, 0.6) == 1.0


def test_first_available_s():
    schedule = FaultSchedule.of(
        FaultSchedule.death(device=0, at_s=0.1, heal_s=0.3),
        FaultSchedule.death(device=1, at_s=0.1, heal_s=0.2),
    )
    assert schedule.first_available_s(0.05, 2) == 0.05
    assert schedule.first_available_s(0.15, 2) == 0.2  # device 1 reboots first
    everyone = FaultSchedule.of(
        FaultSchedule.death(device=0, at_s=0.1),
        FaultSchedule.death(device=1, at_s=0.1),
    )
    assert everyone.first_available_s(0.15, 2) is None


def test_random_schedule_is_seeded():
    a = FaultSchedule.random(devices=4, duration_s=0.1, seed=11)
    b = FaultSchedule.random(devices=4, duration_s=0.1, seed=11)
    assert a == b
    assert a != FaultSchedule.random(devices=4, duration_s=0.1, seed=12)
    # Device 0 never permanently dies or partitions: a survivor always exists.
    for seed in range(50):
        schedule = FaultSchedule.random(devices=4, duration_s=0.1, seed=seed)
        assert schedule.first_available_s(1e9, 4) is not None


def test_injector_rejects_unknown_policy():
    with pytest.raises(ValueError, match="on_death"):
        FaultInjector(FaultSchedule.empty(), on_death="panic")
    assert set(ON_DEATH_POLICIES) == {"retry", "drop"}


# -- invariant: empty schedule is byte-identical ---------------------------------------


@pytest.mark.parametrize("layout", LAYOUTS)
def test_empty_schedule_is_byte_identical(layout):
    plain = Server(devices=4, layout=layout)
    base = plain.simulate(_trace(), label="chaos")
    _, faulted = _serve(FaultSchedule.empty(), layout=layout)
    assert _report_blob(base) == _report_blob(faulted)
    assert "availability" not in faulted.metrics.to_dict()


@pytest.mark.parametrize("layout", LAYOUTS)
def test_heal_before_first_flush_is_byte_identical(layout):
    """Satellite (c): a schedule healed before any batch flushes is a no-op."""
    ghost = FaultSchedule.of(
        FaultSchedule.death(device=1, at_s=1e-7, heal_s=2e-7),
        FaultSchedule.partition(device=2, at_s=1e-7, heal_s=2e-7),
        FaultSchedule.slowdown(device=3, factor=4.0, at_s=1e-7, heal_s=2e-7),
    )
    base = Server(devices=4, layout=layout).simulate(_trace(), label="chaos")
    _, faulted = _serve(ghost, layout=layout)
    assert _report_blob(base) == _report_blob(faulted)
    assert faulted.metrics.availability == {}


# -- invariant: determinism ------------------------------------------------------------


@pytest.mark.parametrize("on_death", ON_DEATH_POLICIES)
@pytest.mark.parametrize("layout", LAYOUTS)
def test_same_seed_same_schedule_bitwise_identical(layout, on_death):
    schedule = FaultSchedule.of(
        FaultSchedule.death(device=1, at_s=DURATION / 2),
        FaultSchedule.slowdown(device=0, factor=2.0, at_s=0.01, heal_s=0.05),
        FaultSchedule.partition(device=3, at_s=0.02, heal_s=0.06),
    )
    _, first = _serve(schedule, layout=layout, on_death=on_death)
    _, second = _serve(schedule, layout=layout, on_death=on_death)
    assert _report_blob(first) == _report_blob(second)


# -- invariant: conservation -----------------------------------------------------------


def _assert_conserved(report, submitted):
    lost = report.metrics.availability.get("requests_lost", 0)
    assert len(report.outcomes) + lost == submitted
    assert report.metrics.requests == len(report.outcomes)


@pytest.mark.parametrize("on_death", ON_DEATH_POLICIES)
@pytest.mark.parametrize("layout", LAYOUTS)
@pytest.mark.parametrize("fault_seed", range(6))
def test_conservation_under_random_faults(layout, on_death, fault_seed):
    schedule = FaultSchedule.random(
        devices=4, duration_s=DURATION, seed=fault_seed, events=4
    )
    _, report = _serve(schedule, layout=layout, on_death=on_death)
    _assert_conserved(report, _submitted())


@settings(max_examples=20, deadline=None, derandomize=True)
@given(fault_seed=st.integers(min_value=0, max_value=10**6))
def test_conservation_hypothesis_sweep(fault_seed):
    schedule = FaultSchedule.random(
        devices=4, duration_s=DURATION, seed=fault_seed, events=5
    )
    _, report = _serve(schedule, on_death="drop")
    _assert_conserved(report, _submitted())


# -- death semantics -------------------------------------------------------------------


def test_retry_replays_and_drop_loses():
    _, retried = _serve(MID_DEATH, on_death="retry")
    assert len(retried.outcomes) == _submitted()
    availability = retried.metrics.availability
    assert availability["requests_lost"] == 0
    assert availability["requests_retried"] > 0
    assert availability["batches_retried"] > 0

    _, dropped = _serve(MID_DEATH, on_death="drop")
    availability = dropped.metrics.availability
    assert availability["requests_lost"] > 0
    assert availability["requests_retried"] == 0
    assert len(dropped.outcomes) == _submitted() - availability["requests_lost"]


def test_dead_device_rejects_placement():
    _, report = _serve(MID_DEATH)
    inject = MID_DEATH.events[0].inject_s
    for outcome in report.outcomes:
        if outcome.dispatched_s >= inject:
            assert outcome.device != 1


def test_availability_block_shape():
    _, report = _serve(MID_DEATH)
    availability = report.metrics.availability
    assert availability["degraded_s"] > 0
    events = availability["events"]
    assert len(events) == 1
    event = events[0]
    assert event["kind"] == "death" and event["device"] == 1
    assert event["recovery_s"] > 0
    assert event["heal_s"] is None
    # The block survives JSON round-trips (what BENCH records embed).
    assert json.loads(json.dumps(availability)) == availability


def test_all_devices_dead_loses_the_tail():
    graveyard = FaultSchedule.of(
        *(FaultSchedule.death(device=index, at_s=DURATION / 2) for index in range(4))
    )
    _, report = _serve(graveyard, on_death="retry")
    availability = report.metrics.availability
    assert availability["requests_lost"] > 0
    _assert_conserved(report, _submitted())
    # Lost work never reaches the serving counters.
    assert report.metrics.requests == len(report.outcomes)


def test_death_heal_return_serves_again():
    reboot = FaultSchedule.of(
        FaultSchedule.death(device=1, at_s=0.03, heal_s=0.05)
    )
    _, report = _serve(reboot)
    _assert_conserved(report, _submitted())
    assert any(
        outcome.device == 1
        for outcome in report.outcomes
        if outcome.dispatched_s >= 0.05
    )


def test_orphan_reship_attributed_once():
    """Keys lost with every replica re-ship once and bill the causing event."""
    # Both devices die together and reboot together: the tenant's keys are
    # orphaned everywhere, so the first placement after the heal must pay
    # exactly one key-set re-ship, attributed to one death, not both.
    outage = FaultSchedule.of(
        FaultSchedule.death(device=0, at_s=0.03, heal_s=0.05),
        FaultSchedule.death(device=1, at_s=0.03, heal_s=0.05),
    )
    server = Server(devices=2, faults=outage)
    trace = steady_trace(rate_rps=RATE, duration_s=DURATION, seed=7, tenants=1)
    report = server.simulate(trace, label="chaos")
    lost = report.metrics.availability.get("requests_lost", 0)
    assert len(report.outcomes) + lost == len(trace)
    key_bytes = server.cluster.interconnect.key_set_bytes(server.params)
    availability = report.metrics.availability
    assert availability["key_reship_bytes"] == key_bytes
    assert sum(
        event["reship_bytes"] for event in availability["events"]
    ) == key_bytes


# -- slow-device semantics -------------------------------------------------------------


def test_slowdown_inflates_latency_and_accounts_extra():
    slow = FaultSchedule.of(
        FaultSchedule.slowdown(device=0, factor=3.0, at_s=0.0, heal_s=0.05)
    )
    base = Server(devices=4).simulate(_trace(), label="chaos")
    _, throttled = _serve(slow)
    assert len(throttled.outcomes) == _submitted()
    availability = throttled.metrics.availability
    assert availability["throttle_extra_s"] > 0
    assert availability["requests_lost"] == 0
    assert throttled.metrics.latency.p99_s > base.metrics.latency.p99_s
    event = availability["events"][0]
    assert event["throttled_batches"] > 0
    assert event["throttle_extra_s"] == pytest.approx(
        availability["throttle_extra_s"]
    )


# -- partition semantics ---------------------------------------------------------------


def test_partition_excludes_placement_but_keeps_keys():
    window = (0.03, 0.07)
    part = FaultSchedule.of(FaultSchedule.partition(device=1, at_s=window[0], heal_s=window[1]))
    server, report = _serve(part)
    _assert_conserved(report, _submitted())
    for outcome in report.outcomes:
        if window[0] <= outcome.dispatched_s < window[1]:
            assert outcome.device != 1
    # The healed device rejoins warm: no eviction happened, so nothing was
    # orphaned and no re-shipping is attributed.
    assert report.metrics.availability.get("key_reship_bytes", 0) == 0
    assert server.cluster.faults._deaths_applied == set()


# -- layout-specific degraded modes ----------------------------------------------------


def test_pipeline_recuts_stages_across_survivors():
    server, report = _serve(MID_DEATH, layout="pipeline")
    _assert_conserved(report, _submitted())
    tracer = Server(devices=4, layout="pipeline", faults=MID_DEATH)
    watcher = tracer.enable_tracing()
    tracer.simulate(_trace(), label="chaos")
    inject = MID_DEATH.events[0].inject_s
    recut = [
        span
        for span in watcher.spans()
        if span.execute_s is not None and span.execute_s >= inject
    ]
    assert recut, "the trace must extend past the death"
    for span in recut:
        assert 1 not in span.devices
        assert len(span.stages) <= 3  # re-cut over the three survivors
    # The stage-plan cache holds both cuts: pre-death and post-death.
    assert server.cluster.layout.plan_cache_stats["entries"] >= 2


def test_elastic_backfills_dead_actives():
    """Deaths that push the active set below the floor provision spares."""
    from repro.serve import ElasticLayout

    deaths = FaultSchedule.of(
        FaultSchedule.death(device=0, at_s=DURATION / 2),
        FaultSchedule.death(device=1, at_s=DURATION / 2),
    )
    layout = ElasticLayout(min_devices=2)
    # Light load: backlog never triggers a scale-up, so the active set is
    # exactly the two devices the schedule kills — the backfill path, not
    # ordinary scaling, must replace them.
    trace = steady_trace(rate_rps=300, duration_s=DURATION, seed=7)
    server = Server(devices=4, layout=layout, faults=deaths)
    report = server.simulate(trace, label="chaos")
    lost = report.metrics.availability.get("requests_lost", 0)
    assert len(report.outcomes) + lost == len(trace)
    assert layout.backfills >= 1
    assert layout.runtime_stats["backfills"] == float(layout.backfills)
    assert 0 not in layout._active and 1 not in layout._active


# -- spans, registry and the async path ------------------------------------------------


def test_spans_annotate_retried_batches():
    server = Server(devices=4, faults=MID_DEATH, on_death="retry")
    tracer = server.enable_tracing()
    server.simulate(_trace(), label="chaos")
    spans = tracer.spans()
    assert any(span.retried for span in spans)
    assert not any(span.lost for span in spans)
    payload = next(span for span in spans if span.retried).to_dict()
    assert payload["retried"] is True and payload["lost"] is False


def test_spans_annotate_lost_batches():
    server = Server(devices=4, faults=MID_DEATH, on_death="drop")
    tracer = server.enable_tracing()
    server.simulate(_trace(), label="chaos")
    assert any(span.lost for span in tracer.spans())


def test_registry_exposes_fault_counters():
    server, _ = _serve(MID_DEATH)
    snapshot = server.metrics()
    assert snapshot["serve_faults_events_scheduled"] == 1.0
    assert snapshot["serve_faults_deaths_applied"] == 1.0
    assert snapshot["serve_faults_batches_retried"] >= 1.0
    # Fault-free servers emit no serve_faults samples at all.
    plain = Server(devices=4)
    plain.simulate(_trace(), label="chaos")
    assert not any(key.startswith("serve_faults") for key in plain.metrics())


def test_async_drop_raises_request_lost():
    dead_on_arrival = FaultSchedule.of(FaultSchedule.death(device=0, at_s=0.0))

    async def scenario():
        async with Server(
            devices=1, faults=dead_on_arrival, on_death="drop"
        ) as server:
            with pytest.raises(RequestLostError):
                await server.submit_async("acme", "bootstrap", items=4)

    asyncio.run(scenario())


def test_wire_stats_carry_fault_state():
    """STATS over the wire is registry collect(); the faults view rides along."""
    from repro.net.client import AsyncNetClient
    from repro.net.server import NetServer

    async def scenario():
        async with NetServer(Server(devices=4, faults=MID_DEATH)) as net:
            host, port = net.address
            client = await AsyncNetClient.connect(host, port)
            try:
                return await client.stats()
            finally:
                await client.close()

    stats = asyncio.run(scenario())
    assert stats["serve_faults_events_scheduled"] == 1.0
    assert "serve_faults_requests_lost" in stats


def test_degraded_window_clips_to_horizon():
    """An unhealed death is degraded from injection to the horizon, not inf."""
    injector = FaultInjector(MID_DEATH)
    record = injector._impact(MID_DEATH.events[0])
    record["requests_lost"] = 1
    injector.requests_lost = 1
    block = injector.availability(DURATION)
    assert block["degraded_s"] == pytest.approx(DURATION - DURATION / 2)
    assert math.isfinite(block["degraded_s"])
    # Overlapping impact windows union, they do not double-count.
    both = FaultSchedule.of(
        FaultSchedule.death(device=1, at_s=0.02, heal_s=0.06),
        FaultSchedule.partition(device=2, at_s=0.04, heal_s=0.08),
    )
    injector = FaultInjector(both)
    for event in both.events:
        injector._impact(event)["requests_lost"] = 1
    injector.requests_lost = 2
    assert injector.availability(0.1)["degraded_s"] == pytest.approx(0.06)
