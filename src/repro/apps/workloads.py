"""Generic workload generators.

Small helpers that produce :class:`~repro.sim.graph.ComputationGraph`
instances for the microbenchmarks, the fragmentation study and the tests:
flat PBS batches (the Table V microbenchmark), chained LUT pipelines
(latency-sensitive workloads) and gate-level workloads with a configurable
mix of parallel and sequential stages.
"""

from __future__ import annotations

import numpy as np

from repro.params import TFHEParameters
from repro.sim.graph import ComputationGraph, ComputationNode, NodeKind


def pbs_batch_graph(
    params: TFHEParameters, ciphertexts: int, name: str | None = None
) -> ComputationGraph:
    """A single node bootstrapping ``ciphertexts`` independent LWEs.

    This is the PBS microbenchmark workload of Table V: throughput is
    measured with a large batch, latency with ``ciphertexts=1``.
    """
    graph = ComputationGraph(params, name=name or f"pbs-batch-{ciphertexts}")
    graph.add_pbs_layer("pbs", ciphertexts)
    return graph


def lut_pipeline_graph(
    params: TFHEParameters,
    stages: int,
    ciphertexts_per_stage: int,
    name: str | None = None,
) -> ComputationGraph:
    """A chain of dependent LUT (PBS) stages.

    Models latency-bound workloads such as an encrypted state machine: stage
    ``i+1`` cannot start before stage ``i`` finishes, so only
    ``ciphertexts_per_stage`` ciphertexts are ever available for batching.
    """
    graph = ComputationGraph(params, name=name or f"lut-pipeline-{stages}x{ciphertexts_per_stage}")
    previous = None
    for stage in range(stages):
        node_name = f"lut{stage}"
        graph.add_pbs_layer(
            node_name,
            ciphertexts_per_stage,
            depends_on=[previous] if previous else [],
        )
        previous = node_name
    return graph


def gate_workload_graph(
    params: TFHEParameters,
    gates: int,
    parallelism: int,
    name: str | None = None,
) -> ComputationGraph:
    """A gate-bootstrapping workload with a given average parallelism.

    ``gates`` gate bootstraps are grouped into sequential stages of
    ``parallelism`` independent gates each — a simple knob for studying how
    available test-vector level parallelism affects each platform.
    """
    if parallelism < 1:
        raise ValueError("parallelism must be at least 1")
    graph = ComputationGraph(params, name=name or f"gates-{gates}-p{parallelism}")
    remaining = gates
    previous = None
    stage = 0
    while remaining > 0:
        width = min(parallelism, remaining)
        node_name = f"gates{stage}"
        graph.add_pbs_layer(node_name, width, depends_on=[previous] if previous else [])
        previous = node_name
        remaining -= width
        stage += 1
    return graph


def random_layered_graph(
    params: TFHEParameters,
    levels: int,
    max_width: int,
    seed: int = 0,
    linear_fraction: float = 0.3,
) -> ComputationGraph:
    """A random layered workload mixing PBS and linear nodes (for tests)."""
    rng = np.random.default_rng(seed)
    graph = ComputationGraph(params, name=f"random-{levels}x{max_width}")
    previous_level: list[str] = []
    for level in range(levels):
        width = int(rng.integers(1, max_width + 1))
        current_level = []
        for index in range(width):
            name = f"n{level}_{index}"
            depends = list(previous_level) if previous_level else []
            if rng.random() < linear_fraction:
                graph.add_node(
                    ComputationNode(
                        name=name,
                        kind=NodeKind.LINEAR,
                        ciphertexts=int(rng.integers(1, 64)),
                        operations_per_ciphertext=int(rng.integers(1, 256)),
                        depends_on=depends,
                    )
                )
            else:
                graph.add_pbs_layer(name, int(rng.integers(1, 128)), depends_on=depends)
            current_level.append(name)
        previous_level = current_level
    return graph
