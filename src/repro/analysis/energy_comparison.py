"""Energy-efficiency comparison: joules per PBS on CPU, GPU and Strix.

Not a table in the paper, but the natural companion to Table III and Table V:
combining the power model with the throughput model gives energy per
bootstrapping, where Strix's advantage is even larger than its throughput
advantage because the chip draws a fraction of a GPU's board power.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.accelerator import StrixAccelerator
from repro.arch.energy import EnergyComparison, EnergyModel
from repro.params import PAPER_PARAMETER_SETS, TFHEParameters


@dataclass(frozen=True)
class EnergyStudy:
    """Energy per PBS across parameter sets and platforms."""

    rows: list[EnergyComparison]

    def render(self) -> str:
        """Render the comparison as text."""
        lines = ["Energy per PBS (mJ) — CPU vs GPU vs Strix"]
        lines.append(
            f"  {'Set':<4} {'CPU':>10} {'GPU':>10} {'Strix':>10} {'vs CPU':>9} {'vs GPU':>9}"
        )
        for row in self.rows:
            lines.append(
                f"  {row.parameter_set:<4} {row.cpu_mj:>10.1f} {row.gpu_mj:>10.1f} "
                f"{row.strix_mj:>10.3f} {row.gain_vs_cpu:>8.0f}x {row.gain_vs_gpu:>8.0f}x"
            )
        return "\n".join(lines)


def energy_comparison(
    parameter_sets: dict[str, TFHEParameters] | None = None,
    accelerator: StrixAccelerator | None = None,
) -> EnergyStudy:
    """Compare energy per PBS across the paper's parameter sets."""
    parameter_sets = parameter_sets or PAPER_PARAMETER_SETS
    model = EnergyModel(accelerator)
    rows = [model.compare_with_baselines(params) for params in parameter_sets.values()]
    return EnergyStudy(rows=rows)
