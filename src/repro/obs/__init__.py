"""repro.obs — observability for the serving stack.

Three pieces, all pure observation (enabling them never changes serving
behaviour — the test suite enforces byte-identical reports with tracing
on versus off):

* :mod:`repro.obs.trace` — :class:`Span`/:class:`Tracer`: one span per
  request with enqueue/admit/execute/complete/reply timestamps plus batch
  and device attribution, assembled from lifecycle hooks in the queue,
  batcher, cluster and net front-end.  Install with
  :meth:`repro.serve.Server.enable_tracing`.
* :mod:`repro.obs.metrics` — :class:`Counter`/:class:`Gauge`/
  :class:`Histogram` primitives behind a :class:`MetricsRegistry` that
  also *re-registers* the stack's historical counter dicts (key
  residency, schedule memo, stage-plan cache, wire) as live views;
  :meth:`MetricsRegistry.collect` is one flat snapshot,
  :meth:`MetricsRegistry.render_prometheus` the text exposition.
* :mod:`repro.obs.export` — JSONL span dumps and Chrome ``trace_event``
  timelines (open in ``chrome://tracing`` / Perfetto).

The live counterpart is :meth:`repro.serve.Server.watch` (periodic
per-tenant p99/backlog/utilization snapshots) and the net protocol's
``STATS`` frame (scrape a running :class:`repro.net.NetServer` over the
wire).  See ``docs/observability.md``.
"""

from repro.obs.export import (
    chrome_trace,
    spans_to_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    Metric,
    MetricsRegistry,
)
from repro.obs.trace import Span, StageSpan, Tracer

__all__ = [
    "DEFAULT_LATENCY_BUCKETS_S",
    "Counter",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricsRegistry",
    "Span",
    "StageSpan",
    "Tracer",
    "chrome_trace",
    "spans_to_jsonl",
    "write_chrome_trace",
    "write_jsonl",
]
