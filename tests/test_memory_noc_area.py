"""Tests for the memory system, NoC and area/power models."""

from __future__ import annotations

import pytest

from repro.arch.area_power import AreaPowerModel
from repro.arch.config import STRIX_DEFAULT, STRIX_UNFOLDED, StrixConfig
from repro.arch.hsc import HomomorphicStreamingCore
from repro.arch.memory import (
    GlobalScratchpad,
    HBMModel,
    LocalScratchpad,
    FOURIER_POINT_BYTES,
)
from repro.arch.noc import MulticastNetwork, NocCost, PointToPointNetwork
from repro.params import PAPER_PARAMETER_SETS, PARAM_SET_I, PARAM_SET_IV


class TestLocalScratchpad:
    def test_capacity_split(self):
        scratchpad = LocalScratchpad(STRIX_DEFAULT)
        assert scratchpad.capacity_bytes == int(0.625 * 2 ** 20)
        assert scratchpad.pbs_capacity_bytes + scratchpad.keyswitch_capacity_bytes == scratchpad.capacity_bytes

    def test_core_batch_decreases_with_degree(self):
        scratchpad = LocalScratchpad(STRIX_DEFAULT)
        batches = [scratchpad.core_batch_size(PAPER_PARAMETER_SETS[name]) for name in ("I", "III", "IV")]
        assert batches[0] > batches[1] > batches[2] >= 1

    def test_accumulator_bytes(self):
        scratchpad = LocalScratchpad(STRIX_DEFAULT)
        assert scratchpad.accumulator_bytes(PARAM_SET_I) == 2 * 1024 * 4


class TestGlobalScratchpad:
    def test_bsk_fragment_bytes_set_i(self):
        scratchpad = GlobalScratchpad(STRIX_DEFAULT)
        expected = (1 + 1) * 2 * (1 + 1) * 512 * FOURIER_POINT_BYTES
        assert scratchpad.bootstrapping_key_fragment_bytes(PARAM_SET_I) == expected

    def test_unfolded_fragment_twice_as_large(self):
        folded = GlobalScratchpad(STRIX_DEFAULT)
        unfolded = GlobalScratchpad(STRIX_UNFOLDED)
        assert (
            unfolded.bootstrapping_key_fragment_bytes(PARAM_SET_I)
            == 2 * folded.bootstrapping_key_fragment_bytes(PARAM_SET_I)
        )

    def test_double_buffering_fits_for_all_paper_sets(self):
        scratchpad = GlobalScratchpad(STRIX_DEFAULT)
        for params in PAPER_PARAMETER_SETS.values():
            assert scratchpad.fits_double_buffered(params), params.name

    def test_keyswitching_key_matches_params(self):
        scratchpad = GlobalScratchpad(STRIX_DEFAULT)
        assert (
            scratchpad.keyswitching_key_bytes(PARAM_SET_I)
            == PARAM_SET_I.keyswitching_key_bytes
        )


class TestHbmModel:
    @pytest.fixture(scope="class")
    def hbm(self):
        return HBMModel(STRIX_DEFAULT)

    @pytest.fixture(scope="class")
    def core(self):
        return HomomorphicStreamingCore(STRIX_DEFAULT)

    def test_demand_components_positive(self, hbm, core):
        timing = core.pipeline_timing(PARAM_SET_I)
        demand = hbm.bandwidth_demand(PARAM_SET_I, timing.initiation_interval)
        assert demand.bootstrapping_key > 0
        assert demand.keyswitching_key > 0
        assert demand.ciphertexts > 0
        assert demand.total == pytest.approx(
            demand.bootstrapping_key + demand.keyswitching_key + demand.ciphertexts
        )

    def test_bootstrapping_key_dominates(self, hbm, core):
        """The paper's Fig. 8: HBM traffic is primarily bsk during blind rotation."""
        timing = core.pipeline_timing(PARAM_SET_I)
        demand = hbm.bandwidth_demand(PARAM_SET_I, timing.initiation_interval)
        assert demand.bootstrapping_key > demand.keyswitching_key
        assert demand.bootstrapping_key > demand.ciphertexts

    def test_default_design_point_compute_bound(self, hbm, core):
        for params in PAPER_PARAMETER_SETS.values():
            timing = core.pipeline_timing(params)
            demand = hbm.bandwidth_demand(params, timing.initiation_interval)
            assert not hbm.is_memory_bound(demand), params.name

    def test_shorter_iterations_raise_demand(self, hbm):
        low = hbm.bandwidth_demand(PARAM_SET_IV, 8192, core_batch=1)
        high = hbm.bandwidth_demand(PARAM_SET_IV, 1024, core_batch=1)
        assert high.bootstrapping_key > low.bootstrapping_key

    def test_compute_scaling_capped_at_one(self, hbm, core):
        timing = core.pipeline_timing(PARAM_SET_I)
        demand = hbm.bandwidth_demand(PARAM_SET_I, timing.initiation_interval)
        assert hbm.compute_scaling(demand) == 1.0

    def test_memory_bound_scaling_below_one(self):
        config = STRIX_DEFAULT.with_parallelism(tvlp=1, clp=32)
        hbm = HBMModel(config)
        core = HomomorphicStreamingCore(config)
        timing = core.pipeline_timing(PARAM_SET_IV)
        demand = hbm.bandwidth_demand(PARAM_SET_IV, timing.initiation_interval)
        assert hbm.is_memory_bound(demand)
        assert hbm.compute_scaling(demand) < 1.0


class TestNoc:
    def test_bsk_bus_matches_paper_width(self):
        noc = MulticastNetwork(STRIX_DEFAULT)
        assert noc.bsk_link.width_bits == 512
        assert noc.ksk_link.width_bits == 256

    def test_bsk_bus_sustains_pbs_with_core_level_batching(self):
        """With the core-level batch streaming through each iteration, the
        512-bit multicast bus delivers the next GGSW fragment in time."""
        noc = MulticastNetwork(STRIX_DEFAULT)
        core = HomomorphicStreamingCore(STRIX_DEFAULT)
        for params in PAPER_PARAMETER_SETS.values():
            timing = core.pipeline_timing(params)
            batch = max(core.core_batch_size(params), 3)
            iteration_cycles = batch * timing.initiation_interval
            assert noc.can_sustain_pbs(params, iteration_cycles), params.name

    def test_broadcast_cycles_rounds_up(self):
        noc = MulticastNetwork(STRIX_DEFAULT)
        assert noc.broadcast_cycles(65) == 2

    def test_point_to_point_links_one_per_core(self):
        network = PointToPointNetwork(STRIX_DEFAULT)
        assert len(network.links) == STRIX_DEFAULT.tvlp
        assert network.transfer_cycles(64) == 4

    def test_noc_cost_matches_table_iii(self):
        cost = NocCost()
        assert cost.area_mm2 == pytest.approx(0.04)
        assert cost.power_w == pytest.approx(0.01)

    def test_link_bandwidth(self):
        noc = MulticastNetwork(STRIX_DEFAULT)
        assert noc.bsk_link.bandwidth_gbps(1.2) == pytest.approx(76.8)


class TestAreaPower:
    def test_core_area_matches_table_iii(self):
        model = AreaPowerModel(STRIX_DEFAULT)
        _, area, power = model.core_cost()
        assert area == pytest.approx(9.38, rel=0.03)
        assert power == pytest.approx(6.21, rel=0.05)

    def test_chip_totals_match_table_iii(self):
        cost = AreaPowerModel(STRIX_DEFAULT).chip_cost()
        assert cost.total_area_mm2 == pytest.approx(141.37, rel=0.03)
        assert cost.total_power_w == pytest.approx(77.14, rel=0.05)

    def test_chip_is_much_smaller_than_ckks_accelerators(self):
        """Related-work claim: Strix needs ~26 MB on-chip memory and a die far
        below the ~418 mm^2 of CKKS accelerators."""
        cost = AreaPowerModel(STRIX_DEFAULT).chip_cost()
        assert cost.total_area_mm2 < 200
        onchip_mb = STRIX_DEFAULT.global_scratchpad_mb + 8 * STRIX_DEFAULT.local_scratchpad_mb
        assert onchip_mb == pytest.approx(26.0)

    def test_component_lookup(self):
        cost = AreaPowerModel(STRIX_DEFAULT).chip_cost()
        assert cost.component("Global scratchpad").area_mm2 == pytest.approx(51.4, rel=0.01)
        with pytest.raises(KeyError):
            cost.component("nonexistent")

    def test_table_rows_include_totals(self):
        cost = AreaPowerModel(STRIX_DEFAULT).chip_cost()
        names = [row[0] for row in cost.as_table()]
        assert "1 core" in names and "8 cores" in names and "Total" in names

    def test_unfolded_core_is_larger(self):
        folded = AreaPowerModel(STRIX_DEFAULT).chip_cost()
        unfolded = AreaPowerModel(STRIX_UNFOLDED).chip_cost()
        assert unfolded.core_area_mm2 > folded.core_area_mm2

    def test_fft_unit_area_accessor(self):
        model = AreaPowerModel(STRIX_DEFAULT)
        assert model.fft_unit_area() == pytest.approx(1.81, rel=0.05)

    def test_smaller_scratchpad_smaller_chip(self):
        small = StrixConfig(global_scratchpad_mb=10.0)
        assert (
            AreaPowerModel(small).chip_cost().total_area_mm2
            < AreaPowerModel(STRIX_DEFAULT).chip_cost().total_area_mm2
        )
