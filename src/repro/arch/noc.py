"""Network-on-chip model.

Strix uses two fixed-topology networks (Section IV-B): a one-to-all
**multicast** network distributing the bootstrapping / keyswitching keys from
the global scratchpad to every HSC, and **point-to-point** links between each
core and its private section of the global scratchpad.  Because both
patterns are fixed, the model only needs to check that the bus widths keep up
with the compute datapath and to account the (small) area/power cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import StrixConfig
from repro.params import TFHEParameters


@dataclass(frozen=True)
class NocLink:
    """One on-chip link: width in bits and words delivered per cycle."""

    name: str
    width_bits: int

    @property
    def bytes_per_cycle(self) -> int:
        """Payload bytes the link moves per clock cycle."""
        return self.width_bits // 8

    def bandwidth_gbps(self, clock_ghz: float) -> float:
        """Sustained bandwidth at the given clock in GB/s."""
        return self.bytes_per_cycle * clock_ghz


class MulticastNetwork:
    """Fixed multicast tree distributing key material to all HSCs."""

    #: Bus widths from Section VI-A: 512-bit bsk bus, 256-bit ksk bus.
    BSK_BUS_BITS = 512
    KSK_BUS_BITS = 256

    def __init__(self, config: StrixConfig):
        self.config = config
        self.bsk_link = NocLink("bsk-multicast", self.BSK_BUS_BITS)
        self.ksk_link = NocLink("ksk-multicast", self.KSK_BUS_BITS)

    def bsk_words_per_cycle(self) -> int:
        """Fourier-domain bsk points (8 bytes each) delivered per cycle."""
        return self.bsk_link.bytes_per_cycle // 8

    def can_sustain_pbs(self, params: TFHEParameters, iteration_cycles: int) -> bool:
        """Whether one GGSW fragment can be broadcast within one iteration."""
        points = params.N // 2 if self.config.fft_folding else params.N
        fragment_points = (params.k + 1) * params.lb * (params.k + 1) * points
        cycles_needed = fragment_points / max(self.bsk_words_per_cycle(), 1)
        return cycles_needed <= iteration_cycles

    def broadcast_cycles(self, payload_bytes: int) -> int:
        """Cycles to broadcast a payload on the bsk bus."""
        return -(-payload_bytes // self.bsk_link.bytes_per_cycle)


class PointToPointNetwork:
    """Per-core private links between cores and the global scratchpad."""

    LINK_BITS = 128

    def __init__(self, config: StrixConfig):
        self.config = config
        self.links = [NocLink(f"core-{i}", self.LINK_BITS) for i in range(config.tvlp)]

    def transfer_cycles(self, payload_bytes: int) -> int:
        """Cycles to move a payload over one private link."""
        per_cycle = self.LINK_BITS // 8
        return -(-payload_bytes // per_cycle)


@dataclass(frozen=True)
class NocCost:
    """Area / power footprint of the global NoC (Table III)."""

    area_mm2: float = 0.04
    power_w: float = 0.01
