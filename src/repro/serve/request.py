"""Client requests: the unit of work the serving layer coalesces.

A *request* is what one tenant submits in one call — "bootstrap these 32
ciphertexts", "run NN-20 on 4 encrypted samples" — deliberately much smaller
than the device×core epoch the accelerator wants to see.  The batcher's job
is to merge many of them; this module only defines the request itself, its
PBS cost model, and the per-request outcome the metrics layer consumes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class RequestKind(enum.Enum):
    """What a client asked the service to do."""

    ENCRYPT = "encrypt"
    GATE = "gate"
    BOOTSTRAP = "bootstrap"
    INFERENCE = "inference"


#: PBS executed per item for the fixed-cost kinds.  Encryption is host-side
#: (linear work only); a gate bootstrap and a PBS both cost one bootstrap per
#: item.  INFERENCE cost depends on the model and is resolved at submit time.
_FIXED_PBS_PER_ITEM = {
    RequestKind.ENCRYPT: 0,
    RequestKind.GATE: 1,
    RequestKind.BOOTSTRAP: 1,
}


def pbs_per_item(kind: RequestKind, model: str | None = None) -> int:
    """PBS cost of one item of a request kind.

    For ``INFERENCE`` the cost is the full PBS count of the named Deep-NN
    model (one item = one encrypted sample pushed through the network).
    """
    if kind is RequestKind.INFERENCE:
        if model is None:
            raise ValueError("inference requests need a model name (e.g. 'NN-20')")
        from repro.apps.deep_nn import ZAMA_DEEP_NN_MODELS

        try:
            return ZAMA_DEEP_NN_MODELS[model].pbs_count()
        except KeyError:
            raise KeyError(
                f"unknown Deep-NN model {model!r}; known models: "
                f"{sorted(ZAMA_DEEP_NN_MODELS)}"
            ) from None
    return _FIXED_PBS_PER_ITEM[kind]


@dataclass(frozen=True)
class Request:
    """One tenant submission awaiting batching.

    Attributes
    ----------
    request_id:
        Monotonically increasing id assigned at submission.
    tenant:
        Logical client the request belongs to (keys are per-tenant).
    kind:
        The requested operation.
    items:
        Independent ciphertexts (or encrypted samples for inference) the
        request covers — the batchable quantity.
    pbs_per_item:
        Bootstraps one item costs on the accelerator.
    arrival_s:
        Submission time on the serving clock.
    model:
        Deep-NN model name for ``INFERENCE`` requests, ``None`` otherwise.
    deadline_s:
        Absolute serving-clock time after which the result is worthless to
        the client, or ``None`` (no deadline).  The batcher drops expired
        requests at batch-assembly time — counted, never executed.
    """

    request_id: int
    tenant: str
    kind: RequestKind
    items: int
    pbs_per_item: int
    arrival_s: float
    model: str | None = None
    deadline_s: float | None = None

    def __post_init__(self) -> None:
        if self.items < 1:
            raise ValueError("a request must cover at least one item")
        if self.pbs_per_item < 0:
            raise ValueError("pbs_per_item cannot be negative")

    @property
    def total_pbs(self) -> int:
        """Bootstraps the whole request costs."""
        return self.items * self.pbs_per_item

    def expired(self, now_s: float) -> bool:
        """Whether the request's deadline has passed at ``now_s``."""
        return self.deadline_s is not None and now_s > self.deadline_s

    @classmethod
    def make(
        cls,
        request_id: int,
        tenant: str,
        kind: RequestKind | str,
        items: int = 1,
        arrival_s: float = 0.0,
        model: str | None = None,
        deadline_s: float | None = None,
    ) -> "Request":
        """Build a request, resolving the PBS cost of its kind."""
        resolved = RequestKind(kind) if isinstance(kind, str) else kind
        return cls(
            request_id=request_id,
            tenant=tenant,
            kind=resolved,
            items=items,
            pbs_per_item=pbs_per_item(resolved, model),
            arrival_s=arrival_s,
            model=model,
            deadline_s=deadline_s,
        )


@dataclass(frozen=True)
class RequestOutcome:
    """Where and when a request actually executed."""

    request: Request
    batch_id: int
    device: int
    dispatched_s: float
    completed_s: float

    @property
    def latency_s(self) -> float:
        """End-to-end latency the tenant observed (arrival to completion)."""
        return self.completed_s - self.request.arrival_s

    @property
    def queue_delay_s(self) -> float:
        """Time spent waiting for the batcher/devices before execution."""
        return self.dispatched_s - self.request.arrival_s
