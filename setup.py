"""Package metadata for the Strix reproduction (src/ layout).

``pip install -e .`` exposes :mod:`repro` without needing ``PYTHONPATH=src``.
The version is sourced from ``repro.__version__`` by parsing the file rather
than importing it, so installation does not require the dependencies.
"""

import re
from pathlib import Path

from setuptools import find_packages, setup

_INIT = Path(__file__).parent / "src" / "repro" / "__init__.py"
_VERSION = re.search(r'^__version__ = "([^"]+)"', _INIT.read_text(), re.MULTILINE).group(1)

setup(
    name="strix-repro",
    version=_VERSION,
    description=(
        "Reproduction of Strix (MICRO 2023): an end-to-end streaming FHE "
        "accelerator with two-level ciphertext batching — functional TFHE, "
        "cycle-level simulator, analytical baselines, and a unified runtime"
    ),
    long_description=(Path(__file__).parent / "README.md").read_text()
    if (Path(__file__).parent / "README.md").exists()
    else "",
    long_description_content_type="text/markdown",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
    extras_require={"test": ["pytest"]},
)
