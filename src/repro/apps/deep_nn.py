"""Zama Deep-NN models (the Fig. 7 application benchmark).

The paper evaluates the deep neural networks of Chillotti et al. [34]
("Programmable bootstrapping enables efficient homomorphic inference of deep
neural networks"): NN-20, NN-50 and NN-100.  The input is a 28x28 image with
every pixel encrypted individually; the first layer is a convolution with
10x11 kernels producing a [1, 2, 21, 20] output, every following layer is a
dense layer with 92 neurons, and every layer is followed by a ReLU evaluated
with one programmable bootstrap per activation.

This module provides both views of the workload:

* :func:`build_deep_nn_graph` — the computation graph consumed by the Strix
  scheduler and the CPU/GPU baseline models (what Fig. 7 needs);
* :class:`EncryptedMLP` — a small functional homomorphic inference path that
  actually runs on the TFHE substrate (quantized weights, LUT activations),
  exercised by the integration tests and the example scripts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Union

import numpy as np

from repro.params import TFHEParameters
from repro.sim.graph import ComputationGraph
from repro.tfhe.context import TFHEContext
from repro.tfhe.lut import LookUpTable, relu_lut
from repro.tfhe.lwe import LweCiphertext

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a runtime import cycle
    from repro.runtime.session import Session


@dataclass(frozen=True)
class DeepNNModel:
    """Shape description of one Zama Deep-NN model.

    Attributes
    ----------
    name:
        Model name (``"NN-20"`` ...).
    depth:
        Total number of layers (1 convolution + ``depth - 1`` dense layers).
    image_size:
        Input image side length (28 for MNIST).
    conv_kernel:
        Convolution kernel shape of the first layer.
    conv_output_shape:
        Output tensor shape of the first layer, ``[batch, ch, h, w]``.
    dense_neurons:
        Width of every dense layer.
    """

    name: str
    depth: int
    image_size: int = 28
    conv_kernel: tuple[int, int] = (10, 11)
    conv_output_shape: tuple[int, int, int, int] = (1, 2, 21, 20)
    dense_neurons: int = 92

    @property
    def input_ciphertexts(self) -> int:
        """Encrypted pixels of the input image."""
        return self.image_size * self.image_size

    @property
    def conv_activations(self) -> int:
        """Activations (and therefore PBS) after the convolution layer."""
        batch, channels, height, width = self.conv_output_shape
        return batch * channels * height * width

    @property
    def dense_layers(self) -> int:
        """Number of dense layers following the convolution."""
        return self.depth - 1

    def pbs_count(self) -> int:
        """Total programmable bootstraps of one inference."""
        return self.conv_activations + self.dense_layers * self.dense_neurons

    def linear_operations(self) -> int:
        """Total homomorphic multiply-accumulate operations of one inference."""
        kernel_ops = self.conv_kernel[0] * self.conv_kernel[1]
        conv_ops = self.conv_activations * kernel_ops
        first_dense_ops = self.dense_neurons * self.conv_activations
        other_dense_ops = (self.dense_layers - 1) * self.dense_neurons * self.dense_neurons
        return conv_ops + first_dense_ops + max(other_dense_ops, 0)


#: The three Deep-NN models of Fig. 7.
ZAMA_DEEP_NN_MODELS: dict[str, DeepNNModel] = {
    "NN-20": DeepNNModel("NN-20", depth=20),
    "NN-50": DeepNNModel("NN-50", depth=50),
    "NN-100": DeepNNModel("NN-100", depth=100),
}


def build_deep_nn_graph(model: DeepNNModel, params: TFHEParameters) -> ComputationGraph:
    """Build the computation graph of one Deep-NN inference.

    Every layer contributes one linear node (convolution or dense
    matrix-vector product) followed by one PBS node evaluating the ReLU of
    each activation; consecutive layers depend on each other, which is what
    limits batching to one layer's worth of ciphertexts.
    """
    graph = ComputationGraph(params, name=f"{model.name}/N={params.N}")
    kernel_ops = model.conv_kernel[0] * model.conv_kernel[1]
    graph.add_linear_layer("conv", model.conv_activations, kernel_ops)
    graph.add_pbs_layer("conv_relu", model.conv_activations, depends_on=["conv"])
    previous = "conv_relu"
    previous_width = model.conv_activations
    for layer in range(model.dense_layers):
        linear_name = f"dense{layer}"
        relu_name = f"dense{layer}_relu"
        graph.add_linear_layer(
            linear_name, model.dense_neurons, previous_width, depends_on=[previous]
        )
        graph.add_pbs_layer(relu_name, model.dense_neurons, depends_on=[linear_name])
        previous = relu_name
        previous_width = model.dense_neurons
    return graph


class EncryptedMLP:
    """A small functional homomorphic MLP running on the TFHE substrate.

    Weights are quantized to small signed integers and activations are kept
    in the TFHE message space; every layer computes an encrypted dot product
    (scalar multiplications and additions on LWE ciphertexts) followed by a
    programmable bootstrap that applies the activation LUT and rescales the
    accumulator back into the message range.  It is intentionally tiny — the
    full Zama models would take hours in pure Python — but it executes the
    exact same homomorphic operation sequence per neuron.

    ``context`` is anything with the encrypt / decrypt / ``apply_lut``
    surface: a :class:`~repro.tfhe.context.TFHEContext` or a key-owning
    :class:`~repro.runtime.session.Session`.
    """

    def __init__(
        self,
        context: Union[TFHEContext, "Session"],
        layer_sizes: list[int],
        weight_magnitude: int = 1,
        seed: int = 0,
    ):
        if len(layer_sizes) < 2:
            raise ValueError("an MLP needs at least an input and an output layer")
        self.context = context
        self.params = context.params
        self.layer_sizes = list(layer_sizes)
        rng = np.random.default_rng(seed)
        self.weights = [
            rng.integers(-weight_magnitude, weight_magnitude + 1, size=(n_out, n_in))
            for n_in, n_out in zip(layer_sizes[:-1], layer_sizes[1:])
        ]
        self.activation = self._scaled_relu()

    def _scaled_relu(self) -> LookUpTable:
        """ReLU composed with a wrap-to-range reduction for the accumulators."""
        return relu_lut(self.params)

    # -- plaintext reference ----------------------------------------------------------

    def forward_plaintext(self, inputs: list[int]) -> list[int]:
        """Reference inference emulating the torus arithmetic exactly.

        Intermediate values are tracked modulo ``2p`` (the full torus message
        range including the padding half) and the activation is evaluated
        with the negacyclic PBS semantics, so the reference matches the
        homomorphic pipeline even when a dot product overflows the nominal
        message range.
        """
        two_p = 2 * self.params.message_modulus
        values = list(inputs)
        for weight in self.weights:
            accumulated = []
            for row in weight:
                total = int(np.dot(row, values)) % two_p
                accumulated.append(self.activation.evaluate_torus(total))
            values = accumulated
        return values

    def infer_plaintext(self, inputs: list[int]) -> list[int]:
        """Plaintext reference of :meth:`infer` (outputs reduced modulo ``p``)."""
        p = self.params.message_modulus
        return [value % p for value in self.forward_plaintext(inputs)]

    # -- homomorphic inference ----------------------------------------------------------

    def forward_encrypted(self, ciphertexts: list[LweCiphertext]) -> list[LweCiphertext]:
        """Homomorphic inference: linear layers + one PBS per activation."""
        if len(ciphertexts) != self.layer_sizes[0]:
            raise ValueError(
                f"expected {self.layer_sizes[0]} input ciphertexts, got {len(ciphertexts)}"
            )
        activations = list(ciphertexts)
        for weight in self.weights:
            next_activations = []
            for row in weight:
                accumulator = None
                for coefficient, ciphertext in zip(row, activations):
                    if coefficient == 0:
                        continue
                    term = ciphertext.scalar_multiply(int(coefficient))
                    accumulator = term if accumulator is None else accumulator + term
                if accumulator is None:
                    accumulator = LweCiphertext.trivial(0, activations[0].dimension, self.params)
                next_activations.append(self.context.apply_lut(accumulator, self.activation))
            activations = next_activations
        return activations

    def infer(self, inputs: list[int]) -> list[int]:
        """Encrypt, run homomorphically and decrypt (round-trip helper)."""
        ciphertexts = [self.context.encrypt(value) for value in inputs]
        outputs = self.forward_encrypted(ciphertexts)
        return [self.context.decrypt(ciphertext) for ciphertext in outputs]
