"""Tests for the signed gadget decomposition (Equation 3 of the paper)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.params import PARAM_SET_I, TOY_PARAMETERS
from repro.tfhe import torus
from repro.tfhe.decomposition import (
    decompose,
    decompose_for_params,
    decompose_polynomial_list,
    decomposition_error_bound,
    recompose,
)

Q_BITS = 32
Q = 1 << Q_BITS


class TestDecompose:
    def test_digit_range(self, rng):
        values = rng.integers(0, Q, 1000)
        digits = decompose(values, levels=3, log2_base=8)
        base = 256
        assert digits.min() >= -(base // 2)
        assert digits.max() <= base // 2

    def test_output_shape(self, rng):
        values = rng.integers(0, Q, (4, 7))
        digits = decompose(values, levels=2, log2_base=10)
        assert digits.shape == (2, 4, 7)

    def test_reconstruction_error_within_bound(self, rng):
        levels, log2_base = 3, 8
        values = rng.integers(0, Q, 2000)
        digits = decompose(values, levels, log2_base)
        rebuilt = recompose(digits, log2_base)
        bound = decomposition_error_bound(levels, log2_base)
        error = torus.absolute_distance(values, rebuilt, Q)
        assert error.max() <= bound

    def test_exact_when_all_bits_kept(self, rng):
        values = rng.integers(0, Q, 500)
        digits = decompose(values, levels=4, log2_base=8)
        rebuilt = recompose(digits, log2_base=8)
        np.testing.assert_array_equal(rebuilt, values)

    def test_zero_decomposes_to_zero(self):
        digits = decompose(np.zeros(10, dtype=np.int64), levels=2, log2_base=10)
        assert not digits.any()

    def test_exact_multiple_of_gadget_is_single_digit(self):
        # q / B = the first gadget scale: decomposes to digit (1, 0, ...).
        value = np.array([Q >> 10], dtype=np.int64)
        digits = decompose(value, levels=2, log2_base=10)
        assert digits[0, 0] == 1
        assert digits[1, 0] == 0

    def test_too_many_levels_rejected(self):
        with pytest.raises(ValueError):
            decompose(np.zeros(4, dtype=np.int64), levels=5, log2_base=8)

    def test_decompose_for_params_selects_pbs_or_ks(self, rng):
        values = rng.integers(0, Q, 16)
        pbs_digits = decompose_for_params(values, TOY_PARAMETERS)
        ks_digits = decompose_for_params(values, TOY_PARAMETERS, keyswitch=True)
        assert pbs_digits.shape[0] == TOY_PARAMETERS.lb
        assert ks_digits.shape[0] == TOY_PARAMETERS.lk


class TestDecomposePolynomialList:
    def test_shape_and_ordering(self, rng):
        polys = rng.integers(0, Q, (3, 16))
        flat = decompose_polynomial_list(polys, levels=2, log2_base=8)
        assert flat.shape == (6, 16)
        reference = decompose(polys, levels=2, log2_base=8)
        # Row ordering is (poly0 level0, poly0 level1, poly1 level0, ...).
        np.testing.assert_array_equal(flat[0], reference[0, 0])
        np.testing.assert_array_equal(flat[1], reference[1, 0])
        np.testing.assert_array_equal(flat[2], reference[0, 1])

    def test_requires_2d_input(self):
        with pytest.raises(ValueError):
            decompose_polynomial_list(np.zeros(8, dtype=np.int64), 2, 8)


class TestDecompositionProperties:
    @given(st.integers(min_value=0, max_value=Q - 1))
    @settings(max_examples=300, deadline=None)
    def test_error_bound_holds_for_param_set_i(self, value):
        params = PARAM_SET_I
        digits = decompose(np.array([value], dtype=np.int64), params.lb, params.log2_base_pbs)
        rebuilt = int(recompose(digits, params.log2_base_pbs)[0])
        bound = decomposition_error_bound(params.lb, params.log2_base_pbs)
        assert int(torus.absolute_distance(value, rebuilt, Q)) <= bound

    @given(
        st.integers(min_value=0, max_value=Q - 1),
        st.integers(min_value=1, max_value=4),
        st.sampled_from([4, 6, 7, 8]),
    )
    @settings(max_examples=200, deadline=None)
    def test_error_bound_holds_for_arbitrary_bases(self, value, levels, log2_base):
        digits = decompose(np.array([value], dtype=np.int64), levels, log2_base)
        rebuilt = int(recompose(digits, log2_base)[0])
        bound = decomposition_error_bound(levels, log2_base)
        assert int(torus.absolute_distance(value, rebuilt, Q)) <= bound
        base = 1 << log2_base
        assert int(np.abs(digits).max()) <= base // 2

    @given(st.integers(min_value=0, max_value=Q - 1), st.integers(min_value=0, max_value=Q - 1))
    @settings(max_examples=100, deadline=None)
    def test_decomposition_is_deterministic(self, a, b):
        values = np.array([a, b], dtype=np.int64)
        first = decompose(values, 3, 6)
        second = decompose(values, 3, 6)
        np.testing.assert_array_equal(first, second)
