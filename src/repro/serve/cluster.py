"""A sharded multi-device Strix cluster.

One Strix chip saturates at ``TvLP × core-batch`` ciphertexts per epoch; the
serving tier the ROADMAP asks for needs more.  :class:`StrixCluster` models
``N`` identical chips behind one host with two execution paths:

* :meth:`run` — data-parallel sharding of one large workload: every node of
  the computation graph is split across the devices by the sharding policy,
  each device schedules its shard on its own cycle-level simulator, and the
  per-device :class:`~repro.sim.scheduler.ScheduleResult`s aggregate into a
  cluster-level :class:`~repro.runtime.result.RunResult` (latency = slowest
  device + dispatch overhead, with a straggler breakdown in the details).
* :meth:`dispatch` — the serving path: a flushed :class:`Batch` is shipped
  whole to one device (chosen by the policy) and occupies it for the batch's
  epoch-stream time; per-device busy horizons are the load signal the
  least-loaded policy reads.

With one device and the default (zero) dispatch overhead the sharded path
degenerates to the single-device simulator bit-for-bit, which is what ties
cluster results back to the paper's numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.accelerator import StrixAccelerator
from repro.arch.config import StrixClusterConfig, StrixConfig
from repro.arch.energy import EnergyModel
from repro.params import TFHEParameters
from repro.runtime.result import RunResult
from repro.runtime.workload import WorkloadLike, as_graph, as_netlist, resolve_params
from repro.serve.batcher import Batch
from repro.serve.sharding import ShardingPolicy, get_policy
from repro.sim.compiler import Netlist, compile_netlist
from repro.sim.graph import ComputationGraph, ComputationNode
from repro.sim.scheduler import StrixScheduler

#: Name under which the cluster registers in the runtime backend registry.
CLUSTER_BACKEND_NAME = "strix-cluster"

#: Bytes of one serialized LWE ciphertext (32-bit torus coefficients).
_BYTES_PER_COEFFICIENT = 4


@dataclass
class StrixDevice:
    """One chip of the cluster plus its serving-time state."""

    index: int
    accelerator: StrixAccelerator
    scheduler: StrixScheduler
    energy_model: EnergyModel
    #: Simulated time at which the device finishes its last accepted batch.
    busy_until: float = 0.0
    #: Accumulated busy seconds (for utilization over a horizon).
    busy_s: float = 0.0
    #: Serving batches and bootstraps this device executed.
    batches: int = 0
    pbs: int = 0

    def reset_serving_state(self) -> None:
        """Clear the busy horizon and counters between simulations."""
        self.busy_until = 0.0
        self.busy_s = 0.0
        self.batches = 0
        self.pbs = 0


@dataclass(frozen=True)
class DeviceShardResult:
    """One device's contribution to a sharded workload run."""

    device: int
    latency_s: float
    pbs: int
    epochs: int
    utilization: dict[str, float]
    energy_j: float


class StrixCluster:
    """``N`` simulated Strix devices behind one sharding scheduler."""

    def __init__(
        self,
        devices: int | None = None,
        policy: str | ShardingPolicy = "round-robin",
        config: StrixClusterConfig | None = None,
        device_config: StrixConfig | None = None,
    ):
        if config is None:
            config = StrixClusterConfig(
                devices=devices if devices is not None else 4,
                device=device_config if device_config is not None else StrixConfig(),
            )
        else:
            if device_config is not None:
                raise ValueError(
                    "pass either config (which carries the per-device "
                    "configuration) or device_config, not both"
                )
            if devices is not None and devices != config.devices:
                config = config.with_devices(devices)
        self.config = config
        self.policy = get_policy(policy)
        self.devices = [
            StrixDevice(
                index=index,
                accelerator=(accelerator := StrixAccelerator(config.device)),
                scheduler=StrixScheduler(accelerator),
                energy_model=EnergyModel(accelerator),
            )
            for index in range(config.devices)
        ]

    def __len__(self) -> int:
        return len(self.devices)

    # -- capacity ---------------------------------------------------------------

    def device_epoch_capacity(self, params: TFHEParameters) -> int:
        """Ciphertexts one device bootstraps per epoch (device × core batch)."""
        device = self.devices[0]
        return device.accelerator.config.tvlp * device.accelerator.core.core_batch_size(
            params
        )

    def epoch_capacity(self, params: TFHEParameters) -> int:
        """Ciphertexts the whole cluster bootstraps per epoch."""
        return len(self.devices) * self.device_epoch_capacity(params)

    # -- sharded workload execution ----------------------------------------------

    def run(
        self,
        workload: WorkloadLike,
        params: TFHEParameters | str | None = None,
        instances: int = 1,
    ) -> RunResult:
        """Execute one workload sharded across all devices.

        Netlists replicated over ``instances`` shard at instance granularity
        (each device compiles and schedules its share of independent
        instances); everything else lowers to a computation graph whose
        per-node ciphertexts are partitioned by the sharding policy.
        """
        if isinstance(workload, Netlist) and instances > 1:
            resolved = as_netlist(workload, params)
            shards = self._shard_netlist(resolved, instances)
            # compile_netlist names the full graph f"{name}-x{instances}";
            # match it without compiling the whole replicated netlist again.
            name = f"{resolved.name}-x{instances}"
            workload_params = resolved.params
        else:
            full_graph = as_graph(workload, params, instances)
            shards = self._shard_graph(full_graph)
            name = full_graph.name
            workload_params = full_graph.params
        return self._run_shards(name, workload_params, shards)

    def _shard_netlist(
        self, netlist: Netlist, instances: int
    ) -> list[ComputationGraph | None]:
        shares = self.policy.partition(instances, len(self.devices))
        return [
            compile_netlist(netlist, share) if share > 0 else None
            for share in shares
        ]

    def _shard_graph(self, graph: ComputationGraph) -> list[ComputationGraph | None]:
        """Split every node's ciphertexts across the devices.

        Zero-ciphertext nodes are kept in place (the epoch scheduler costs
        them at zero), so the dependency structure never needs rewiring and
        every device sees the same critical-path shape.
        """
        device_count = len(self.devices)
        shards = [
            ComputationGraph(graph.params, name=f"{graph.name}@dev{index}")
            for index in range(device_count)
        ]
        totals = [0] * device_count
        for node_index, node in enumerate(graph.nodes):
            shares = self.policy.partition(
                node.ciphertexts, device_count, offset=node_index
            )
            for device_index, share in enumerate(shares):
                totals[device_index] += share
                shards[device_index].add_node(
                    ComputationNode(
                        name=node.name,
                        kind=node.kind,
                        ciphertexts=share,
                        operations_per_ciphertext=node.operations_per_ciphertext,
                        depends_on=list(node.depends_on),
                    )
                )
        return [
            shard if total > 0 else None for shard, total in zip(shards, totals)
        ]

    def _run_shards(
        self,
        name: str,
        params: TFHEParameters,
        shards: list[ComputationGraph | None],
    ) -> RunResult:
        per_device: list[DeviceShardResult] = []
        utilization: dict[str, float] = {}
        for device, shard in zip(self.devices, shards):
            if shard is None:
                continue
            schedule = device.scheduler.run(shard)
            energy = device.energy_model.workload_energy_j(schedule.total_time_s)
            per_device.append(
                DeviceShardResult(
                    device=device.index,
                    latency_s=schedule.total_time_s,
                    pbs=schedule.total_pbs,
                    epochs=schedule.total_epochs,
                    utilization=dict(schedule.core_utilization),
                    energy_j=energy,
                )
            )
            for core, value in schedule.core_utilization.items():
                utilization[f"dev{device.index}/{core}"] = value

        latencies = [entry.latency_s for entry in per_device]
        slowest = max(latencies, default=0.0)
        mean_latency = sum(latencies) / len(latencies) if latencies else 0.0
        total_latency = slowest + self.config.dispatch_overhead_s
        total_energy = sum(entry.energy_j for entry in per_device)
        return RunResult(
            workload=name,
            backend=CLUSTER_BACKEND_NAME,
            parameter_set=params.name,
            latency_s=total_latency,
            pbs_count=sum(entry.pbs for entry in per_device),
            utilization=utilization,
            energy_j=total_energy,
            details={
                "devices": len(self.devices),
                "active_devices": len(per_device),
                "policy": self.policy.name,
                "epochs": sum(entry.epochs for entry in per_device),
                "per_device": per_device,
                "straggler": {
                    "slowest_s": slowest,
                    "mean_s": mean_latency,
                    "straggler_s": slowest - mean_latency,
                    "imbalance": slowest / mean_latency if mean_latency > 0 else 0.0,
                },
            },
        )

    # -- serving path ------------------------------------------------------------

    def batch_service_s(self, batch: Batch, params: TFHEParameters) -> float:
        """Time one device needs to execute a serving batch.

        Bootstraps stream through the device's epoch pipeline; PBS-free items
        (encryption requests) only cost host-side linear work on the vector
        pipeline; shipping the batch's ciphertexts to the device is charged
        against the cluster interconnect.
        """
        device = self.devices[0]
        config = device.accelerator.config
        pbs_s = device.accelerator.pbs_batch_time_ms(params, batch.total_pbs) / 1e3
        linear_items = sum(
            request.items for request in batch.requests if request.pbs_per_item == 0
        )
        linear_s = linear_items * params.n / StrixScheduler.linear_macs_per_second(config)
        transfer_bytes = batch.total_items * (params.n + 1) * _BYTES_PER_COEFFICIENT
        transfer_s = transfer_bytes / (self.config.interconnect_gbps * 1e9)
        return pbs_s + linear_s + transfer_s + self.config.dispatch_overhead_s

    def dispatch(
        self, batch: Batch, now: float, params: TFHEParameters
    ) -> tuple[int, float, float]:
        """Ship a batch to one device; returns ``(device, start_s, end_s)``."""
        busy_until = [device.busy_until for device in self.devices]
        index = self.policy.select(busy_until, batch)
        device = self.devices[index]
        start = max(now, device.busy_until)
        service = self.batch_service_s(batch, params)
        end = start + service
        device.busy_until = end
        device.busy_s += service
        device.batches += 1
        device.pbs += batch.total_pbs
        return index, start, end

    def reset_serving_state(self) -> None:
        """Clear every device's busy horizon and counters (and policy state),
        so repeated simulations on one cluster are deterministic."""
        for device in self.devices:
            device.reset_serving_state()
        self.policy.reset()

    def device_utilization(self, horizon_s: float) -> dict[str, float]:
        """Busy fraction of every device over a serving horizon."""
        if horizon_s <= 0:
            return {f"dev{device.index}": 0.0 for device in self.devices}
        return {
            f"dev{device.index}": min(device.busy_s / horizon_s, 1.0)
            for device in self.devices
        }


def resolve_cluster_params(
    params: TFHEParameters | str | None, default_name: str = "I"
) -> TFHEParameters:
    """Resolve the parameter set serving operates under (set I by default)."""
    resolved = resolve_params(params)
    if resolved is None:
        resolved = resolve_params(default_name)
    assert resolved is not None
    return resolved
