"""Sharding policies: how work spreads over the cluster's devices.

Two decisions are delegated to a policy:

* :meth:`ShardingPolicy.partition` — splitting one large workload's
  ciphertexts across **all** devices (data-parallel sharding of a
  computation graph);
* :meth:`ShardingPolicy.select` — picking **one** device for a flushed
  serving batch (each batch is a single device's epoch stream).

Three policies ship: ``round-robin`` (balanced splits, rotating dispatch),
``least-loaded`` (dispatch to the device that frees up first, partition by
available headroom) and ``affinity`` (tenant-sticky dispatch so a tenant's
bootstrapping keys stay resident on one device's HBM).
"""

from __future__ import annotations

import abc
import zlib

from repro.errors import UnknownPolicyError
from repro.serve.batcher import Batch


def _balanced_split(items: int, devices: int, offset: int = 0) -> list[int]:
    """Split ``items`` into ``devices`` near-equal shares.

    The remainder lands on consecutive devices starting at ``offset`` so
    repeated splits (one per graph node) do not pile every leftover
    ciphertext onto device 0.
    """
    base, remainder = divmod(items, devices)
    return [
        base + (1 if (index - offset) % devices < remainder else 0)
        for index in range(devices)
    ]


class ShardingPolicy(abc.ABC):
    """Strategy for partitioning and dispatching work across devices."""

    #: Registry name of the policy.
    name: str = ""

    @abc.abstractmethod
    def partition(self, items: int, devices: int, *, offset: int = 0) -> list[int]:
        """Per-device item counts for sharding one workload (sums to ``items``)."""

    @abc.abstractmethod
    def select(self, busy_until: list[float], batch: Batch) -> int:
        """Device index that should execute a flushed serving batch."""

    def reset(self) -> None:
        """Clear dispatch state between simulations (default: stateless)."""


class RoundRobinPolicy(ShardingPolicy):
    """Balanced partitioning; dispatch cycles through the devices in order."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def partition(self, items: int, devices: int, *, offset: int = 0) -> list[int]:
        return _balanced_split(items, devices, offset)

    def select(self, busy_until: list[float], batch: Batch) -> int:
        device = self._next % len(busy_until)
        self._next += 1
        return device

    def reset(self) -> None:
        self._next = 0


class LeastLoadedPolicy(ShardingPolicy):
    """Dispatch to the device that frees up first; partition evenly.

    For partitioning, identical devices have identical throughput, so the
    headroom-weighted split degenerates to the balanced split; the policy
    earns its name on the dispatch path, where device busy horizons diverge
    under uneven batch sizes.
    """

    name = "least-loaded"

    def partition(self, items: int, devices: int, *, offset: int = 0) -> list[int]:
        return _balanced_split(items, devices, offset)

    def select(self, busy_until: list[float], batch: Batch) -> int:
        return min(range(len(busy_until)), key=busy_until.__getitem__)


class AffinityPolicy(ShardingPolicy):
    """Tenant-sticky dispatch: one tenant's batches land on one device.

    Keeps a tenant's bootstrapping/keyswitching keys resident in a single
    device's HBM instead of replicating them cluster-wide.  Multi-tenant
    batches follow the first (oldest) request's tenant.  Partitioning a
    single large workload has no tenant axis, so it falls back to the
    balanced split.
    """

    name = "affinity"

    def partition(self, items: int, devices: int, *, offset: int = 0) -> list[int]:
        return _balanced_split(items, devices, offset)

    def select(self, busy_until: list[float], batch: Batch) -> int:
        tenant = batch.requests[0].tenant
        return zlib.crc32(tenant.encode()) % len(busy_until)


_POLICIES: dict[str, type[ShardingPolicy]] = {
    policy.name: policy
    for policy in (RoundRobinPolicy, LeastLoadedPolicy, AffinityPolicy)
}


def list_policies() -> list[str]:
    """Names of all sharding policies, sorted."""
    return sorted(_POLICIES)


def get_policy(policy: str | ShardingPolicy) -> ShardingPolicy:
    """Resolve a policy name (or pass an instance through).

    Raises :class:`~repro.errors.UnknownPolicyError` for unknown names —
    the shared did-you-mean shape (registered names listed, picklable,
    plain-sentence rendering), still a ``ValueError`` for historical
    callers.
    """
    if isinstance(policy, ShardingPolicy):
        return policy
    try:
        return _POLICIES[policy]()
    except KeyError:
        raise UnknownPolicyError(policy, list_policies()) from None
