"""Unified batch-first execution runtime.

The single front door to the whole stack: one workload definition (a
:class:`~repro.sim.compiler.Netlist`, a
:class:`~repro.sim.graph.ComputationGraph` or a Deep-NN model) executes on
any registered backend and always returns a :class:`RunResult`:

* ``"reference"`` — :class:`ReferenceBackend`, functional execution with the
  real TFHE gates/PBS of :mod:`repro.tfhe` (decryptable ground truth);
* ``"strix-sim"`` — :class:`StrixSimBackend`, cycle-level simulation on the
  Strix accelerator model (latency / utilization / energy);
* ``"cpu-analytical"`` / ``"gpu-analytical"`` — :class:`AnalyticalBackend`,
  the paper's Concrete-CPU and NuFHE-GPU cost models.

:class:`Session` owns the key material and adds the batch APIs
(``encrypt_batch`` / ``decrypt_batch`` / ``bootstrap_batch`` /
``gate_batch``) sized to the paper's device x core batch geometry.

Quickstart::

    from repro import Session, run
    from repro.sim.compiler import full_adder_netlist

    session = Session("TOY", seed=0)
    adder = full_adder_netlist(session.params, bits=2)
    functional = run(adder, backend="reference", session=session,
                     inputs={"a0": True, "b0": True, "a1": False, "b1": True})
    simulated = run(adder, backend="strix-sim", params="I", instances=1024)
"""

from repro.runtime.analytical import AnalyticalBackend
from repro.runtime.api import compare, run
from repro.runtime.backend import (
    Backend,
    UnknownBackendError,
    get_backend,
    list_backends,
    register_backend,
    unregister_backend,
)
from repro.runtime.reference import ReferenceBackend
from repro.runtime.result import RunResult
from repro.runtime.session import Session
from repro.runtime.strix import StrixSimBackend
from repro.runtime.workload import WorkloadLike, as_graph, as_netlist, resolve_params


def _strix_cluster_factory(**options):
    """Lazy ``"strix-cluster"`` factory: defer :mod:`repro.serve` imports.

    Registering the real class here would drag the whole serving layer into
    every runtime import (and create a cycle — serve builds on runtime), so
    the registry holds this thunk instead; importing :mod:`repro.serve`
    replaces it with the class itself, which is equivalent.
    """
    from repro.serve.backend import StrixClusterBackend

    return StrixClusterBackend(**options)


register_backend("strix-cluster", _strix_cluster_factory)

__all__ = [
    "AnalyticalBackend",
    "Backend",
    "ReferenceBackend",
    "RunResult",
    "Session",
    "StrixSimBackend",
    "UnknownBackendError",
    "WorkloadLike",
    "as_graph",
    "as_netlist",
    "compare",
    "get_backend",
    "list_backends",
    "register_backend",
    "resolve_params",
    "run",
    "unregister_backend",
]
