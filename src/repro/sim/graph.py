"""Computational graphs of homomorphic workloads.

A workload is a DAG whose nodes are groups of homomorphic operations:
``PBS`` (programmable bootstraps over a set of ciphertexts), ``KEYSWITCH``,
``PBS_KS`` (the usual fused pair), and ``LINEAR`` (homomorphic additions and
plaintext multiplications, cheap but not free).  Dependencies encode layer
ordering — e.g. a neural network's activation layer depends on the preceding
linear layer — which is what limits how many ciphertexts can be batched into
one blind rotation and therefore drives the fragmentation behaviour the
paper analyzes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.params import TFHEParameters


class NodeKind(enum.Enum):
    """Kind of work a graph node represents."""

    PBS = "pbs"
    KEYSWITCH = "keyswitch"
    PBS_KS = "pbs+ks"
    LINEAR = "linear"


@dataclass
class ComputationNode:
    """One group of identical homomorphic operations.

    Attributes
    ----------
    name:
        Unique node name.
    kind:
        The operation kind.
    ciphertexts:
        Number of independent ciphertexts the node processes (the available
        test-vector level parallelism).
    operations_per_ciphertext:
        For ``LINEAR`` nodes: multiply-accumulate operations per output
        ciphertext (dot-product length); ignored for PBS/KS nodes.
    depends_on:
        Names of nodes that must complete first.
    """

    name: str
    kind: NodeKind
    ciphertexts: int
    operations_per_ciphertext: int = 0
    depends_on: list[str] = field(default_factory=list)

    def pbs_count(self) -> int:
        """Number of programmable bootstraps the node performs."""
        if self.kind in (NodeKind.PBS, NodeKind.PBS_KS):
            return self.ciphertexts
        return 0

    def keyswitch_count(self) -> int:
        """Number of keyswitches the node performs."""
        if self.kind in (NodeKind.KEYSWITCH, NodeKind.PBS_KS):
            return self.ciphertexts
        return 0


class ComputationGraph:
    """A DAG of :class:`ComputationNode` with topological iteration."""

    def __init__(self, params: TFHEParameters, name: str = "workload"):
        self.params = params
        self.name = name
        self._nodes: dict[str, ComputationNode] = {}

    # -- construction ------------------------------------------------------------

    def add_node(self, node: ComputationNode) -> ComputationNode:
        """Add a node, validating name uniqueness and dependency existence."""
        if node.name in self._nodes:
            raise ValueError(f"duplicate node name {node.name!r}")
        for dependency in node.depends_on:
            if dependency not in self._nodes:
                raise ValueError(f"node {node.name!r} depends on unknown node {dependency!r}")
        self._nodes[node.name] = node
        return node

    def add_pbs_layer(
        self, name: str, ciphertexts: int, depends_on: list[str] | None = None
    ) -> ComputationNode:
        """Convenience: add a fused PBS+keyswitch node."""
        return self.add_node(
            ComputationNode(
                name=name,
                kind=NodeKind.PBS_KS,
                ciphertexts=ciphertexts,
                depends_on=list(depends_on or []),
            )
        )

    def add_linear_layer(
        self,
        name: str,
        ciphertexts: int,
        operations_per_ciphertext: int,
        depends_on: list[str] | None = None,
    ) -> ComputationNode:
        """Convenience: add a linear (add / plaintext-multiply) node."""
        return self.add_node(
            ComputationNode(
                name=name,
                kind=NodeKind.LINEAR,
                ciphertexts=ciphertexts,
                operations_per_ciphertext=operations_per_ciphertext,
                depends_on=list(depends_on or []),
            )
        )

    # -- inspection --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self):
        return iter(self._nodes.values())

    def node(self, name: str) -> ComputationNode:
        """Look up a node by name."""
        return self._nodes[name]

    @property
    def nodes(self) -> list[ComputationNode]:
        """All nodes in insertion order."""
        return list(self._nodes.values())

    def with_params(self, params: TFHEParameters) -> "ComputationGraph":
        """Rebind the graph to another parameter set (structure unchanged)."""
        clone = ComputationGraph(params, name=self.name)
        for node in self._nodes.values():
            clone.add_node(
                ComputationNode(
                    name=node.name,
                    kind=node.kind,
                    ciphertexts=node.ciphertexts,
                    operations_per_ciphertext=node.operations_per_ciphertext,
                    depends_on=list(node.depends_on),
                )
            )
        return clone

    def topological_order(self) -> list[ComputationNode]:
        """Nodes in an order where every dependency precedes its dependents."""
        resolved: list[ComputationNode] = []
        seen: set[str] = set()
        remaining = {name: set(node.depends_on) for name, node in self._nodes.items()}
        while remaining:
            ready = [name for name, deps in remaining.items() if deps <= seen]
            if not ready:
                raise ValueError("computation graph contains a dependency cycle")
            for name in ready:
                resolved.append(self._nodes[name])
                seen.add(name)
                del remaining[name]
        return resolved

    def total_pbs(self) -> int:
        """Total programmable bootstraps across the graph."""
        return sum(node.pbs_count() for node in self._nodes.values())

    def total_keyswitches(self) -> int:
        """Total keyswitches across the graph."""
        return sum(node.keyswitch_count() for node in self._nodes.values())

    def total_linear_operations(self) -> int:
        """Total linear multiply-accumulate operations across the graph."""
        return sum(
            node.ciphertexts * node.operations_per_ciphertext
            for node in self._nodes.values()
            if node.kind is NodeKind.LINEAR
        )

    def levels(self) -> list[list[ComputationNode]]:
        """Group nodes into dependency levels (all of a level can run together)."""
        level_of: dict[str, int] = {}
        ordered = self.topological_order()
        for node in ordered:
            if node.depends_on:
                level_of[node.name] = 1 + max(level_of[dep] for dep in node.depends_on)
            else:
                level_of[node.name] = 0
        depth = max(level_of.values()) + 1 if level_of else 0
        grouped: list[list[ComputationNode]] = [[] for _ in range(depth)]
        for node in ordered:
            grouped[level_of[node.name]].append(node)
        return grouped
