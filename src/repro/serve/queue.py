"""Request queue with per-tenant subqueues and depth tracking.

The queue sits between the submission paths (sync and async) and the
adaptive batcher.  Requests live in per-tenant FIFO subqueues stitched
together by a global arrival sequence, so the batcher can either drain in
strict arrival order (FIFO — the default, starvation-free) or pick the
next request *per tenant* (weighted fair queuing, where a flooding tenant
no longer pushes everyone else's work back).  Either way the queue keeps
the counters the metrics layer and the flush decisions need: instantaneous
and peak depth, queued items/PBS, and per-tenant composition.

An optional ``observer`` (a :class:`repro.obs.Tracer`) is notified on
every :meth:`RequestQueue.push` — the enqueue hook of request tracing.
Observation never affects queueing.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from repro.serve.request import Request

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.obs.trace import Tracer


class QueueOverflowError(RuntimeError):
    """A bounded :class:`RequestQueue` overflowed.

    Raised on :meth:`RequestQueue.push` past ``capacity`` — the loud
    replacement for silent unbounded growth.  With admission control
    installed (``Server(admission=...)``) the admission policy keeps the
    queue under its bound *before* pushing, so this error only fires when
    a capacity is configured with admission disabled.
    """

    def __init__(self, capacity: int, tenant: str):
        super().__init__(
            f"request queue is full ({capacity} requests; arriving tenant "
            f"{tenant!r}); configure an admission policy to shed or reject "
            "instead of overflowing"
        )
        self.capacity = capacity
        self.tenant = tenant


class RequestQueue:
    """Arrival-ordered queue of pending :class:`Request` objects.

    ``capacity`` bounds the number of waiting requests: ``None`` (the
    default) keeps the historical unbounded behaviour; a bound makes
    :meth:`push` raise :class:`QueueOverflowError` when full.
    """

    def __init__(
        self, observer: "Tracer | None" = None, capacity: int | None = None
    ) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("queue capacity must be at least one request")
        #: Tracer notified on every push (``None`` = tracing off).
        self.observer = observer
        #: Maximum waiting requests (``None`` = unbounded).
        self.capacity = capacity
        #: Per-tenant FIFO of ``(sequence, request)``; arrival order across
        #: tenants is recovered by comparing head sequence numbers.
        self._by_tenant: dict[str, deque[tuple[int, Request]]] = {}
        self._sequence = 0
        self._depth = 0
        self.total_enqueued = 0
        self.peak_depth = 0
        self._queued_items = 0
        self._queued_pbs = 0

    # -- state ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._depth

    def __bool__(self) -> bool:
        return self._depth > 0

    @property
    def depth(self) -> int:
        """Requests currently waiting."""
        return self._depth

    @property
    def queued_items(self) -> int:
        """Batchable items across all waiting requests (O(1), kept on push/pop)."""
        return self._queued_items

    @property
    def queued_pbs(self) -> int:
        """Bootstraps across all waiting requests (O(1), kept on push/pop)."""
        return self._queued_pbs

    @property
    def tenant_depths(self) -> dict[str, int]:
        """Waiting request count per tenant (zero entries omitted)."""
        return {
            tenant: len(pending)
            for tenant, pending in self._by_tenant.items()
            if pending
        }

    def oldest(self) -> Request | None:
        """The longest-waiting request, or ``None`` when empty."""
        head = self._oldest_tenant()
        if head is None:
            return None
        return self._by_tenant[head][0][1]

    def oldest_for_tenant(self, tenant: str) -> Request | None:
        """The longest-waiting request of one tenant, or ``None``."""
        pending = self._by_tenant.get(tenant)
        if not pending:
            return None
        return pending[0][1]

    def tenant_heads(self) -> dict[str, Request]:
        """Each tenant's longest-waiting request (what fair queuing scans)."""
        return {
            tenant: pending[0][1]
            for tenant, pending in self._by_tenant.items()
            if pending
        }

    def _oldest_tenant(self) -> str | None:
        """Tenant whose head request arrived first (``None`` when empty)."""
        best: str | None = None
        best_sequence = -1
        for tenant, pending in self._by_tenant.items():
            if not pending:
                continue
            sequence = pending[0][0]
            if best is None or sequence < best_sequence:
                best = tenant
                best_sequence = sequence
        return best

    # -- mutation ---------------------------------------------------------------

    def push(self, request: Request) -> None:
        """Enqueue a request (arrival order within and across tenants).

        Raises :class:`QueueOverflowError` when a ``capacity`` is set and
        already reached.
        """
        if self.capacity is not None and self._depth >= self.capacity:
            raise QueueOverflowError(self.capacity, request.tenant)
        self._append(request)

    def stage(self, request: Request) -> None:
        """Enqueue bypassing the capacity bound (the sync staging path).

        ``capacity`` bounds the *runtime* queue depth — how much work may
        wait concurrently while serving.  Sync ``Server.submit`` merely
        stages a trace for a later ``simulate`` pass, which re-pushes
        every request through the bounded runtime queue inside its
        arrival loop; bounding the staging buffer too would cap the total
        trace length, not the instantaneous depth.
        """
        self._append(request)

    def _append(self, request: Request) -> None:
        self._by_tenant.setdefault(request.tenant, deque()).append(
            (self._sequence, request)
        )
        self._sequence += 1
        self._depth += 1
        self.total_enqueued += 1
        self.peak_depth = max(self.peak_depth, self._depth)
        self._queued_items += request.items
        self._queued_pbs += request.total_pbs
        if self.observer is not None:
            self.observer.on_enqueue(request)

    def pop(self) -> Request:
        """Dequeue the oldest request across all tenants."""
        tenant = self._oldest_tenant()
        if tenant is None:
            raise IndexError("pop from an empty request queue")
        return self._pop_head(tenant)

    def pop_for_tenant(self, tenant: str) -> Request:
        """Dequeue one tenant's oldest request (the fair-queuing pop)."""
        if not self._by_tenant.get(tenant):
            raise KeyError(f"tenant {tenant!r} has no queued requests")
        return self._pop_head(tenant)

    def _pop_head(self, tenant: str) -> Request:
        _, request = self._by_tenant[tenant].popleft()
        if not self._by_tenant[tenant]:
            del self._by_tenant[tenant]
        self._depth -= 1
        self._queued_items -= request.items
        self._queued_pbs -= request.total_pbs
        return request
