"""High-level TFHE user API.

:class:`TFHEContext` bundles key generation and the encrypt / decrypt /
bootstrap entry points so examples and applications do not have to juggle the
individual key objects.  It mirrors the "client key / server key" split of
the Concrete library: everything an untrusted evaluator needs lives in
:class:`ServerKeys`, while the secret keys stay in the context.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.params import TFHEParameters, TOY_PARAMETERS
from repro.tfhe import encoding
from repro.tfhe.bootstrap import BootstrapResult, programmable_bootstrap
from repro.tfhe.gates import GateBootstrapper
from repro.tfhe.keys import (
    BootstrappingKey,
    GlweSecretKey,
    KeySwitchingKey,
    LweSecretKey,
)
from repro.tfhe.lut import LookUpTable
from repro.tfhe.lwe import LweCiphertext


@dataclass
class ServerKeys:
    """Public evaluation material: bootstrapping and keyswitching keys."""

    bootstrapping_key: BootstrappingKey
    keyswitching_key: KeySwitchingKey
    params: TFHEParameters

    @property
    def total_bytes(self) -> int:
        """Combined size of the evaluation keys (Fourier-domain bsk + ksk)."""
        return self.bootstrapping_key.size_bytes + self.keyswitching_key.size_bytes


class TFHEContext:
    """Key generation plus high-level encrypt / decrypt / bootstrap helpers.

    Parameters
    ----------
    params:
        TFHE parameter set; defaults to the fast test-sized set.
    seed:
        Seed for the deterministic random generator (key generation and every
        encryption drawn from this context share the generator).
    """

    def __init__(self, params: TFHEParameters = TOY_PARAMETERS, seed: int | None = None):
        self.params = params
        self.rng = np.random.default_rng(seed)
        self.lwe_key = LweSecretKey.generate(params, self.rng)
        self.glwe_key = GlweSecretKey.generate(params, self.rng)
        self._extracted_key = self.glwe_key.extracted_lwe_key()
        self._server_keys: ServerKeys | None = None

    # -- key material -----------------------------------------------------------

    def generate_server_keys(self) -> ServerKeys:
        """Generate (and cache) the bootstrapping and keyswitching keys."""
        if self._server_keys is None:
            bsk = BootstrappingKey.generate(self.lwe_key, self.glwe_key, self.rng)
            ksk = KeySwitchingKey.generate(self.glwe_key, self.lwe_key, self.rng)
            self._server_keys = ServerKeys(bsk, ksk, self.params)
        return self._server_keys

    @property
    def server_keys(self) -> ServerKeys:
        """The cached server keys (generated on first access)."""
        return self.generate_server_keys()

    # -- integer messages ---------------------------------------------------------

    def encrypt(self, message: int) -> LweCiphertext:
        """Encrypt an integer message ``0 <= message < p``."""
        value = encoding.encode(message, self.params)
        return self.lwe_key.encrypt(value, self.rng)

    def decrypt(self, ciphertext: LweCiphertext) -> int:
        """Decrypt an LWE ciphertext to its integer message.

        Handles both ``n``-dimensional ciphertexts and ``k*N``-dimensional
        ciphertexts extracted from a GLWE.
        """
        phase = self._phase(ciphertext)
        return encoding.decode(phase, self.params) % self.params.message_modulus

    # -- booleans -----------------------------------------------------------------

    def encrypt_boolean(self, value: bool) -> LweCiphertext:
        """Encrypt a boolean with the gate-bootstrapping encoding (``±q/8``)."""
        return self.lwe_key.encrypt(encoding.encode_boolean(value, self.params), self.rng)

    def decrypt_boolean(self, ciphertext: LweCiphertext) -> bool:
        """Decrypt a gate-bootstrapping boolean ciphertext."""
        return encoding.decode_boolean(self._phase(ciphertext), self.params)

    def gates(self) -> GateBootstrapper:
        """Return a :class:`GateBootstrapper` wired to this context's keys."""
        keys = self.generate_server_keys()
        return GateBootstrapper(keys.bootstrapping_key, keys.keyswitching_key, self.params)

    # -- bootstrapping -------------------------------------------------------------

    def programmable_bootstrap(
        self,
        ciphertext: LweCiphertext,
        function: Callable[[int], int],
        keyswitch: bool = True,
    ) -> BootstrapResult:
        """Run a full PBS evaluating ``function`` on the encrypted message."""
        keys = self.generate_server_keys()
        return programmable_bootstrap(
            ciphertext,
            function,
            keys.bootstrapping_key,
            self.params,
            keys.keyswitching_key if keyswitch else None,
        )

    def apply_lut(self, ciphertext: LweCiphertext, lut: LookUpTable) -> LweCiphertext:
        """Apply a :class:`LookUpTable` homomorphically (one PBS)."""
        keys = self.generate_server_keys()
        return lut.apply(ciphertext, keys.bootstrapping_key, keys.keyswitching_key)

    # -- internals -----------------------------------------------------------------

    def _phase(self, ciphertext: LweCiphertext) -> int:
        if ciphertext.dimension == self.params.n:
            return self.lwe_key.decrypt_phase(ciphertext)
        if ciphertext.dimension == self.params.k * self.params.N:
            return ciphertext.phase(self._extracted_key)
        raise ValueError(
            f"ciphertext dimension {ciphertext.dimension} matches neither the LWE "
            f"key ({self.params.n}) nor the extracted key ({self.params.k * self.params.N})"
        )
