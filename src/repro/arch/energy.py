"""Energy model: joules per bootstrapping operation and per workload.

The paper reports power (Table III) but argues efficiency throughout; this
module combines the power model with the timing model to answer the obvious
follow-up questions: energy per PBS for each parameter set, energy of a full
application run, and how Strix compares with the CPU / GPU baselines on
energy (using nominal TDP figures for those platforms).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.accelerator import StrixAccelerator
from repro.baselines.cpu_model import ConcreteCpuModel
from repro.baselines.gpu_model import NuFheGpuModel
from repro.params import TFHEParameters

#: Nominal socket/board power of the baseline platforms (W).  The CPU figure
#: is a Xeon Platinum socket TDP; the GPU figure is the Titan RTX board TDP.
CPU_POWER_W = 205.0
GPU_POWER_W = 280.0


@dataclass(frozen=True)
class EnergyComparison:
    """Energy per PBS on Strix and the baselines (millijoules)."""

    parameter_set: str
    strix_mj: float
    cpu_mj: float
    gpu_mj: float

    @property
    def gain_vs_cpu(self) -> float:
        """Energy-efficiency gain of Strix over the CPU."""
        return self.cpu_mj / self.strix_mj

    @property
    def gain_vs_gpu(self) -> float:
        """Energy-efficiency gain of Strix over the GPU."""
        return self.gpu_mj / self.strix_mj


class EnergyModel:
    """Joules-per-operation estimates for a Strix instance."""

    def __init__(self, accelerator: StrixAccelerator | None = None):
        self.accelerator = accelerator or StrixAccelerator()
        self.chip_power_w = self.accelerator.chip_cost().total_power_w

    def energy_per_pbs_mj(self, params: TFHEParameters) -> float:
        """Energy of one PBS at full throughput, in millijoules."""
        throughput = self.accelerator.pbs_throughput(params)
        return self.chip_power_w / throughput * 1e3

    def workload_energy_j(self, execution_seconds: float) -> float:
        """Energy of a workload that keeps the chip busy for a given time."""
        return self.chip_power_w * execution_seconds

    def compare_with_baselines(self, params: TFHEParameters) -> EnergyComparison:
        """Energy per PBS against the CPU and GPU baselines."""
        cpu = ConcreteCpuModel(threads=1)
        gpu = NuFheGpuModel()
        cpu_energy = CPU_POWER_W / cpu.pbs_throughput(params) * 1e3
        gpu_energy = GPU_POWER_W / gpu.pbs_throughput(params) * 1e3
        return EnergyComparison(
            parameter_set=params.name,
            strix_mj=self.energy_per_pbs_mj(params),
            cpu_mj=cpu_energy,
            gpu_mj=gpu_energy,
        )
