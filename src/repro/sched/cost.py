"""Batch cost models: how a serving batch's service time is priced.

The serving path dispatches flushed batches to devices; *how long* a batch
occupies its device is the cost model's answer.  Two implementations share
one protocol:

* :class:`AnalyticalCostModel` — the closed-form epoch-stream shortcut
  (``pbs_batch_time_ms`` plus host-side linear work).  Fast — thousands of
  batches per second of wall clock — and the default, because it reproduces
  the pre-refactor serving numbers bit-for-bit.
* :class:`EventDrivenCostModel` — lowers the batch's real request
  composition to a :class:`~repro.sim.graph.ComputationGraph` (encryption
  traffic → a LINEAR node, gate/bootstrap traffic → a fused PBS+KS node,
  each inference request → its model's full layer graph) and runs the
  cycle-level :class:`~repro.sim.scheduler.StrixScheduler` on it.  Slower,
  but per-epoch keyswitch overlap, epoch fragmentation across dependency
  levels and blind-rotation/linear overlap become visible in serving
  latency.

Cost models price *compute residency only*; interconnect transfers,
dispatch overhead and key shipping are charged by the placement layout so
the same cost model composes with every layout.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.errors import UnknownCostModelError
from repro.params import TFHEParameters
from repro.sim.graph import ComputationGraph, ComputationNode
from repro.sim.scheduler import StrixScheduler

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.serve.batcher import Batch
    from repro.serve.cluster import StrixDevice


@dataclass(frozen=True)
class BatchCost:
    """Compute residency of one batch (or one pipeline stage) on one device.

    Attributes
    ----------
    compute_s:
        Seconds the device's compute pipelines are occupied.  Excludes
        interconnect transfers, key shipping and dispatch overhead — those
        belong to the placement layout.
    pbs:
        Bootstraps executed (what the stage contributes to device PBS
        counters).
    epochs:
        Scheduling epochs the work decomposed into.
    breakdown:
        Named components of ``compute_s`` (e.g. ``pbs_s`` / ``linear_s``
        for the analytical model, ``event_s`` for the event-driven one).
    """

    compute_s: float
    pbs: int
    epochs: int
    breakdown: dict[str, float] = field(default_factory=dict)


def _classify_requests(batch: "Batch") -> tuple[int, int, list]:
    """One classification shared by the lowering and its cache signature.

    Buckets the batch's requests exactly the way :func:`batch_graph`
    coalesces them: total PBS-free items (→ one LINEAR node), total
    fixed-cost PBS (→ one fused PBS+KS node), and the model-carrying
    requests that each expand to a per-request layer subgraph.  Both
    :func:`batch_graph` and :func:`batch_mix_signature` consume these
    buckets, so the cache key cannot drift from the graph it stands for.

    Model-carrying requests come back sorted by ``(model, items)`` — the
    order the signature records them in.  The sort is what makes the
    signature → schedule mapping a *function*: the cycle-level scheduler
    books shared resources in graph insertion order, so two batches whose
    inference requests arrived in different orders would otherwise lower
    to differently-ordered graphs and schedule to (slightly) different
    makespans despite equal signatures.  Sorting is stable, so batches
    whose model requests already share one ``(model, items)`` shape — every
    trace the benchmarks replay — are lowered exactly as before.
    """
    linear_items = 0
    simple_pbs = 0
    model_requests = []
    for request in batch.requests:
        if request.pbs_per_item == 0:
            linear_items += request.items
        elif request.model is None:
            simple_pbs += request.total_pbs
        else:
            model_requests.append(request)
    model_requests.sort(key=lambda request: (request.model, request.items))
    return linear_items, simple_pbs, model_requests


def batch_mix_signature(batch: "Batch") -> tuple:
    """Canonical request-mix signature of a serving batch.

    Two batches with equal signatures lower (via :func:`batch_graph`) to
    structurally identical computation graphs — identical node kinds,
    ciphertext counts, per-ciphertext operations, dependencies *and node
    order* — because both functions bucket requests through the same
    :func:`_classify_requests` (which sorts model requests into signature
    order).  Request ids, tenants and arrival times deliberately do not
    appear: they never influence the graph shape, so the pipeline layout's
    stage-plan cache and the event model's schedule cache
    (:class:`repro.sched.memo.ScheduleCache`) can key on this signature
    and reuse one partition / one priced schedule across every batch of
    the same shape.
    """
    linear_items, simple_pbs, model_requests = _classify_requests(batch)
    models = tuple((request.model, request.items) for request in model_requests)
    return (linear_items, simple_pbs, models)


#: Template layer graphs per ``(model name, parameter set)``: node specs of
#: one single-sample inference, cloned (and scaled by the request's sample
#: count) into every batch graph instead of rebuilding the model graph node
#: by node per request.  Pure derived data, a handful of models × parameter
#: sets, so the cache is unbounded.
_MODEL_TEMPLATES: dict[tuple[str, TFHEParameters], tuple[tuple, ...]] = {}


def _model_template(model: str, params: TFHEParameters) -> tuple[tuple, ...]:
    """Node specs ``(name, kind, ciphertexts, ops, depends_on)`` of one model."""
    key = (model, params)
    template = _MODEL_TEMPLATES.get(key)
    if template is None:
        from repro.apps.deep_nn import ZAMA_DEEP_NN_MODELS, build_deep_nn_graph

        model_graph = build_deep_nn_graph(ZAMA_DEEP_NN_MODELS[model], params)
        template = tuple(
            (
                node.name,
                node.kind,
                node.ciphertexts,
                node.operations_per_ciphertext,
                tuple(node.depends_on),
            )
            for node in model_graph.nodes
        )
        _MODEL_TEMPLATES[key] = template
    return template


def batch_graph(batch: "Batch", params: TFHEParameters) -> ComputationGraph:
    """Lower a serving batch to the computation graph it really executes.

    PBS-free requests (encryption traffic) coalesce into one LINEAR node and
    fixed-cost bootstrap/gate requests into one fused PBS+KS node — the
    batcher packs them into a single epoch stream, so per-request nodes
    would overstate fragmentation.  Inference requests keep their model's
    full layer structure (scaled by the request's sample count), because the
    layer dependencies are exactly what limits batching and produces the
    fragmentation/keyswitch effects the event-driven model exists to see.

    The model layer structure is cloned from a per-``(model, params)``
    template (:func:`_model_template`) rather than rebuilt node by node —
    lowering is on the serving hot path, once per event-priced dispatch.
    """
    linear_items, simple_pbs, model_requests = _classify_requests(batch)
    graph = ComputationGraph(params, name=f"batch-{batch.batch_id}")
    if linear_items:
        graph.add_linear_layer("linear", linear_items, params.n)
    if simple_pbs:
        graph.add_pbs_layer("pbs", simple_pbs)
    for request in model_requests:
        template = _model_template(request.model, params)
        prefix = f"req{request.request_id}/"
        for name, kind, ciphertexts, operations, depends_on in template:
            graph.add_node(
                ComputationNode(
                    name=prefix + name,
                    kind=kind,
                    ciphertexts=ciphertexts * request.items,
                    operations_per_ciphertext=operations,
                    depends_on=[prefix + dep for dep in depends_on],
                )
            )
    return graph


class CostModel(abc.ABC):
    """Prices serving batches (and pipeline stages) on one device."""

    #: Registry name of the cost model.
    name = ""

    @abc.abstractmethod
    def batch_cost(
        self, batch: "Batch", params: TFHEParameters, device: "StrixDevice"
    ) -> BatchCost:
        """Compute residency of the whole batch executing on ``device``."""

    @abc.abstractmethod
    def stage_cost(
        self,
        stage_graph: ComputationGraph,
        params: TFHEParameters,
        device: "StrixDevice",
    ) -> BatchCost:
        """Compute residency of one pipeline-stage subgraph on ``device``."""

    def reset(self) -> None:
        """Clear per-simulation state (default: stateless).

        Memoizing models (:class:`repro.sched.memo.ScheduleCache`) clear
        their hit/miss counters here; cached schedules are pure derived
        data and survive, mirroring the pipeline stage-plan cache.
        """

    @property
    def cache_stats(self) -> dict[str, int]:
        """Schedule-cache counters (empty for models that don't memoize)."""
        return {}


class AnalyticalCostModel(CostModel):
    """Closed-form epoch-stream pricing (the fast default).

    Bootstraps stream through the device's epoch pipeline
    (``pbs_batch_time_ms``, which already folds keyswitch drain into the
    final epoch); PBS-free items only cost host-side linear work on the
    vector pipeline.  This is exactly the arithmetic the serving tier used
    before the scheduling core existed, term for term, so one device plus
    this model reproduces historical serving numbers bit-for-bit.
    """

    name = "analytical"

    def batch_cost(
        self, batch: "Batch", params: TFHEParameters, device: "StrixDevice"
    ) -> BatchCost:
        accelerator = device.accelerator
        pbs_s = accelerator.pbs_batch_time_ms(params, batch.total_pbs) / 1e3
        linear_items = sum(
            request.items for request in batch.requests if request.pbs_per_item == 0
        )
        linear_s = (
            linear_items
            * params.n
            / StrixScheduler.linear_macs_per_second(accelerator.config)
        )
        return BatchCost(
            compute_s=pbs_s + linear_s,
            pbs=batch.total_pbs,
            epochs=self._epochs(batch.total_pbs, params, device),
            breakdown={"pbs_s": pbs_s, "linear_s": linear_s},
        )

    def stage_cost(
        self,
        stage_graph: ComputationGraph,
        params: TFHEParameters,
        device: "StrixDevice",
    ) -> BatchCost:
        accelerator = device.accelerator
        pbs = stage_graph.total_pbs()
        pbs_s = accelerator.pbs_batch_time_ms(params, pbs) / 1e3 if pbs else 0.0
        linear_s = stage_graph.total_linear_operations() / (
            StrixScheduler.linear_macs_per_second(accelerator.config)
        )
        return BatchCost(
            compute_s=pbs_s + linear_s,
            pbs=pbs,
            epochs=self._epochs(pbs, params, device),
            breakdown={"pbs_s": pbs_s, "linear_s": linear_s},
        )

    @staticmethod
    def _epochs(pbs: int, params: TFHEParameters, device: "StrixDevice") -> int:
        if pbs <= 0:
            return 0
        capacity = device.accelerator.config.tvlp * (
            device.accelerator.core.core_batch_size(params)
        )
        return -(-pbs // capacity)


class EventDrivenCostModel(CostModel):
    """Cycle-level pricing: run the batch's real graph on the scheduler.

    Service times differ from the analytical model only through
    scheduler-visible effects — per-epoch keyswitch overlap, epoch
    fragmentation across a model's dependency levels, and linear work
    overlapping blind rotation on its own resource — at the cost of one
    discrete-event simulation per batch.
    """

    name = "event"

    def batch_cost(
        self, batch: "Batch", params: TFHEParameters, device: "StrixDevice"
    ) -> BatchCost:
        return self.stage_cost(batch_graph(batch, params), params, device)

    def stage_cost(
        self,
        stage_graph: ComputationGraph,
        params: TFHEParameters,
        device: "StrixDevice",
    ) -> BatchCost:
        if not len(stage_graph):
            return BatchCost(compute_s=0.0, pbs=0, epochs=0, breakdown={})
        schedule = device.scheduler.run(stage_graph)
        return BatchCost(
            compute_s=schedule.total_time_s,
            pbs=schedule.total_pbs,
            epochs=schedule.total_epochs,
            breakdown={"event_s": schedule.total_time_s},
        )


_COST_MODELS: dict[str, Callable[[], CostModel]] = {
    model.name: model for model in (AnalyticalCostModel, EventDrivenCostModel)
}


def list_cost_models() -> list[str]:
    """Names of all registered cost models, sorted."""
    return sorted(_COST_MODELS)


def get_cost_model(model: "str | CostModel") -> CostModel:
    """Resolve a cost-model name (or pass an instance through).

    Raises :class:`~repro.errors.UnknownCostModelError` — the shared
    did-you-mean shape — for unknown names.
    """
    if isinstance(model, CostModel):
        return model
    try:
        factory = _COST_MODELS[model]
    except KeyError:
        raise UnknownCostModelError(model, list_cost_models()) from None
    return factory()
