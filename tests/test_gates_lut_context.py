"""Tests for boolean gate bootstrapping, look-up tables and the context API."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.params import TOY_PARAMETERS
from repro.tfhe.context import TFHEContext
from repro.tfhe.gates import GateBootstrapper
from repro.tfhe.lut import LookUpTable, relu_lut, sign_lut, threshold_lut
from repro.tfhe.lwe import LweCiphertext
from repro.tfhe.noise import (
    blind_rotation_variance,
    decryption_failure_margin,
    external_product_variance,
    keyswitch_variance,
    measure_lwe_noise,
    pbs_output_variance,
)

PARAMS = TOY_PARAMETERS
P = PARAMS.message_modulus
BOOLS = [False, True]


@pytest.fixture(scope="module")
def gates(toy_context):
    return toy_context.gates()


class TestGates:
    def test_not_gate(self, toy_context, gates):
        for value in BOOLS:
            result = gates.not_(toy_context.encrypt_boolean(value))
            assert toy_context.decrypt_boolean(result) is (not value)

    @pytest.mark.parametrize("a,b", list(itertools.product(BOOLS, BOOLS)))
    def test_and_gate(self, toy_context, gates, a, b):
        result = gates.and_(toy_context.encrypt_boolean(a), toy_context.encrypt_boolean(b))
        assert toy_context.decrypt_boolean(result) is (a and b)

    @pytest.mark.parametrize("a,b", list(itertools.product(BOOLS, BOOLS)))
    def test_or_gate(self, toy_context, gates, a, b):
        result = gates.or_(toy_context.encrypt_boolean(a), toy_context.encrypt_boolean(b))
        assert toy_context.decrypt_boolean(result) is (a or b)

    @pytest.mark.parametrize("a,b", list(itertools.product(BOOLS, BOOLS)))
    def test_nand_gate(self, toy_context, gates, a, b):
        result = gates.nand(toy_context.encrypt_boolean(a), toy_context.encrypt_boolean(b))
        assert toy_context.decrypt_boolean(result) is (not (a and b))

    @pytest.mark.parametrize("a,b", list(itertools.product(BOOLS, BOOLS)))
    def test_nor_gate(self, toy_context, gates, a, b):
        result = gates.nor(toy_context.encrypt_boolean(a), toy_context.encrypt_boolean(b))
        assert toy_context.decrypt_boolean(result) is (not (a or b))

    @pytest.mark.parametrize("a,b", list(itertools.product(BOOLS, BOOLS)))
    def test_xor_gate(self, toy_context, gates, a, b):
        result = gates.xor(toy_context.encrypt_boolean(a), toy_context.encrypt_boolean(b))
        assert toy_context.decrypt_boolean(result) is (a != b)

    @pytest.mark.parametrize("a,b", list(itertools.product(BOOLS, BOOLS)))
    def test_xnor_gate(self, toy_context, gates, a, b):
        result = gates.xnor(toy_context.encrypt_boolean(a), toy_context.encrypt_boolean(b))
        assert toy_context.decrypt_boolean(result) is (a == b)

    @pytest.mark.parametrize("a,b", list(itertools.product(BOOLS, BOOLS)))
    def test_andny_gate(self, toy_context, gates, a, b):
        result = gates.andny(toy_context.encrypt_boolean(a), toy_context.encrypt_boolean(b))
        assert toy_context.decrypt_boolean(result) is ((not a) and b)

    @pytest.mark.parametrize("select", BOOLS)
    def test_mux_gate(self, toy_context, gates, select):
        if_true = toy_context.encrypt_boolean(True)
        if_false = toy_context.encrypt_boolean(False)
        result = gates.mux(toy_context.encrypt_boolean(select), if_true, if_false)
        assert toy_context.decrypt_boolean(result) is select

    def test_gate_outputs_are_composable(self, toy_context, gates):
        """Gate outputs are fresh ciphertexts usable as further gate inputs."""
        a = toy_context.encrypt_boolean(True)
        b = toy_context.encrypt_boolean(False)
        c = toy_context.encrypt_boolean(True)
        result = gates.and_(gates.or_(a, b), gates.xor(b, c))
        assert toy_context.decrypt_boolean(result) is ((True or False) and (False ^ True))

    def test_pbs_cost_table(self):
        assert GateBootstrapper.PBS_COST["not"] == 0
        assert GateBootstrapper.PBS_COST["mux"] == 3
        assert all(cost >= 0 for cost in GateBootstrapper.PBS_COST.values())


class TestLookUpTables:
    def test_from_function_tabulates(self):
        lut = LookUpTable.from_function(lambda m: (m + 2) % P, PARAMS)
        assert [lut(m) for m in range(P)] == [(m + 2) % P for m in range(P)]

    def test_entry_validation(self):
        with pytest.raises(ValueError):
            LookUpTable(np.array([0, 1]), PARAMS)
        with pytest.raises(ValueError):
            LookUpTable(np.array([0, 1, 2, P]), PARAMS)

    def test_evaluate_torus_negacyclic_extension(self):
        lut = LookUpTable.from_function(lambda m: (m + 1) % P, PARAMS)
        for message in range(P):
            assert lut.evaluate_torus(message) == (message + 1) % P
            wrapped = lut.evaluate_torus(message + P)
            assert wrapped == (-((message + 1) % P)) % (2 * P)

    def test_relu_lut_shape(self):
        lut = relu_lut(PARAMS)
        assert lut(0) == 0 and lut(1) == 1
        assert lut(P // 2) == 0 and lut(P - 1) == 0

    def test_sign_and_threshold_luts(self):
        sign = sign_lut(PARAMS)
        assert sign(0) == 1 and sign(P - 1) == 0
        threshold = threshold_lut(2, PARAMS)
        assert threshold(1) == 0 and threshold(2) == 1

    @pytest.mark.parametrize("message", range(P))
    def test_homomorphic_lut_application(self, toy_context, message):
        lut = LookUpTable.from_function(lambda m: (3 * m) % P, PARAMS)
        result = toy_context.apply_lut(toy_context.encrypt(message), lut)
        assert toy_context.decrypt(result) == (3 * message) % P


class TestContext:
    def test_encrypt_decrypt_all_messages(self, toy_context):
        for message in range(P):
            assert toy_context.decrypt(toy_context.encrypt(message)) == message

    def test_boolean_roundtrip(self, toy_context):
        for value in BOOLS:
            assert toy_context.decrypt_boolean(toy_context.encrypt_boolean(value)) is value

    def test_server_keys_cached(self, toy_context):
        assert toy_context.generate_server_keys() is toy_context.generate_server_keys()

    def test_programmable_bootstrap_via_context(self, toy_context):
        result = toy_context.programmable_bootstrap(toy_context.encrypt(2), lambda m: (m + 1) % P)
        assert toy_context.decrypt(result.ciphertext) == 3

    def test_decrypt_rejects_unknown_dimension(self, toy_context):
        stranger = LweCiphertext.trivial(0, 17, PARAMS)
        with pytest.raises(ValueError):
            toy_context.decrypt(stranger)

    def test_deterministic_with_seed(self):
        first = TFHEContext(PARAMS, seed=1)
        second = TFHEContext(PARAMS, seed=1)
        np.testing.assert_array_equal(first.lwe_key.bits, second.lwe_key.bits)
        np.testing.assert_array_equal(first.glwe_key.polynomials, second.glwe_key.polynomials)

    def test_different_seeds_give_different_keys(self):
        first = TFHEContext(PARAMS, seed=1)
        second = TFHEContext(PARAMS, seed=2)
        assert not np.array_equal(first.lwe_key.bits, second.lwe_key.bits)


class TestNoiseModel:
    def test_external_product_increases_variance(self):
        base = 1e-12
        assert external_product_variance(PARAMS, base) > base

    def test_blind_rotation_variance_positive_and_finite(self):
        variance = blind_rotation_variance(PARAMS)
        assert 0 < variance < 1

    def test_keyswitch_adds_variance(self):
        base = blind_rotation_variance(PARAMS)
        assert keyswitch_variance(PARAMS, base) > base

    def test_pbs_output_variance_composition(self):
        assert pbs_output_variance(PARAMS) == keyswitch_variance(
            PARAMS, blind_rotation_variance(PARAMS)
        )

    def test_toy_parameters_have_decryption_margin(self):
        assert decryption_failure_margin(PARAMS) > 3.0

    def test_variance_monotone_in_decomposition_base(self):
        import dataclasses

        coarse = dataclasses.replace(PARAMS, log2_base_pbs=4, lb=2)
        fine = dataclasses.replace(PARAMS, log2_base_pbs=8, lb=3)
        assert blind_rotation_variance(fine) < blind_rotation_variance(coarse) * 100

    def test_measure_lwe_noise(self, toy_context):
        value = PARAMS.q // 4
        ciphertexts = [toy_context.lwe_key.encrypt(value, toy_context.rng) for _ in range(50)]
        measurement = measure_lwe_noise(
            ciphertexts, [value] * 50, toy_context.lwe_key.bits, PARAMS
        )
        assert measurement.samples == 50
        assert measurement.max_abs < PARAMS.delta / PARAMS.q
        assert measurement.std >= 0.0
