"""Vectorized batch kernels: the PBS chain over stacked arrays.

Each function here is the batch-axis twin of one scalar kernel — modulus
switch (:func:`repro.tfhe.blind_rotate.modulus_switch`), negacyclic monomial
rotation (:func:`repro.tfhe.polynomial.monomial_multiply`), the external
product (:meth:`repro.tfhe.ggsw.FourierGgswCiphertext.external_product`),
blind rotation, sample extraction, keyswitching and the full programmable /
gate bootstrap.  A batch of ``B`` LWE ciphertexts moves through the chain as
``(B, ...)`` stacks, so every numpy call amortizes its dispatch overhead over
the whole batch instead of paying it per ciphertext.

**Bit-for-bit honesty.** The contract — enforced by the seeded property
suite in ``tests/test_batch_kernels.py`` and by the deterministic
``kernel/*`` records in ``BENCH_sim.json`` — is that element ``i`` of every
batched result equals the scalar kernel applied to element ``i``, exactly,
not approximately.  Integer steps are exact by construction; the two
floating-point steps reuse the *same* numpy primitives as the scalar path
(`np.fft` applied along the last axis, ``einsum`` with an added batch
subscript), which numpy evaluates per-row with an identical reduction
order, so even the float intermediates agree to the last bit.  The one
control-flow divergence — the scalar loop *skips* blind-rotation iterations
whose switched mask element is zero — is harmless: a zero exponent makes the
CMux difference exactly zero, which decomposes to all-zero digits and an
exactly-zero external product, leaving the accumulator untouched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.params import TFHEParameters
from repro.tfhe import torus
from repro.tfhe.batch.types import GlweBatch, LweBatch
from repro.tfhe.blind_rotate import make_constant_test_vector, make_test_vector
from repro.tfhe.decomposition import decompose, decompose_rows
from repro.tfhe.keys import BootstrappingKey, KeySwitchingKey
from repro.tfhe.polynomial import get_transform


@dataclass
class BatchBootstrapResult:
    """Outcome of a batched programmable bootstrap.

    Mirrors :class:`repro.tfhe.bootstrap.BootstrapResult`: ``ciphertexts``
    is the refreshed batch (dimension ``n`` when keyswitching was applied,
    ``k*N`` otherwise) and ``extracted`` the batch straight after sample
    extraction, kept for analysis and the property tests.
    """

    ciphertexts: LweBatch
    extracted: LweBatch


# -- linear steps ---------------------------------------------------------------


def batch_modulus_switch(
    batch: LweBatch, params: TFHEParameters
) -> tuple[np.ndarray, np.ndarray]:
    """Switch a batch of LWE ciphertexts from modulus ``q`` to ``2N``.

    Returns ``(masks_2n, bodies_2n)`` of shapes ``(B, dim)`` and ``(B,)``.
    """
    two_n = 2 * params.N
    masks = torus.switch_modulus(batch.masks, params.q, two_n)
    bodies = torus.switch_modulus(batch.bodies, params.q, two_n)
    return masks.astype(np.int64), bodies.astype(np.int64)


#: Cached ``arange(N)`` rows, keyed by degree — the gather runs once per
#: blind-rotation iteration, so the index template is worth reusing.
_GATHER_POSITIONS: dict[int, np.ndarray] = {}


def _monomial_gather(polys: np.ndarray, exponents: np.ndarray) -> np.ndarray:
    """Per-element ``X^exponent`` rotation *without* the modular reduction.

    The rotation is a signed permutation — linear in the coefficients — so
    callers that reduce later (or whose next step reduces anyway) can skip
    the per-step ``mod q`` pass over the stack.  ``polys`` has shape
    ``(B, ..., N)``; ``exponents`` has shape ``(B,)``.
    """
    n = polys.shape[-1]
    two_n = 2 * n
    positions = _GATHER_POSITIONS.get(n)
    if positions is None:
        positions = _GATHER_POSITIONS[n] = np.arange(n, dtype=np.int64)
    # Source index of output coefficient j is (j - e) mod 2N; indices in
    # [N, 2N) wrap negacyclically and re-enter negated.  The ring degree is
    # a power of two, so the reduction is a bitwise mask.
    delta = positions[None, :] - exponents[:, None]  # (B, N)
    source = delta & (two_n - 1) if two_n & (two_n - 1) == 0 else np.mod(delta, two_n)
    wrap = source >= n
    source = np.where(wrap, source - n, source)
    middle = (1,) * (polys.ndim - 2)
    index = np.broadcast_to(source.reshape(polys.shape[0], *middle, n), polys.shape)
    gathered = np.take_along_axis(polys, index, axis=-1)
    gathered *= np.where(wrap, -1, 1).reshape(polys.shape[0], *middle, n)
    return gathered


def batch_monomial_multiply(
    polys: np.ndarray, exponents: np.ndarray, q: int
) -> np.ndarray:
    """Multiply each batch element's polynomials by its own ``X^exponent``.

    ``polys`` has shape ``(B, ..., N)`` (any number of middle axes, e.g. the
    ``k+1`` polynomials of a GLWE stack share their element's exponent);
    ``exponents`` has shape ``(B,)`` and may hold any integers.  The result
    respects the negacyclic sign rule ``X^N = -1`` exactly like the scalar
    :func:`repro.tfhe.polynomial.monomial_multiply`.
    """
    polys = np.asarray(polys, dtype=np.int64)
    exponents = np.asarray(exponents, dtype=np.int64)
    return torus.reduce(_monomial_gather(polys, exponents), q)


# -- the external-product core ---------------------------------------------------


def _batch_external_product(
    diff: np.ndarray, key_spectra: np.ndarray, params: TFHEParameters
) -> np.ndarray:
    """External product of a ``(B, k+1, N)`` GLWE stack against one GGSW.

    The batch twin of one CMux refresh: decompose the stack, transform the
    digit polynomials, multiply-accumulate against the key spectra and
    transform back.  ``einsum`` carries an extra batch subscript but reduces
    over the row axis in the same order as the scalar ``"rf,rcf->cf"``
    contraction, keeping the complex accumulation bit-identical.
    """
    transform = get_transform(params.N)
    batch_size = diff.shape[0]
    rows = (params.k + 1) * params.lb
    # decompose_rows emits (B, k+1, lb, N) — already the poly-major row
    # order of decompose_polynomial_list — so flattening to the row matrix
    # is a contiguous, copy-free reshape.  The transform's fold step
    # performs the float64 conversion, bit-identical to an explicit astype.
    digits = decompose_rows(diff, params.lb, params.log2_base_pbs, params.q_bits)
    digit_polys = digits.reshape(batch_size, rows, params.N)
    digit_spectra = transform.forward(digit_polys)
    accumulated = np.einsum("brf,rcf->bcf", digit_spectra, key_spectra)
    result = transform.inverse(accumulated)
    return torus.reduce(np.round(result).astype(np.int64), params.q)


def batch_blind_rotate(
    test_vector: np.ndarray,
    batch: LweBatch,
    bootstrapping_key: BootstrappingKey,
    params: TFHEParameters,
) -> GlweBatch:
    """Homomorphically rotate ``test_vector`` by each ciphertext's phase.

    One shared test vector, ``B`` encrypted phases: the batch twin of
    :func:`repro.tfhe.blind_rotate.blind_rotate`.  Each of the ``n``
    iterations rotates the whole accumulator stack by the per-element
    switched mask exponent and refreshes it with one batched CMux against
    the iteration's GGSW.
    """
    if len(bootstrapping_key) != batch.dimension:
        raise ValueError(
            f"bootstrapping key has {len(bootstrapping_key)} entries but the "
            f"ciphertexts have dimension {batch.dimension}"
        )
    masks_2n, bodies_2n = batch_modulus_switch(batch, params)
    batch_size = len(batch)
    # The accumulator is carried *unreduced*: the rotation is a signed
    # permutation and each CMux adds a canonical-range product, so every
    # intermediate stays within ``(n + 1) * q`` — far inside int64 — and one
    # reduction per iteration (the CMux difference, which feeds the digit
    # decomposition and therefore must be canonical) replaces four.  The
    # final GlweBatch construction reduces once; modular arithmetic makes
    # the result bit-identical to the scalar step-by-step reductions.
    accumulator = np.zeros((batch_size, params.k + 1, params.N), dtype=np.int64)
    initial = np.broadcast_to(
        np.asarray(test_vector, dtype=np.int64), (batch_size, params.N)
    )
    accumulator[:, params.k, :] = _monomial_gather(initial, -bodies_2n)
    for index in range(batch.dimension):
        exponents = masks_2n[:, index]
        if not exponents.any():
            continue  # every element skips, exactly like the scalar loop
        rotated = _monomial_gather(accumulator, exponents)
        diff = torus.reduce(rotated - accumulator, params.q)
        product = _batch_external_product(
            diff, bootstrapping_key[index].spectra, params
        )
        accumulator += product
    return GlweBatch(accumulator[:, : params.k], accumulator[:, params.k], params)


def batch_sample_extract(glwe_batch: GlweBatch) -> LweBatch:
    """Extract the constant-coefficient LWE ciphertext of every element.

    The batch twin of :meth:`repro.tfhe.glwe.GlweCiphertext.sample_extract`
    at index 0: mask coefficient ``i*N + j`` is ``A_i[-j]`` with the
    negacyclic sign for ``j > 0``.
    """
    masks = glwe_batch.masks  # (B, k, N)
    extracted = np.concatenate([masks[..., :1], -masks[..., :0:-1]], axis=-1)
    batch_size = len(glwe_batch)
    params = glwe_batch.params
    return LweBatch(
        extracted.reshape(batch_size, params.k * params.N),
        glwe_batch.bodies[:, 0],
        params,
    )


def batch_keyswitch(
    batch: LweBatch,
    keyswitching_key: KeySwitchingKey,
    params: TFHEParameters,
) -> LweBatch:
    """Switch a batch of extracted ciphertexts back to the ``n``-dim key.

    The batch twin of :func:`repro.tfhe.keyswitch.keyswitch`; the digit and
    contraction arithmetic is pure ``int64``, so equality with the scalar
    path is exact by construction.
    """
    input_dim = params.k * params.N
    if batch.dimension != input_dim:
        raise ValueError(
            f"expected extracted ciphertexts of dimension {input_dim}, "
            f"got {batch.dimension}"
        )
    digits = decompose(batch.masks, params.lk, params.log2_base_ks, params.q_bits)
    # digits: (lk, B, k*N); table: (k*N, lk, n+1); contract over level and
    # input coefficient in one step.
    combination = np.einsum("lbj,jlc->bc", digits, keyswitching_key.ciphertexts)
    masks = torus.reduce(-combination[:, : params.n], params.q)
    bodies = np.mod(batch.bodies - combination[:, params.n], params.q)
    return LweBatch(masks, bodies, params)


# -- full bootstraps -------------------------------------------------------------


def batch_bootstrap_with_test_vector(
    batch: LweBatch,
    test_vector: np.ndarray,
    bootstrapping_key: BootstrappingKey,
    params: TFHEParameters,
    keyswitching_key: KeySwitchingKey | None = None,
) -> BatchBootstrapResult:
    """Blind rotate + sample extract (+ keyswitch) for a whole batch."""
    accumulator = batch_blind_rotate(test_vector, batch, bootstrapping_key, params)
    extracted = batch_sample_extract(accumulator)
    if keyswitching_key is None:
        return BatchBootstrapResult(extracted, extracted)
    switched = batch_keyswitch(extracted, keyswitching_key, params)
    return BatchBootstrapResult(switched, extracted)


def batch_programmable_bootstrap(
    batch: LweBatch,
    function: Callable[[int], int],
    bootstrapping_key: BootstrappingKey,
    params: TFHEParameters,
    keyswitching_key: KeySwitchingKey | None = None,
    output_delta: int | None = None,
) -> BatchBootstrapResult:
    """Evaluate ``f`` on every encrypted message while refreshing the noise.

    The batch twin of :func:`repro.tfhe.bootstrap.programmable_bootstrap`:
    one test vector is built for the whole batch (it depends only on the
    function and the parameters) and every element is rotated by its own
    phase.
    """
    test_vector = make_test_vector(function, params, output_delta)
    return batch_bootstrap_with_test_vector(
        batch, test_vector, bootstrapping_key, params, keyswitching_key
    )


def batch_bootstrap_to_sign(
    batch: LweBatch,
    bootstrapping_key: BootstrappingKey,
    params: TFHEParameters,
    keyswitching_key: KeySwitchingKey | None = None,
    magnitude: int | None = None,
) -> BatchBootstrapResult:
    """Gate-bootstrapping primitive over a batch: phase sign onto ``±q/8``."""
    value = params.q // 8 if magnitude is None else int(magnitude)
    test_vector = make_constant_test_vector(value, params)
    return batch_bootstrap_with_test_vector(
        batch, test_vector, bootstrapping_key, params, keyswitching_key
    )


# -- client-side helpers ---------------------------------------------------------


def batch_encrypt(
    values: np.ndarray,
    key_bits: np.ndarray,
    params: TFHEParameters,
    rng: np.random.Generator,
    noise_std: float | None = None,
) -> LweBatch:
    """Encrypt a vector of torus values under a binary LWE key, stacked.

    Draws all masks in one call and all noise in one call, so the *stream*
    of random draws differs from encrypting scalar ciphertexts one by one —
    the ciphertexts are equally valid but not byte-identical to a scalar
    loop on the same generator state.  (Server-side kernels, where the
    bit-for-bit contract lives, involve no randomness.)
    """
    values = np.asarray(values, dtype=np.int64)
    if values.ndim != 1 or values.shape[0] == 0:
        raise ValueError(f"expected a non-empty 1-D value vector, got shape {values.shape}")
    key_bits = np.asarray(key_bits, dtype=np.int64)
    std = params.lwe_noise_std if noise_std is None else noise_std
    masks = torus.uniform((values.shape[0], key_bits.shape[0]), params.q, rng)
    noise = torus.gaussian_noise(values.shape[0], std, params.q, rng)
    bodies = masks @ key_bits + values + noise
    return LweBatch(masks, bodies, params)


def batch_phase(batch: LweBatch, key_bits: np.ndarray) -> np.ndarray:
    """Noisy phases ``b - <a, s>`` of a batch, shape ``(B,)``.

    Exact ``int64`` arithmetic, identical to the scalar
    :meth:`repro.tfhe.lwe.LweCiphertext.phase` element for element.
    """
    key_bits = np.asarray(key_bits, dtype=np.int64)
    if key_bits.shape[0] != batch.dimension:
        raise ValueError(
            f"key dimension {key_bits.shape[0]} does not match ciphertext "
            f"dimension {batch.dimension}"
        )
    return np.mod(batch.bodies - batch.masks @ key_bits, batch.params.q)
