"""Bit-exact model of the streaming decomposer unit (Section V-B, Fig. 6).

The Strix decomposer turns a stream of torus coefficients into ``lb`` signed
digits per coefficient using only masking, shifting and addition — no
multipliers or dividers.  The paper splits the datapath into two steps:

* a **rounding step** that keeps the ``lb * log2(B)`` most significant bits
  of the coefficient with carry-correct rounding (mask the kept bits, add the
  rounding carry extracted from the dropped bits);
* an **extraction step** that walks the rounded value from the least
  significant digit upwards, extracting ``log2(B)`` bits at a time with a
  precomputed mask, re-centering each digit into ``[-B/2, B/2)`` and
  forwarding the +1 carry to the next digit as a plain addition.

This module implements exactly that bit-level datapath (one lane) together
with the lane/throughput bookkeeping of the full unit, and is verified
against the reference :func:`repro.tfhe.decomposition.decompose` — i.e. it
demonstrates the paper's claim that the decomposition can be built from
mask/shift/add alone.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.config import StrixConfig
from repro.params import TFHEParameters
from repro.tfhe.decomposition import decompose


@dataclass(frozen=True)
class DecomposerLaneConfig:
    """Precomputed constants of one decomposer lane.

    Everything the hardware needs is derived once from the TFHE parameters:
    bit masks for the rounding and extraction steps, the shift amounts, and
    the sign-threshold constant used to re-center digits.
    """

    q_bits: int
    levels: int
    log2_base: int

    @property
    def kept_bits(self) -> int:
        """Bits kept by the rounding step."""
        return self.levels * self.log2_base

    @property
    def dropped_bits(self) -> int:
        """Low-order bits discarded (with rounding) by the rounding step."""
        return self.q_bits - self.kept_bits

    @property
    def keep_mask(self) -> int:
        """Mask selecting the kept most-significant bits."""
        return ((1 << self.kept_bits) - 1) << self.dropped_bits

    @property
    def round_bit_mask(self) -> int:
        """Mask selecting the highest dropped bit (the rounding carry)."""
        if self.dropped_bits == 0:
            return 0
        return 1 << (self.dropped_bits - 1)

    @property
    def digit_mask(self) -> int:
        """Mask selecting one ``log2(B)``-bit digit."""
        return (1 << self.log2_base) - 1

    @property
    def half_base(self) -> int:
        """The re-centering threshold ``B / 2``."""
        return 1 << (self.log2_base - 1)


class StreamingDecomposerLane:
    """One lane of the decomposer: coefficients in, ``lb`` digits out.

    The implementation deliberately uses only the operations available to the
    hardware datapath of Fig. 6: bitwise AND with precomputed masks, logical
    shifts, and additions.
    """

    def __init__(self, params: TFHEParameters, keyswitch: bool = False):
        levels = params.lk if keyswitch else params.lb
        log2_base = params.log2_base_ks if keyswitch else params.log2_base_pbs
        if levels * log2_base > params.q_bits:
            raise ValueError("decomposition keeps more bits than the torus width")
        self.config = DecomposerLaneConfig(
            q_bits=params.q_bits, levels=levels, log2_base=log2_base
        )

    # -- the two hardware steps ------------------------------------------------

    def rounding_step(self, coefficient: int) -> int:
        """Keep the top ``lb*log2(B)`` bits with carry-correct rounding.

        Returns the rounded value right-aligned (an integer in
        ``[0, B^lb]``); a carry out of the top bit corresponds to wrapping to
        zero modulo ``B^lb`` and is handled by the extraction step's natural
        overflow behaviour.
        """
        cfg = self.config
        kept = coefficient & cfg.keep_mask
        round_carry = 1 if (coefficient & cfg.round_bit_mask) else 0
        return (kept >> cfg.dropped_bits) + round_carry

    def extraction_step(self, rounded: int) -> list[int]:
        """Extract ``lb`` signed digits from the rounded value.

        Works from the least significant digit upwards; each digit above
        ``B/2`` is re-centered by subtracting ``B`` and forwarding a +1 carry
        to the next digit — additions and masks only.
        """
        cfg = self.config
        digits_lsb_first: list[int] = []
        remaining = rounded
        carry = 0
        for _ in range(cfg.levels):
            raw = (remaining & cfg.digit_mask) + carry
            remaining >>= cfg.log2_base
            if raw >= cfg.half_base:
                digit = raw - (1 << cfg.log2_base)
                carry = 1
            else:
                digit = raw
                carry = 0
            digits_lsb_first.append(digit)
        # Level 1 (most significant, multiplying q/B) comes out last.
        return digits_lsb_first[::-1]

    def decompose_coefficient(self, coefficient: int) -> list[int]:
        """Full lane operation: rounding followed by extraction."""
        return self.extraction_step(self.rounding_step(int(coefficient)))

    def decompose_polynomial(self, coefficients: np.ndarray) -> np.ndarray:
        """Decompose every coefficient of a polynomial (shape ``(lb, N)``)."""
        coefficients = np.asarray(coefficients, dtype=np.int64)
        output = np.empty((self.config.levels, coefficients.shape[0]), dtype=np.int64)
        for index, coefficient in enumerate(coefficients):
            output[:, index] = self.decompose_coefficient(int(coefficient))
        return output

    def matches_reference(self, coefficients: np.ndarray) -> bool:
        """Check bit-exact agreement with the reference decomposition."""
        cfg = self.config
        reference = decompose(
            np.asarray(coefficients, dtype=np.int64), cfg.levels, cfg.log2_base, cfg.q_bits
        )
        return bool(np.array_equal(self.decompose_polynomial(coefficients), reference))


class StreamingDecomposerUnit:
    """The full decomposer unit: ``2*CLP`` lanes, ``CoLP`` instances per HSC."""

    def __init__(self, params: TFHEParameters, config: StrixConfig, keyswitch: bool = False):
        self.params = params
        self.config = config
        self.lanes = [
            StreamingDecomposerLane(params, keyswitch)
            for _ in range(config.effective_lanes)
        ]

    @property
    def lanes_per_instance(self) -> int:
        """Coefficient lanes per physical decomposer instance."""
        return self.config.effective_lanes

    @property
    def coefficients_per_cycle(self) -> int:
        """Coefficients consumed per cycle by one HSC's decomposer instances."""
        return self.config.effective_lanes * self.config.colp

    def cycles_per_polynomial(self) -> int:
        """Cycles to emit the digits of one input polynomial.

        The unit produces ``lb`` output polynomials per input polynomial,
        streaming ``2*CLP`` output coefficients per cycle per instance
        (Section V-B: ``N / CLP * lb`` cycles per polynomial at CLP lanes).
        """
        outputs = self.params.N * self.params.lb
        return -(-outputs // self.lanes_per_instance)

    def decompose_stream(self, polynomials: np.ndarray) -> np.ndarray:
        """Functionally decompose a batch of polynomials (lane-interleaved).

        ``polynomials`` has shape ``(m, N)``; the result has shape
        ``(m, lb, N)`` and is bit-exact with the reference decomposition.
        Coefficients are processed round-robin across the lanes exactly as
        the hardware would interleave them, which the tests use to show the
        interleaving does not change the result.
        """
        polynomials = np.asarray(polynomials, dtype=np.int64)
        if polynomials.ndim != 2:
            raise ValueError(f"expected shape (m, N), got {polynomials.shape}")
        m, n_coeffs = polynomials.shape
        result = np.empty((m, self.lanes[0].config.levels, n_coeffs), dtype=np.int64)
        for poly_index in range(m):
            for coeff_index in range(n_coeffs):
                lane = self.lanes[coeff_index % len(self.lanes)]
                result[poly_index, :, coeff_index] = lane.decompose_coefficient(
                    int(polynomials[poly_index, coeff_index])
                )
        return result
