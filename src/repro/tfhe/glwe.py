"""GLWE ciphertexts (the "test vector" carrier of PBS).

A GLWE ciphertext is a vector of ``k + 1`` polynomials
``(A_1(X), ..., A_k(X), B(X))`` in ``Z_q[X]/(X^N + 1)`` with
``B = sum_i A_i * S_i + M + E`` for binary secret polynomials ``S_i``.
During PBS the accumulator holding the rotated test vector is a GLWE
ciphertext; the blind rotation repeatedly rotates it and refreshes it with
external products against the bootstrapping key.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.params import TFHEParameters
from repro.tfhe import polynomial, torus
from repro.tfhe.lwe import LweCiphertext


@dataclass
class GlweCiphertext:
    """A GLWE ciphertext: ``k`` mask polynomials plus one body polynomial.

    Attributes
    ----------
    mask:
        Array of shape ``(k, N)`` holding the mask polynomials.
    body:
        Array of shape ``(N,)`` holding the body polynomial.
    params:
        The parameter set the ciphertext was produced under.
    """

    mask: np.ndarray
    body: np.ndarray
    params: TFHEParameters

    def __post_init__(self) -> None:
        q = self.params.q
        self.mask = torus.reduce(np.asarray(self.mask, dtype=np.int64), q)
        self.body = torus.reduce(np.asarray(self.body, dtype=np.int64), q)
        if self.mask.ndim != 2 or self.mask.shape[1] != self.params.N:
            raise ValueError(
                f"mask must have shape (k, N)=(*, {self.params.N}), got {self.mask.shape}"
            )
        if self.body.shape != (self.params.N,):
            raise ValueError(f"body must have shape ({self.params.N},), got {self.body.shape}")

    @property
    def k(self) -> int:
        """GLWE mask length."""
        return int(self.mask.shape[0])

    # -- constructors ---------------------------------------------------------

    @classmethod
    def trivial(cls, message: np.ndarray, params: TFHEParameters) -> "GlweCiphertext":
        """Noiseless, keyless GLWE encryption of a message polynomial."""
        mask = np.zeros((params.k, params.N), dtype=np.int64)
        return cls(mask, np.asarray(message, dtype=np.int64), params)

    @classmethod
    def encrypt(
        cls,
        message: np.ndarray,
        key: np.ndarray,
        params: TFHEParameters,
        rng: np.random.Generator,
        noise_std: float | None = None,
    ) -> "GlweCiphertext":
        """Encrypt a message polynomial under binary secret polynomials.

        ``key`` has shape ``(k, N)``.
        """
        key = np.asarray(key, dtype=np.int64)
        std = params.glwe_noise_std if noise_std is None else noise_std
        mask = torus.uniform((params.k, params.N), params.q, rng)
        noise = torus.gaussian_noise(params.N, std, params.q, rng)
        body = np.asarray(message, dtype=np.int64) + noise
        for i in range(params.k):
            body = body + polynomial.integer_multiply(mask[i], key[i], params.q)
        return cls(mask, body, params)

    # -- decryption -------------------------------------------------------------

    def phase(self, key: np.ndarray) -> np.ndarray:
        """Return the noisy phase polynomial ``B - sum_i A_i * S_i``."""
        key = np.asarray(key, dtype=np.int64)
        result = self.body.astype(np.int64)
        for i in range(self.k):
            result = result - polynomial.integer_multiply(self.mask[i], key[i], self.params.q)
        return torus.reduce(result, self.params.q)

    # -- homomorphic operations ---------------------------------------------------

    def __add__(self, other: "GlweCiphertext") -> "GlweCiphertext":
        self._check_compatible(other)
        return GlweCiphertext(self.mask + other.mask, self.body + other.body, self.params)

    def __sub__(self, other: "GlweCiphertext") -> "GlweCiphertext":
        self._check_compatible(other)
        return GlweCiphertext(self.mask - other.mask, self.body - other.body, self.params)

    def rotate(self, exponent: int) -> "GlweCiphertext":
        """Multiply every polynomial by ``X^exponent`` (negacyclic rotation)."""
        q = self.params.q
        mask = np.stack(
            [polynomial.monomial_multiply(self.mask[i], exponent, q) for i in range(self.k)]
        )
        body = polynomial.monomial_multiply(self.body, exponent, q)
        return GlweCiphertext(mask, body, self.params)

    def rotate_and_subtract(self, exponent: int) -> "GlweCiphertext":
        """Return ``X^exponent * self - self`` (the Rotator unit's operation)."""
        return self.rotate(exponent) - self

    def sample_extract(self, index: int = 0) -> LweCiphertext:
        """Extract the LWE ciphertext of coefficient ``index`` of the message.

        The resulting LWE ciphertext has dimension ``k * N`` and is encrypted
        under the flattened GLWE secret key (see
        :meth:`repro.tfhe.keys.GlweSecretKey.extracted_lwe_key`).
        """
        n_poly = self.params.N
        if not 0 <= index < n_poly:
            raise ValueError(f"index {index} out of range [0, {n_poly})")
        q = self.params.q
        mask = np.zeros(self.k * n_poly, dtype=np.int64)
        for i in range(self.k):
            poly = self.mask[i]
            extracted = np.empty(n_poly, dtype=np.int64)
            # a'_{i*N + j} = A_i[index - j]  with negacyclic sign when j > index.
            for j in range(n_poly):
                src = index - j
                if src >= 0:
                    extracted[j] = poly[src]
                else:
                    extracted[j] = -poly[src + n_poly]
            mask[i * n_poly : (i + 1) * n_poly] = extracted
        body = int(self.body[index])
        return LweCiphertext(torus.reduce(mask, q), body, self.params)

    def copy(self) -> "GlweCiphertext":
        """Deep copy of the ciphertext."""
        return GlweCiphertext(self.mask.copy(), self.body.copy(), self.params)

    def _check_compatible(self, other: "GlweCiphertext") -> None:
        if self.k != other.k or self.params.N != other.params.N:
            raise ValueError("cannot combine GLWE ciphertexts of different shapes")
