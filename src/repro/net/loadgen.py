"""Closed-loop load generation over real loopback sockets.

Two drivers, mirroring the two :class:`~repro.net.server.NetServer` modes:

* :func:`replay_trace` — deterministic: one connection streams a recorded
  :mod:`repro.apps.traffic` trace in arrival order, ``DRAIN`` flushes the
  tail, and the resulting :class:`~repro.serve.server.ServeReport` is
  bit-for-bit what the in-process :meth:`~repro.serve.Server.simulate`
  produces for the same trace — plus wire counters in ``report.wire``.
* :func:`closed_loop` — live: N concurrent connections each submit their
  slice of the trace one request at a time (a classic closed loop), the
  server batches on the wall clock, and the report carries measured
  round-trip percentiles (``rtt_p50_ms`` / ``rtt_p99_ms``), wire
  throughput and byte counts.

Both have async (``*_async``) and blocking entry points; the blocking ones
spin up their own event loop and are what :mod:`repro.apps.netload` and the
serving benchmark call.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import replace
from typing import Any, Sequence

from repro.flow.retry import (
    CircuitBreaker,
    CircuitOpenError,
    RequestTimeoutError,
    RetryPolicy,
    ServerBusyError,
)
from repro.net.client import AsyncNetClient, NetError
from repro.net.protocol import ErrorCode
from repro.net.server import NetServer
from repro.serve.metrics import percentile
from repro.serve.request import Request
from repro.serve.server import ServeReport, Server


def _rtt_summary(rtts_s: list[float]) -> dict[str, Any]:
    """Round-trip percentiles (milliseconds) from raw client samples."""
    if not rtts_s:
        return {}
    return {
        "rtt_samples": len(rtts_s),
        "rtt_p50_ms": percentile(rtts_s, 50.0) * 1e3,
        "rtt_p99_ms": percentile(rtts_s, 99.0) * 1e3,
        "rtt_mean_ms": sum(rtts_s) / len(rtts_s) * 1e3,
        "rtt_max_ms": max(rtts_s) * 1e3,
    }


def _merge_wire(report: ServeReport, extra: dict[str, Any]) -> ServeReport:
    """Fold extra wire measurements into a report's ``wire`` block."""
    return replace(report, wire={**report.wire, **extra})


async def replay_trace_async(
    trace: Sequence[Request],
    server: Server | None = None,
    label: str = "net-replay",
    host: str = "127.0.0.1",
    **server_options: Any,
) -> ServeReport:
    """Replay a recorded trace through a loopback socket, deterministically.

    One connection, requests streamed in arrival order with their trace
    timestamps, one final ``DRAIN``: the serving outcome is bit-for-bit the
    in-process :meth:`~repro.serve.Server.simulate` result.
    """
    ordered = sorted(trace, key=lambda request: request.arrival_s)
    async with NetServer(
        server=server, mode="replay", host=host, label=label, **server_options
    ) as net:
        bind_host, port = net.address
        client = await AsyncNetClient.connect(bind_host, port)
        try:
            futures = [client.submit_nowait(request) for request in ordered]
            await client.drain()
            # Under an admission policy some futures resolve to typed
            # BUSY/deadline errors instead of outcomes — still one answer
            # per submitted request, never a hang.
            outcomes = await asyncio.gather(*futures, return_exceptions=True)
        finally:
            await client.close()
        dropped = sum(1 for outcome in outcomes if isinstance(outcome, BaseException))
        for outcome in outcomes:
            if isinstance(outcome, BaseException) and not isinstance(
                outcome, (ServerBusyError, NetError)
            ):
                raise outcome
        extra = {
            "client_frames_sent": client.frames_sent,
            "client_bytes_sent": client.bytes_sent,
            "client_bytes_received": client.bytes_received,
        }
        if dropped:
            extra["client_dropped"] = dropped
    report = net.last_report
    assert report is not None and len(outcomes) == len(ordered)
    return _merge_wire(report, extra)


def replay_trace(trace: Sequence[Request], **kwargs: Any) -> ServeReport:
    """Blocking wrapper around :func:`replay_trace_async`."""
    return asyncio.run(replay_trace_async(trace, **kwargs))


async def closed_loop_async(
    trace: Sequence[Request],
    connections: int = 4,
    server: Server | None = None,
    label: str = "net-live",
    host: str = "127.0.0.1",
    deadline_s: float | None = None,
    timeout_s: float | None = None,
    retry: RetryPolicy | None = None,
    breaker: CircuitBreaker | None = None,
    **server_options: Any,
) -> ServeReport:
    """Drive live traffic through N concurrent closed-loop connections.

    The trace supplies the request *mix* (tenants, kinds, sizes); arrival
    times come from the closed loop itself — each connection submits its
    next request the moment the previous outcome returns, which is how real
    clients exercise an online batcher.

    ``deadline_s``/``timeout_s`` apply per request; passing a ``retry``
    policy switches each loop to :meth:`AsyncNetClient.submit_with_retry`
    (optionally guarded by a shared ``breaker``).  Requests still failing
    after retries — typed BUSY, deadline or timeout errors — are counted
    as abandoned and the loop moves on, exactly how a real closed-loop
    client behaves under overload.
    """
    if connections < 1:
        raise ValueError("a closed loop needs at least one connection")
    async with NetServer(
        server=server, mode="live", host=host, label=label, **server_options
    ) as net:
        bind_host, port = net.address
        clients = [
            await AsyncNetClient.connect(bind_host, port) for _ in range(connections)
        ]
        abandoned = 0
        try:
            for client in clients:
                await client.ping()

            async def drive(client: AsyncNetClient, slice_: list[Request]) -> int:
                nonlocal abandoned
                done = 0
                for request in slice_:
                    try:
                        if retry is not None:
                            await client.submit_with_retry(
                                request.tenant,
                                request.kind.value,
                                request.items,
                                model=request.model,
                                deadline_s=deadline_s,
                                timeout_s=timeout_s,
                                retry=retry,
                                breaker=breaker,
                            )
                        else:
                            await client.submit(
                                request.tenant,
                                request.kind.value,
                                request.items,
                                model=request.model,
                                deadline_s=deadline_s,
                                timeout_s=timeout_s,
                            )
                    except (ServerBusyError, RequestTimeoutError, CircuitOpenError):
                        abandoned += 1
                        continue
                    except NetError as error:
                        if error.reply.code == ErrorCode.DEADLINE_EXCEEDED:
                            abandoned += 1
                            continue
                        raise
                    done += 1
                return done

            slices = [list(trace[index::connections]) for index in range(connections)]
            started = time.perf_counter()
            counts = await asyncio.gather(
                *(drive(client, slice_) for client, slice_ in zip(clients, slices))
            )
            wall_s = time.perf_counter() - started
            rtts = [sample for client in clients for sample in client.rtts_s]
            pings = [sample for client in clients for sample in client.ping_rtts_s]
            extra = {
                **_rtt_summary(rtts),
                "ping_p50_ms": percentile(pings, 50.0) * 1e3 if pings else 0.0,
                "wall_s": wall_s,
                "wire_requests_per_s": sum(counts) / wall_s if wall_s > 0 else 0.0,
                "client_bytes_sent": sum(client.bytes_sent for client in clients),
                "client_bytes_received": sum(client.bytes_received for client in clients),
            }
            # Overload counters join the wire block only once they fire, so
            # unsaturated runs keep their historical shape.
            retries = sum(client.retries for client in clients)
            busy = sum(client.busy_replies for client in clients)
            stalls = sum(client.credit_stalls for client in clients)
            if retries:
                extra["client_retries"] = retries
            if busy:
                extra["client_busy_replies"] = busy
            if stalls:
                extra["client_credit_stalls"] = stalls
            if abandoned:
                extra["client_abandoned"] = abandoned
        finally:
            for client in clients:
                await client.close()
    report = net.last_report
    assert report is not None
    return _merge_wire(report, extra)


def closed_loop(trace: Sequence[Request], **kwargs: Any) -> ServeReport:
    """Blocking wrapper around :func:`closed_loop_async`."""
    return asyncio.run(closed_loop_async(trace, **kwargs))
