"""Table VII — TvLP vs CLP trade-off under a fixed 300 GB/s HBM budget.

Regenerates the five-way sweep on parameter set IV and checks the paper's
conclusions: bandwidth demand grows with CLP, high-CLP points become memory
bound and lose throughput, and TvLP=8 / CLP=4 is the sweet spot.
"""

from __future__ import annotations

from repro.analysis.tradeoffs import tvlp_clp_tradeoff
from repro.params import PARAM_SET_IV


def test_table7_tvlp_clp_tradeoff(benchmark, save_result):
    study = benchmark(tvlp_clp_tradeoff, PARAM_SET_IV)

    spot = study.sweet_spot()
    assert (spot.tvlp, spot.clp) == (8, 4)

    by_clp = {point.clp: point for point in study.points}
    assert not by_clp[4].memory_bound
    assert by_clp[32].memory_bound
    assert by_clp[32].required_bandwidth_gbps > 1000
    assert by_clp[32].throughput_pbs_per_s < 0.5 * by_clp[4].throughput_pbs_per_s
    assert by_clp[2].latency_ms > by_clp[4].latency_ms

    save_result("table7_tvlp_clp", study.render())
