"""Client libraries for the serving front-end: async-first, with a sync twin.

:class:`AsyncNetClient` is the real client: one connection, a background
reader task, and any number of in-flight submissions multiplexed by request
id.  ``await client.submit(...)`` is the closed-loop call — it returns the
:class:`~repro.serve.request.RequestOutcome` when the server's ``RESULT``
frame lands and records the round-trip time of every such call.
``submit_nowait`` is the streaming variant trace replay needs: it returns a
future immediately so a whole trace can be pushed down the pipe before the
first result comes back.

:class:`NetClient` is the blocking wrapper for scripts and docs: plain
sockets, one outstanding request at a time, no event loop required.

Typed ``ERROR`` replies surface as :class:`NetError` — carrying the decoded
:class:`~repro.net.protocol.ErrorReply` — never as silently dropped
connections.  Overload answers are typed too: a ``BUSY`` frame raises
:class:`~repro.flow.retry.ServerBusyError` with the server's deterministic
retry-after hint, a per-request ``timeout_s`` raises
:class:`~repro.flow.retry.RequestTimeoutError`, and
:meth:`AsyncNetClient.submit_with_retry` folds both into a capped,
seeded-jitter backoff loop guarded by a circuit breaker (see
:mod:`repro.flow.retry`).  When the server's WELCOME advertises a credit
window the async client self-limits: a ``submit`` past the window parks on
a credit instead of earning a BUSY round trip.
"""

from __future__ import annotations

import asyncio
import socket
import time
from typing import Any

from repro.flow.retry import (
    CircuitBreaker,
    RequestTimeoutError,
    RetryPolicy,
    ServerBusyError,
)
from repro.net import codec, protocol
from repro.net.codec import ResultMessage
from repro.net.protocol import (
    PROTOCOL_VERSION,
    ErrorReply,
    Frame,
    FrameDecoder,
    MessageType,
    Pong,
    ProtocolError,
)
from repro.serve.request import Request, RequestOutcome


class NetError(Exception):
    """A typed ``ERROR`` reply from the server."""

    def __init__(self, reply: ErrorReply):
        super().__init__(f"{reply.code_name}: {reply.message}")
        self.reply = reply


class AsyncNetClient:
    """One connection to a :class:`~repro.net.server.NetServer`.

    Build with :meth:`connect`, which performs the HELLO/WELCOME version
    negotiation before returning.  Every ``submit`` / ``ping`` round trip
    is timed; :attr:`rtts_s` and :attr:`ping_rtts_s` accumulate the
    samples the load generator turns into wire-level percentiles.
    """

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer
        self._decoder = FrameDecoder()
        self._write_lock = asyncio.Lock()
        self._next_id = 0
        self._next_nonce = 0
        #: request id -> (submitted request, send time, outcome future)
        self._pending: dict[int, tuple[Request, float, asyncio.Future]] = {}
        self._pings: dict[int, tuple[float, asyncio.Future]] = {}
        self._hello: asyncio.Future | None = None
        self._drained: asyncio.Future | None = None
        self._stats: asyncio.Future | None = None
        self._reader_task: asyncio.Task | None = None
        self._closed = False
        self.negotiated_version: int | None = None
        #: In-flight window the server's WELCOME advertised (``None`` when
        #: the server runs without credit-based flow control).
        self.credit_window: int | None = None
        self._inflight = 0
        self._credit_free = asyncio.Event()
        self._credit_free.set()
        #: Times a ``submit`` had to park waiting for a credit.
        self.credit_stalls = 0
        #: Last credit count the server piggy-backed on a RESULT frame
        #: (``None`` until one arrives).  The local window never drifts
        #: from the server's — a timed-out request keeps its credit until
        #: the server's late reply lands — so this is the server's view
        #: for introspection, not a correction signal.
        self.server_credits: int | None = None
        #: BUSY replies received (shed work and exhausted windows).
        self.busy_replies = 0
        #: Re-sends performed by :meth:`submit_with_retry`.
        self.retries = 0
        #: Round-trip seconds of every awaited ``submit`` call.
        self.rtts_s: list[float] = []
        #: Round-trip seconds of every ``ping`` call.
        self.ping_rtts_s: list[float] = []
        self.frames_sent = 0
        self.frames_received = 0
        self.bytes_sent = 0
        self.bytes_received = 0

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        versions: tuple[int, ...] = (PROTOCOL_VERSION,),
    ) -> "AsyncNetClient":
        """Open a connection and negotiate a protocol version."""
        reader, writer = await asyncio.open_connection(host, port)
        client = cls(reader, writer)
        client._reader_task = asyncio.get_running_loop().create_task(client._read_loop())
        loop = asyncio.get_running_loop()
        client._hello = loop.create_future()
        await client._send(MessageType.HELLO, protocol.encode_hello(versions))
        welcome = await client._hello
        client.negotiated_version = welcome.version
        client.credit_window = welcome.credit_window
        return client

    # -- requests ----------------------------------------------------------------

    async def submit(
        self,
        tenant: str,
        kind: str,
        items: int = 1,
        model: str | None = None,
        ciphertexts: Any = None,
        deadline_s: float | None = None,
        timeout_s: float | None = None,
    ) -> RequestOutcome:
        """Submit live work and wait for its outcome (round trip is timed).

        ``deadline_s`` is a relative latency budget the server resolves
        against the arrival it stamps (expired work earns a typed
        ``DEADLINE_EXCEEDED`` error, never a silent drop).  ``timeout_s``
        bounds *this* call client-side — including any wait for a credit —
        past it the call is abandoned with
        :class:`~repro.flow.retry.RequestTimeoutError` while the server may
        still finish the work; the abandoned request keeps its credit until
        the server's (late) reply arrives, so the client's window never
        drifts from the server's.  When the server advertised a credit
        window, a submit past it parks here until a reply frees a credit
        (counted in :attr:`credit_stalls`) instead of earning a BUSY round
        trip.
        """
        self._next_id += 1
        request = Request.make(self._next_id, tenant, kind, items, model=model)
        payload = codec.encode_submit(
            request.request_id,
            tenant,
            request.kind.value,
            items,
            model=model,
            ciphertexts=ciphertexts,
            deadline_s=deadline_s,
        )
        if timeout_s is None:
            return await self._deliver(request, payload)
        try:
            return await asyncio.wait_for(self._deliver(request, payload), timeout_s)
        except asyncio.TimeoutError:
            raise RequestTimeoutError(
                f"request {request.request_id} timed out after {timeout_s}s "
                "waiting for its RESULT"
            ) from None

    async def _deliver(self, request: Request, payload: bytes) -> RequestOutcome:
        """Acquire a credit, send the SUBMIT frame, await the RESULT.

        Cancellation (how :meth:`submit`'s per-request timeout lands here)
        is credit-exact: before the frame hits the wire the registration is
        unwound completely; after it, the pending entry stays and keeps its
        credit until the server's reply arrives — the server still counts
        the request in flight, so releasing early would let the two
        windows drift apart and earn BUSY round trips later.
        """
        await self._acquire_credit()
        try:
            future = self._register(request, credited=True)
        except BaseException:
            self._release_credit(True)
            raise
        data = protocol.encode_frame(MessageType.SUBMIT, payload)
        sent = False
        try:
            async with self._write_lock:
                self._write_raw(data)
                sent = True
                await self._writer.drain()
        except BaseException:
            if not sent:
                # The frame never reached the wire, so no reply will ever
                # release this entry — unwind it here.  (The reader may
                # have already failed and released it while we awaited the
                # lock; release only what we still own.)
                entry = self._pending.pop(request.request_id, None)
                if entry is not None:
                    self._release_credit(entry[3])
            raise
        return await future

    async def submit_with_retry(
        self,
        tenant: str,
        kind: str,
        items: int = 1,
        model: str | None = None,
        ciphertexts: Any = None,
        deadline_s: float | None = None,
        timeout_s: float | None = None,
        retry: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
    ) -> RequestOutcome:
        """``submit`` wrapped in capped, seeded-jitter backoff.

        Retries :class:`~repro.flow.retry.ServerBusyError` (honouring the
        server's retry-after hint as a floor) and
        :class:`~repro.flow.retry.RequestTimeoutError`; other failures
        propagate immediately.  An optional ``breaker`` short-circuits the
        loop with :class:`~repro.flow.retry.CircuitOpenError` once the
        server looks down, so a saturated backend is not hammered.
        """
        retry = retry if retry is not None else RetryPolicy()
        loop = asyncio.get_running_loop()
        attempt = 0
        while True:
            attempt += 1
            if breaker is not None:
                breaker.check(loop.time())
            try:
                outcome = await self.submit(
                    tenant,
                    kind,
                    items,
                    model=model,
                    ciphertexts=ciphertexts,
                    deadline_s=deadline_s,
                    timeout_s=timeout_s,
                )
            except (ServerBusyError, RequestTimeoutError) as error:
                if breaker is not None:
                    breaker.record_failure(loop.time())
                if not retry.should_retry(attempt):
                    raise
                hint = error.retry_after_s if isinstance(error, ServerBusyError) else 0.0
                self.retries += 1
                await asyncio.sleep(retry.delay_s(attempt, hint))
                continue
            except BaseException:
                # Non-retryable failure (typed ERROR, connection loss,
                # cancellation): the breaker neither counts it nor may it
                # keep holding the half-open probe slot — an unreleased
                # probe would latch every later check() open forever.
                if breaker is not None:
                    breaker.abort_probe()
                raise
            if breaker is not None:
                breaker.record_success()
            return outcome

    async def submit_request(self, request: Request) -> RequestOutcome:
        """Submit an existing request (timestamps included) and await it."""
        future = self.submit_nowait(request)
        return await future

    def submit_nowait(self, request: Request) -> asyncio.Future:
        """Send a trace request without waiting; returns the outcome future.

        This is the replay primitive: the whole trace streams down the
        connection in arrival order while results flow back as the server's
        batcher releases them.
        """
        payload = codec.submit_from_request(request, with_arrival=True)
        future = self._register(request)
        data = protocol.encode_frame(MessageType.SUBMIT, payload)
        self._write_raw(data)
        return future

    async def _send_submit(self, request: Request, payload: bytes) -> asyncio.Future:
        future = self._register(request)
        await self._send(MessageType.SUBMIT, payload)
        return future

    def _register(self, request: Request, credited: bool = False) -> asyncio.Future:
        if self._closed:
            raise ConnectionError("the client is closed")
        if request.request_id in self._pending:
            raise ValueError(f"request id {request.request_id} is already in flight")
        self._next_id = max(self._next_id, request.request_id)
        future = asyncio.get_running_loop().create_future()
        self._pending[request.request_id] = (request, time.perf_counter(), future, credited)
        return future

    # -- credits -----------------------------------------------------------------

    async def _acquire_credit(self) -> None:
        """Park until the advertised in-flight window has room (if any)."""
        if self.credit_window is None:
            return
        if self._inflight >= self.credit_window:
            self.credit_stalls += 1
            while self._inflight >= self.credit_window:
                self._credit_free.clear()
                await self._credit_free.wait()
        self._inflight += 1

    def _release_credit(self, credited: bool) -> None:
        if not credited or self.credit_window is None:
            return
        self._inflight -= 1
        self._credit_free.set()

    async def ping(self) -> Pong:
        """Round-trip latency echo; the RTT lands in :attr:`ping_rtts_s`."""
        self._next_nonce += 1
        nonce = self._next_nonce
        sent_at = time.perf_counter()
        future = asyncio.get_running_loop().create_future()
        self._pings[nonce] = (sent_at, future)
        await self._send(MessageType.PING, protocol.encode_ping(nonce, sent_at))
        return await future

    async def drain(self) -> None:
        """Ask the server to flush everything batched; returns on ``DRAINED``."""
        self._drained = asyncio.get_running_loop().create_future()
        await self._send(MessageType.DRAIN, b"")
        await self._drained

    async def stats(self) -> dict[str, float]:
        """Scrape the server's metrics registry over the wire.

        Returns the flat ``{name: value}`` snapshot the server's
        :meth:`~repro.serve.server.Server.metrics` produced when the
        ``STATS`` frame was handled.
        """
        self._stats = asyncio.get_running_loop().create_future()
        await self._send(MessageType.STATS, b"")
        return await self._stats

    async def close(self) -> None:
        """Close the connection and stop the reader task."""
        if self._closed:
            return
        self._closed = True
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except asyncio.CancelledError:
                pass
        self._fail_pending(ConnectionError("connection closed"))

    async def __aenter__(self) -> "AsyncNetClient":
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.close()

    # -- transport ---------------------------------------------------------------

    async def _send(self, msg_type: MessageType, payload: bytes) -> None:
        data = protocol.encode_frame(msg_type, payload)
        async with self._write_lock:
            self._write_raw(data)
            await self._writer.drain()

    def _write_raw(self, data: bytes) -> None:
        if self._closed:
            raise ConnectionError("the client is closed")
        self._writer.write(data)
        self.frames_sent += 1
        self.bytes_sent += len(data)

    async def _read_loop(self) -> None:
        try:
            while True:
                data = await self._reader.read(64 * 1024)
                if not data:
                    self._fail_pending(ConnectionError("server closed the connection"))
                    return
                self.bytes_received += len(data)
                for event in self._decoder.feed(data):
                    if isinstance(event, ProtocolError):
                        self._fail_pending(event)
                        if event.fatal:
                            return
                    else:
                        self.frames_received += 1
                        self._handle_frame(event)
        except (ConnectionResetError, BrokenPipeError):
            self._fail_pending(ConnectionError("connection lost"))
        except asyncio.CancelledError:
            raise

    def _handle_frame(self, frame: Frame) -> None:
        msg_type = frame.msg_type
        if msg_type == MessageType.RESULT:
            self._handle_result(codec.decode_result(frame.payload))
        elif msg_type == MessageType.BUSY:
            self._handle_busy(protocol.decode_busy(frame.payload))
        elif msg_type == MessageType.ERROR:
            self._handle_error(protocol.decode_error(frame.payload))
        elif msg_type == MessageType.WELCOME:
            if self._hello is not None and not self._hello.done():
                self._hello.set_result(protocol.decode_welcome(frame.payload))
        elif msg_type == MessageType.PONG:
            pong = protocol.decode_pong(frame.payload)
            entry = self._pings.pop(pong.nonce, None)
            if entry is not None:
                sent_at, future = entry
                self.ping_rtts_s.append(time.perf_counter() - sent_at)
                if not future.done():
                    future.set_result(pong)
        elif msg_type == MessageType.DRAINED:
            if self._drained is not None and not self._drained.done():
                self._drained.set_result(None)
        elif msg_type == MessageType.STATS_REPLY:
            if self._stats is not None and not self._stats.done():
                self._stats.set_result(protocol.decode_stats(frame.payload))

    def _handle_result(self, message: ResultMessage) -> None:
        if message.credits is not None:
            self.server_credits = message.credits
        entry = self._pending.pop(message.request_id, None)
        if entry is None:
            return
        request, sent_at, future, credited = entry
        self._release_credit(credited)
        if future.cancelled():
            # A timed-out submit abandoned this request but kept its
            # credit held (the server still counted it in flight); this
            # late reply is the release point, never an RTT sample.
            return
        self.rtts_s.append(time.perf_counter() - sent_at)
        if not future.done():
            future.set_result(message.to_outcome(request))

    def _handle_busy(self, busy: protocol.BusyReply) -> None:
        """A BUSY reply: the server shed or refused this request."""
        self.busy_replies += 1
        entry = self._pending.pop(busy.request_id, None)
        if entry is None:
            return
        _, _, future, credited = entry
        self._release_credit(credited)
        if not future.done():
            future.set_exception(
                ServerBusyError(busy.reason, retry_after_s=busy.retry_after_s)
            )

    def _handle_error(self, reply: ErrorReply) -> None:
        error = NetError(reply)
        if reply.request_id:
            entry = self._pending.pop(reply.request_id, None)
            if entry is not None:
                _, _, future, credited = entry
                self._release_credit(credited)
                if not future.done():
                    future.set_exception(error)
                return
        if self._hello is not None and not self._hello.done():
            self._hello.set_exception(error)
            return
        self._fail_pending(error)

    def _fail_pending(self, error: Exception) -> None:
        for _, _, future, credited in self._pending.values():
            self._release_credit(credited)
            if not future.done():
                future.set_exception(error)
        self._pending.clear()
        for _, future in self._pings.values():
            if not future.done():
                future.set_exception(error)
        self._pings.clear()
        for waiter in (self._hello, self._drained, self._stats):
            if waiter is not None and not waiter.done():
                waiter.set_exception(error)


class NetClient:
    """Blocking client: plain sockets, one outstanding request at a time.

    The simple face of the protocol for scripts and documentation —
    ``connect``, ``submit``, ``ping``, ``close`` — with the same typed
    :class:`NetError` failures as the async client.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 10.0,
        versions: tuple[int, ...] = (PROTOCOL_VERSION,),
    ):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._decoder = FrameDecoder()
        self._frames: list[Frame] = []
        self._next_id = 0
        self._next_nonce = 0
        self._closed = False
        #: Request ids abandoned by a timed-out ``submit``; their late
        #: RESULT/BUSY/ERROR frames are discarded on sight so a stale
        #: reply is never returned as a *newer* request's outcome.
        self._abandoned: set[int] = set()
        #: Round-trip seconds of every ``submit`` and ``ping`` call.
        self.rtts_s: list[float] = []
        self._timeout = timeout
        self._send(MessageType.HELLO, protocol.encode_hello(versions))
        frame = self._expect(MessageType.WELCOME)
        welcome = protocol.decode_welcome(frame.payload)
        self.negotiated_version = welcome.version
        #: In-flight window the server's WELCOME advertised (informational
        #: here: the blocking client never has more than one in flight).
        self.credit_window = welcome.credit_window

    def submit(
        self,
        tenant: str,
        kind: str,
        items: int = 1,
        model: str | None = None,
        ciphertexts: Any = None,
        deadline_s: float | None = None,
        timeout_s: float | None = None,
    ) -> RequestOutcome:
        """Submit live work and block until its outcome arrives.

        ``deadline_s`` is the relative server-side latency budget;
        ``timeout_s`` bounds this call client-side and raises
        :class:`~repro.flow.retry.RequestTimeoutError` when it runs out.
        A BUSY reply (shed or refused work) raises
        :class:`~repro.flow.retry.ServerBusyError` with the server's
        retry-after hint.
        """
        self._next_id += 1
        request = Request.make(self._next_id, tenant, kind, items, model=model)
        payload = codec.encode_submit(
            request.request_id, tenant, request.kind.value, items,
            model=model, ciphertexts=ciphertexts, deadline_s=deadline_s,
        )
        started = time.perf_counter()
        if timeout_s is not None:
            self._sock.settimeout(timeout_s)
        try:
            self._send(MessageType.SUBMIT, payload)
            frame = self._expect(MessageType.RESULT, request_id=request.request_id)
        except socket.timeout:
            # The server may still answer later; remember the id so the
            # stale reply is discarded instead of desynchronizing the
            # one-outstanding-request stream.
            self._abandoned.add(request.request_id)
            raise RequestTimeoutError(
                f"request {request.request_id} timed out after {timeout_s}s "
                "waiting for its RESULT"
            ) from None
        finally:
            if timeout_s is not None:
                self._sock.settimeout(self._timeout)
        self.rtts_s.append(time.perf_counter() - started)
        return codec.decode_result(frame.payload).to_outcome(request)

    def ping(self) -> float:
        """One latency echo; returns the round-trip time in seconds."""
        self._next_nonce += 1
        started = time.perf_counter()
        self._send(MessageType.PING, protocol.encode_ping(self._next_nonce, started))
        self._expect(MessageType.PONG)
        rtt = time.perf_counter() - started
        self.rtts_s.append(rtt)
        return rtt

    def stats(self) -> dict[str, float]:
        """Scrape the server's metrics registry over the wire."""
        self._send(MessageType.STATS, b"")
        frame = self._expect(MessageType.STATS_REPLY)
        return protocol.decode_stats(frame.payload)

    def close(self) -> None:
        """Close the socket."""
        if not self._closed:
            self._closed = True
            self._sock.close()

    def __enter__(self) -> "NetClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- transport ---------------------------------------------------------------

    def _send(self, msg_type: MessageType, payload: bytes) -> None:
        self._sock.sendall(protocol.encode_frame(msg_type, payload))

    def _expect(self, msg_type: MessageType, request_id: int | None = None) -> Frame:
        """Read frames until the awaited reply arrives.

        ``request_id`` correlates RESULT frames: a RESULT for any other id
        belongs to a request a timed-out ``submit`` abandoned and is
        discarded, never returned as the *current* call's outcome.  Late
        BUSY/ERROR replies for abandoned ids are likewise dropped instead
        of raising against the wrong request.
        """
        while True:
            frame = self._next_frame()
            if frame.msg_type == MessageType.ERROR:
                reply = protocol.decode_error(frame.payload)
                if reply.request_id and reply.request_id in self._abandoned:
                    self._abandoned.discard(reply.request_id)
                    continue
                raise NetError(reply)
            if frame.msg_type == MessageType.BUSY:
                busy = protocol.decode_busy(frame.payload)
                if busy.request_id in self._abandoned:
                    self._abandoned.discard(busy.request_id)
                    continue
                raise ServerBusyError(busy.reason, retry_after_s=busy.retry_after_s)
            if frame.msg_type == MessageType.RESULT:
                result_id = codec.decode_result(frame.payload).request_id
                if result_id != request_id:
                    self._abandoned.discard(result_id)
                    continue
                return frame
            if frame.msg_type == msg_type:
                return frame
            # Any other frame (e.g. a stray PONG) is skipped.

    def _next_frame(self) -> Frame:
        while True:
            if self._frames:
                return self._frames.pop(0)
            data = self._sock.recv(64 * 1024)
            if not data:
                raise ConnectionError("server closed the connection")
            for event in self._decoder.feed(data):
                if isinstance(event, ProtocolError):
                    raise event
                self._frames.append(event)
