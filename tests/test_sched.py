"""Tests for the unified scheduling core: cost models, layouts, interconnect.

Covers the refactor invariant (one device + data-parallel + analytical is
bit-for-bit the closed-form service arithmetic), the event-driven cost
model's scheduler-visible effects, stage partitioning, pipeline and elastic
placement, BSK/KSK key shipping on tenant migration, and the shared
did-you-mean error shape of every registry.
"""

from __future__ import annotations

import pickle

import pytest

from repro import run
from repro.apps.deep_nn import ZAMA_DEEP_NN_MODELS, build_deep_nn_graph
from repro.arch.config import StrixClusterConfig
from repro.arch.interconnect import InterconnectModel
from repro.errors import (
    UnknownCostModelError,
    UnknownLayoutError,
    UnknownNameError,
    UnknownPolicyError,
)
from repro.params import PARAM_SET_I, get_parameters
from repro.sched import (
    AnalyticalCostModel,
    ElasticLayout,
    EventDrivenCostModel,
    batch_graph,
    get_cost_model,
    get_layout,
    list_cost_models,
    list_layouts,
    partition_graph_stages,
)
from repro.serve import Request, Server, StrixCluster
from repro.serve.batcher import Batch
from repro.serve.sharding import get_policy
from repro.sim.scheduler import StrixScheduler


def make_batch(requests, batch_id=0, created_s=0.0):
    return Batch(
        batch_id=batch_id,
        requests=tuple(requests),
        created_s=created_s,
        flush_reason="full",
    )


def bootstrap_batch(items=64, tenant="t0", batch_id=0):
    return make_batch(
        [Request.make(1, tenant, "bootstrap", items)], batch_id=batch_id
    )


# -- interconnect model ------------------------------------------------------------


def test_interconnect_payload_sizes_match_memory_model():
    params = PARAM_SET_I
    model = InterconnectModel(StrixClusterConfig())
    assert model.lwe_bytes(params) == (params.n + 1) * 4
    assert model.ciphertext_bytes(params, 10) == 10 * model.lwe_bytes(params)
    # One Fourier-domain GGSW per LWE-key bit.
    assert model.bootstrapping_key_bytes(params) % params.n == 0
    assert model.key_set_bytes(params) == (
        model.bootstrapping_key_bytes(params) + model.keyswitching_key_bytes(params)
    )


def test_interconnect_transfer_scales_with_bandwidth():
    fast = InterconnectModel(StrixClusterConfig(interconnect_gbps=128.0))
    slow = InterconnectModel(StrixClusterConfig(interconnect_gbps=32.0))
    params = PARAM_SET_I
    assert slow.key_shipping_s(params) == pytest.approx(
        4 * fast.key_shipping_s(params)
    )
    assert fast.transfer_s(0) == 0.0


# -- batch graph lowering ----------------------------------------------------------


def test_batch_graph_coalesces_simple_traffic():
    params = PARAM_SET_I
    batch = make_batch(
        [
            Request.make(1, "a", "encrypt", 10),
            Request.make(2, "b", "bootstrap", 7),
            Request.make(3, "a", "gate", 5),
        ]
    )
    graph = batch_graph(batch, params)
    assert len(graph) == 2  # one LINEAR node, one fused PBS node
    assert graph.total_pbs() == 12
    assert graph.total_linear_operations() == 10 * params.n


def test_batch_graph_expands_inference_models():
    params = get_parameters("I")
    batch = make_batch(
        [
            Request.make(1, "a", "inference", 1, model="NN-20"),
            Request.make(2, "b", "bootstrap", 4),
        ]
    )
    graph = batch_graph(batch, params)
    model_graph = build_deep_nn_graph(ZAMA_DEEP_NN_MODELS["NN-20"], params)
    assert len(graph) == 1 + len(model_graph)
    assert graph.total_pbs() == ZAMA_DEEP_NN_MODELS["NN-20"].pbs_count() + 4
    # Layer dependencies survive the request prefixing.
    assert len(graph.levels()) > 2


# -- stage partitioning ------------------------------------------------------------


def test_partition_covers_all_nodes_contiguously():
    params = get_parameters("I")
    graph = build_deep_nn_graph(ZAMA_DEEP_NN_MODELS["NN-50"], params)
    plan = partition_graph_stages(graph, 4)
    assert plan.stages == 4
    assert sum(len(stage) for stage in plan.graphs) == len(graph)
    assert sum(stage.total_pbs() for stage in plan.graphs) == graph.total_pbs()
    # Stage 0 reads from the host; later stages have real boundary traffic.
    assert plan.boundary_ciphertexts[0] == 0
    assert all(count > 0 for count in plan.boundary_ciphertexts[1:])


def test_partition_never_exceeds_level_count():
    params = PARAM_SET_I
    batch = bootstrap_batch(128)
    graph = batch_graph(batch, params)  # a single PBS node -> one level
    plan = partition_graph_stages(graph, 8)
    assert plan.stages == 1


def test_partition_rejects_zero_stages():
    params = PARAM_SET_I
    with pytest.raises(ValueError, match="at least one stage"):
        partition_graph_stages(batch_graph(bootstrap_batch(), params), 0)


# -- cost models -------------------------------------------------------------------


def test_cost_model_registry():
    assert list_cost_models() == ["analytical", "event"]
    assert isinstance(get_cost_model("analytical"), AnalyticalCostModel)
    instance = EventDrivenCostModel()
    assert get_cost_model(instance) is instance


def test_analytical_batch_cost_matches_closed_form():
    """The analytical model is the historical arithmetic, term for term."""
    params = PARAM_SET_I
    cluster = StrixCluster(devices=1)
    device = cluster.devices[0]
    batch = make_batch(
        [Request.make(1, "a", "bootstrap", 48), Request.make(2, "b", "encrypt", 16)]
    )
    cost = AnalyticalCostModel().batch_cost(batch, params, device)
    pbs_s = device.accelerator.pbs_batch_time_ms(params, 48) / 1e3
    linear_s = (
        16 * params.n / StrixScheduler.linear_macs_per_second(device.accelerator.config)
    )
    assert cost.compute_s == pbs_s + linear_s
    assert cost.pbs == 48
    assert cost.breakdown["pbs_s"] == pbs_s
    assert cost.breakdown["linear_s"] == linear_s


def test_event_cost_equals_scheduler_on_batch_graph():
    params = PARAM_SET_I
    cluster = StrixCluster(devices=1)
    device = cluster.devices[0]
    batch = make_batch([Request.make(1, "a", "inference", 1, model="NN-20")])
    cost = EventDrivenCostModel().batch_cost(batch, params, device)
    schedule = device.scheduler.run(batch_graph(batch, params))
    assert cost.compute_s == schedule.total_time_s
    assert cost.epochs == schedule.total_epochs


def test_event_cost_sees_fragmentation_analytical_cannot():
    """A deep model's dependency levels fragment epochs under the event model."""
    params = PARAM_SET_I
    cluster = StrixCluster(devices=1)
    device = cluster.devices[0]
    batch = make_batch([Request.make(1, "a", "inference", 1, model="NN-50")])
    analytical = AnalyticalCostModel().batch_cost(batch, params, device)
    event = EventDrivenCostModel().batch_cost(batch, params, device)
    # Same bootstraps, different service: layer-by-layer scheduling cannot
    # pack the whole model into back-to-back full epochs.
    assert event.pbs == analytical.pbs
    assert event.compute_s > analytical.compute_s
    assert event.epochs >= analytical.epochs


# -- layouts: registry + dispatch ----------------------------------------------------


def test_layout_registry():
    assert list_layouts() == ["data-parallel", "elastic", "pipeline"]
    instance = ElasticLayout(min_devices=2)
    assert get_layout(instance) is instance


def test_data_parallel_single_device_dispatch_is_closed_form():
    """devices=1 + analytical + data-parallel reproduces the legacy service."""
    params = PARAM_SET_I
    cluster = StrixCluster(devices=1)
    batch = make_batch(
        [Request.make(1, "a", "bootstrap", 48), Request.make(2, "b", "encrypt", 16)]
    )
    expected = cluster.batch_service_s(batch, params)
    device, start, end = cluster.dispatch(batch, 0.0, params)
    assert device == 0
    assert start == 0.0
    assert end == expected
    # No key shipping on a one-device cluster, ever.
    dispatch = cluster.dispatch(bootstrap_batch(8, tenant="a", batch_id=1), end, params)
    assert dispatch.breakdown["key_shipping_s"] == 0.0


def test_key_shipping_charged_on_migration_only():
    params = PARAM_SET_I
    cluster = StrixCluster(devices=2, policy="round-robin")
    first = cluster.dispatch(bootstrap_batch(8, tenant="t"), 0.0, params)
    assert first.breakdown["key_shipping_s"] == 0.0  # onboarding is free
    second = cluster.dispatch(bootstrap_batch(8, tenant="t", batch_id=1), 0.0, params)
    # Round-robin moved the tenant to the other device: one key set ships.
    assert second.device != first.device
    assert second.breakdown["key_shipping_s"] == pytest.approx(
        cluster.interconnect.key_shipping_s(params)
    )
    # Keys accumulate: devices that already received a tenant's keys keep
    # them, so bouncing back and forth never ships the same set twice.
    for batch_id in range(2, 6):
        again = cluster.dispatch(
            bootstrap_batch(8, tenant="t", batch_id=batch_id), 0.0, params
        )
        assert again.breakdown["key_shipping_s"] == 0.0


def test_affinity_policy_never_ships_keys():
    params = PARAM_SET_I
    cluster = StrixCluster(devices=4, policy="affinity")
    for batch_id in range(6):
        dispatch = cluster.dispatch(
            bootstrap_batch(8, tenant="sticky", batch_id=batch_id), 0.0, params
        )
        assert dispatch.breakdown["key_shipping_s"] == 0.0


def test_reset_serving_state_clears_key_residency():
    params = PARAM_SET_I
    cluster = StrixCluster(devices=2, policy="round-robin")
    cluster.dispatch(bootstrap_batch(8, tenant="t"), 0.0, params)
    shipped = cluster.dispatch(
        bootstrap_batch(8, tenant="t", batch_id=1), 0.0, params
    ).breakdown["key_shipping_s"]
    assert shipped > 0.0
    cluster.reset_serving_state()
    fresh = cluster.dispatch(bootstrap_batch(8, tenant="t", batch_id=2), 0.0, params)
    assert fresh.breakdown["key_shipping_s"] == 0.0


# -- pipeline layout ----------------------------------------------------------------


def test_pipeline_dispatch_reports_stages_and_transfers():
    params = get_parameters("I")
    cluster = StrixCluster(devices=4, layout="pipeline")
    batch = make_batch([Request.make(1, "a", "inference", 1, model="NN-50")])
    dispatch = cluster.dispatch(batch, 0.0, params)
    assert len(dispatch.stages) == 4
    assert dispatch.devices == (0, 1, 2, 3)
    assert dispatch.device == 3  # last stage completes the batch
    # Stages serialize: each starts at or after the previous stage's end.
    for earlier, later in zip(dispatch.stages, dispatch.stages[1:]):
        assert later.start_s >= earlier.end_s
        assert later.transfer_in_s > 0.0
    assert dispatch.breakdown["stage_transfer_s"] > 0.0
    assert dispatch.end_s >= dispatch.stages[-1].end_s


def test_pipeline_run_reports_per_stage_breakdown():
    result = run("NN-100", backend="strix-cluster", devices=4, layout="pipeline")
    stages = result.details["stages"]
    assert len(stages) == 4
    assert result.details["layout"] == "pipeline"
    assert result.details["stage_transfer_s"] > 0.0
    assert "key_shipping_s" in result.details
    assert sum(stage["pbs"] for stage in stages) == result.pbs_count
    # Latency is the sum of stage latencies plus boundary transfers.
    reconstructed = (
        sum(stage["latency_s"] + stage["transfer_in_s"] for stage in stages)
    )
    assert result.latency_s == pytest.approx(reconstructed, rel=1e-12)


def test_pipeline_shares_tenant_keys_across_stages_once():
    params = get_parameters("I")
    cluster = StrixCluster(devices=2, layout="pipeline")
    batch = make_batch([Request.make(1, "a", "inference", 1, model="NN-20")])
    first = cluster.dispatch(batch, 0.0, params)
    assert first.breakdown["key_shipping_s"] == 0.0
    again = make_batch(
        [Request.make(2, "a", "inference", 1, model="NN-20")], batch_id=1
    )
    second = cluster.dispatch(again, first.end_s, params)
    assert second.breakdown["key_shipping_s"] == 0.0  # keys already staged


# -- elastic layout -----------------------------------------------------------------


def test_elastic_scales_up_under_backlog():
    params = PARAM_SET_I
    layout = ElasticLayout(
        min_devices=1, scale_up_backlog_s=1e-4, scale_up_latency_s=2e-3
    )
    cluster = StrixCluster(devices=4, policy="least-loaded", layout=layout)
    # Hammer the cluster at time zero: everything lands on device 0 first,
    # backlog builds, devices provision one by one.
    for batch_id in range(8):
        cluster.dispatch(bootstrap_batch(512, batch_id=batch_id), 0.0, params)
    assert layout.scale_ups > 0
    used = {device.index for device in cluster.devices if device.batches > 0}
    assert len(used) > 1


def test_elastic_scale_up_latency_delays_new_device():
    params = PARAM_SET_I
    layout = ElasticLayout(
        min_devices=1, scale_up_backlog_s=1e-6, scale_up_latency_s=5e-3
    )
    cluster = StrixCluster(devices=2, policy="least-loaded", layout=layout)
    cluster.dispatch(bootstrap_batch(2048), 0.0, params)
    # Backlog now exceeds the threshold; the next dispatch provisions
    # device 1 but cannot start before the scale-up latency has elapsed.
    second = cluster.dispatch(bootstrap_batch(64, batch_id=1), 1e-6, params)
    if second.device == 1:
        assert second.start_s >= 1e-6 + 5e-3
    assert layout.scale_ups == 1


def test_elastic_does_not_cascade_while_provisioning():
    """One backlog blip provisions one device, not the whole fleet.

    A provisioning device's scale-up latency must not itself read as
    backlog: while one device is on its way, further dispatches see the
    capacity already coming and hold off.
    """
    params = PARAM_SET_I
    layout = ElasticLayout(
        min_devices=1, scale_up_backlog_s=1e-4, scale_up_latency_s=5e-3
    )
    cluster = StrixCluster(devices=8, policy="least-loaded", layout=layout)
    cluster.dispatch(bootstrap_batch(4096), 0.0, params)
    # A trickle of tiny batches inside the 5 ms provisioning window.
    for step in range(1, 8):
        cluster.dispatch(bootstrap_batch(16, batch_id=step), step * 2e-4, params)
    assert layout.scale_ups == 1


def test_elastic_respects_min_devices_and_validation():
    with pytest.raises(ValueError, match="at least one active device"):
        ElasticLayout(min_devices=0)
    with pytest.raises(ValueError, match="cannot be negative"):
        ElasticLayout(scale_up_latency_s=-1.0)


def test_elastic_run_uses_whole_fleet():
    result = run("NN-20", backend="strix-cluster", devices=4, layout="elastic")
    assert result.details["layout"] == "elastic"
    assert result.details["active_devices"] == 4


# -- server integration --------------------------------------------------------------


def test_server_event_cost_model_changes_only_service_times():
    from repro.apps.traffic import heavy_tail_trace

    trace = heavy_tail_trace(rate_rps=600.0, duration_s=0.1, seed=11)
    analytical = Server(devices=2, cost_model="analytical").simulate(
        trace, label="analytical"
    )
    event = Server(devices=2, cost_model="event").simulate(trace, label="event")
    assert analytical.metrics.requests == event.metrics.requests
    assert analytical.metrics.total_pbs == event.metrics.total_pbs
    assert event.cost_model == "event"
    assert event.metrics.latency.p50_s != analytical.metrics.latency.p50_s


def test_server_reports_layout_and_breakdown():
    from repro.apps.traffic import steady_trace

    trace = steady_trace(rate_rps=800.0, duration_s=0.1, seed=5)
    report = Server(devices=4, layout="pipeline").simulate(trace, label="pipe")
    assert report.layout == "pipeline"
    assert report.metrics.cost_breakdown["stage_transfer_s"] > 0.0
    assert "key_shipping_s" in report.metrics.cost_breakdown
    assert report.to_dict()["layout"] == "pipeline"
    assert "cost_breakdown" in report.to_dict()


def test_server_simulation_is_deterministic_across_repeats():
    from repro.apps.traffic import bursty_trace

    trace = bursty_trace(burst_rate_rps=4000.0, duration_s=0.1, seed=9)
    server = Server(devices=3, policy="round-robin", layout="elastic")
    first = server.simulate(trace, label="a")
    second = server.simulate(trace, label="b")
    assert first.metrics.latency.p99_s == second.metrics.latency.p99_s
    assert first.metrics.cost_breakdown == second.metrics.cost_breakdown


# -- shared error shape ---------------------------------------------------------------


@pytest.mark.parametrize(
    ("lookup", "bad", "error", "suggestion"),
    [
        (get_layout, "pipelin", UnknownLayoutError, "pipeline"),
        (get_cost_model, "events", UnknownCostModelError, "event"),
        (get_policy, "round-robbin", UnknownPolicyError, "round-robin"),
    ],
)
def test_registry_errors_share_did_you_mean_shape(lookup, bad, error, suggestion):
    with pytest.raises(error) as excinfo:
        lookup(bad)
    message = str(excinfo.value)
    assert bad in message
    assert suggestion in message
    assert "did you mean" in message
    assert not message.startswith('"')  # plain sentence, not KeyError's repr
    assert isinstance(excinfo.value, UnknownNameError)
    assert isinstance(excinfo.value, KeyError)
    restored = pickle.loads(pickle.dumps(excinfo.value))
    assert type(restored) is error
    assert str(restored) == message
    assert restored.registered == excinfo.value.registered


def test_policy_error_remains_a_value_error():
    with pytest.raises(ValueError, match="unknown sharding policy"):
        get_policy("nope")
