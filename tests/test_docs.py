"""Tier-1 enforcement of the docs contract: every guide snippet runs.

The ``docs/*.md`` guides promise runnable code blocks; CI additionally
executes ``docs/check_snippets.py``, but having the same check in the test
suite means a doc-breaking rename fails `pytest` locally before it ever
reaches CI.  Each snippet runs in a fresh namespace, parametrized so a
failure names the exact file, line and block.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

DOCS = Path(__file__).resolve().parent.parent / "docs"
sys.path.insert(0, str(DOCS))

from check_snippets import extract_snippets, run_snippet  # noqa: E402


def all_snippets():
    for path in sorted(DOCS.glob("*.md")):
        yield from extract_snippets(path)


SNIPPETS = list(all_snippets())


def test_docs_exist_and_carry_snippets():
    names = {path.name for path in DOCS.glob("*.md")}
    assert {
        "serving.md",
        "cost_models.md",
        "key_memory.md",
        "performance.md",
        "networking.md",
        "resilience.md",
    } <= names
    assert len(SNIPPETS) >= 17


@pytest.mark.parametrize(
    "label, source", SNIPPETS, ids=[label for label, _ in SNIPPETS]
)
def test_docs_snippet_runs(label, source):
    run_snippet(label, source)
