"""Fig. 2 reproduction: blind-rotation fragmentation on the GPU.

Two curves:

* **device-level batching** — the blind-rotation kernel time versus the
  number of ciphertexts steps up by one full kernel time every time the
  count crosses a multiple of the 72 available SMs (Eq. 1–2);
* **core-level batching on the GPU** — assigning several ciphertexts per SM
  does not help: the kernel time grows linearly with the per-SM batch, which
  is exactly why the paper argues for a specialized streaming core.

The companion :func:`strix_batching_study` quantifies how Strix's two-level
batching enlarges the single-blind-rotation batch and removes the
fragmentation penalty for the same ciphertext counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.accelerator import StrixAccelerator
from repro.baselines.gpu_model import GpuKernelProfile, NuFheGpuModel
from repro.params import PARAM_SET_I, TFHEParameters
from repro.sim.fragments import blind_rotation_fragments


@dataclass(frozen=True)
class FragmentationStudy:
    """The two Fig. 2 curves."""

    parameter_set: str
    device_level: list[GpuKernelProfile]
    core_level: list[GpuKernelProfile]

    def render(self) -> str:
        """Textual rendering of both curves."""
        lines = [
            f"GPU blind-rotation fragmentation (parameter set {self.parameter_set})",
            "  Device-level batching (72 SMs):",
            "    #LWE   fragments   time (ms)   normalized",
        ]
        for point in self.device_level:
            lines.append(
                f"    {point.ciphertexts:5d}   {point.fragments:9d}   "
                f"{point.execution_time_ms:9.1f}   {point.normalized_time:10.2f}"
            )
        lines.append("  Core-level batching emulated on the GPU (per-SM batch):")
        lines.append("    LWE/SM   time (ms)   normalized")
        for point in self.core_level:
            per_core = point.ciphertexts // NuFheGpuModel.STREAMING_MULTIPROCESSORS
            lines.append(
                f"    {per_core:6d}   {point.execution_time_ms:9.1f}   {point.normalized_time:10.2f}"
            )
        return "\n".join(lines)


def gpu_fragmentation_study(
    params: TFHEParameters = PARAM_SET_I,
    max_ciphertexts: int = 288,
    step: int = 8,
    max_lwes_per_core: int = 3,
) -> FragmentationStudy:
    """Reproduce both Fig. 2 curves."""
    gpu = NuFheGpuModel()
    counts = list(range(step, max_ciphertexts + 1, step))
    device_level = gpu.device_level_profile(counts, params)
    core_level = gpu.core_level_profile(list(range(1, max_lwes_per_core + 1)), params)
    return FragmentationStudy(
        parameter_set=params.name, device_level=device_level, core_level=core_level
    )


@dataclass(frozen=True)
class BatchingComparison:
    """Fragment counts of GPU vs Strix for the same ciphertext load."""

    ciphertexts: int
    gpu_batch_size: int
    gpu_fragments: int
    strix_batch_size: int
    strix_fragments: int

    @property
    def fragment_reduction(self) -> float:
        """How many times fewer blind-rotation passes Strix needs."""
        return (self.gpu_fragments + 1) / (self.strix_fragments + 1)


def strix_batching_study(
    ciphertext_counts: list[int] | None = None,
    params: TFHEParameters = PARAM_SET_I,
    accelerator: StrixAccelerator | None = None,
) -> list[BatchingComparison]:
    """Quantify the fragment reduction from two-level batching."""
    accelerator = accelerator or StrixAccelerator()
    gpu = NuFheGpuModel()
    counts = ciphertext_counts or [72, 144, 288, 784, 2048]
    strix_batch = accelerator.config.tvlp * accelerator.core.core_batch_size(params)
    comparisons = []
    for count in counts:
        comparisons.append(
            BatchingComparison(
                ciphertexts=count,
                gpu_batch_size=gpu.sms,
                gpu_fragments=blind_rotation_fragments(count, gpu.sms),
                strix_batch_size=strix_batch,
                strix_fragments=blind_rotation_fragments(count, strix_batch),
            )
        )
    return comparisons
