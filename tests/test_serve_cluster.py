"""Tests of the sharded Strix cluster and the ``"strix-cluster"`` backend.

Covers the sharding policies, graph/netlist partitioning, aggregation of
per-device results, the degenerate one-device case (bit-for-bit against the
single-device simulator), the acceptance speedup on the Fig. 7 Deep-NN
workload, batches beyond cluster capacity, and the improved unknown-backend
error of the runtime registry.
"""

from __future__ import annotations

import pytest

from repro import list_backends, run
from repro.apps.workloads import lut_pipeline_graph, pbs_batch_graph
from repro.arch.config import StrixClusterConfig
from repro.params import PARAM_SET_I, TOY_PARAMETERS
from repro.runtime import UnknownBackendError, get_backend
from repro.serve import (
    AffinityPolicy,
    Batch,
    LeastLoadedPolicy,
    Request,
    RoundRobinPolicy,
    StrixCluster,
    StrixClusterBackend,
    get_policy,
    list_policies,
)
from repro.sim.compiler import full_adder_netlist

#: The Fig. 7 application workload used by the acceptance checks.
FIG7_WORKLOAD = "NN-20"


def one_request_batch(items: int, tenant: str = "t0") -> Batch:
    request = Request.make(1, tenant, "bootstrap", items=items)
    return Batch(batch_id=0, requests=(request,), created_s=0.0, flush_reason="full")


# -- sharding policies -------------------------------------------------------------


def test_policy_registry():
    assert list_policies() == ["affinity", "key-affinity", "least-loaded", "round-robin"]
    assert isinstance(get_policy("round-robin"), RoundRobinPolicy)
    instance = LeastLoadedPolicy()
    assert get_policy(instance) is instance
    with pytest.raises(ValueError, match="unknown sharding policy"):
        get_policy("random")


@pytest.mark.parametrize("policy_name", ["round-robin", "least-loaded", "affinity"])
def test_partition_is_balanced_and_exact(policy_name):
    policy = get_policy(policy_name)
    for items, devices in ((100, 4), (7, 4), (3, 8), (0, 2), (1, 1)):
        shares = policy.partition(items, devices)
        assert sum(shares) == items
        assert len(shares) == devices
        assert max(shares) - min(shares) <= 1


def test_partition_offset_rotates_the_remainder():
    policy = RoundRobinPolicy()
    assert policy.partition(5, 4, offset=0) == [2, 1, 1, 1]
    assert policy.partition(5, 4, offset=2) == [1, 1, 2, 1]


def test_round_robin_select_cycles():
    policy = RoundRobinPolicy()
    batch = one_request_batch(4)
    picks = [policy.select([0.0, 0.0, 0.0], batch) for _ in range(6)]
    assert picks == [0, 1, 2, 0, 1, 2]


def test_least_loaded_select_picks_earliest_free_device():
    policy = LeastLoadedPolicy()
    assert policy.select([5.0, 1.0, 3.0], one_request_batch(4)) == 1


def test_affinity_select_is_sticky_per_tenant():
    policy = AffinityPolicy()
    loads = [0.0] * 4
    first = policy.select(loads, one_request_batch(4, tenant="alice"))
    assert all(
        policy.select(loads, one_request_batch(s, tenant="alice")) == first
        for s in (1, 2, 3)
    )
    assert any(
        policy.select(loads, one_request_batch(4, tenant=f"tenant{i}")) != first
        for i in range(8)
    )


# -- cluster: sharded workload execution ----------------------------------------------


def test_single_device_cluster_matches_strix_sim_bit_for_bit():
    """Edge case: devices=1 degenerates to the PR 1 single-device results."""
    graph = pbs_batch_graph(PARAM_SET_I, 3000)
    single = run(graph, backend="strix-sim")
    cluster = run(graph, backend="strix-cluster", devices=1)
    assert cluster.latency_s == single.latency_s
    assert cluster.pbs_count == single.pbs_count
    assert cluster.energy_j == single.energy_j
    assert cluster.details["epochs"] == single.details["epochs"]
    # Same per-core utilization, re-keyed under the device prefix.
    assert cluster.utilization == {
        f"dev0/{core}": value for core, value in single.utilization.items()
    }
    assert cluster.backend == "strix-cluster"


def test_four_device_cluster_beats_single_device_on_fig7_workload():
    """Acceptance: strix-cluster throughput exceeds strix-sim on Fig. 7."""
    single = run(FIG7_WORKLOAD, backend="strix-sim", params="I")
    cluster = run(FIG7_WORKLOAD, backend="strix-cluster", devices=4)
    assert cluster.pbs_count == single.pbs_count
    assert cluster.throughput_pbs_per_s > single.throughput_pbs_per_s
    assert cluster.latency_s < single.latency_s
    # Sharding a wide workload over 4 devices lands well above 2x.
    assert single.latency_s / cluster.latency_s > 2.0
    straggler = cluster.details["straggler"]
    assert straggler["slowest_s"] >= straggler["mean_s"] > 0
    assert straggler["imbalance"] >= 1.0
    assert cluster.details["devices"] == 4


def test_cluster_shards_preserve_total_pbs_and_structure():
    cluster = StrixCluster(devices=3)
    graph = lut_pipeline_graph(PARAM_SET_I, stages=4, ciphertexts_per_stage=100)
    result = cluster.run(graph)
    assert result.pbs_count == graph.total_pbs()
    per_device = result.details["per_device"]
    assert sum(entry.pbs for entry in per_device) == graph.total_pbs()
    # Every active device scheduled the same 4-stage dependency chain.
    assert all(entry.latency_s > 0 for entry in per_device)


def test_cluster_netlist_instances_shard_at_instance_granularity():
    netlist = full_adder_netlist(TOY_PARAMETERS, bits=2)
    single = run(netlist, backend="strix-sim", params="I", instances=64)
    cluster = run(netlist, backend="strix-cluster", devices=4, params="I", instances=64)
    assert cluster.pbs_count == single.pbs_count == netlist.pbs_count() * 64
    assert cluster.latency_s <= single.latency_s


def test_cluster_with_fewer_ciphertexts_than_devices():
    """A 2-ciphertext workload on 4 devices leaves two devices idle."""
    cluster = StrixCluster(devices=4)
    result = cluster.run(pbs_batch_graph(PARAM_SET_I, 2))
    assert result.pbs_count == 2
    assert result.details["active_devices"] == 2
    assert result.latency_s > 0


def test_cluster_dispatch_overhead_is_charged():
    config = StrixClusterConfig(devices=2, dispatch_overhead_s=1e-3)
    free = StrixCluster(config=StrixClusterConfig(devices=2))
    taxed = StrixCluster(config=config)
    graph = pbs_batch_graph(PARAM_SET_I, 1000)
    assert taxed.run(graph).latency_s == pytest.approx(
        free.run(graph).latency_s + 1e-3
    )


def test_cluster_config_validation():
    with pytest.raises(ValueError, match="at least one device"):
        StrixClusterConfig(devices=0)
    with pytest.raises(ValueError, match="interconnect"):
        StrixClusterConfig(interconnect_gbps=0)
    assert StrixClusterConfig(devices=2).with_devices(6).devices == 6
    assert StrixClusterConfig().total_hscs == 4 * 8


# -- cluster: serving path ------------------------------------------------------------


def test_batch_larger_than_cluster_capacity_runs_in_multiple_epochs():
    """Edge case: one batch beyond the whole cluster's epoch capacity."""
    cluster = StrixCluster(devices=2)
    capacity = cluster.epoch_capacity(PARAM_SET_I)
    small = cluster.batch_service_s(one_request_batch(16), PARAM_SET_I)
    huge = cluster.batch_service_s(one_request_batch(3 * capacity), PARAM_SET_I)
    # A batch 3x beyond cluster capacity streams through one device in many
    # epochs — it completes, and takes several times longer than a small one.
    assert huge > 3 * small
    device, start, end = cluster.dispatch(
        one_request_batch(3 * capacity), 0.0, PARAM_SET_I
    )
    assert end - start == pytest.approx(huge)
    assert cluster.devices[device].pbs == 3 * capacity


def test_dispatch_serializes_on_a_busy_device():
    cluster = StrixCluster(devices=1)
    _, start_a, end_a = cluster.dispatch(one_request_batch(64), 0.0, PARAM_SET_I)
    _, start_b, _ = cluster.dispatch(one_request_batch(64), 0.0, PARAM_SET_I)
    assert start_a == 0.0
    assert start_b == pytest.approx(end_a)
    cluster.reset_serving_state()
    assert cluster.devices[0].busy_until == 0.0


def test_device_utilization_over_horizon():
    cluster = StrixCluster(devices=2)
    cluster.dispatch(one_request_batch(256), 0.0, PARAM_SET_I)
    utilization = cluster.device_utilization(horizon_s=1.0)
    assert set(utilization) == {"dev0", "dev1"}
    assert utilization["dev0"] > 0.0 or utilization["dev1"] > 0.0
    assert cluster.device_utilization(0.0) == {"dev0": 0.0, "dev1": 0.0}


# -- backend registration ---------------------------------------------------------------


def test_strix_cluster_backend_is_registered():
    assert "strix-cluster" in list_backends()
    backend = get_backend("strix-cluster", devices=2)
    assert isinstance(backend, StrixClusterBackend)
    assert len(backend.cluster) == 2


def test_run_options_reshape_the_cluster_per_call():
    backend = StrixClusterBackend(devices=2)
    result = backend.run(pbs_batch_graph(PARAM_SET_I, 512), devices=3)
    assert result.details["devices"] == 3
    # The backend's own cluster is untouched.
    assert len(backend.cluster) == 2
    policy_result = backend.run(
        pbs_batch_graph(PARAM_SET_I, 512), policy="least-loaded"
    )
    assert policy_result.details["policy"] == "least-loaded"


def test_run_devices_override_preserves_custom_policy_instances():
    class CustomPolicy(RoundRobinPolicy):
        name = "custom-unregistered"

    backend = StrixClusterBackend(devices=2, policy=CustomPolicy())
    result = backend.run(pbs_batch_graph(PARAM_SET_I, 512), devices=3)
    assert result.details["devices"] == 3
    assert result.details["policy"] == "custom-unregistered"


# -- unknown-backend error (registry bugfix) ---------------------------------------------


def test_unknown_backend_error_lists_names_and_suggests():
    with pytest.raises(UnknownBackendError) as excinfo:
        get_backend("strix-clutser")
    message = str(excinfo.value)
    assert "strix-clutser" in message
    assert "strix-cluster" in message  # full listing + did-you-mean
    assert "did you mean" in message
    assert "reference" in message
    # Still a KeyError for callers catching the historical exception…
    assert isinstance(excinfo.value, KeyError)
    # …but renders as a sentence, not a quoted repr.
    assert not message.startswith('"')


def test_unknown_backend_error_without_close_match():
    with pytest.raises(UnknownBackendError) as excinfo:
        get_backend("totally-unrelated")
    assert "did you mean" not in str(excinfo.value)
    assert "registered backends" in str(excinfo.value)


def test_unknown_backend_error_survives_pickling():
    """Exceptions cross process boundaries (xdist, executors) via pickle."""
    import pickle

    with pytest.raises(UnknownBackendError) as excinfo:
        get_backend("strix-clutser")
    restored = pickle.loads(pickle.dumps(excinfo.value))
    assert isinstance(restored, UnknownBackendError)
    assert str(restored) == str(excinfo.value)
    assert restored.registered == excinfo.value.registered
