"""Serving metrics: latency percentiles, throughput, queue depth, utilization.

The serving layer's contract is statistical — p50/p99 latency under a given
arrival pattern, sustained PBS throughput, how deep the queue gets, how busy
every device is.  :class:`MetricsCollector` accumulates raw observations
during a simulation and :meth:`MetricsCollector.summarize` folds them into
one :class:`ServeMetrics` snapshot (renderable, JSON-serializable).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.serve.batcher import Batch
from repro.serve.request import RequestOutcome


def percentile(values: list[float], q: float) -> float:
    """Linear-interpolation percentile (``q`` in [0, 100]) of a sample.

    An empty sample raises ``ValueError`` — there is no percentile of
    nothing, and the historical silent ``0.0`` let empty-measurement bugs
    masquerade as zero latency.  Callers with a meaningful default guard
    explicitly (as :meth:`LatencySummary.from_samples` does).  A single
    sample is its own value for every ``q``.
    """
    if not values:
        raise ValueError("cannot take a percentile of an empty sample")
    if not 0.0 <= q <= 100.0:
        raise ValueError("percentile must be between 0 and 100")
    if len(values) == 1:
        # np.percentile agrees bit-for-bit; the early return just makes the
        # single-sample contract explicit (and skips the array round trip).
        return float(values[0])
    return float(np.percentile(values, q))


@dataclass(frozen=True)
class LatencySummary:
    """Distribution of request latencies over one serving run."""

    count: int
    mean_s: float
    p50_s: float
    p99_s: float
    max_s: float

    @classmethod
    def from_samples(cls, samples: list[float]) -> "LatencySummary":
        """Summarize a latency sample list.

        No samples yields the explicit all-zero summary with ``count == 0``
        (a report must still serialize when a run resolved nothing —
        ``count`` is the "was anything measured" flag, not the zeros).  One
        sample is its own mean, p50, p99 and max exactly.
        """
        if not samples:
            return cls(count=0, mean_s=0.0, p50_s=0.0, p99_s=0.0, max_s=0.0)
        return cls(
            count=len(samples),
            mean_s=sum(samples) / len(samples),
            p50_s=percentile(samples, 50.0),
            p99_s=percentile(samples, 99.0),
            max_s=max(samples),
        )

    def to_dict(self) -> dict[str, float]:
        """JSON-friendly representation (milliseconds for readability)."""
        return {
            "count": self.count,
            "mean_ms": self.mean_s * 1e3,
            "p50_ms": self.p50_s * 1e3,
            "p99_ms": self.p99_s * 1e3,
            "max_ms": self.max_s * 1e3,
        }


@dataclass(frozen=True)
class ServeMetrics:
    """One serving run folded into the numbers the evaluation tracks."""

    horizon_s: float
    requests: int
    batches: int
    total_pbs: int
    latency: LatencySummary
    queue_delay: LatencySummary
    requests_per_s: float
    pbs_per_s: float
    mean_batch_fill: float
    flush_reasons: dict[str, int]
    peak_queue_depth: int
    device_utilization: dict[str, float]
    #: Per-tenant latency distributions (the QoS split: a flooding tenant's
    #: p99 should inflate without dragging everyone else's along).
    tenant_latency: dict[str, LatencySummary] = field(default_factory=dict)
    #: Accumulated dispatch-cost components over the run: ``*_s`` keys are
    #: summed seconds (transfer, key shipping, dispatch overhead...), other
    #: keys report their peak (e.g. ``active_devices`` under the elastic
    #: layout).
    cost_breakdown: dict[str, float] = field(default_factory=dict)
    #: Key-residency counters (hits / misses / onboards / evictions /
    #: reships / shipped_bytes) from the cluster's
    #: :class:`~repro.arch.key_cache.KeyResidencyManager`.
    key_cache: dict[str, int] = field(default_factory=dict)
    #: Stage-plan cache counters (hits / misses / entries) when the layout
    #: plans stages (the pipeline layout); empty otherwise.
    stage_plan_cache: dict[str, int] = field(default_factory=dict)
    #: Schedule-cache counters (hits / misses / evictions / entries) when
    #: the cost model memoizes (the event model's
    #: :class:`~repro.sched.memo.ScheduleCache`); empty otherwise.
    cost_cache: dict[str, int] = field(default_factory=dict)
    #: Fault-injection impact (requests lost / retried, recovery time per
    #: event, key re-ship bytes, degraded seconds) from the cluster's
    #: :class:`~repro.faults.FaultInjector`; empty — and absent from
    #: :meth:`to_dict` — when the run had no fault impact, which keeps
    #: fault-free reports byte-identical to their pre-fault-subsystem form.
    availability: dict[str, Any] = field(default_factory=dict)
    #: Overload-protection ledger (admitted / rejected / shed / expired,
    #: per tenant, plus BUSY replies) from the server's
    #: :class:`~repro.flow.FlowController`; empty — and absent from
    #: :meth:`to_dict` — when no overload event occurred, which keeps
    #: unsaturated reports byte-identical to their pre-flow-subsystem form.
    overload: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable snapshot (what ``BENCH_serve.json`` records)."""
        snapshot = {
            "horizon_s": self.horizon_s,
            "requests": self.requests,
            "batches": self.batches,
            "total_pbs": self.total_pbs,
            "latency": self.latency.to_dict(),
            "queue_delay": self.queue_delay.to_dict(),
            "requests_per_s": self.requests_per_s,
            "pbs_per_s": self.pbs_per_s,
            "mean_batch_fill": self.mean_batch_fill,
            "flush_reasons": dict(self.flush_reasons),
            "peak_queue_depth": self.peak_queue_depth,
            "device_utilization": dict(self.device_utilization),
            "tenant_latency": {
                tenant: summary.to_dict()
                for tenant, summary in sorted(self.tenant_latency.items())
            },
            "cost_breakdown": dict(self.cost_breakdown),
            "key_cache": dict(self.key_cache),
            "stage_plan_cache": dict(self.stage_plan_cache),
            "cost_cache": dict(self.cost_cache),
        }
        if self.availability:
            snapshot["availability"] = dict(self.availability)
        if self.overload:
            snapshot["overload"] = dict(self.overload)
        return snapshot

    def render(self) -> str:
        """Multi-line human-readable summary (used by the example)."""
        utilization = ", ".join(
            f"{device}={fraction:.0%}"
            for device, fraction in sorted(self.device_utilization.items())
        )
        lines = [
            f"requests: {self.requests:,} in {self.batches:,} batches "
            f"({self.mean_batch_fill:.0%} mean fill, flushes: {self.flush_reasons})",
            f"latency:  p50 {self.latency.p50_s * 1e3:.3f} ms, "
            f"p99 {self.latency.p99_s * 1e3:.3f} ms, "
            f"max {self.latency.max_s * 1e3:.3f} ms",
            f"rate:     {self.requests_per_s:,.0f} req/s, "
            f"{self.pbs_per_s:,.0f} PBS/s over {self.horizon_s * 1e3:.1f} ms",
            f"devices:  {utilization}",
            f"queue:    peak depth {self.peak_queue_depth}",
        ]
        if self.tenant_latency:
            split = ", ".join(
                f"{tenant} p99 {summary.p99_s * 1e3:.3f} ms"
                for tenant, summary in sorted(self.tenant_latency.items())
            )
            lines.append(f"tenants:  {split}")
        costs = {
            key: value
            for key, value in sorted(self.cost_breakdown.items())
            if key.endswith("_s") and value > 0
        }
        if costs:
            rendered = ", ".join(
                f"{key[:-2]} {value * 1e3:.3f} ms" for key, value in costs.items()
            )
            lines.append(f"costs:    {rendered}")
        if any(self.key_cache.values()):
            keys = self.key_cache
            lines.append(
                f"keys:     {keys.get('hits', 0)} hits, "
                f"{keys.get('misses', 0)} misses, "
                f"{keys.get('evictions', 0)} evictions, "
                f"{keys.get('reships', 0)} re-ships"
            )
        if self.stage_plan_cache.get("hits") or self.stage_plan_cache.get("misses"):
            plans = self.stage_plan_cache
            lines.append(
                f"plans:    {plans.get('hits', 0)} cache hits, "
                f"{plans.get('misses', 0)} partitions"
            )
        if self.cost_cache.get("hits") or self.cost_cache.get("misses"):
            costs = self.cost_cache
            lines.append(
                f"schedules: {costs.get('hits', 0)} cache hits, "
                f"{costs.get('misses', 0)} simulations, "
                f"{costs.get('evictions', 0)} evictions"
            )
        if self.availability:
            faults = self.availability
            lines.append(
                f"faults: {faults.get('requests_lost', 0)} requests lost, "
                f"{faults.get('requests_retried', 0)} retried, "
                f"{faults.get('degraded_s', 0.0) * 1e3:.1f} ms degraded, "
                f"{faults.get('key_reship_bytes', 0):,} key bytes re-shipped"
            )
        if self.overload:
            shed = self.overload
            lines.append(
                f"overload: {shed.get('admitted', 0)} admitted, "
                f"{shed.get('rejected', 0)} rejected, "
                f"{shed.get('shed', 0)} shed, "
                f"{shed.get('expired', 0)} expired"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class ServeSnapshot:
    """One instant of a serving run — what :meth:`repro.serve.Server.watch`
    yields periodically to live consumers (dashboards, the future
    autotuning controller).

    Unlike :class:`ServeMetrics` (an end-of-run summary), a snapshot is a
    point-in-time reading: current queue composition, how far the devices'
    busy horizons run past *now* (``backlog_s``), utilization so far, and
    per-tenant p99 over the most recent outcome window.
    """

    #: Reading time on the serving clock.
    t_s: float
    #: Outcomes resolved so far in the active run.
    requests_done: int
    queue_depth: int
    queued_items: int
    queued_pbs: int
    #: How long the queue head has been waiting (0 when empty).
    oldest_wait_s: float
    #: How far the busiest device's horizon runs past ``t_s`` (0 when idle).
    backlog_s: float
    #: Busy fraction per device since the run started.
    device_utilization: dict[str, float] = field(default_factory=dict)
    #: Waiting request count per tenant (zero entries omitted).
    tenant_depths: dict[str, int] = field(default_factory=dict)
    #: Per-tenant p99 latency over the trailing outcome window.
    tenant_p99_s: dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly representation."""
        return {
            "t_s": self.t_s,
            "requests_done": self.requests_done,
            "queue_depth": self.queue_depth,
            "queued_items": self.queued_items,
            "queued_pbs": self.queued_pbs,
            "oldest_wait_s": self.oldest_wait_s,
            "backlog_s": self.backlog_s,
            "device_utilization": dict(self.device_utilization),
            "tenant_depths": dict(self.tenant_depths),
            "tenant_p99_s": dict(self.tenant_p99_s),
        }


class MetricsCollector:
    """Accumulates raw observations during one serving simulation."""

    def __init__(self, batch_capacity: int):
        self.batch_capacity = batch_capacity
        self.outcomes: list[RequestOutcome] = []
        self._batch_fills: list[float] = []
        self._total_pbs = 0
        self._batches = 0
        self._cost_breakdown: dict[str, float] = {}

    def record_batch(
        self,
        batch: Batch,
        outcomes: list[RequestOutcome],
        breakdown: dict[str, float] | None = None,
    ) -> None:
        """Record one dispatched batch, its outcomes and its cost breakdown.

        ``*_s`` breakdown components accumulate (seconds of transfer, key
        shipping, dispatch overhead across the run); any other component
        keeps its peak (e.g. the elastic layout's ``active_devices``).
        """
        self._batches += 1
        self._total_pbs += batch.total_pbs
        self._batch_fills.append(batch.fill_fraction(self.batch_capacity))
        self.outcomes.extend(outcomes)
        for key, value in (breakdown or {}).items():
            if key.endswith("_s"):
                self._cost_breakdown[key] = self._cost_breakdown.get(key, 0.0) + value
            else:
                self._cost_breakdown[key] = max(
                    self._cost_breakdown.get(key, value), value
                )

    def summarize(
        self,
        horizon_s: float,
        flush_reasons: dict[str, int],
        peak_queue_depth: int,
        device_utilization: dict[str, float],
        key_cache: dict[str, int] | None = None,
        stage_plan_cache: dict[str, int] | None = None,
        cost_cache: dict[str, int] | None = None,
        availability: dict[str, Any] | None = None,
        overload: dict[str, Any] | None = None,
    ) -> ServeMetrics:
        """Fold the observations into one :class:`ServeMetrics`.

        ``key_cache`` / ``stage_plan_cache`` / ``cost_cache`` /
        ``availability`` / ``overload`` are end-of-run counter snapshots
        (read from the cluster's residency manager, the layout, the cost
        model, the fault injector and the flow controller) rather than
        accumulated per-batch observations.
        """
        latencies = [outcome.latency_s for outcome in self.outcomes]
        delays = [outcome.queue_delay_s for outcome in self.outcomes]
        effective_horizon = horizon_s if horizon_s > 0 else 0.0
        per_tenant: dict[str, list[float]] = {}
        for outcome in self.outcomes:
            per_tenant.setdefault(outcome.request.tenant, []).append(
                outcome.latency_s
            )
        return ServeMetrics(
            horizon_s=effective_horizon,
            requests=len(self.outcomes),
            batches=self._batches,
            total_pbs=self._total_pbs,
            latency=LatencySummary.from_samples(latencies),
            queue_delay=LatencySummary.from_samples(delays),
            requests_per_s=(
                len(self.outcomes) / effective_horizon if effective_horizon else 0.0
            ),
            pbs_per_s=(
                self._total_pbs / effective_horizon if effective_horizon else 0.0
            ),
            mean_batch_fill=(
                sum(self._batch_fills) / len(self._batch_fills)
                if self._batch_fills
                else 0.0
            ),
            flush_reasons=dict(flush_reasons),
            peak_queue_depth=peak_queue_depth,
            device_utilization=dict(device_utilization),
            tenant_latency={
                tenant: LatencySummary.from_samples(samples)
                for tenant, samples in per_tenant.items()
            },
            cost_breakdown=dict(self._cost_breakdown),
            key_cache=dict(key_cache or {}),
            stage_plan_cache=dict(stage_plan_cache or {}),
            cost_cache=dict(cost_cache or {}),
            availability=dict(availability or {}),
            overload=dict(overload or {}),
        )
