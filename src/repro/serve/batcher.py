"""Adaptive batcher: turns a trickle of requests into epoch-sized batches.

The accelerator wants device×core epochs; clients send requests that are
orders of magnitude smaller.  The batcher coalesces queued requests into
:class:`Batch` objects under two flush triggers:

* **full** — queued items reach the configured capacity (one device epoch by
  default), so the batch ships at maximum occupancy;
* **deadline** — the oldest queued request has waited ``max_delay_s``, so
  tail latency stays bounded even under light load.

A single request larger than the capacity is shipped alone as an oversized
batch — the cluster already splits any batch into multiple epochs, so
splitting one logical request across batches would only complicate
completion tracking without saving any cycles.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.serve.queue import RequestQueue
from repro.serve.request import Request


@dataclass(frozen=True)
class Batch:
    """A flushed group of requests headed for one device.

    ``flush_reason`` records the *trigger* (``"full"`` = capacity pressure,
    ``"deadline"``, ``"drain"``), not the achieved occupancy: a capacity
    flush can ship below capacity when the next whole request would not fit
    (requests are never split), so read fill levels from
    :meth:`fill_fraction`, not from the reason.
    """

    batch_id: int
    requests: tuple[Request, ...]
    created_s: float
    flush_reason: str

    def __post_init__(self) -> None:
        if not self.requests:
            raise ValueError("a batch must contain at least one request")

    @property
    def total_items(self) -> int:
        """Batchable items across the batch's requests."""
        return sum(request.items for request in self.requests)

    @property
    def total_pbs(self) -> int:
        """Bootstraps the batch costs on the accelerator."""
        return sum(request.total_pbs for request in self.requests)

    @property
    def tenants(self) -> set[str]:
        """Distinct tenants sharing the batch."""
        return {request.tenant for request in self.requests}

    def fill_fraction(self, capacity: int) -> float:
        """Occupancy of the batch relative to a capacity (may exceed 1)."""
        if capacity <= 0:
            return 0.0
        return self.total_items / capacity


class AdaptiveBatcher:
    """Flush-on-full / flush-on-deadline batching over a :class:`RequestQueue`."""

    def __init__(self, capacity_items: int, max_delay_s: float):
        if capacity_items < 1:
            raise ValueError("batch capacity must be at least one item")
        if max_delay_s < 0:
            raise ValueError("max batch delay cannot be negative")
        self.capacity_items = capacity_items
        self.max_delay_s = max_delay_s
        self.batches_flushed = 0
        self.flush_reasons: dict[str, int] = {}

    # -- flush decisions ----------------------------------------------------------

    def next_deadline(self, queue: RequestQueue) -> float | None:
        """Time at which the current queue head must flush, or ``None``."""
        oldest = queue.oldest()
        if oldest is None:
            return None
        return oldest.arrival_s + self.max_delay_s

    def poll(self, queue: RequestQueue, now: float) -> list[Batch]:
        """Flush every batch that is due at ``now``.

        Called after each arrival and at deadline expiries; an empty queue
        (or one that is neither full nor past its deadline) flushes nothing.
        """
        batches: list[Batch] = []
        while queue.queued_items >= self.capacity_items:
            batches.append(self._take(queue, now, "full"))
        deadline = self.next_deadline(queue)
        if deadline is not None and now >= deadline:
            batches.append(self._take(queue, now, "deadline"))
        return batches

    def drain(self, queue: RequestQueue, now: float) -> list[Batch]:
        """Flush everything still queued (end of a simulation / shutdown)."""
        batches: list[Batch] = []
        while queue:
            batches.append(self._take(queue, now, "drain"))
        return batches

    # -- internals ----------------------------------------------------------------

    def _take(self, queue: RequestQueue, now: float, reason: str) -> Batch:
        """Pop requests for one batch: fill up to capacity, never split one."""
        taken: list[Request] = []
        items = 0
        while queue:
            head = queue.oldest()
            assert head is not None
            if taken and items + head.items > self.capacity_items:
                break
            taken.append(queue.pop())
            items += head.items
            if items >= self.capacity_items:
                break
        batch = Batch(
            batch_id=self.batches_flushed,
            requests=tuple(taken),
            created_s=now,
            flush_reason=reason,
        )
        self.batches_flushed += 1
        self.flush_reasons[reason] = self.flush_reasons.get(reason, 0) + 1
        return batch
