"""GPU (NuFHE-style) cost model with device-level batching and fragmentation.

The paper's GPU baseline is the NuFHE library on an Nvidia Titan RTX with 72
streaming multiprocessors.  Its blind-rotation kernel batches one ciphertext
per SM (device-level batching) so the kernel time is flat up to 72
ciphertexts and then steps up by one full kernel time per additional
fragment — the staircase of Fig. 2.  The paper also shows that emulating
core-level batching on the GPU (several ciphertexts per SM) does not help:
each SM processes its ciphertexts serially, so the kernel time grows
linearly with the per-SM batch.

The model is calibrated against the published parameter-set-I numbers
(latency 37 ms for one batch, throughput ≈2,000 PBS/s) and scales with the
per-PBS operation count for other parameter sets.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.params import PARAM_SET_I, TFHEParameters
from repro.sim.fragments import blind_rotation_fragments, fragmented_execution_time
from repro.sim.graph import ComputationGraph, NodeKind


@dataclass(frozen=True)
class GpuKernelProfile:
    """Profiling result of the blind-rotation kernel for a ciphertext count."""

    ciphertexts: int
    fragments: int
    execution_time_ms: float
    normalized_time: float


class NuFheGpuModel:
    """Analytical model of NuFHE-style GPU TFHE execution."""

    #: Number of streaming multiprocessors of the Titan RTX used in the paper.
    STREAMING_MULTIPROCESSORS = 72

    #: Published PBS batch time for parameter set I (one fragment, i.e. up to
    #: 72 ciphertexts): ~36.5 ms, giving ~2,000 PBS/s and the 37 ms latency
    #: of Table V.
    CALIBRATION_BATCH_TIME_MS = 36.5

    #: Keyswitching kernels add a further ~30 % on top of blind rotation when
    #: they cannot be overlapped (separate kernels, Section III); applied to
    #: workload graphs, not to the already-measured microbenchmark latency.
    KEYSWITCH_OVERHEAD = 0.30

    #: When a long-running workload keeps full device-level batches in
    #: flight the GPU amortizes kernel launches and key transfers, improving
    #: effective per-PBS time relative to the single-batch microbenchmark.
    #: Calibrated so the Deep-NN speedups land in the paper's 8-17x band.
    BATCHED_EFFICIENCY = 5.0

    def __init__(self, streaming_multiprocessors: int | None = None):
        self.sms = streaming_multiprocessors or self.STREAMING_MULTIPROCESSORS

    # -- per-parameter-set scaling ---------------------------------------------------

    def _work_factor(self, params: TFHEParameters) -> float:
        """Relative blind-rotation work vs parameter set I."""

        def work(p: TFHEParameters) -> float:
            points = p.N // 2
            return p.n * (p.k + 1) * p.lb * points * math.log2(points)

        return work(params) / work(PARAM_SET_I)

    def batch_time_ms(self, params: TFHEParameters) -> float:
        """Blind-rotation kernel time for one device-level batch (<= 72 LWEs)."""
        return self.CALIBRATION_BATCH_TIME_MS * self._work_factor(params)

    # -- microbenchmark (Table V rows) --------------------------------------------------

    def pbs_latency_ms(self, params: TFHEParameters) -> float:
        """Latency of a single PBS (one under-filled batch)."""
        return self.batch_time_ms(params)

    def pbs_throughput(self, params: TFHEParameters) -> float:
        """Peak PBS/s with exactly one full device-level batch in flight."""
        return self.sms / (self.pbs_latency_ms(params) / 1e3)

    # -- Fig. 2: fragmentation profiles ---------------------------------------------------

    def device_level_profile(
        self, ciphertext_counts: list[int], params: TFHEParameters = PARAM_SET_I
    ) -> list[GpuKernelProfile]:
        """Blind-rotation kernel time vs ciphertext count (device-level batching)."""
        batch_time = self.batch_time_ms(params)
        profiles = []
        for count in ciphertext_counts:
            time_ms = fragmented_execution_time(count, self.sms, batch_time)
            profiles.append(
                GpuKernelProfile(
                    ciphertexts=count,
                    fragments=blind_rotation_fragments(count, self.sms),
                    execution_time_ms=time_ms,
                    normalized_time=time_ms / batch_time if count else 0.0,
                )
            )
        return profiles

    def core_level_profile(
        self, lwes_per_core: list[int], params: TFHEParameters = PARAM_SET_I
    ) -> list[GpuKernelProfile]:
        """Kernel time vs per-SM batch size (emulated core-level batching).

        The GPU lacks the streaming datapath to overlap the ciphertexts it
        holds per SM, so the time grows linearly with the per-SM batch — the
        flat-lining curve of Fig. 2 (right).
        """
        batch_time = self.batch_time_ms(params)
        profiles = []
        for per_core in lwes_per_core:
            time_ms = batch_time * per_core
            profiles.append(
                GpuKernelProfile(
                    ciphertexts=per_core * self.sms,
                    fragments=0,
                    execution_time_ms=time_ms,
                    normalized_time=per_core,
                )
            )
        return profiles

    # -- workload graphs ---------------------------------------------------------------------

    def execute_graph(self, graph: ComputationGraph) -> float:
        """Execution time (seconds) of a computation graph on the GPU.

        Every PBS node runs as a sequence of device-level batches (with
        fragmentation when the node holds more ciphertexts than SMs); linear
        nodes are effectively free on the GPU relative to bootstrapping.
        """
        params = graph.params
        batch_time_s = (
            self.batch_time_ms(params)
            / 1e3
            / self.BATCHED_EFFICIENCY
            * (1.0 + self.KEYSWITCH_OVERHEAD)
        )
        linear_rate = 5e12  # plaintext MACs/s; negligible against PBS cost
        total = 0.0
        for level in graph.levels():
            level_time = 0.0
            for node in level:
                if node.kind is NodeKind.LINEAR:
                    operations = node.ciphertexts * max(node.operations_per_ciphertext, 1)
                    node_time = operations * (params.n + 1) / linear_rate
                else:
                    node_time = fragmented_execution_time(
                        node.ciphertexts, self.sms, batch_time_s
                    )
                level_time = max(level_time, node_time)
            total += level_time
        return total
