"""Reproduce every table and figure of the paper's evaluation in one run.

Writes the rendered results to ``examples/results/`` and prints a short
paper-vs-reproduced summary at the end.  This is the scripted counterpart of
``pytest benchmarks/ --benchmark-only`` for readers who want the numbers
without the timing harness.

Run with:  python examples/reproduce_paper.py
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.breakdown import cpu_workload_breakdown
from repro.analysis.deep_nn_benchmark import deep_nn_benchmark
from repro.analysis.folding_ablation import folding_ablation
from repro.analysis.fragmentation import gpu_fragmentation_study
from repro.analysis.tables import (
    area_power_table,
    pbs_comparison_table,
    render_area_power_table,
)
from repro.analysis.tradeoffs import tvlp_clp_tradeoff
from repro.arch.accelerator import StrixAccelerator
from repro.params import PARAM_SET_I
from repro.sim.trace import build_occupancy_trace

RESULTS_DIR = Path(__file__).parent / "results"


def main() -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    accelerator = StrixAccelerator()

    experiments = {
        "fig1_breakdown": cpu_workload_breakdown(PARAM_SET_I).render(),
        "fig2_fragmentation": gpu_fragmentation_study().render(),
        "table3_area_power": render_area_power_table(area_power_table(accelerator)),
        "table5_pbs_comparison": pbs_comparison_table(accelerator).render(),
        "table6_folding": folding_ablation(PARAM_SET_I).render(),
        "table7_tvlp_clp": tvlp_clp_tradeoff().render(),
        "fig7_deep_nn": deep_nn_benchmark(accelerator=accelerator).render(),
        "fig8_occupancy": build_occupancy_trace(accelerator, PARAM_SET_I).render(),
    }

    for name, text in experiments.items():
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"=== {name} ===")
        print(text)
        print()

    table5 = pbs_comparison_table(accelerator)
    print("=== headline summary (paper -> reproduced) ===")
    cpu = table5.speedup_over("Concrete", "I")
    gpu = table5.speedup_over("NuFHE", "I")
    matcha = table5.speedup_over("Matcha", "I")
    print(f"Strix vs CPU throughput, set I:    1067x -> {cpu:.0f}x")
    print(f"Strix vs GPU throughput, set I:      37x -> {gpu:.0f}x")
    print(f"Strix vs Matcha throughput, set I:  7.4x -> {matcha:.1f}x")
    print(f"All rendered tables written to {RESULTS_DIR}")


if __name__ == "__main__":
    main()
