"""Fig. 7 — Zama Deep-NN application benchmark.

Regenerates the full sweep (NN-20 / NN-50 / NN-100 at N = 1024 / 2048 / 4096)
on the CPU, GPU and Strix models and checks the paper's qualitative results:
Strix is always fastest, speedups over the CPU land in the tens and the
advantage grows with the workload size.
"""

from __future__ import annotations

from repro.analysis.deep_nn_benchmark import deep_nn_benchmark


def test_fig7_deep_nn(benchmark, save_result):
    result = benchmark(deep_nn_benchmark)

    for entry in result.results:
        assert entry.strix_time_ms < entry.gpu_time_ms < entry.cpu_time_ms

    cpu_low, cpu_high = result.speedup_range_vs_cpu()
    gpu_low, gpu_high = result.speedup_range_vs_gpu()
    assert 20 <= cpu_low <= cpu_high <= 80
    assert 5 <= gpu_low <= gpu_high <= 25

    # The advantage grows with heavier workloads (larger N).
    nn20 = {entry.polynomial_degree: entry for entry in result.results if entry.model == "NN-20"}
    assert nn20[4096].speedup_vs_cpu >= nn20[1024].speedup_vs_cpu

    save_result("fig7_deep_nn", result.render())
