"""Folded (half-size) negacyclic transform — the paper's FFT folding scheme.

Section V-A of the paper transforms an ``N``-point polynomial with an
``N/2``-point FFT by *folding*: the second half of the real polynomial is
placed in the imaginary slot of the first half.  Mathematically this uses the
ring isomorphism

.. math::

    \\mathbb{R}[X]/(X^N + 1) \\;\\cong\\; \\mathbb{C}[X]/(X^{N/2} - i),
    \\qquad
    a \\mapsto \\sum_{u<N/2} (a_u + i\\,a_{u+N/2})\\,X^u .

Multiplication in the target ring is carried out by evaluating the folded
complex polynomial at the ``N/2`` roots of ``X^{N/2} = i`` — a twisted
``N/2``-point FFT.  This is exactly the optimization credited to Klemsa [48]
and is what halves the FFT unit size in Strix.
"""

from __future__ import annotations

import numpy as np


class FoldedNegacyclicTransform:
    """Half-size negacyclic transform for polynomials of degree ``N``.

    The Fourier-domain representation has ``N/2`` complex points, matching the
    storage format assumed by the Strix memory model for bootstrapping keys.
    """

    def __init__(self, degree: int):
        if degree < 4 or degree & (degree - 1):
            raise ValueError(f"degree must be a power of two >= 4, got {degree}")
        self.degree = degree
        self.half = degree // 2
        indices = np.arange(self.half)
        # Twist by e^{i*pi*u/N}: maps evaluation at the roots of X^{N/2} = i
        # onto a plain (inverse-oriented) DFT of length N/2.
        self._twist = np.exp(1j * np.pi * indices / degree)
        self._untwist = np.conj(self._twist)

    # -- folding -------------------------------------------------------------

    def fold(self, coefficients: np.ndarray) -> np.ndarray:
        """Fold a length-``N`` real polynomial into ``N/2`` complex values."""
        coeffs = np.asarray(coefficients, dtype=np.float64)
        if coeffs.shape[-1] != self.degree:
            raise ValueError(
                f"expected last axis of length {self.degree}, got {coeffs.shape[-1]}"
            )
        return coeffs[..., : self.half] + 1j * coeffs[..., self.half :]

    def unfold(self, folded: np.ndarray) -> np.ndarray:
        """Invert :meth:`fold`, returning a length-``N`` real array."""
        values = np.asarray(folded, dtype=np.complex128)
        if values.shape[-1] != self.half:
            raise ValueError(
                f"expected last axis of length {self.half}, got {values.shape[-1]}"
            )
        return np.concatenate([np.real(values), np.imag(values)], axis=-1)

    # -- transforms ----------------------------------------------------------

    def forward(self, coefficients: np.ndarray) -> np.ndarray:
        """Forward folded transform: ``N`` real coefficients → ``N/2`` points.

        Works along the last axis, so batches of polynomials are supported.
        """
        folded = self.fold(coefficients)
        # Evaluation at mu_j = exp(i*pi*(4j+1)/N):
        #   X_j = sum_u x_u * mu_j^u
        #       = sum_u (x_u * e^{i*pi*u/N}) * e^{2*pi*i*j*u/(N/2)}
        # which is the unscaled inverse-oriented DFT of the twisted sequence.
        return np.fft.ifft(folded * self._twist, axis=-1) * self.half

    def inverse(self, spectrum: np.ndarray) -> np.ndarray:
        """Inverse folded transform: ``N/2`` points → ``N`` real coefficients."""
        values = np.asarray(spectrum, dtype=np.complex128)
        if values.shape[-1] != self.half:
            raise ValueError(
                f"expected last axis of length {self.half}, got {values.shape[-1]}"
            )
        folded = np.fft.fft(values, axis=-1) / self.half * self._untwist
        return self.unfold(folded)

    # -- convenience ----------------------------------------------------------

    def multiply(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Negacyclic product of two integer polynomials using the folded FFT."""
        product = self.inverse(self.forward(a) * self.forward(b))
        return np.round(product).astype(np.int64)
