"""Tests for GGSW ciphertexts, the external product / CMux, and key objects."""

from __future__ import annotations

import numpy as np
import pytest

from repro.params import TOY_PARAMETERS
from repro.tfhe import torus
from repro.tfhe.ggsw import GgswCiphertext, cmux, external_product
from repro.tfhe.glwe import GlweCiphertext
from repro.tfhe.keys import (
    GlweSecretKey,
    KeySwitchingKey,
    LweSecretKey,
)

PARAMS = TOY_PARAMETERS


@pytest.fixture(scope="module")
def glwe_key():
    return GlweSecretKey.generate(PARAMS, np.random.default_rng(21))


@pytest.fixture(scope="module")
def module_rng():
    return np.random.default_rng(22)


def _encrypted_message(glwe_key, message, rng, noise_std=None):
    return GlweCiphertext.encrypt(message, glwe_key.polynomials, PARAMS, rng, noise_std)


class TestGgsw:
    def test_row_shape(self, glwe_key, module_rng):
        ggsw = GgswCiphertext.encrypt(1, glwe_key.polynomials, PARAMS, module_rng)
        assert ggsw.rows.shape == ((PARAMS.k + 1) * PARAMS.lb, PARAMS.k + 1, PARAMS.N)

    def test_fourier_conversion_shape(self, glwe_key, module_rng):
        ggsw = GgswCiphertext.encrypt(0, glwe_key.polynomials, PARAMS, module_rng)
        fourier = ggsw.to_fourier()
        assert fourier.spectra.shape == ((PARAMS.k + 1) * PARAMS.lb, PARAMS.k + 1, PARAMS.N // 2)

    def test_external_product_by_one_preserves_message(self, glwe_key, module_rng):
        message = torus.reduce(
            np.arange(PARAMS.N, dtype=np.int64) % PARAMS.message_modulus * PARAMS.delta,
            PARAMS.q,
        )
        glwe = _encrypted_message(glwe_key, message, module_rng)
        ggsw = GgswCiphertext.encrypt(1, glwe_key.polynomials, PARAMS, module_rng)
        result = external_product(ggsw, glwe)
        error = torus.absolute_distance(result.phase(glwe_key.polynomials), message, PARAMS.q)
        assert error.max() < PARAMS.delta // 2

    def test_external_product_by_zero_kills_message(self, glwe_key, module_rng):
        message = torus.reduce(
            np.full(PARAMS.N, 3 * PARAMS.delta, dtype=np.int64), PARAMS.q
        )
        glwe = _encrypted_message(glwe_key, message, module_rng)
        ggsw = GgswCiphertext.encrypt(0, glwe_key.polynomials, PARAMS, module_rng)
        result = external_product(ggsw, glwe)
        error = torus.absolute_distance(
            result.phase(glwe_key.polynomials), np.zeros(PARAMS.N, dtype=np.int64), PARAMS.q
        )
        assert error.max() < PARAMS.delta // 2

    def test_external_product_accepts_time_domain_ggsw(self, glwe_key, module_rng):
        message = torus.reduce(np.full(PARAMS.N, PARAMS.delta, dtype=np.int64), PARAMS.q)
        glwe = _encrypted_message(glwe_key, message, module_rng)
        ggsw = GgswCiphertext.encrypt(1, glwe_key.polynomials, PARAMS, module_rng)
        direct = external_product(ggsw, glwe)
        via_fourier = ggsw.to_fourier().external_product(glwe)
        np.testing.assert_array_equal(direct.body, via_fourier.body)

    @pytest.mark.parametrize("bit, expected_selects_true", [(0, False), (1, True)])
    def test_cmux_selects_correct_branch(self, glwe_key, module_rng, bit, expected_selects_true):
        false_message = torus.reduce(np.full(PARAMS.N, 1 * PARAMS.delta, dtype=np.int64), PARAMS.q)
        true_message = torus.reduce(np.full(PARAMS.N, 3 * PARAMS.delta, dtype=np.int64), PARAMS.q)
        ct_false = _encrypted_message(glwe_key, false_message, module_rng)
        ct_true = _encrypted_message(glwe_key, true_message, module_rng)
        selector = GgswCiphertext.encrypt(bit, glwe_key.polynomials, PARAMS, module_rng)
        selected = cmux(selector, ct_false, ct_true)
        expected = true_message if expected_selects_true else false_message
        error = torus.absolute_distance(selected.phase(glwe_key.polynomials), expected, PARAMS.q)
        assert error.max() < PARAMS.delta // 2

    def test_chained_cmux_noise_stays_decodable(self, glwe_key, module_rng):
        """Repeated CMux with the same selector keeps the message decodable."""
        message = torus.reduce(np.full(PARAMS.N, 2 * PARAMS.delta, dtype=np.int64), PARAMS.q)
        accumulator = GlweCiphertext.trivial(message, PARAMS)
        selector = GgswCiphertext.encrypt(1, glwe_key.polynomials, PARAMS, module_rng).to_fourier()
        for _ in range(PARAMS.n):
            rotated = accumulator.rotate(0)
            accumulator = selector.cmux(accumulator, rotated)
        error = torus.absolute_distance(accumulator.phase(glwe_key.polynomials), message, PARAMS.q)
        assert error.max() < PARAMS.delta // 2

    def test_invalid_row_shape_rejected(self):
        with pytest.raises(ValueError):
            GgswCiphertext(np.zeros((2, 2, PARAMS.N)), PARAMS)


class TestSecretKeys:
    def test_lwe_key_is_binary_and_sized(self, module_rng):
        key = LweSecretKey.generate(PARAMS, module_rng)
        assert key.dimension == PARAMS.n
        assert set(np.unique(key.bits)).issubset({0, 1})

    def test_lwe_key_rejects_non_binary(self):
        with pytest.raises(ValueError):
            LweSecretKey(np.array([0, 2, 1]), PARAMS)

    def test_glwe_key_shape_and_flattening(self, module_rng):
        key = GlweSecretKey.generate(PARAMS, module_rng)
        assert key.polynomials.shape == (PARAMS.k, PARAMS.N)
        flat = key.extracted_lwe_key()
        assert flat.shape == (PARAMS.k * PARAMS.N,)
        np.testing.assert_array_equal(flat[: PARAMS.N], key.polynomials[0])

    def test_glwe_key_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            GlweSecretKey(np.zeros((PARAMS.k, PARAMS.N + 1), dtype=np.int64), PARAMS)

    def test_glwe_key_rejects_non_binary(self):
        polys = np.zeros((PARAMS.k, PARAMS.N), dtype=np.int64)
        polys[0, 0] = 5
        with pytest.raises(ValueError):
            GlweSecretKey(polys, PARAMS)


class TestEvaluationKeys:
    def test_bootstrapping_key_length_and_size(self, toy_context):
        bsk = toy_context.server_keys.bootstrapping_key
        assert len(bsk) == PARAMS.n
        assert bsk.size_bytes == PARAMS.bootstrapping_key_fourier_bytes

    def test_bootstrapping_key_entries_encrypt_key_bits(self, toy_context):
        """CMux with bsk[i] selects according to the i-th LWE key bit."""
        bsk = toy_context.server_keys.bootstrapping_key
        glwe_key = toy_context.glwe_key
        false_msg = torus.reduce(np.full(PARAMS.N, PARAMS.delta, dtype=np.int64), PARAMS.q)
        true_msg = torus.reduce(np.full(PARAMS.N, 3 * PARAMS.delta, dtype=np.int64), PARAMS.q)
        ct_false = GlweCiphertext.trivial(false_msg, PARAMS)
        ct_true = GlweCiphertext.trivial(true_msg, PARAMS)
        for index in [0, 1, PARAMS.n - 1]:
            bit = int(toy_context.lwe_key.bits[index])
            selected = bsk[index].cmux(ct_false, ct_true)
            expected = true_msg if bit else false_msg
            error = torus.absolute_distance(
                selected.phase(glwe_key.polynomials), expected, PARAMS.q
            )
            assert error.max() < PARAMS.delta // 2

    def test_keyswitching_key_shape(self, toy_context):
        ksk = toy_context.server_keys.keyswitching_key
        assert ksk.ciphertexts.shape == (PARAMS.k * PARAMS.N, PARAMS.lk, PARAMS.n + 1)
        assert ksk.size_bytes == ksk.ciphertexts.size * 4

    def test_keyswitching_key_shape_validation(self):
        with pytest.raises(ValueError):
            KeySwitchingKey(np.zeros((3, 3, 3), dtype=np.int64), PARAMS)

    def test_server_keys_total_bytes(self, toy_context):
        keys = toy_context.server_keys
        assert keys.total_bytes == keys.bootstrapping_key.size_bytes + keys.keyswitching_key.size_bytes
