"""The serving facade: multi-tenant submission over queue → batcher → cluster.

:class:`Server` is the front door of :mod:`repro.serve`.  It owns one
:class:`~repro.serve.cluster.StrixCluster`, one
:class:`~repro.serve.queue.RequestQueue` feeding one
:class:`~repro.serve.batcher.AdaptiveBatcher`, and a per-tenant
:class:`~repro.runtime.session.Session` cache for key material.  Three ways
in:

* :meth:`submit` + :meth:`simulate` — the offline path: build (or generate)
  a trace of timestamped requests and replay it in simulated time, getting a
  :class:`ServeReport` with p50/p99 latency, throughput, queue depth and
  per-device utilization;
* ``async with Server(...) as server: await server.submit_async(...)`` —
  the online path: submissions batch on the wall clock (flush on full or
  deadline) and each awaiting caller receives its own
  :class:`~repro.serve.request.RequestOutcome` when its batch completes;
* :meth:`run` — bypass the queue entirely and execute one large workload
  sharded across the cluster (equivalent to
  ``run(workload, backend="strix-cluster")``).
"""

from __future__ import annotations

import asyncio
import zlib
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Iterable

from repro.arch.config import StrixClusterConfig
from repro.arch.key_cache import KeyEvictionPolicy
from repro.faults import FaultSchedule, RequestLostError
from repro.flow.admission import AdmissionPolicy
from repro.flow.control import (
    DeadlineExceededError,
    FlowController,
    RequestRejectedError,
)
from repro.fft.registry import register_transform_cache_view
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.params import TFHEParameters
from repro.runtime.result import RunResult
from repro.runtime.session import Session
from repro.runtime.workload import WorkloadLike
from repro.sched.cost import CostModel
from repro.sched.layouts import PlacementLayout
from repro.serve.batcher import AdaptiveBatcher, Batch
from repro.serve.cluster import StrixCluster, resolve_cluster_params
from repro.serve.metrics import (
    MetricsCollector,
    ServeMetrics,
    ServeSnapshot,
    percentile,
)
from repro.serve.queue import RequestQueue
from repro.serve.request import Request, RequestKind, RequestOutcome
from repro.serve.sharding import ShardingPolicy


@dataclass(frozen=True)
class ServeConfig:
    """Configuration of one :class:`Server`.

    Attributes
    ----------
    params:
        TFHE parameter set serving operates under (name or object).
    devices:
        Strix chips in the cluster.
    policy:
        Sharding policy name (``"round-robin"`` / ``"least-loaded"`` /
        ``"affinity"``) or instance.
    layout:
        Placement layout name (``"data-parallel"`` / ``"pipeline"`` /
        ``"elastic"``) or :class:`~repro.sched.layouts.PlacementLayout`
        instance — where batches and sharded workloads land on the cluster.
    cost_model:
        Batch cost model name (``"analytical"`` / ``"event"``) or
        :class:`~repro.sched.cost.CostModel` instance — ``"event"`` runs
        the cycle-level scheduler on every batch's real graph, so keyswitch
        overlap and epoch fragmentation show up in serving latency.
    cost_cache_capacity:
        Entries of the schedule cache wrapping ``cost_model="event"``
        (memoized pricing is bit-for-bit identical, so the cache is on by
        default).  ``None`` uses
        :data:`~repro.sched.memo.DEFAULT_COST_CACHE_CAPACITY`, ``0``
        disables memoization; the report's ``cost_cache`` counters surface
        hits/misses/evictions.  See ``docs/performance.md``.
    key_budget_bytes:
        Per-device HBM budget for resident tenant key sets; ``None``
        (default) is unbounded — no eviction, the historical behaviour.
        With a finite budget the cluster's
        :class:`~repro.arch.key_cache.KeyResidencyManager` evicts under
        ``key_policy`` and the report's ``key_cache`` counters fill in;
        :func:`repro.arch.key_cache.hbm_key_budget_bytes` derives a
        hardware-honest value from the device's HBM capacity.
    key_policy:
        Key-cache eviction policy name (``"lru"`` / ``"lfu"`` /
        ``"pinned"``) or a
        :class:`~repro.arch.key_cache.KeyEvictionPolicy` instance (e.g. a
        pinned-tenant policy with an explicit pin set).  ``None`` defers to
        the cluster config's policy (``"lru"`` by default).
    qos:
        Batching discipline: ``"fifo"`` (arrival order, historical) or
        ``"fair"`` (weighted fair queuing over tenants).
    tenant_weights:
        Relative QoS weights for ``"fair"`` (default weight 1.0).
    max_batch_delay_s:
        Deadline bound of the adaptive batcher — the longest a request waits
        before a partial batch flushes (the p99 knob under light load).
    batch_capacity:
        Items per batch; defaults to one device's epoch capacity so every
        full batch is exactly one epoch-stream.
    seed:
        Base seed for per-tenant key generation.
    cluster:
        Full :class:`~repro.arch.config.StrixClusterConfig` when the cost
        knobs (interconnect bandwidth, dispatch overhead, per-device
        architecture) matter; its device count wins over ``devices``.
    faults:
        A :class:`~repro.faults.FaultSchedule` of device deaths, thermal
        throttles and interconnect partitions to inject during the run;
        ``None`` (default) serves fault-free and stays byte-identical to
        the pre-fault-subsystem behaviour.  See ``docs/resilience.md``.
    on_death:
        What happens to a batch whose device dies under it: ``"retry"``
        (default) replays it on the surviving devices, ``"drop"`` loses it
        — its requests produce no outcomes and async submitters awaiting
        them raise :class:`~repro.faults.RequestLostError`.
    admission:
        Overload admission policy name (``"reject-newest"`` /
        ``"shed-oldest"`` / ``"tenant-quota"``) or
        :class:`~repro.flow.AdmissionPolicy` instance, applied per arrival
        at serving time (``simulate`` / ``replay_offer`` /
        ``submit_async``) against ``queue_capacity`` / ``tenant_capacity``.
        ``None`` (default) admits everything and stays byte-identical to
        the pre-flow-subsystem behaviour.  See ``docs/overload.md``.
    queue_capacity:
        Bound on total waiting requests.  With ``admission`` set the
        policy keeps the queue under it (rejecting or shedding); without,
        the queue itself raises a loud
        :class:`~repro.serve.queue.QueueOverflowError` past it.  ``None``
        (default) is unbounded.
    tenant_capacity:
        Bound on one tenant's waiting requests, enforced by the admission
        policy (ignored when ``admission`` is ``None``).
    """

    params: TFHEParameters | str = "I"
    devices: int = 4
    policy: str | ShardingPolicy = "least-loaded"
    layout: str | PlacementLayout = "data-parallel"
    cost_model: str | CostModel = "analytical"
    cost_cache_capacity: int | None = None
    key_budget_bytes: float | None = None
    key_policy: "str | KeyEvictionPolicy | None" = None
    qos: str = "fifo"
    tenant_weights: dict[str, float] | None = None
    max_batch_delay_s: float = 2e-3
    batch_capacity: int | None = None
    seed: int = 0
    cluster: StrixClusterConfig | None = None
    faults: FaultSchedule | None = None
    on_death: str = "retry"
    admission: "str | AdmissionPolicy | None" = None
    queue_capacity: int | None = None
    tenant_capacity: int | None = None


@dataclass
class TenantState:
    """Book-keeping for one logical tenant."""

    tenant: str
    session: Session | None = None
    requests: int = 0
    items: int = 0
    pbs: int = 0


@dataclass(frozen=True)
class ServeReport:
    """Outcome of one serving simulation.

    ``wire`` is empty for in-process runs; when the trace travelled through
    the :mod:`repro.net` front-end it carries the transport-level story —
    measured round-trip latency percentiles (``rtt_p50_ms`` / ``rtt_p99_ms``
    / ``rtt_mean_ms``), frame and byte counts, connection count — next to
    the simulated serving metrics, so wire overhead and model latency stay
    separately readable.
    """

    label: str
    parameter_set: str
    devices: int
    policy: str
    metrics: ServeMetrics
    layout: str = "data-parallel"
    cost_model: str = "analytical"
    outcomes: list[RequestOutcome] = field(repr=False, default_factory=list)
    wire: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable snapshot (what the benchmark harness records)."""
        snapshot = {
            "label": self.label,
            "parameter_set": self.parameter_set,
            "devices": self.devices,
            "policy": self.policy,
            "layout": self.layout,
            "cost_model": self.cost_model,
            **self.metrics.to_dict(),
        }
        if self.wire:
            snapshot["wire"] = dict(self.wire)
        return snapshot

    def render(self) -> str:
        """Human-readable summary."""
        header = (
            f"[{self.label}] params {self.parameter_set}, "
            f"{self.devices} device(s), policy {self.policy}, "
            f"layout {self.layout}, cost model {self.cost_model}"
        )
        body = header + "\n" + self.metrics.render()
        if self.wire:
            rtt = ", ".join(
                f"{key.removeprefix('rtt_').removesuffix('_ms')} {self.wire[key]:.3f} ms"
                for key in ("rtt_p50_ms", "rtt_p99_ms", "rtt_max_ms")
                if key in self.wire
            )
            counts = ", ".join(
                f"{self.wire[key]:,} {name}"
                for key, name in (
                    ("connections", "connection(s)"),
                    ("frames_sent", "frames sent"),
                    ("bytes_sent", "bytes sent"),
                )
                if key in self.wire
            )
            parts = [part for part in (rtt, counts) if part]
            body += "\nwire:     " + "; ".join(parts)
        return body


class Server:
    """Multi-tenant FHE serving over a sharded Strix cluster."""

    def __init__(self, config: ServeConfig | None = None, **overrides: Any):
        config = config or ServeConfig()
        if overrides:
            config = replace(config, **overrides)
        self.config = config
        self.params = resolve_cluster_params(config.params)
        self.cluster = StrixCluster(
            devices=None if config.cluster is not None else config.devices,
            policy=config.policy,
            config=config.cluster,
            layout=config.layout,
            cost_model=config.cost_model,
            cost_cache_capacity=config.cost_cache_capacity,
            key_budget_bytes=config.key_budget_bytes,
            key_policy=config.key_policy,
            faults=config.faults,
            on_death=config.on_death,
        )
        self.batch_capacity = (
            config.batch_capacity
            if config.batch_capacity is not None
            else self.cluster.device_epoch_capacity(self.params)
        )
        #: Request tracer (``None`` until :meth:`enable_tracing`).
        self.tracer: Tracer | None = None
        #: Overload protection (inert with the default config — no policy,
        #: no capacities — so unsaturated output stays byte-identical).
        self.flow = FlowController(
            policy=config.admission,
            queue_capacity=config.queue_capacity,
            tenant_capacity=config.tenant_capacity,
        )
        #: Called with ``(request, "shed" | "expired")`` for every admitted
        #: request later dropped without an outcome — the
        #: :class:`~repro.net.NetServer` hooks this to send a reply for
        #: work that will never produce a RESULT frame.
        self.drop_hook: Callable[[Request, str], None] | None = None
        #: Always-on unified metrics registry (see :mod:`repro.obs`):
        #: serving counters/histograms fed by :meth:`_dispatch` plus live
        #: views over the subsystems' historical counter dicts — which stay
        #: the single source of truth, so :class:`ServeReport` is untouched.
        self.registry = MetricsRegistry()
        self._requests_total = self.registry.counter(
            "serve_requests_total", "Requests dispatched to the cluster"
        )
        self._batches_total = self.registry.counter(
            "serve_batches_total", "Batches the batcher flushed to devices"
        )
        self._items_total = self.registry.counter(
            "serve_items_total", "Batchable items dispatched"
        )
        self._pbs_total = self.registry.counter(
            "serve_pbs_total", "Bootstraps dispatched"
        )
        self._latency_hist = self.registry.histogram(
            "serve_latency_seconds", "End-to-end request latency"
        )
        self._queue_delay_hist = self.registry.histogram(
            "serve_queue_delay_seconds", "Arrival-to-dispatch queueing delay"
        )
        # Views close over self (not the current queue/batcher objects):
        # simulate/replay/async re-create both, and the view must follow.
        self.registry.register_view(
            "serve_queue",
            lambda: {
                "depth": self.queue.depth,
                "peak_depth": self.queue.peak_depth,
                "queued_items": self.queue.queued_items,
                "queued_pbs": self.queue.queued_pbs,
                "total_enqueued": self.queue.total_enqueued,
            },
            "Request-queue composition",
        )
        self.registry.register_view(
            "serve_batcher",
            lambda: {
                "batches_flushed": self.batcher.batches_flushed,
                **{
                    f"flush_{reason}": count
                    for reason, count in sorted(self.batcher.flush_reasons.items())
                },
            },
            "Adaptive-batcher flush counters",
        )
        self.registry.register_view(
            "serve_key_cache", lambda: self.cluster.key_cache_stats,
            "Key-residency counters",
        )
        self.registry.register_view(
            "serve_cost_cache", lambda: self.cluster.cost_cache_stats,
            "Schedule-cache counters",
        )
        self.registry.register_view(
            "serve_stage_plan_cache",
            lambda: self.cluster.layout.plan_cache_stats,
            "Pipeline stage-plan cache counters",
        )
        self.registry.register_view(
            "serve_layout", lambda: self.cluster.layout.runtime_stats,
            "Placement-layout runtime state",
        )
        # Empty (and sample-free in collect()) unless a fault schedule is
        # installed, so fault-free STATS output is unchanged.
        self.registry.register_view(
            "serve_faults", lambda: self.cluster.faults.stats_view(),
            "Fault-injection schedule and impact counters",
        )
        # Likewise empty until an overload event is counted, so STATS
        # output is unchanged for servers that never saturate.
        self.registry.register_view(
            "serve_overload", lambda: self.flow.stats_view(),
            "Overload-protection admission and shedding counters",
        )
        # Process-wide, not per-server: the negacyclic transform cache is
        # shared by every scalar and vectorized kernel in the process.
        register_transform_cache_view(self.registry)
        self.queue = self._make_queue()
        self.batcher = self._make_batcher()
        self._tenants: dict[str, TenantState] = {}
        self._request_counter = 0
        self._clock = 0.0
        # Async-mode state (created by __aenter__).
        self._async_futures: dict[int, asyncio.Future] = {}
        self._async_metrics: MetricsCollector | None = None
        self._async_epoch = 0.0
        self._async_error: Exception | None = None
        self._wake: asyncio.Event | None = None
        self._flusher: asyncio.Task | None = None
        #: Metrics of the last completed async context (set by :meth:`aclose`).
        self.last_async_report: ServeReport | None = None
        # Incremental-replay state (created by replay_begin).
        self._replay_metrics: MetricsCollector | None = None
        self._replay_emitted = 0
        self._replay_last_completion = 0.0
        self._replay_last_arrival = 0.0

    def _make_queue(self) -> RequestQueue:
        """A fresh queue carrying the installed tracer (if any).

        The hard ``capacity`` bound only applies when admission control is
        disabled: with a policy installed, admission keeps the queue under
        the configured capacity *before* pushing, so an overflow there
        would be a flow-controller bug, not an operator signal.
        """
        return RequestQueue(
            observer=self.tracer,
            capacity=None if self.flow.enabled else self.config.queue_capacity,
        )

    def _make_batcher(self) -> AdaptiveBatcher:
        """A fresh batcher honouring the configured QoS discipline."""
        return AdaptiveBatcher(
            self.batch_capacity,
            self.config.max_batch_delay_s,
            qos=self.config.qos,
            tenant_weights=self.config.tenant_weights,
            observer=self.tracer,
            on_expired=self._note_expired,
        )

    def _note_expired(self, request: Request) -> None:
        """The batcher dropped ``request`` as past its deadline: count it,
        fail its awaiting future (async path) and tell the wire hook."""
        self.flow.note_expired(request)
        future = self._async_futures.pop(request.request_id, None)
        if future is not None and not future.done():
            future.set_exception(
                DeadlineExceededError(
                    f"request {request.request_id} (tenant {request.tenant!r}) "
                    f"expired before batching (deadline {request.deadline_s})"
                )
            )
        if self.drop_hook is not None:
            self.drop_hook(request, "expired")

    def _drop_shed(self, victims: list[Request]) -> None:
        """Fan the shed verdict out to each victim's awaiters and the wire."""
        for request in victims:
            future = self._async_futures.pop(request.request_id, None)
            if future is not None and not future.done():
                future.set_exception(
                    RequestRejectedError(
                        f"request {request.request_id} (tenant "
                        f"{request.tenant!r}) was shed to admit newer work"
                    )
                )
            if self.drop_hook is not None:
                self.drop_hook(request, "shed")

    def _reject(self, request: Request, reason: str) -> RequestRejectedError:
        """The typed rejection for ``request``, carrying the retry hint."""
        return RequestRejectedError(
            f"request {request.request_id} (tenant {request.tenant!r}) "
            f"rejected: {reason}",
            retry_after_s=self.flow.retry_after_s(
                self.queue, self.config.max_batch_delay_s
            ),
        )

    # -- observability ------------------------------------------------------------

    def enable_tracing(self, tracer: Tracer | None = None) -> Tracer:
        """Install a request tracer on the serving pipeline and return it.

        The tracer's lifecycle hooks attach to the queue (enqueue), the
        batcher (batch admission) and the cluster (device dispatch); the
        :mod:`repro.net` front-end additionally reports reply times.
        Tracing is *pure observation* — batching, placement and the
        resulting :class:`ServeReport` are byte-identical with it on or
        off — and survives the fresh queues/batchers that
        :meth:`simulate`, :meth:`replay_begin` and the async context
        create.  Pass an existing :class:`~repro.obs.Tracer` to share one
        across servers; call :meth:`disable_tracing` to detach.
        """
        if tracer is None:
            tracer = Tracer()
        self.tracer = tracer
        self.queue.observer = tracer
        self.batcher.observer = tracer
        self.cluster.tracer = tracer
        return tracer

    def disable_tracing(self) -> None:
        """Detach the tracer from every lifecycle hook."""
        self.tracer = None
        self.queue.observer = None
        self.batcher.observer = None
        self.cluster.tracer = None

    def metrics(self) -> dict[str, float]:
        """One flat snapshot of the unified registry.

        Serving counters and latency histograms plus the live views
        (queue, batcher, key/cost/stage-plan caches, layout, and — behind
        a :class:`~repro.net.NetServer` — the wire).  This is exactly what
        the net protocol's ``STATS`` frame serializes.
        """
        return self.registry.collect()

    def snapshot(
        self,
        window: int = 256,
        now_s: float | None = None,
        window_s: float | None = None,
    ) -> ServeSnapshot:
        """A point-in-time reading of the serving state.

        ``now_s`` defaults to the wall clock of the active async context
        (requires a running event loop) or the serving clock otherwise;
        ``window`` bounds the trailing outcomes the per-tenant p99 is
        computed over.  ``window_s`` additionally bounds them in *time*:
        only outcomes completed after ``now_s - window_s`` count, so a
        tenant that went idle drops out of ``tenant_p99_s`` instead of
        inheriting a stale percentile from its last burst forever.  This
        is the feed :meth:`watch` yields periodically.
        """
        if now_s is None:
            if self._async_metrics is not None:
                now_s = asyncio.get_running_loop().time() - self._async_epoch
            else:
                now_s = self._clock
        collector = (
            self._async_metrics
            if self._async_metrics is not None
            else self._replay_metrics
        )
        outcomes = collector.outcomes if collector is not None else []
        recent = outcomes[-window:] if window > 0 else []
        if window_s is not None:
            cutoff = now_s - window_s
            recent = [outcome for outcome in recent if outcome.completed_s > cutoff]
        per_tenant: dict[str, list[float]] = {}
        for outcome in recent:
            per_tenant.setdefault(outcome.request.tenant, []).append(
                outcome.latency_s
            )
        oldest = self.queue.oldest()
        backlog = max(
            (device.busy_until for device in self.cluster.devices), default=0.0
        )
        return ServeSnapshot(
            t_s=now_s,
            requests_done=len(outcomes),
            queue_depth=self.queue.depth,
            queued_items=self.queue.queued_items,
            queued_pbs=self.queue.queued_pbs,
            oldest_wait_s=max(now_s - oldest.arrival_s, 0.0) if oldest else 0.0,
            backlog_s=max(backlog - now_s, 0.0),
            device_utilization=self.cluster.device_utilization(now_s),
            tenant_depths=self.queue.tenant_depths,
            tenant_p99_s={
                tenant: percentile(samples, 99.0)
                for tenant, samples in sorted(per_tenant.items())
            },
        )

    async def watch(
        self,
        interval_s: float = 0.05,
        window: int = 256,
        window_s: float | None = None,
    ):
        """Yield a :class:`~repro.serve.metrics.ServeSnapshot` every
        ``interval_s`` while the async context is active.

        The live tap: per-tenant p99 over the trailing ``window`` outcomes,
        queue backlog and device utilization — the feed an online
        controller (ROADMAP item 5) consumes.  The generator ends when the
        ``async with`` block closes.
        """
        if self._async_metrics is None:
            raise RuntimeError(
                "watch() needs an active async context: "
                "use `async with Server(...) as server`"
            )
        while self._async_metrics is not None:
            yield self.snapshot(window=window, window_s=window_s)
            await asyncio.sleep(interval_s)

    # -- tenants -----------------------------------------------------------------

    def tenant(self, name: str) -> TenantState:
        """State for one tenant (created on first use)."""
        if name not in self._tenants:
            self._tenants[name] = TenantState(tenant=name)
        return self._tenants[name]

    def session_for(self, tenant: str) -> Session:
        """The tenant's key-owning session (created and cached on first use).

        Seeds derive deterministically from the server seed and the tenant
        name, so distinct tenants get distinct key material and re-creating a
        server reproduces it.
        """
        state = self.tenant(tenant)
        if state.session is None:
            seed = self.config.seed + zlib.crc32(tenant.encode())
            state.session = Session(self.params, seed=seed)
        return state.session

    @property
    def tenants(self) -> dict[str, TenantState]:
        """All tenants seen so far, by name."""
        return dict(self._tenants)

    # -- submission --------------------------------------------------------------

    def submit(
        self,
        tenant: str,
        kind: RequestKind | str,
        items: int = 1,
        model: str | None = None,
        at: float | None = None,
        deadline_s: float | None = None,
    ) -> Request:
        """Enqueue one request at time ``at`` (defaults to the serving clock).

        ``deadline_s`` is a *relative* latency budget: the request expires
        ``deadline_s`` after its arrival and the batcher drops it unserved
        past that.  Sync submission only *stages* work for
        :meth:`simulate` — admission-policy decisions happen at serving
        time inside the simulation's arrival loop, exactly as they do for
        :meth:`replay_offer` and :meth:`submit_async`.
        """
        if self._async_metrics is not None:
            raise RuntimeError(
                "sync submit() cannot run inside an active async context; "
                "use submit_async (the paths share queue and clock)"
            )
        if self._replay_metrics is not None:
            raise RuntimeError(
                "sync submit() cannot run inside an active replay; "
                "use replay_offer (the paths share queue and clock)"
            )
        arrival = self._clock if at is None else at
        self._clock = max(self._clock, arrival)
        request = Request.make(
            self._next_request_id(),
            tenant,
            kind,
            items,
            arrival_s=arrival,
            model=model,
            deadline_s=None if deadline_s is None else arrival + deadline_s,
        )
        # Staged, not pushed: the queue's capacity bound applies to runtime
        # depth inside simulate()'s arrival loop, not to trace length.
        self.queue.stage(request)
        return request

    def _next_request_id(self) -> int:
        self._request_counter += 1
        return self._request_counter

    def _account(self, request: Request) -> None:
        # Charged at dispatch, not submission, so TenantState counts work
        # that actually executed (repeated simulations accumulate, discarded
        # queue contents do not).
        state = self.tenant(request.tenant)
        state.requests += 1
        state.items += request.items
        state.pbs += request.total_pbs

    # -- offline simulation --------------------------------------------------------

    def simulate(
        self, trace: Iterable[Request] | None = None, label: str = "trace"
    ) -> ServeReport:
        """Replay a request trace through queue → batcher → cluster.

        ``trace`` defaults to whatever :meth:`submit` queued; an explicit
        trace (e.g. from :mod:`repro.apps.traffic`) replaces the queue
        contents.  Simulated time advances from arrival to arrival, firing
        deadline flushes in between; every flushed batch goes to the device
        the sharding policy picks and occupies it for the batch's service
        time.

        Not usable while an async context is active: both paths share the
        queue, batcher and cluster, and request ids would collide.
        """
        if self._async_metrics is not None:
            raise RuntimeError(
                "simulate() cannot run inside an active async context; "
                "exit the `async with` block first"
            )
        if self._replay_metrics is not None:
            raise RuntimeError(
                "simulate() cannot run inside an active replay; "
                "replay_finish() it first (the paths share queue and batcher)"
            )
        if trace is not None:
            pending = sorted(trace, key=lambda request: request.arrival_s)
        else:
            pending = []
            while self.queue:
                pending.append(self.queue.pop())
            pending.sort(key=lambda request: request.arrival_s)
        self.queue = self._make_queue()

        self.cluster.reset_serving_state()
        self.batcher = self._make_batcher()
        self.flow.reset()
        metrics = MetricsCollector(self.batch_capacity)
        last_completion = 0.0
        last_arrival = pending[-1].arrival_s if pending else 0.0

        for request in pending:
            last_completion = max(
                last_completion, self._fire_deadlines(request.arrival_s, metrics)
            )
            self._clock = max(self._clock, request.arrival_s)
            admitted, victims, _reason = self.flow.try_admit(self.queue, request)
            if not admitted:
                continue
            self._drop_shed(victims)
            self.queue.push(request)
            for batch in self.batcher.poll(self.queue, request.arrival_s):
                last_completion = max(
                    last_completion, self._dispatch(batch, metrics)
                )
        last_completion = max(self._fire_deadlines(None, metrics), last_completion)

        horizon = max(last_completion, last_arrival)
        summary = metrics.summarize(
            horizon_s=horizon,
            flush_reasons=self.batcher.flush_reasons,
            peak_queue_depth=self.queue.peak_depth,
            device_utilization=self.cluster.device_utilization(horizon),
            key_cache=self.cluster.key_cache_stats,
            stage_plan_cache=self.cluster.layout.plan_cache_stats,
            cost_cache=self.cluster.cost_cache_stats,
            availability=self.cluster.faults.availability(horizon),
            overload=self.flow.overload(),
        )
        return ServeReport(
            label=label,
            parameter_set=self.params.name,
            devices=len(self.cluster),
            policy=self.cluster.policy.name,
            layout=self.cluster.layout.name,
            cost_model=self.cluster.cost_model.name,
            metrics=summary,
            outcomes=list(metrics.outcomes),
        )

    def _fire_deadlines(self, until: float | None, metrics: MetricsCollector) -> float:
        """Flush every deadline due before ``until`` (all of them when ``None``)."""
        last_completion = 0.0
        while True:
            deadline = self.batcher.next_deadline(self.queue)
            if deadline is None or (until is not None and deadline > until):
                return last_completion
            for batch in self.batcher.poll(self.queue, deadline):
                last_completion = max(last_completion, self._dispatch(batch, metrics))

    def _dispatch(self, batch: Batch, metrics: MetricsCollector) -> float:
        """Send one batch to the cluster and record its outcomes."""
        dispatch = self.cluster.dispatch(batch, batch.created_s, self.params)
        if dispatch.lost:
            # The batch died with its device and the on_death policy did
            # not replay it: no outcomes, no tenant accounting, no serving
            # counters — the loss is charged to the fault injector, which
            # the report's availability block and the conservation law
            # (completed + lost == submitted) read it back from.
            self._fail_lost_futures(batch)
            return dispatch.end_s
        for request in batch.requests:
            self._account(request)
        outcomes = [
            RequestOutcome(
                request=request,
                batch_id=batch.batch_id,
                device=dispatch.device,
                dispatched_s=dispatch.start_s,
                completed_s=dispatch.end_s,
            )
            for request in batch.requests
        ]
        metrics.record_batch(batch, outcomes, dispatch.breakdown)
        self._requests_total.inc(len(batch.requests))
        self._batches_total.inc()
        self._items_total.inc(batch.total_items)
        self._pbs_total.inc(batch.total_pbs)
        for outcome in outcomes:
            self._latency_hist.observe(outcome.latency_s)
            self._queue_delay_hist.observe(outcome.queue_delay_s)
        self._resolve_futures(outcomes)
        return dispatch.end_s

    # -- incremental replay --------------------------------------------------------

    def replay_begin(self) -> None:
        """Start an incremental trace replay (the streaming twin of :meth:`simulate`).

        The network front-end receives a recorded trace one request at a
        time, so it cannot hand :meth:`simulate` a complete list — instead
        it opens a replay, :meth:`replay_offer`\\ s each request as its
        frame arrives (in arrival order) and :meth:`replay_drain`\\ s at the
        end.  Processing one offer is *exactly* one iteration of
        :meth:`simulate`'s loop, so a full offer/drain pass over a sorted
        trace produces bit-for-bit the outcomes and metrics the in-process
        path produces: framing changes latency, never results.
        """
        if self._async_metrics is not None:
            raise RuntimeError(
                "a replay cannot start inside an active async context; "
                "exit the `async with` block first"
            )
        if self.queue:
            raise RuntimeError(
                "the server has queued sync submissions; simulate() or "
                "discard them before starting a replay"
            )
        self.cluster.reset_serving_state()
        self.queue = self._make_queue()
        self.batcher = self._make_batcher()
        self.flow.reset()
        self._replay_metrics = MetricsCollector(self.batch_capacity)
        self._replay_emitted = 0
        self._replay_last_completion = 0.0
        self._replay_last_arrival = 0.0

    def _require_replay(self) -> MetricsCollector:
        if self._replay_metrics is None:
            raise RuntimeError("no replay is active; call replay_begin() first")
        return self._replay_metrics

    def _new_replay_outcomes(self, metrics: MetricsCollector) -> list[RequestOutcome]:
        fresh = metrics.outcomes[self._replay_emitted :]
        self._replay_emitted = len(metrics.outcomes)
        return list(fresh)

    def replay_offer(self, request: Request) -> list[RequestOutcome]:
        """Feed the replay one request; returns every outcome it resolved.

        Requests must arrive in non-decreasing ``arrival_s`` order (the
        order :meth:`simulate` sorts into); the returned outcomes cover any
        deadline flushes due before this arrival plus any capacity flushes
        it triggered — possibly none, when the request merely joins a
        batch still filling.

        With admission control installed a rejected offer raises
        :class:`~repro.flow.RequestRejectedError` (after counting it and
        advancing the replay clock — the request *arrived*, it just was
        not served), exactly mirroring the decision :meth:`simulate` makes
        for the same trace position.
        """
        metrics = self._require_replay()
        self._replay_last_completion = max(
            self._replay_last_completion,
            self._fire_deadlines(request.arrival_s, metrics),
        )
        self._clock = max(self._clock, request.arrival_s)
        self._replay_last_arrival = max(self._replay_last_arrival, request.arrival_s)
        admitted, victims, reason = self.flow.try_admit(self.queue, request)
        if not admitted:
            raise self._reject(request, reason)
        self._drop_shed(victims)
        self.queue.push(request)
        for batch in self.batcher.poll(self.queue, request.arrival_s):
            self._replay_last_completion = max(
                self._replay_last_completion, self._dispatch(batch, metrics)
            )
        return self._new_replay_outcomes(metrics)

    def replay_drain(self) -> list[RequestOutcome]:
        """Fire every outstanding deadline; returns the outcomes it resolved.

        The end-of-trace step (:meth:`simulate` does the same before
        summarizing): every queued request still waiting flushes at its
        deadline.  The replay stays open, so a drain mid-stream is allowed
        — it just empties the queue at the current deadlines.
        """
        metrics = self._require_replay()
        self._replay_last_completion = max(
            self._fire_deadlines(None, metrics), self._replay_last_completion
        )
        return self._new_replay_outcomes(metrics)

    def replay_finish(
        self, label: str = "replay", wire: dict[str, Any] | None = None
    ) -> ServeReport:
        """Drain, close the replay and fold it into a :class:`ServeReport`.

        ``wire`` (frame/byte counters, measured RTT percentiles) is carried
        through to :attr:`ServeReport.wire` when the replay came over a
        transport.
        """
        metrics = self._require_replay()
        self.replay_drain()
        self._replay_metrics = None
        horizon = max(self._replay_last_completion, self._replay_last_arrival)
        summary = metrics.summarize(
            horizon_s=horizon,
            flush_reasons=self.batcher.flush_reasons,
            peak_queue_depth=self.queue.peak_depth,
            device_utilization=self.cluster.device_utilization(horizon),
            key_cache=self.cluster.key_cache_stats,
            stage_plan_cache=self.cluster.layout.plan_cache_stats,
            cost_cache=self.cluster.cost_cache_stats,
            availability=self.cluster.faults.availability(horizon),
            overload=self.flow.overload(),
        )
        return ServeReport(
            label=label,
            parameter_set=self.params.name,
            devices=len(self.cluster),
            policy=self.cluster.policy.name,
            layout=self.cluster.layout.name,
            cost_model=self.cluster.cost_model.name,
            metrics=summary,
            outcomes=list(metrics.outcomes),
            wire=dict(wire or {}),
        )

    # -- sharded one-shot execution ---------------------------------------------------

    def run(
        self,
        workload: WorkloadLike,
        params: TFHEParameters | str | None = None,
        **options: Any,
    ) -> RunResult:
        """Execute one workload sharded across the whole cluster.

        ``params`` overrides the server's serving parameter set for this run.
        """
        return self.cluster.run(
            workload, params=params if params is not None else self.params, **options
        )

    # -- async path --------------------------------------------------------------------

    async def __aenter__(self) -> "Server":
        if self._async_metrics is not None:
            raise RuntimeError(
                "this server already has an active async context; "
                "one `async with` block at a time"
            )
        if self._replay_metrics is not None:
            raise RuntimeError(
                "an async context cannot open inside an active replay; "
                "replay_finish() it first"
            )
        if self.queue:
            raise RuntimeError(
                "the server has queued sync submissions; simulate() or "
                "discard them before entering an async context"
            )
        loop = asyncio.get_running_loop()
        self._async_epoch = loop.time()
        self._async_metrics = MetricsCollector(self.batch_capacity)
        self._async_error = None
        self._wake = asyncio.Event()
        # Fresh queue/batcher so the async report's flush and depth stats
        # are not polluted by earlier simulations on this server.
        self.queue = self._make_queue()
        self.batcher = self._make_batcher()
        self.cluster.reset_serving_state()
        self.flow.reset()
        self._flusher = loop.create_task(self._flush_loop())
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.aclose()

    async def submit_async(
        self,
        tenant: str,
        kind: RequestKind | str,
        items: int = 1,
        model: str | None = None,
        deadline_s: float | None = None,
    ) -> RequestOutcome:
        """Submit one request and await its outcome.

        Arrivals are stamped on the wall clock (so real submission gaps
        drive the batcher's flush decisions) while service times come from
        the simulated cluster — the awaited outcome reports the modeled
        completion, it does not sleep for it.

        ``deadline_s`` is a relative latency budget; a request still
        queued past it is dropped and this call raises
        :class:`~repro.flow.DeadlineExceededError`.  With admission
        control installed a rejected submission raises
        :class:`~repro.flow.RequestRejectedError` immediately, and a
        queued submission shed later fails its await with the same error —
        a caller never hangs on dropped work.
        """
        if self._async_metrics is None:
            raise RuntimeError(
                "async submission needs an active async context: "
                "use `async with Server(...) as server`"
            )
        if self._async_error is not None:
            # The flusher died; accepting new work would hang the caller.
            raise RuntimeError(
                "the serving flush loop has crashed; no further submissions "
                "will be processed"
            ) from self._async_error
        loop = asyncio.get_running_loop()
        now = loop.time() - self._async_epoch
        request = Request.make(
            self._next_request_id(),
            tenant,
            kind,
            items,
            arrival_s=now,
            model=model,
            deadline_s=None if deadline_s is None else now + deadline_s,
        )
        admitted, victims, reason = self.flow.try_admit(self.queue, request)
        if not admitted:
            raise self._reject(request, reason)
        future: asyncio.Future = loop.create_future()
        self._async_futures[request.request_id] = future
        self._drop_shed(victims)
        self.queue.push(request)
        if self.queue.queued_items >= self.batch_capacity:
            try:
                self._flush_async(now)
            except Exception as error:  # noqa: BLE001 - fanned out to awaiters
                self._fail_pending_futures(error)
        elif self._wake is not None:
            self._wake.set()  # tell the flusher a deadline now exists
        return await future

    async def aclose(self) -> None:
        """Stop the background flusher and flush everything still queued."""
        if self._flusher is not None:
            self._flusher.cancel()
            try:
                await self._flusher
            except asyncio.CancelledError:
                pass
            except Exception:  # noqa: BLE001 - already delivered to awaiters
                # A flush crash was fanned out to the pending futures when it
                # happened; re-raising here would skip the state cleanup below
                # and wedge the server permanently.
                pass
            self._flusher = None
        if self._async_metrics is not None:
            loop = asyncio.get_running_loop()
            now = loop.time() - self._async_epoch
            metrics = self._async_metrics
            try:
                for batch in self.batcher.drain(self.queue, now):
                    self._dispatch(batch, metrics)
            except Exception as error:  # noqa: BLE001 - fanned out to awaiters
                self._fail_pending_futures(error)
                raise
            finally:
                self._async_metrics = None
                self._wake = None
                horizon = max(
                    (outcome.completed_s for outcome in metrics.outcomes),
                    default=now,
                )
                self.last_async_report = ServeReport(
                    label="async",
                    parameter_set=self.params.name,
                    devices=len(self.cluster),
                    policy=self.cluster.policy.name,
                    layout=self.cluster.layout.name,
                    cost_model=self.cluster.cost_model.name,
                    metrics=metrics.summarize(
                        horizon_s=horizon,
                        flush_reasons=self.batcher.flush_reasons,
                        peak_queue_depth=self.queue.peak_depth,
                        device_utilization=self.cluster.device_utilization(horizon),
                        key_cache=self.cluster.key_cache_stats,
                        stage_plan_cache=self.cluster.layout.plan_cache_stats,
                        cost_cache=self.cluster.cost_cache_stats,
                        availability=self.cluster.faults.availability(horizon),
                        overload=self.flow.overload(),
                    ),
                    outcomes=list(metrics.outcomes),
                )

    async def _flush_loop(self) -> None:
        """Fire deadline flushes on the wall clock.

        Event-driven, not polling: with an empty queue the loop parks on an
        ``asyncio.Event`` that :meth:`submit_async` sets on arrival (zero
        wakeups while idle), otherwise it sleeps straight to the queue
        head's deadline — which only ever moves *later* (FIFO head, capacity
        flushes pop from the front), so sleeping to it never misses a flush.

        A crash anywhere in a flush (e.g. a user-supplied policy raising in
        ``select``) must not die silently: every awaiting submitter would
        hang forever on a future nobody will resolve.  The exception is
        propagated to all pending futures instead, so ``await
        submit_async(...)`` re-raises it at the call sites.
        """
        loop = asyncio.get_running_loop()
        wake = self._wake
        assert wake is not None
        while True:
            deadline = self.batcher.next_deadline(self.queue)
            if deadline is None:
                wake.clear()
                await wake.wait()
                continue
            now = loop.time() - self._async_epoch
            if now < deadline:
                await asyncio.sleep(deadline - now)
                now = loop.time() - self._async_epoch
            try:
                due = self.batcher.next_deadline(self.queue)
                if due is not None and now >= due:
                    self._flush_async(now)
            except Exception as error:  # noqa: BLE001 - fanned out to awaiters
                self._fail_pending_futures(error)
                raise

    def _fail_pending_futures(self, error: Exception) -> None:
        self._async_error = error
        for future in self._async_futures.values():
            if not future.done():
                future.set_exception(error)
        self._async_futures.clear()

    def _flush_async(self, now: float) -> None:
        assert self._async_metrics is not None
        for batch in self.batcher.poll(self.queue, now):
            self._dispatch(batch, self._async_metrics)

    def _resolve_futures(self, outcomes: list[RequestOutcome]) -> None:
        for outcome in outcomes:
            future = self._async_futures.pop(outcome.request.request_id, None)
            if future is not None and not future.done():
                future.set_result(outcome)

    def _fail_lost_futures(self, batch: Batch) -> None:
        """Raise :class:`RequestLostError` into awaiters of a lost batch."""
        for request in batch.requests:
            future = self._async_futures.pop(request.request_id, None)
            if future is not None and not future.done():
                future.set_exception(
                    RequestLostError(
                        f"request {request.request_id} (tenant "
                        f"{request.tenant!r}) was lost to a device fault"
                    )
                )
