"""Boolean circuits built from the homomorphic gate set.

TFHE's gate bootstrapping makes arbitrary boolean circuits possible; the
paper motivates this generality (encrypted CPUs, relational operators).
This module implements the classic building blocks — ripple-carry adders,
comparators and multiplexer trees — in two forms:

* functionally, operating on encrypted bits through a
  :class:`~repro.tfhe.gates.GateBootstrapper` (used by tests and examples);
* as computation graphs with one PBS per gate (used by the simulator to
  estimate their execution time on Strix and the baselines).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.params import TFHEParameters
from repro.sim.graph import ComputationGraph
from repro.tfhe.gates import GateBootstrapper
from repro.tfhe.lwe import LweCiphertext


@dataclass
class RippleCarryAdder:
    """N-bit ripple-carry adder over encrypted bits (little-endian lists)."""

    gates: GateBootstrapper

    def full_adder(
        self, a: LweCiphertext, b: LweCiphertext, carry: LweCiphertext
    ) -> tuple[LweCiphertext, LweCiphertext]:
        """One full adder: returns (sum, carry-out).  Five gate bootstraps."""
        a_xor_b = self.gates.xor(a, b)
        total = self.gates.xor(a_xor_b, carry)
        carry_from_ab = self.gates.and_(a, b)
        carry_from_axb = self.gates.and_(a_xor_b, carry)
        carry_out = self.gates.or_(carry_from_ab, carry_from_axb)
        return total, carry_out

    def add(
        self, a_bits: list[LweCiphertext], b_bits: list[LweCiphertext]
    ) -> list[LweCiphertext]:
        """Add two encrypted numbers; returns ``len(a)+1`` result bits."""
        if len(a_bits) != len(b_bits):
            raise ValueError("operands must have the same bit width")
        params = self.gates.params
        carry = LweCiphertext.trivial(
            (params.q - params.q // 8) % params.q, params.n, params
        )
        result = []
        for a_bit, b_bit in zip(a_bits, b_bits):
            total, carry = self.full_adder(a_bit, b_bit, carry)
            result.append(total)
        result.append(carry)
        return result

    @staticmethod
    def gate_count(bits: int) -> int:
        """Gate bootstraps used to add two ``bits``-wide numbers."""
        return 5 * bits


@dataclass
class Comparator:
    """Encrypted equality / greater-than comparator (little-endian lists)."""

    gates: GateBootstrapper

    def equals(
        self, a_bits: list[LweCiphertext], b_bits: list[LweCiphertext]
    ) -> LweCiphertext:
        """Return an encryption of ``a == b``."""
        if len(a_bits) != len(b_bits):
            raise ValueError("operands must have the same bit width")
        bit_equal = [self.gates.xnor(a, b) for a, b in zip(a_bits, b_bits)]
        result = bit_equal[0]
        for bit in bit_equal[1:]:
            result = self.gates.and_(result, bit)
        return result

    def greater_than(
        self, a_bits: list[LweCiphertext], b_bits: list[LweCiphertext]
    ) -> LweCiphertext:
        """Return an encryption of ``a > b`` (unsigned).

        Scans from the most significant bit: ``a > b`` iff at the highest
        differing position ``a`` has the 1.
        """
        if len(a_bits) != len(b_bits):
            raise ValueError("operands must have the same bit width")
        params = self.gates.params
        result = LweCiphertext.trivial(
            (params.q - params.q // 8) % params.q, params.n, params
        )
        for a_bit, b_bit in zip(a_bits, b_bits):
            # result = (a_bit AND NOT b_bit) OR (result AND (a_bit XNOR b_bit))
            a_gt_b_here = self.gates.andny(b_bit, a_bit)
            equal_here = self.gates.xnor(a_bit, b_bit)
            keep = self.gates.and_(result, equal_here)
            result = self.gates.or_(a_gt_b_here, keep)
        return result

    @staticmethod
    def gate_count_equals(bits: int) -> int:
        """Gate bootstraps of the equality comparator."""
        return bits + (bits - 1)

    @staticmethod
    def gate_count_greater_than(bits: int) -> int:
        """Gate bootstraps of the greater-than comparator."""
        return 4 * bits


def boolean_circuit_graph(
    params: TFHEParameters,
    circuit: str,
    bits: int,
    instances: int = 1,
) -> ComputationGraph:
    """Computation graph of a boolean circuit for the simulator.

    Parameters
    ----------
    params:
        TFHE parameter set.
    circuit:
        ``"adder"``, ``"equals"`` or ``"greater_than"``.
    bits:
        Operand bit width.
    instances:
        Independent circuit instances evaluated together (this is what the
        accelerator can batch across).
    """
    counts = {
        "adder": RippleCarryAdder.gate_count(bits),
        "equals": Comparator.gate_count_equals(bits),
        "greater_than": Comparator.gate_count_greater_than(bits),
    }
    if circuit not in counts:
        raise ValueError(f"unknown circuit {circuit!r}; expected one of {sorted(counts)}")
    graph = ComputationGraph(params, name=f"{circuit}-{bits}bit-x{instances}")
    # A ripple structure has `bits` sequential stages; within a stage the
    # per-instance gates are independent and batch across instances.
    gates_per_stage = max(counts[circuit] // bits, 1)
    previous = None
    for stage in range(bits):
        name = f"{circuit}_stage{stage}"
        depends = [previous] if previous else []
        graph.add_pbs_layer(name, gates_per_stage * instances, depends_on=depends)
        previous = name
    return graph
