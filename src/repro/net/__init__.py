"""repro.net — the wire-protocol front-end that turns the serving layer into a server.

Layering, bottom up:

* :mod:`repro.net.protocol` — versioned, length-prefixed, CRC-checked binary
  frames plus the control payloads (HELLO/WELCOME, ERROR, PING/PONG,
  DRAIN/DRAINED); pure bytes, no sockets.
* :mod:`repro.net.codec` — the SUBMIT/RESULT payload codecs, reusing the
  bytes-level LWE codecs of :mod:`repro.tfhe.serialization` for encrypted
  payloads.
* :mod:`repro.net.server` — the asyncio TCP front-end wrapping
  :class:`repro.serve.Server` (live wall-clock mode and deterministic trace
  replay).
* :mod:`repro.net.client` — async and blocking clients with per-message
  round-trip capture.
* :mod:`repro.net.loadgen` — closed-loop load generation over loopback
  sockets, feeding :mod:`repro.apps.traffic` traces to a real server.

Overload protection (see :mod:`repro.flow`) is wired through every layer:
WELCOME can advertise a per-connection credit window, RESULT piggy-backs
replenished credits, a saturated server answers BUSY with a deterministic
retry-after hint, and the clients turn those into typed
:class:`~repro.flow.retry.ServerBusyError` /
:class:`~repro.flow.retry.RequestTimeoutError` raises plus a
retry-with-backoff loop (:meth:`AsyncNetClient.submit_with_retry`).
"""

from repro.flow.retry import (
    CircuitBreaker,
    CircuitOpenError,
    RequestTimeoutError,
    RetryPolicy,
    ServerBusyError,
)
from repro.net.client import AsyncNetClient, NetClient, NetError
from repro.net.codec import (
    ResultMessage,
    SubmitMessage,
    decode_result,
    decode_submit,
    encode_result,
    encode_submit,
    result_from_outcome,
    submit_from_request,
)
from repro.net.loadgen import (
    closed_loop,
    closed_loop_async,
    replay_trace,
    replay_trace_async,
)
from repro.net.protocol import (
    MAGIC,
    MAX_PAYLOAD_BYTES,
    PROTOCOL_VERSION,
    SUPPORTED_VERSIONS,
    BusyReply,
    ErrorCode,
    ErrorReply,
    Frame,
    FrameDecoder,
    MessageType,
    Pong,
    ProtocolError,
    Welcome,
    decode_stats,
    encode_frame,
    encode_stats,
    negotiate_version,
)
from repro.net.server import NetServer, WireStats

__all__ = [
    "MAGIC",
    "MAX_PAYLOAD_BYTES",
    "PROTOCOL_VERSION",
    "SUPPORTED_VERSIONS",
    "AsyncNetClient",
    "BusyReply",
    "CircuitBreaker",
    "CircuitOpenError",
    "ErrorCode",
    "ErrorReply",
    "Frame",
    "FrameDecoder",
    "MessageType",
    "NetClient",
    "NetError",
    "NetServer",
    "Pong",
    "ProtocolError",
    "RequestTimeoutError",
    "ResultMessage",
    "RetryPolicy",
    "ServerBusyError",
    "SubmitMessage",
    "Welcome",
    "WireStats",
    "closed_loop",
    "closed_loop_async",
    "decode_result",
    "decode_stats",
    "decode_submit",
    "encode_frame",
    "encode_result",
    "encode_stats",
    "encode_submit",
    "negotiate_version",
    "replay_trace",
    "replay_trace_async",
    "result_from_outcome",
    "submit_from_request",
]
