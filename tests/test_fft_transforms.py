"""Tests for the negacyclic FFT substrate (reference, twisted, folded)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fft.folding import FoldedNegacyclicTransform
from repro.fft.negacyclic import NegacyclicTransform
from repro.fft.reference import (
    naive_dft,
    naive_idft,
    naive_negacyclic_convolution,
    naive_negacyclic_rotation,
)


class TestReference:
    def test_convolution_matches_manual_small_case(self):
        # (1 + 2X) * (3 + 4X) mod (X^2 + 1) = 3 + 10X + 8X^2 = -5 + 10X
        result = naive_negacyclic_convolution([1, 2], [3, 4])
        assert list(result) == [-5, 10]

    def test_convolution_with_identity(self):
        poly = [5, -3, 2, 7]
        identity = [1, 0, 0, 0]
        assert list(naive_negacyclic_convolution(poly, identity)) == poly

    def test_convolution_by_x_rotates_negacyclically(self):
        poly = [1, 2, 3, 4]
        x = [0, 1, 0, 0]
        # X * (1 + 2X + 3X^2 + 4X^3) = -4 + X + 2X^2 + 3X^3
        assert list(naive_negacyclic_convolution(poly, x)) == [-4, 1, 2, 3]

    def test_convolution_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            naive_negacyclic_convolution([1, 2], [1, 2, 3])

    def test_convolution_modulus_reduces_result(self):
        result = naive_negacyclic_convolution([3, 0], [5, 0], modulus=7)
        assert list(result) == [1, 0]

    def test_rotation_positive_amount(self):
        assert list(naive_negacyclic_rotation([1, 2, 3, 4], 1)) == [-4, 1, 2, 3]

    def test_rotation_by_degree_negates(self):
        poly = [1, 2, 3, 4]
        assert list(naive_negacyclic_rotation(poly, 4)) == [-1, -2, -3, -4]

    def test_rotation_by_two_degrees_is_identity(self):
        poly = [9, -1, 0, 3]
        assert list(naive_negacyclic_rotation(poly, 8)) == poly

    def test_rotation_negative_amount_inverts_positive(self):
        poly = [1, 2, 3, 4]
        rotated = naive_negacyclic_rotation(poly, 3)
        restored = naive_negacyclic_rotation(rotated, -3)
        assert list(restored) == poly

    def test_naive_dft_matches_numpy(self, rng):
        values = rng.normal(size=16) + 1j * rng.normal(size=16)
        np.testing.assert_allclose(naive_dft(values), np.fft.fft(values), atol=1e-9)

    def test_naive_idft_inverts_dft(self, rng):
        values = rng.normal(size=8) + 1j * rng.normal(size=8)
        np.testing.assert_allclose(naive_idft(naive_dft(values)), values, atol=1e-9)


class TestNegacyclicTransform:
    @pytest.mark.parametrize("degree", [4, 16, 64, 256, 1024])
    def test_multiply_matches_reference(self, degree, rng):
        transform = NegacyclicTransform(degree)
        a = rng.integers(-(2 ** 16), 2 ** 16, degree)
        b = rng.integers(-64, 64, degree)
        expected = naive_negacyclic_convolution(a, b).astype(np.int64)
        np.testing.assert_array_equal(transform.multiply(a, b), expected)

    def test_forward_then_inverse_is_identity(self, rng):
        transform = NegacyclicTransform(128)
        poly = rng.integers(-1000, 1000, 128).astype(np.float64)
        recovered = transform.inverse(transform.forward(poly))
        np.testing.assert_allclose(recovered, poly, atol=1e-6)

    def test_forward_is_linear(self, rng):
        transform = NegacyclicTransform(64)
        a = rng.normal(size=64)
        b = rng.normal(size=64)
        combined = transform.forward(2.0 * a + 3.0 * b)
        np.testing.assert_allclose(
            combined, 2.0 * transform.forward(a) + 3.0 * transform.forward(b), atol=1e-8
        )

    def test_batched_forward_matches_individual(self, rng):
        transform = NegacyclicTransform(32)
        batch = rng.normal(size=(5, 32))
        batched = transform.forward(batch)
        for index in range(5):
            np.testing.assert_allclose(batched[index], transform.forward(batch[index]))

    def test_invalid_degree_rejected(self):
        with pytest.raises(ValueError):
            NegacyclicTransform(48)

    def test_wrong_length_rejected(self):
        transform = NegacyclicTransform(16)
        with pytest.raises(ValueError):
            transform.forward(np.zeros(8))
        with pytest.raises(ValueError):
            transform.inverse(np.zeros(8, dtype=np.complex128))


class TestFoldedTransform:
    @pytest.mark.parametrize("degree", [4, 16, 64, 256, 2048])
    def test_multiply_matches_reference(self, degree, rng):
        transform = FoldedNegacyclicTransform(degree)
        a = rng.integers(-(2 ** 16), 2 ** 16, degree)
        b = rng.integers(-64, 64, degree)
        expected = naive_negacyclic_convolution(a, b).astype(np.int64)
        np.testing.assert_array_equal(transform.multiply(a, b), expected)

    def test_agrees_with_full_size_transform(self, rng):
        degree = 128
        folded = FoldedNegacyclicTransform(degree)
        full = NegacyclicTransform(degree)
        a = rng.integers(-(2 ** 20), 2 ** 20, degree)
        b = rng.integers(-32, 32, degree)
        np.testing.assert_array_equal(folded.multiply(a, b), full.multiply(a, b))

    def test_spectrum_has_half_length(self):
        transform = FoldedNegacyclicTransform(64)
        spectrum = transform.forward(np.arange(64, dtype=np.float64))
        assert spectrum.shape == (32,)

    def test_fold_unfold_roundtrip(self, rng):
        transform = FoldedNegacyclicTransform(32)
        poly = rng.normal(size=32)
        np.testing.assert_allclose(transform.unfold(transform.fold(poly)), poly)

    def test_forward_inverse_roundtrip(self, rng):
        transform = FoldedNegacyclicTransform(256)
        poly = rng.integers(-1000, 1000, 256).astype(np.float64)
        np.testing.assert_allclose(transform.inverse(transform.forward(poly)), poly, atol=1e-6)

    def test_pointwise_product_respects_convolution_theorem(self, rng):
        degree = 64
        transform = FoldedNegacyclicTransform(degree)
        a = rng.integers(-100, 100, degree)
        b = rng.integers(-100, 100, degree)
        spectral = transform.forward(a) * transform.forward(b)
        expected = naive_negacyclic_convolution(a, b).astype(np.float64)
        np.testing.assert_allclose(transform.inverse(spectral), expected, atol=1e-5)

    def test_batched_transform(self, rng):
        transform = FoldedNegacyclicTransform(64)
        batch = rng.normal(size=(3, 64))
        batched = transform.forward(batch)
        assert batched.shape == (3, 32)
        for index in range(3):
            np.testing.assert_allclose(batched[index], transform.forward(batch[index]))

    def test_invalid_degree_rejected(self):
        with pytest.raises(ValueError):
            FoldedNegacyclicTransform(2)
        with pytest.raises(ValueError):
            FoldedNegacyclicTransform(96)


class TestTransformProperties:
    @given(
        data=st.lists(st.integers(min_value=-(2 ** 20), max_value=2 ** 20), min_size=16, max_size=16),
        shift=st.integers(min_value=-64, max_value=64),
    )
    @settings(max_examples=50, deadline=None)
    def test_monomial_multiplication_matches_rotation(self, data, shift):
        """Multiplying by X^shift through the FFT equals the direct rotation."""
        degree = 16
        transform = FoldedNegacyclicTransform(degree)
        monomial = np.zeros(degree, dtype=np.int64)
        exponent = shift % (2 * degree)
        sign = 1
        if exponent >= degree:
            exponent -= degree
            sign = -1
        monomial[exponent] = sign
        via_fft = transform.multiply(np.array(data, dtype=np.int64), monomial)
        direct = naive_negacyclic_rotation(data, shift).astype(np.int64)
        np.testing.assert_array_equal(via_fft, direct)

    @given(
        a=st.lists(st.integers(min_value=-(2 ** 15), max_value=2 ** 15), min_size=32, max_size=32),
        b=st.lists(st.integers(min_value=-128, max_value=128), min_size=32, max_size=32),
    )
    @settings(max_examples=40, deadline=None)
    def test_folded_multiply_is_exact(self, a, b):
        """The folded transform recovers exact integer negacyclic products."""
        transform = FoldedNegacyclicTransform(32)
        expected = naive_negacyclic_convolution(a, b).astype(np.int64)
        np.testing.assert_array_equal(
            transform.multiply(np.array(a, dtype=np.int64), np.array(b, dtype=np.int64)),
            expected,
        )

    @given(
        a=st.lists(st.integers(min_value=-(2 ** 10), max_value=2 ** 10), min_size=16, max_size=16),
        b=st.lists(st.integers(min_value=-(2 ** 10), max_value=2 ** 10), min_size=16, max_size=16),
    )
    @settings(max_examples=40, deadline=None)
    def test_convolution_commutes(self, a, b):
        """Negacyclic convolution is commutative."""
        ab = naive_negacyclic_convolution(a, b)
        ba = naive_negacyclic_convolution(b, a)
        assert list(ab) == list(ba)
