"""Encrypted neural-network inference — the paper's motivating workload.

Two views of the Zama Deep-NN scenario (Section VI-C, Fig. 7):

1. A *functional* homomorphic MLP running on the TFHE substrate: every
   activation is computed with a real programmable bootstrap (kept tiny so
   pure Python finishes quickly).
2. The *performance* view: the full NN-20 / NN-50 / NN-100 models as
   computation graphs executed on the Strix simulator and the CPU / GPU
   baseline models — the data behind Fig. 7.

Run with:  python examples/encrypted_neural_network.py
"""

from __future__ import annotations

import time

from repro import Session, run
from repro.analysis.deep_nn_benchmark import deep_nn_benchmark
from repro.apps.deep_nn import EncryptedMLP, ZAMA_DEEP_NN_MODELS
from repro.params import DEEP_NN_PARAMETER_SETS


def functional_inference() -> None:
    """Run a real (tiny) homomorphic MLP end to end."""
    print("== Functional homomorphic inference (TOY parameters) ==")
    session = Session("TOY", seed=11)
    session.generate_server_keys()
    mlp = EncryptedMLP(session, layer_sizes=[4, 3, 2], weight_magnitude=1, seed=5)

    inputs = [1, 0, 1, 1]
    start = time.perf_counter()
    encrypted_outputs = mlp.infer(inputs)
    elapsed = time.perf_counter() - start
    reference = mlp.infer_plaintext(inputs)

    pbs_count = sum(mlp.layer_sizes[1:])
    print(f"inputs:             {inputs}")
    print(f"encrypted inference: {encrypted_outputs}  ({pbs_count} PBS, {elapsed:.2f} s)")
    print(f"plaintext reference: {reference}")
    print(f"match: {encrypted_outputs == reference}\n")


def performance_projection() -> None:
    """Project the full Deep-NN models onto Strix and the baselines."""
    print("== Fig. 7 projection: Zama Deep-NN on CPU / GPU / Strix ==")
    # A single model is one `run()` call away (workloads resolve by name):
    nn20 = run("NN-20", backend="strix-sim")
    print(f"single NN-20 inference on Strix: {nn20.latency_ms:.1f} ms "
          f"({nn20.pbs_count:,} PBS)\n")
    result = deep_nn_benchmark(
        models=ZAMA_DEEP_NN_MODELS, parameter_sets=DEEP_NN_PARAMETER_SETS
    )
    print(result.render())
    cpu_low, cpu_high = result.speedup_range_vs_cpu()
    gpu_low, gpu_high = result.speedup_range_vs_gpu()
    print(
        f"\nStrix evaluates an encrypted {ZAMA_DEEP_NN_MODELS['NN-100'].depth}-layer network "
        f"{cpu_high:.0f}x faster than the CPU baseline and {gpu_high:.0f}x faster than the GPU."
    )


def main() -> None:
    functional_inference()
    performance_projection()


if __name__ == "__main__":
    main()
