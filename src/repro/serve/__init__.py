"""Multi-tenant FHE serving layer over a sharded Strix cluster.

The paper's throughput comes from streaming device×core epochs through the
accelerator; production traffic arrives as many small independent requests
from many tenants.  This package is the layer in between::

    tenants --> RequestQueue --> AdaptiveBatcher --> StrixCluster
                 (FIFO,           (flush on full      (N devices, sharding
                  per-tenant       or deadline)        policy, aggregation)
                  accounting)

* :class:`Server` — the facade: per-tenant key/session management, a
  synchronous trace-replay path (:meth:`Server.simulate`) and an
  ``asyncio`` submission path (:meth:`Server.submit_async`);
* :class:`StrixCluster` — N simulated Strix devices with round-robin /
  least-loaded / affinity / key-affinity sharding, aggregating per-device
  results into one cluster-level :class:`~repro.runtime.result.RunResult`.
  *Where* work lands and *how long* it runs are pluggable through
  :mod:`repro.sched`: placement layouts (``"data-parallel"`` /
  ``"pipeline"`` / ``"elastic"``) and batch cost models (``"analytical"`` /
  ``"event"``).  Each device's HBM holds a *bounded* number of tenant
  BSK/KSK sets when ``key_budget_bytes`` is finite: the cluster's
  :class:`~repro.arch.key_cache.KeyResidencyManager` evicts under a
  pluggable policy (``"lru"`` / ``"lfu"`` / ``"pinned"``) and charges key
  re-shipping on the interconnect;
* :class:`AdaptiveBatcher` / :class:`RequestQueue` — epoch-sized coalescing
  with bounded tail latency and an optional weighted-fair-queuing QoS
  discipline (``qos="fair"``) so one flooding tenant cannot inflate every
  tenant's p99;
* :mod:`repro.serve.metrics` — p50/p99 latency (global and per tenant),
  throughput, queue depth, device utilization and dispatch-cost breakdowns
  (interconnect transfer, BSK/KSK key shipping);
* fault injection — pass ``faults=FaultSchedule.of(...)`` (see
  :mod:`repro.faults`) to serve through seeded device deaths, thermal
  throttles and interconnect partitions; the report grows an
  ``availability`` block and ``on_death="retry"|"drop"`` picks what
  happens to batches whose device dies under them;
* overload protection — pass ``admission="shed-oldest"`` (or
  ``"reject-newest"`` / ``"tenant-quota"``) with ``queue_capacity`` /
  ``tenant_capacity`` (see :mod:`repro.flow`) to shed or reject work a
  saturated server cannot finish; requests take an optional per-request
  ``deadline_s`` budget and the report grows an ``overload`` block;
* the ``"strix-cluster"`` runtime backend, so ``run(workload,
  backend="strix-cluster", devices=4, layout="pipeline")`` works from the
  PR 1 facade.

Quickstart::

    from repro.serve import Server
    from repro.apps.traffic import steady_trace

    server = Server(devices=4, policy="least-loaded", cost_model="event")
    report = server.simulate(
        steady_trace(rate_rps=2000, duration_s=0.5, seed=7), label="steady"
    )
    print(report.render())                 # p50/p99, PBS/s, device utilization
"""

from repro.sched import (
    AnalyticalCostModel,
    CostModel,
    DataParallelLayout,
    Dispatch,
    ElasticLayout,
    EventDrivenCostModel,
    PipelineLayout,
    PlacementLayout,
    get_cost_model,
    get_layout,
    list_cost_models,
    list_layouts,
)
from repro.faults import FaultEvent, FaultKind, FaultSchedule, RequestLostError
# Imported from the submodules (not the repro.flow package) so that
# ``import repro.flow`` as the *first* repro import works: flow's package
# __init__ pulls QueueOverflowError from repro.serve.queue, which runs this
# module while repro.flow is still only partially bound.
from repro.flow.admission import (
    AdmissionPolicy,
    get_admission_policy,
    list_admission_policies,
)
from repro.flow.control import DeadlineExceededError, RequestRejectedError
from repro.serve.backend import StrixClusterBackend
from repro.serve.batcher import AdaptiveBatcher, Batch
from repro.serve.cluster import (
    CLUSTER_BACKEND_NAME,
    DeviceShardResult,
    StrixCluster,
    StrixDevice,
)
from repro.serve.metrics import (
    LatencySummary,
    MetricsCollector,
    ServeMetrics,
    ServeSnapshot,
    percentile,
)
from repro.serve.queue import QueueOverflowError, RequestQueue
from repro.serve.request import Request, RequestKind, RequestOutcome, pbs_per_item
from repro.serve.server import Server, ServeConfig, ServeReport, TenantState
from repro.serve.sharding import (
    AffinityPolicy,
    KeyAffinityPolicy,
    LeastLoadedPolicy,
    RoundRobinPolicy,
    ShardingPolicy,
    get_policy,
    list_policies,
)

__all__ = [
    "AdaptiveBatcher",
    "AdmissionPolicy",
    "AffinityPolicy",
    "AnalyticalCostModel",
    "Batch",
    "CLUSTER_BACKEND_NAME",
    "CostModel",
    "DataParallelLayout",
    "DeadlineExceededError",
    "DeviceShardResult",
    "Dispatch",
    "ElasticLayout",
    "EventDrivenCostModel",
    "FaultEvent",
    "FaultKind",
    "FaultSchedule",
    "KeyAffinityPolicy",
    "LatencySummary",
    "LeastLoadedPolicy",
    "MetricsCollector",
    "PipelineLayout",
    "PlacementLayout",
    "QueueOverflowError",
    "Request",
    "RequestKind",
    "RequestLostError",
    "RequestOutcome",
    "RequestQueue",
    "RequestRejectedError",
    "RoundRobinPolicy",
    "ServeConfig",
    "ServeMetrics",
    "ServeReport",
    "ServeSnapshot",
    "Server",
    "ShardingPolicy",
    "StrixCluster",
    "StrixClusterBackend",
    "StrixDevice",
    "TenantState",
    "get_admission_policy",
    "get_cost_model",
    "get_layout",
    "get_policy",
    "list_admission_policies",
    "list_cost_models",
    "list_layouts",
    "list_policies",
    "pbs_per_item",
    "percentile",
]
