"""Placement layouts: how work lands on the cluster's devices.

A layout owns both execution paths of a :class:`~repro.serve.cluster
.StrixCluster`:

* the **serving path** (:meth:`PlacementLayout.dispatch`) — where a flushed
  batch executes, which devices it occupies and for how long;
* the **one-shot path** (:meth:`PlacementLayout.run_workload`) — how one
  large workload spreads over the devices and aggregates into a
  :class:`~repro.runtime.result.RunResult`.

Three layouts ship:

* ``data-parallel`` — every device can run every layer; a batch goes whole
  to one device (chosen by the sharding policy) and one-shot workloads
  shard per-node across all devices.  This is the pre-refactor behaviour:
  with one device, zero overheads and the analytical cost model it
  reproduces the single-device simulator bit-for-bit.
* ``pipeline`` — stage-per-device: the workload's dependency levels are cut
  into contiguous stages, one per device, and ciphertexts crossing a stage
  boundary are charged on the cluster interconnect.  Trades the
  data-parallel layout's straggler imbalance for inter-device transfer —
  the right trade for deep LUT pipelines whose layers don't fill a chip.
* ``elastic`` — data-parallel dispatch over an *autoscaled* subset of
  devices: the active count grows when the least-loaded active device's
  backlog exceeds a threshold (after a configurable scale-up latency —
  freshly provisioned devices are not instantly useful) and shrinks when
  the fleet has been idle.

Every layout charges BSK/KSK **key shipping** through the cluster's
:class:`~repro.arch.key_cache.KeyResidencyManager` when a tenant's batch
lands on a device that does not hold its keys.  The *first* placement is
free (keys are provisioned at onboarding), so single-device clusters — and
tenant-sticky policies — never pay it; under a finite per-device key-memory
budget the manager additionally evicts cold tenants and charges the
re-shipping when they return.

The pipeline layout also keeps a **stage-plan cache**: partitioning a
batch's graph into stages depends only on the batch's request-mix
signature (see :func:`repro.sched.cost.batch_mix_signature`), so repeated
batch shapes — the common case under steady traffic — reuse the cut
instead of re-lowering and re-partitioning the graph on every dispatch.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.errors import UnknownLayoutError
from repro.params import TFHEParameters
from repro.sched.memo import LruCache
from repro.runtime.result import RunResult
from repro.runtime.workload import WorkloadLike, as_graph, as_netlist
from repro.sched.partition import partition_graph_stages
from repro.sim.compiler import Netlist, compile_netlist
from repro.sim.graph import ComputationGraph, ComputationNode

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.serve.batcher import Batch
    from repro.serve.cluster import StrixCluster


@dataclass(frozen=True)
class StageDispatch:
    """One pipeline stage's slice of a dispatched batch."""

    device: int
    start_s: float
    end_s: float
    compute_s: float
    transfer_in_s: float
    pbs: int


@dataclass(frozen=True)
class Dispatch:
    """Where and when one serving batch executed.

    Iterates as the historical ``(device, start_s, end_s)`` triple so
    existing ``device, start, end = cluster.dispatch(...)`` call sites keep
    working; ``device`` is the device that *completes* the batch (the last
    stage under the pipeline layout).

    Under a fault schedule (see :mod:`repro.faults`) ``retried`` marks a
    batch that was replayed after a device death and ``lost`` marks one
    that produced no outcomes at all (``end_s`` is then the failure
    instant, and ``device`` is ``-1`` when no device ever accepted it).
    """

    device: int
    start_s: float
    end_s: float
    devices: tuple[int, ...] = ()
    breakdown: dict[str, float] = field(default_factory=dict)
    stages: tuple[StageDispatch, ...] = ()
    retried: bool = False
    lost: bool = False

    def __iter__(self):
        return iter((self.device, self.start_s, self.end_s))


@dataclass(frozen=True)
class DeviceShardResult:
    """One device's contribution to a sharded workload run."""

    device: int
    latency_s: float
    pbs: int
    epochs: int
    utilization: dict[str, float]
    energy_j: float


class PlacementLayout(abc.ABC):
    """Strategy for placing serving batches and one-shot workloads.

    Subclasses implement :meth:`dispatch` (the serving path) and
    :meth:`run_workload` (the one-shot path).  Key residency is *not* layout
    state: every layout funnels its dispatch targets through the cluster's
    :class:`~repro.arch.key_cache.KeyResidencyManager`, so budgets, eviction
    and the hit/miss counters behave identically under every layout.
    """

    #: Registry name of the layout.
    name = ""

    @abc.abstractmethod
    def dispatch(
        self,
        cluster: "StrixCluster",
        batch: "Batch",
        now: float,
        params: TFHEParameters,
    ) -> Dispatch:
        """Execute ``batch`` on the cluster, updating device busy horizons."""

    @abc.abstractmethod
    def run_workload(
        self,
        cluster: "StrixCluster",
        workload: WorkloadLike,
        params: "TFHEParameters | str | None",
        instances: int,
    ) -> RunResult:
        """Execute one large workload across the cluster."""

    def reset(self) -> None:
        """Clear placement state between simulations (default: stateless)."""

    @property
    def plan_cache_stats(self) -> dict[str, int]:
        """Stage-plan cache counters (empty for layouts that don't plan)."""
        return {}

    @property
    def runtime_stats(self) -> dict[str, float]:
        """Live placement state for the metrics registry's layout view.

        Stateless layouts report nothing; the elastic layout surfaces its
        autoscaling counters.  Sampled at metrics-collection time, so a
        scrape mid-run sees the current fleet, not an end-of-run summary.
        """
        return {}

    # -- key residency -----------------------------------------------------------

    def _key_shipping_s(
        self,
        cluster: "StrixCluster",
        batch: "Batch",
        targets: tuple[int, ...],
        params: TFHEParameters,
    ) -> float:
        """Seconds of BSK/KSK shipping this dispatch triggers.

        Delegates to the cluster's
        :class:`~repro.arch.key_cache.KeyResidencyManager`: the first
        placement of a tenant is free (onboarding provisions keys, which
        keeps one-device clusters bit-for-bit with the single-device
        simulator), every later landing on a device that lacks the keys
        ships one full BSK/KSK set over the interconnect, and a finite
        per-device budget triggers eviction and paid re-shipping.
        """
        return cluster.key_residency.place(batch.tenants, targets, params)

    def _dispatch_to_device(
        self,
        cluster: "StrixCluster",
        batch: "Batch",
        now: float,
        params: TFHEParameters,
        index: int,
        effective_busy: float,
        extra_breakdown: dict[str, float] | None = None,
    ) -> Dispatch:
        """Price and book one whole batch onto one device.

        The single-device service arithmetic shared by the data-parallel
        and elastic layouts: cost-model compute, ciphertext transfer,
        dispatch overhead and key shipping — summed in exactly this order,
        which is what keeps the one-device analytical case bit-for-bit with
        the historical serving tier.
        """
        device = cluster.devices[index]
        cost = cluster.cost_model.batch_cost(batch, params, device)
        transfer_s = cluster.interconnect.ciphertext_transfer_s(
            params, batch.total_items
        )
        shipping_s = self._key_shipping_s(cluster, batch, (index,), params)
        service = (
            cost.compute_s
            + transfer_s
            + cluster.config.dispatch_overhead_s
            + shipping_s
        )
        start = max(now, effective_busy)
        # Thermal throttling under a fault schedule; returns the same float
        # when no slowdown is scheduled, keeping the no-fault path bit-exact.
        service = cluster.faults.adjust_service(index, start, service)
        end = start + service
        device.busy_until = end
        device.busy_s += service
        device.batches += 1
        device.pbs += batch.total_pbs
        return Dispatch(
            device=index,
            start_s=start,
            end_s=end,
            devices=(index,),
            breakdown={
                **cost.breakdown,
                "transfer_s": transfer_s,
                "dispatch_s": cluster.config.dispatch_overhead_s,
                "key_shipping_s": shipping_s,
                **(extra_breakdown or {}),
            },
        )


# -- data-parallel shard execution (shared by data-parallel and elastic runs) --------


def _shard_netlist(
    cluster: "StrixCluster", netlist: Netlist, instances: int
) -> list[ComputationGraph | None]:
    """Shard a replicated netlist at instance granularity."""
    shares = cluster.policy.partition(instances, len(cluster.devices))
    return [
        compile_netlist(netlist, share) if share > 0 else None for share in shares
    ]


def _shard_graph(
    cluster: "StrixCluster", graph: ComputationGraph
) -> list[ComputationGraph | None]:
    """Split every node's ciphertexts across the devices.

    Zero-ciphertext nodes are kept in place (the epoch scheduler costs them
    at zero), so the dependency structure never needs rewiring and every
    device sees the same critical-path shape.
    """
    device_count = len(cluster.devices)
    shards = [
        ComputationGraph(graph.params, name=f"{graph.name}@dev{index}")
        for index in range(device_count)
    ]
    totals = [0] * device_count
    for node_index, node in enumerate(graph.nodes):
        shares = cluster.policy.partition(
            node.ciphertexts, device_count, offset=node_index
        )
        for device_index, share in enumerate(shares):
            totals[device_index] += share
            shards[device_index].add_node(
                ComputationNode(
                    name=node.name,
                    kind=node.kind,
                    ciphertexts=share,
                    operations_per_ciphertext=node.operations_per_ciphertext,
                    depends_on=list(node.depends_on),
                )
            )
    return [shard if total > 0 else None for shard, total in zip(shards, totals)]


def _run_shards(
    cluster: "StrixCluster",
    name: str,
    params: TFHEParameters,
    shards: list[ComputationGraph | None],
    layout: str,
) -> RunResult:
    per_device: list[DeviceShardResult] = []
    utilization: dict[str, float] = {}
    for device, shard in zip(cluster.devices, shards):
        if shard is None:
            continue
        schedule = device.scheduler.run(shard)
        energy = device.energy_model.workload_energy_j(schedule.total_time_s)
        per_device.append(
            DeviceShardResult(
                device=device.index,
                latency_s=schedule.total_time_s,
                pbs=schedule.total_pbs,
                epochs=schedule.total_epochs,
                utilization=dict(schedule.core_utilization),
                energy_j=energy,
            )
        )
        for core, value in schedule.core_utilization.items():
            utilization[f"dev{device.index}/{core}"] = value

    latencies = [entry.latency_s for entry in per_device]
    slowest = max(latencies, default=0.0)
    mean_latency = sum(latencies) / len(latencies) if latencies else 0.0
    total_latency = slowest + cluster.config.dispatch_overhead_s
    total_energy = sum(entry.energy_j for entry in per_device)
    return RunResult(
        workload=name,
        backend=cluster.backend_name,
        parameter_set=params.name,
        latency_s=total_latency,
        pbs_count=sum(entry.pbs for entry in per_device),
        utilization=utilization,
        energy_j=total_energy,
        details={
            "devices": len(cluster.devices),
            "active_devices": len(per_device),
            "policy": cluster.policy.name,
            "layout": layout,
            "epochs": sum(entry.epochs for entry in per_device),
            "per_device": per_device,
            "straggler": {
                "slowest_s": slowest,
                "mean_s": mean_latency,
                "straggler_s": slowest - mean_latency,
                "imbalance": slowest / mean_latency if mean_latency > 0 else 0.0,
            },
        },
    )


def _run_data_parallel(
    cluster: "StrixCluster",
    workload: WorkloadLike,
    params: "TFHEParameters | str | None",
    instances: int,
    layout: str,
) -> RunResult:
    """Shard one workload across all devices (the data-parallel run path)."""
    if isinstance(workload, Netlist) and instances > 1:
        resolved = as_netlist(workload, params)
        shards = _shard_netlist(cluster, resolved, instances)
        # compile_netlist names the full graph f"{name}-x{instances}";
        # match it without compiling the whole replicated netlist again.
        name = f"{resolved.name}-x{instances}"
        workload_params = resolved.params
    else:
        full_graph = as_graph(workload, params, instances)
        shards = _shard_graph(cluster, full_graph)
        name = full_graph.name
        workload_params = full_graph.params
    return _run_shards(cluster, name, workload_params, shards, layout)


class DataParallelLayout(PlacementLayout):
    """Every device runs every layer; one batch occupies one device."""

    name = "data-parallel"

    def dispatch(
        self,
        cluster: "StrixCluster",
        batch: "Batch",
        now: float,
        params: TFHEParameters,
    ) -> Dispatch:
        indices = cluster.available_indices(now)
        busy_until = [cluster.devices[index].busy_until for index in indices]
        resident = cluster.key_residency.resident_flags(
            batch.requests[0].tenant, indices
        )
        index = indices[cluster.policy.select(busy_until, batch, resident=resident)]
        return self._dispatch_to_device(
            cluster, batch, now, params, index, cluster.devices[index].busy_until
        )

    def run_workload(
        self,
        cluster: "StrixCluster",
        workload: WorkloadLike,
        params: "TFHEParameters | str | None",
        instances: int,
    ) -> RunResult:
        return _run_data_parallel(cluster, workload, params, instances, self.name)


class PipelineLayout(PlacementLayout):
    """Stage-per-device placement for deep LUT pipelines.

    The workload's dependency levels are cut into contiguous stages (one
    per device, balanced by PBS weight); ciphertexts crossing each stage
    boundary are charged on the cluster interconnect, and every stage
    device must hold the batch's tenant keys.

    Stage plans are cached per batch *shape*: lowering a batch to its graph
    and cutting it into stages depends only on the request-mix signature
    (coalesced linear items, coalesced simple PBS, the multiset of
    inference models × samples), the device count and the parameter set —
    not on request ids or arrival times — so steady traffic, which repeats
    a handful of shapes, partitions each shape once instead of once per
    batch.  The cache holds pure derived data and therefore survives
    :meth:`reset` (only the hit/miss counters clear); it is bounded by
    :attr:`plan_cache_capacity` with LRU replacement (the same
    :class:`~repro.sched.memo.LruCache` the event model's schedule cache
    uses, so the two per-shape caches share one semantics).
    """

    name = "pipeline"

    #: Cached stage plans kept before the least-recently-used is dropped.
    plan_cache_capacity = 256

    def __init__(self) -> None:
        self._plan_cache = LruCache(self.plan_cache_capacity)

    def reset(self) -> None:
        """Clear per-simulation counters (cached plans are pure and kept)."""
        self._plan_cache.reset_counters()

    @property
    def plan_cache_stats(self) -> dict[str, int]:
        """Hit/miss counters of this simulation plus resident plan count."""
        return {
            "hits": self._plan_cache.hits,
            "misses": self._plan_cache.misses,
            "entries": len(self._plan_cache),
        }

    def _stage_plan(
        self,
        active: tuple[int, ...],
        batch: "Batch",
        params: TFHEParameters,
    ) -> "StagePlan":
        """The batch's stage plan, partitioned once per request-mix shape.

        Keyed on the tuple of *available* devices, not just their count:
        under a fault schedule the surviving set changes mid-trace, and a
        plan cut for devices ``(0, 1, 2, 3)`` must not be replayed onto
        ``(0, 2, 3)`` — same stage count, different stage-to-device map.
        Without faults the tuple is constant, so caching behaves exactly
        as the historical count-keyed cache did.
        """
        from repro.sched.cost import batch_graph, batch_mix_signature

        # Key on the params *object* (frozen, structurally hashed), not its
        # name: replace(PARAM_SET_I, n=...) keeps the name but changes the
        # graph the batch lowers to.
        signature = (active, params, batch_mix_signature(batch))
        return self._plan_cache.get_or_compute(
            signature,
            lambda: partition_graph_stages(batch_graph(batch, params), len(active)),
        )

    def dispatch(
        self,
        cluster: "StrixCluster",
        batch: "Batch",
        now: float,
        params: TFHEParameters,
    ) -> Dispatch:
        active = tuple(cluster.available_indices(now))
        plan = self._stage_plan(active, batch, params)
        targets = active[: len(plan.graphs)]
        shipping_s = self._key_shipping_s(cluster, batch, targets, params)
        input_transfer_s = cluster.interconnect.ciphertext_transfer_s(
            params, batch.total_items
        )

        stages: list[StageDispatch] = []
        compute_total = 0.0
        transfer_total = input_transfer_s
        entry = now + input_transfer_s + shipping_s
        for stage_index, stage_graph in enumerate(plan.graphs):
            device = cluster.devices[active[stage_index]]
            if stage_index > 0:
                transfer_in = cluster.interconnect.ciphertext_transfer_s(
                    params, plan.boundary_ciphertexts[stage_index]
                )
                entry += transfer_in
                transfer_total += transfer_in
            else:
                transfer_in = input_transfer_s
            cost = cluster.cost_model.stage_cost(stage_graph, params, device)
            start = max(entry, device.busy_until)
            compute_s = cluster.faults.adjust_service(
                device.index, start, cost.compute_s
            )
            end = start + compute_s
            device.busy_until = end
            device.busy_s += compute_s
            device.batches += 1
            device.pbs += cost.pbs
            compute_total += compute_s
            stages.append(
                StageDispatch(
                    device=device.index,
                    start_s=start,
                    end_s=end,
                    compute_s=compute_s,
                    transfer_in_s=transfer_in,
                    pbs=cost.pbs,
                )
            )
            entry = end

        end = entry + cluster.config.dispatch_overhead_s
        return Dispatch(
            device=stages[-1].device if stages else 0,
            start_s=stages[0].start_s if stages else now,
            end_s=end,
            devices=tuple(stage.device for stage in stages),
            breakdown={
                "compute_s": compute_total,
                "stage_transfer_s": transfer_total,
                "dispatch_s": cluster.config.dispatch_overhead_s,
                "key_shipping_s": shipping_s,
            },
            stages=tuple(stages),
        )

    def run_workload(
        self,
        cluster: "StrixCluster",
        workload: WorkloadLike,
        params: "TFHEParameters | str | None",
        instances: int,
    ) -> RunResult:
        """Schedule one workload's stages on consecutive devices.

        Latency for a single traversal is the *sum* of stage times plus the
        boundary transfers (stages only overlap across successive batches,
        which the serving path models); the per-stage breakdown lands in
        ``details["stages"]``.
        """
        graph = as_graph(workload, params, instances)
        plan = partition_graph_stages(graph, len(cluster.devices))
        stage_details: list[dict] = []
        utilization: dict[str, float] = {}
        latency = 0.0
        transfer_total = 0.0
        energy_total = 0.0
        pbs_total = 0
        epoch_total = 0
        for stage_index, stage_graph in enumerate(plan.graphs):
            device = cluster.devices[stage_index]
            schedule = device.scheduler.run(stage_graph)
            transfer_s = (
                cluster.interconnect.ciphertext_transfer_s(
                    graph.params, plan.boundary_ciphertexts[stage_index]
                )
                if stage_index > 0
                else 0.0
            )
            energy = device.energy_model.workload_energy_j(schedule.total_time_s)
            latency += transfer_s + schedule.total_time_s
            transfer_total += transfer_s
            energy_total += energy
            pbs_total += schedule.total_pbs
            epoch_total += schedule.total_epochs
            for core, value in schedule.core_utilization.items():
                utilization[f"dev{device.index}/{core}"] = value
            stage_details.append(
                {
                    "device": device.index,
                    "latency_s": schedule.total_time_s,
                    "transfer_in_s": transfer_s,
                    "pbs": schedule.total_pbs,
                    "epochs": schedule.total_epochs,
                }
            )
        latency += cluster.config.dispatch_overhead_s
        return RunResult(
            workload=graph.name,
            backend=cluster.backend_name,
            parameter_set=graph.params.name,
            latency_s=latency,
            pbs_count=pbs_total,
            utilization=utilization,
            energy_j=energy_total,
            details={
                "devices": len(cluster.devices),
                "active_devices": len(plan.graphs),
                "policy": cluster.policy.name,
                "layout": self.name,
                "epochs": epoch_total,
                "stages": stage_details,
                "stage_transfer_s": transfer_total,
                "key_shipping_s": 0.0,
            },
        )


class ElasticLayout(PlacementLayout):
    """Autoscaled data-parallel dispatch.

    Starts with ``min_devices`` active.  When the least-loaded active
    device's backlog (how far its busy horizon runs past *now*) exceeds
    ``scale_up_backlog_s``, one more device is provisioned — usable only
    after ``scale_up_latency_s``, the p99-versus-cost trade the serving
    simulation exists to expose.  When every active device has idled for
    ``scale_down_idle_s`` the newest device is released.  One-shot
    ``run_workload`` calls use the whole fleet (autoscaling is a serving
    concept).
    """

    name = "elastic"

    def __init__(
        self,
        min_devices: int = 1,
        scale_up_backlog_s: float = 2e-3,
        scale_up_latency_s: float = 5e-3,
        scale_down_idle_s: float = 50e-3,
    ) -> None:
        super().__init__()
        if min_devices < 1:
            raise ValueError("an elastic layout needs at least one active device")
        if scale_up_latency_s < 0 or scale_up_backlog_s < 0 or scale_down_idle_s < 0:
            raise ValueError("elastic thresholds cannot be negative")
        self.min_devices = min_devices
        self.scale_up_backlog_s = scale_up_backlog_s
        self.scale_up_latency_s = scale_up_latency_s
        self.scale_down_idle_s = scale_down_idle_s
        self._active: list[int] = []
        self._available_at: dict[int, float] = {}
        self.scale_ups = 0
        self.scale_downs = 0
        self.backfills = 0

    def reset(self) -> None:
        super().reset()
        self._active = []
        self._available_at = {}
        self.scale_ups = 0
        self.scale_downs = 0
        self.backfills = 0

    @property
    def runtime_stats(self) -> dict[str, float]:
        """Autoscaling counters and the currently active device count."""
        return {
            "active_devices": float(len(self._active)),
            "scale_ups": float(self.scale_ups),
            "scale_downs": float(self.scale_downs),
            "backfills": float(self.backfills),
        }

    def _effective_busy(self, cluster: "StrixCluster", index: int) -> float:
        return max(
            cluster.devices[index].busy_until, self._available_at.get(index, 0.0)
        )

    def _autoscale(self, cluster: "StrixCluster", now: float) -> None:
        available = cluster.available_indices(now)
        if not self._active:
            self._active = available[: min(self.min_devices, len(available))]
        else:
            usable = set(available)
            if any(index not in usable for index in self._active):
                # A fault took an active device out.  Drop it and backfill
                # from available spares up to the floor — each backfill pays
                # the provisioning latency like any scale-up, but is counted
                # separately so degraded-mode capacity churn is visible.
                # Healed devices do not auto-rejoin; later scale-ups pick
                # them back up on backlog pressure.
                self._active = [index for index in self._active if index in usable]
                floor = min(self.min_devices, len(available))
                for spare in available:
                    if len(self._active) >= floor:
                        break
                    if spare in self._active:
                        continue
                    self._active.append(spare)
                    self._available_at[spare] = now + self.scale_up_latency_s
                    self.backfills += 1
        # A device still being provisioned is capacity already on its way:
        # it neither counts toward the backlog signal nor allows another
        # scale-up, otherwise its own provisioning delay would read as
        # backlog and cascade the whole fleet up from one blip.
        provisioning = any(
            self._available_at.get(index, 0.0) > now for index in self._active
        )
        ready = [
            index
            for index in self._active
            if self._available_at.get(index, 0.0) <= now
        ]
        backlog = min(
            (cluster.devices[index].busy_until - now for index in ready),
            default=0.0,
        )
        if (
            not provisioning
            and backlog > self.scale_up_backlog_s
            and len(self._active) < len(cluster.devices)
        ):
            new_index = next(
                (index for index in available if index not in self._active),
                None,
            )
            if new_index is not None:
                self._active.append(new_index)
                self._available_at[new_index] = now + self.scale_up_latency_s
                self.scale_ups += 1
        elif len(self._active) > self.min_devices and all(
            self._effective_busy(cluster, index) + self.scale_down_idle_s <= now
            for index in self._active
        ):
            released = self._active.pop()
            self._available_at.pop(released, None)
            self.scale_downs += 1

    def dispatch(
        self,
        cluster: "StrixCluster",
        batch: "Batch",
        now: float,
        params: TFHEParameters,
    ) -> Dispatch:
        self._autoscale(cluster, now)
        busy = [self._effective_busy(cluster, index) for index in self._active]
        resident = cluster.key_residency.resident_flags(
            batch.requests[0].tenant, self._active
        )
        index = self._active[cluster.policy.select(busy, batch, resident=resident)]
        return self._dispatch_to_device(
            cluster,
            batch,
            now,
            params,
            index,
            self._effective_busy(cluster, index),
            extra_breakdown={"active_devices": float(len(self._active))},
        )

    def run_workload(
        self,
        cluster: "StrixCluster",
        workload: WorkloadLike,
        params: "TFHEParameters | str | None",
        instances: int,
    ) -> RunResult:
        return _run_data_parallel(cluster, workload, params, instances, self.name)


_LAYOUTS: dict[str, Callable[[], PlacementLayout]] = {
    layout.name: layout
    for layout in (DataParallelLayout, PipelineLayout, ElasticLayout)
}


def list_layouts() -> list[str]:
    """Names of all placement layouts, sorted."""
    return sorted(_LAYOUTS)


def get_layout(layout: "str | PlacementLayout") -> PlacementLayout:
    """Resolve a layout name (or pass an instance through).

    Raises :class:`~repro.errors.UnknownLayoutError` — the shared
    did-you-mean shape — for unknown names.
    """
    if isinstance(layout, PlacementLayout):
        return layout
    try:
        factory = _LAYOUTS[layout]
    except KeyError:
        raise UnknownLayoutError(layout, list_layouts()) from None
    return factory()
