"""Perf-trajectory harness: run benchmark callables, write ``BENCH_*.json``.

The pytest-benchmark files under ``benchmarks/`` print timings but leave no
machine-readable trail, so there was nothing to compare across PRs.  This
harness is that trail: a :class:`BenchReport` collects named records (timed
callables or externally computed metrics) and writes one ``BENCH_<suite>.json``
at the repository root — the artifact CI uploads and future PRs diff against.

Schema (version 1)::

    {"schema": 1, "suite": "serve", "created_unix": ..., "python": "3.12.3",
     "records": [{"name": ..., "value": ..., "unit": ..., ...extras}]}
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path
from typing import Any, Callable

#: Repository root (``benchmarks/`` lives directly under it).
REPO_ROOT = Path(__file__).resolve().parent.parent


def ensure_repro_importable() -> None:
    """Make ``src/`` importable when a benchmark runs as a plain script."""
    src = REPO_ROOT / "src"
    if str(src) not in sys.path:
        sys.path.insert(0, str(src))


class BenchReport:
    """Collects benchmark records for one suite and serializes them."""

    def __init__(self, suite: str):
        self.suite = suite
        self.records: list[dict[str, Any]] = []

    def add(self, name: str, value: float, unit: str, **extra: Any) -> None:
        """Record one named metric (timings, throughputs, percentiles...)."""
        self.records.append({"name": name, "value": value, "unit": unit, **extra})

    def time(
        self, name: str, fn: Callable[[], Any], repeats: int = 3, **extra: Any
    ) -> float:
        """Time ``fn`` (best of ``repeats``), record it, return the seconds.

        The record carries ``timed: true`` so cross-commit comparisons
        (``check_regression.py``) can tell wall-clock measurements — noisy
        across runners — from deterministic model outputs.
        """
        best = min(self._once(fn) for _ in range(max(1, repeats)))
        self.add(name, best, "s", timed=True, **extra)
        return best

    @staticmethod
    def _once(fn: Callable[[], Any]) -> float:
        start = time.perf_counter()
        fn()
        return time.perf_counter() - start

    def to_dict(self) -> dict[str, Any]:
        """The full JSON document."""
        return {
            "schema": 1,
            "suite": self.suite,
            "created_unix": int(time.time()),
            "python": platform.python_version(),
            "records": self.records,
        }

    def write(self, path: str | Path | None = None) -> Path:
        """Write ``BENCH_<suite>.json`` (at the repo root by default)."""
        target = Path(path) if path else REPO_ROOT / f"BENCH_{self.suite}.json"
        target.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return target
