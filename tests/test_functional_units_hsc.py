"""Tests for the functional-unit timing models and the HSC pipeline."""

from __future__ import annotations

import pytest

from repro.arch.config import STRIX_DEFAULT, STRIX_UNFOLDED
from repro.arch.functional_units import (
    PBS_PIPELINE_ORDER,
    KeyswitchCluster,
    build_pbs_cluster,
)
from repro.arch.hsc import HomomorphicStreamingCore
from repro.params import PAPER_PARAMETER_SETS, PARAM_SET_I, PARAM_SET_IV


class TestPbsCluster:
    def test_cluster_has_six_stages_in_order(self):
        cluster = build_pbs_cluster(STRIX_DEFAULT)
        assert tuple(cluster) == PBS_PIPELINE_ORDER
        assert len(cluster) == 6

    def test_rotator_busy_half_of_fft(self):
        """The rotator handles (k+1) polys vs (k+1)*lb for the wide units, so
        for lb=2 it is busy half the time — the ~50 % utilization of Fig. 8."""
        cluster = build_pbs_cluster(STRIX_DEFAULT)
        rotator = cluster["rotator"].busy_cycles_per_lwe(PARAM_SET_I)
        fft = cluster["fft"].busy_cycles_per_lwe(PARAM_SET_I)
        assert rotator * 2 == fft

    def test_wide_units_balanced_for_set_i(self):
        """Decomposer, FFT, VMA, IFFT and accumulator all take the same time
        per LWE per iteration — the paper's balanced six-stage pipeline."""
        cluster = build_pbs_cluster(STRIX_DEFAULT)
        busy = {name: unit.busy_cycles_per_lwe(PARAM_SET_I) for name, unit in cluster.items()}
        wide = [busy[name] for name in ("decomposer", "fft", "vma", "ifft", "accumulator")]
        assert len(set(wide)) == 1

    @pytest.mark.parametrize("name", PAPER_PARAMETER_SETS)
    def test_busy_cycles_positive_for_all_sets(self, name):
        params = PAPER_PARAMETER_SETS[name]
        cluster = build_pbs_cluster(STRIX_DEFAULT)
        for unit in cluster.values():
            assert unit.busy_cycles_per_lwe(params) >= 1

    def test_unfolded_units_are_slower(self):
        folded = build_pbs_cluster(STRIX_DEFAULT)
        unfolded = build_pbs_cluster(STRIX_UNFOLDED)
        for name in PBS_PIPELINE_ORDER:
            assert (
                unfolded[name].busy_cycles_per_lwe(PARAM_SET_I)
                >= folded[name].busy_cycles_per_lwe(PARAM_SET_I)
            )

    def test_unit_areas_match_table_iii(self):
        cluster = build_pbs_cluster(STRIX_DEFAULT)
        assert cluster["rotator"].area_mm2 == pytest.approx(0.02, abs=0.01)
        assert cluster["decomposer"].area_mm2 == pytest.approx(0.28, rel=0.05)
        assert cluster["vma"].area_mm2 == pytest.approx(0.63, rel=0.05)
        assert cluster["accumulator"].area_mm2 == pytest.approx(0.32, rel=0.05)
        ifftu = cluster["fft"].area_mm2 + cluster["ifft"].area_mm2
        assert ifftu == pytest.approx(7.23, rel=0.05)

    def test_instance_counts_follow_parallelism(self):
        cluster = build_pbs_cluster(STRIX_DEFAULT)
        assert cluster["fft"].instances == STRIX_DEFAULT.plp
        assert cluster["rotator"].instances == STRIX_DEFAULT.colp


class TestKeyswitchCluster:
    def test_mac_count_matches_algorithm_2(self):
        cluster = KeyswitchCluster(STRIX_DEFAULT)
        params = PARAM_SET_I
        expected = params.k * params.N * params.lk * (params.n + 1)
        assert cluster.macs_per_lwe(params) == expected

    def test_busy_cycles_divide_by_lane_product(self):
        cluster = KeyswitchCluster(STRIX_DEFAULT)
        macs = cluster.macs_per_lwe(PARAM_SET_I)
        assert cluster.busy_cycles_per_lwe(PARAM_SET_I) == -(-macs // 64)

    def test_keyswitch_hidden_behind_pbs_for_paper_sets(self):
        core = HomomorphicStreamingCore(STRIX_DEFAULT)
        for params in PAPER_PARAMETER_SETS.values():
            assert core.keyswitch_hidden(params), params.name


class TestHscPipeline:
    @pytest.fixture(scope="class")
    def core(self):
        return HomomorphicStreamingCore(STRIX_DEFAULT)

    def test_initiation_interval_set_i(self, core):
        """ceil((k+1)*lb / PLP) * N / (2*CLP) = 2 * 128 = 256 cycles."""
        timing = core.pipeline_timing(PARAM_SET_I)
        assert timing.initiation_interval == 256

    def test_initiation_interval_set_iv(self, core):
        timing = core.pipeline_timing(PARAM_SET_IV)
        assert timing.initiation_interval == 4096

    def test_iteration_latency_exceeds_initiation_interval(self, core):
        timing = core.pipeline_timing(PARAM_SET_I)
        assert timing.iteration_latency > timing.initiation_interval

    def test_utilization_near_one_for_wide_units(self, core):
        utilization = core.pipeline_timing(PARAM_SET_I).utilization()
        for name in ("decomposer", "fft", "vma", "ifft", "accumulator"):
            assert utilization[name] == pytest.approx(1.0)
        assert utilization["rotator"] == pytest.approx(0.5)

    def test_bottleneck_is_a_wide_unit(self, core):
        timing = core.pipeline_timing(PARAM_SET_I)
        assert timing.bottleneck_unit != "rotator"

    def test_core_batch_size_set_by_scratchpad(self, core):
        # 0.625 MB * 80 % / (2 * 1024 * 4 B) = 64 accumulators for set I.
        assert core.core_batch_size(PARAM_SET_I) == 64
        assert core.core_batch_size(PARAM_SET_IV) == 4

    def test_streaming_beats_single_latency(self, core):
        assert core.pbs_cycles_per_lwe_streaming(PARAM_SET_I) < core.pbs_cycles_single(PARAM_SET_I)

    def test_occupancy_trace_structure(self, core):
        intervals = core.occupancy_trace(PARAM_SET_I, lwes_per_core=3, iterations=2)
        units = {interval.unit for interval in intervals}
        assert units == set(PBS_PIPELINE_ORDER)
        assert len(intervals) == 6 * 3 * 2
        for interval in intervals:
            assert interval.end_cycle > interval.start_cycle
            assert 0 <= interval.lwe_index < 3
            assert 0 <= interval.iteration < 2

    def test_occupancy_trace_units_never_double_booked(self, core):
        intervals = core.occupancy_trace(PARAM_SET_I, lwes_per_core=3, iterations=2)
        by_unit: dict[str, list] = {}
        for interval in intervals:
            by_unit.setdefault(interval.unit, []).append(interval)
        for unit_intervals in by_unit.values():
            unit_intervals.sort(key=lambda entry: entry.start_cycle)
            for earlier, later in zip(unit_intervals, unit_intervals[1:]):
                assert later.start_cycle >= earlier.end_cycle

    def test_trace_utilization_high_for_fft(self, core):
        intervals = core.occupancy_trace(PARAM_SET_I, lwes_per_core=8, iterations=3)
        utilization = core.trace_utilization(intervals)
        assert utilization["fft"] > 0.8
        assert utilization["rotator"] < utilization["fft"]

    def test_occupancy_trace_rejects_bad_arguments(self, core):
        with pytest.raises(ValueError):
            core.occupancy_trace(PARAM_SET_I, 0, 1)
        with pytest.raises(ValueError):
            core.occupancy_trace(PARAM_SET_I, 1, 0)
