"""Programmable look-up tables over encrypted integers.

The PBS of TFHE evaluates an arbitrary univariate function during
bootstrapping; this module wraps that capability as reusable look-up table
objects, the building block of the Zama Deep-NN activation layers and of the
tree-based / relational workloads the paper motivates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.params import TFHEParameters
from repro.tfhe.bootstrap import programmable_bootstrap
from repro.tfhe.keys import BootstrappingKey, KeySwitchingKey
from repro.tfhe.lwe import LweCiphertext


@dataclass
class LookUpTable:
    """A univariate function ``Z_p -> Z_p`` materialized as a table.

    Attributes
    ----------
    entries:
        Sequence of ``p`` output messages.
    params:
        Parameter set defining the message modulus ``p``.
    """

    entries: np.ndarray
    params: TFHEParameters

    def __post_init__(self) -> None:
        self.entries = np.asarray(self.entries, dtype=np.int64)
        p = self.params.message_modulus
        if self.entries.shape != (p,):
            raise ValueError(f"expected {p} table entries, got shape {self.entries.shape}")
        if np.any((self.entries < 0) | (self.entries >= p)):
            raise ValueError(f"table entries must lie in [0, {p})")

    @classmethod
    def from_function(cls, function: Callable[[int], int], params: TFHEParameters) -> "LookUpTable":
        """Tabulate a Python function over the message space."""
        p = params.message_modulus
        return cls(np.array([function(m) % p for m in range(p)], dtype=np.int64), params)

    def __call__(self, message: int) -> int:
        """Evaluate the table on a plaintext message (for tests/validation)."""
        return int(self.entries[message % self.params.message_modulus])

    def evaluate_torus(self, message: int) -> int:
        """Plaintext emulation of the PBS output, including negacyclic wrap.

        PBS evaluates the table over the *whole* torus: for messages in the
        padding half ``[p, 2p)`` the negacyclic structure of the test vector
        returns the negated entry of ``message - p``.  This mirrors exactly
        what :func:`repro.tfhe.bootstrap.programmable_bootstrap` computes and
        lets plaintext reference models track homomorphic pipelines whose
        intermediate values overflow into the padding half.
        """
        p = self.params.message_modulus
        message = message % (2 * p)
        if message < p:
            return int(self.entries[message])
        return (-int(self.entries[message - p])) % (2 * p)

    def apply(
        self,
        ciphertext: LweCiphertext,
        bootstrapping_key: BootstrappingKey,
        keyswitching_key: KeySwitchingKey | None = None,
    ) -> LweCiphertext:
        """Evaluate the table homomorphically via one PBS."""
        result = programmable_bootstrap(
            ciphertext,
            lambda m: int(self.entries[m % len(self.entries)]),
            bootstrapping_key,
            self.params,
            keyswitching_key,
        )
        return result.ciphertext


def relu_lut(params: TFHEParameters) -> LookUpTable:
    """ReLU over the signed interpretation of the message space.

    Messages ``m < p/2`` are treated as non-negative and pass through;
    messages in the upper half (negative values) map to zero.  This is the
    activation used by the Zama Deep-NN benchmark (Section VI-C).
    """
    p = params.message_modulus
    half = p // 2
    return LookUpTable.from_function(lambda m: m if m < half else 0, params)


def sign_lut(params: TFHEParameters) -> LookUpTable:
    """Sign function: 1 for the lower half of the message space, 0 otherwise."""
    p = params.message_modulus
    half = p // 2
    return LookUpTable.from_function(lambda m: 1 if m < half else 0, params)


def threshold_lut(threshold: int, params: TFHEParameters) -> LookUpTable:
    """Comparator table: 1 when ``m >= threshold`` else 0."""
    return LookUpTable.from_function(lambda m: 1 if m >= threshold else 0, params)
