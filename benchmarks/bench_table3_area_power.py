"""Table III — Strix area and power breakdown.

Regenerates the per-component breakdown from the area/power model and checks
the totals against the paper's synthesis results (141.37 mm^2, 77.14 W).
"""

from __future__ import annotations

from repro.analysis.tables import area_power_table, render_area_power_table


def test_table3_area_power(benchmark, save_result):
    cost = benchmark(area_power_table)

    assert abs(cost.total_area_mm2 - 141.37) / 141.37 < 0.05
    assert abs(cost.total_power_w - 77.14) / 77.14 < 0.07
    assert abs(cost.core_area_mm2 - 9.38) / 9.38 < 0.05
    assert cost.component("Global scratchpad").area_mm2 > cost.component("HBM2 PHY").area_mm2

    save_result("table3_area_power", render_area_power_table(cost))
