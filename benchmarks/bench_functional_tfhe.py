"""Library micro-benchmarks: the functional TFHE substrate itself.

These are not paper figures; they measure the Python library's own hot paths
(negacyclic transforms, external products, full PBS on the test parameters)
so regressions in the functional substrate are caught by the benchmark run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.fft.folding import FoldedNegacyclicTransform
from repro.fft.negacyclic import NegacyclicTransform
from repro.params import TOY_PARAMETERS
from repro.tfhe.context import TFHEContext
from repro.tfhe.ggsw import GgswCiphertext
from repro.tfhe.glwe import GlweCiphertext


@pytest.fixture(scope="module")
def context():
    ctx = TFHEContext(TOY_PARAMETERS, seed=7)
    ctx.generate_server_keys()
    return ctx


def test_bench_folded_transform_1024(benchmark):
    transform = FoldedNegacyclicTransform(1024)
    rng = np.random.default_rng(0)
    poly = rng.integers(0, 2 ** 32, 1024).astype(np.int64)
    spectrum = benchmark(transform.forward, poly)
    assert spectrum.shape == (512,)


def test_bench_full_transform_1024(benchmark):
    transform = NegacyclicTransform(1024)
    rng = np.random.default_rng(0)
    poly = rng.integers(0, 2 ** 32, 1024).astype(np.int64)
    spectrum = benchmark(transform.forward, poly)
    assert spectrum.shape == (1024,)


def test_bench_external_product(benchmark, context):
    params = context.params
    rng = np.random.default_rng(1)
    message = np.zeros(params.N, dtype=np.int64)
    message[0] = params.delta
    glwe = GlweCiphertext.encrypt(message, context.glwe_key.polynomials, params, rng)
    ggsw = GgswCiphertext.encrypt(1, context.glwe_key.polynomials, params, rng).to_fourier()
    result = benchmark(ggsw.external_product, glwe)
    assert result.body.shape == (params.N,)


def test_bench_programmable_bootstrap(benchmark, context):
    ciphertext = context.encrypt(2)
    result = benchmark(context.programmable_bootstrap, ciphertext, lambda m: m)
    assert context.decrypt(result.ciphertext) == 2


def test_bench_gate_bootstrap(benchmark, context):
    gates = context.gates()
    a = context.encrypt_boolean(True)
    b = context.encrypt_boolean(False)
    result = benchmark(gates.nand, a, b)
    assert context.decrypt_boolean(result) is True
