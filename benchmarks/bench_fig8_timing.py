"""Fig. 8 — functional-unit occupancy trace of the first two BR iterations.

Regenerates the Gantt-style trace for parameter set I with three LWEs per
core and checks the utilization claims of Section VI-C: decomposer / FFT /
VMA / IFFT / accumulator close to 100 %, rotator around 50 %, the local
scratchpad heavily accessed and the HBM bus busy well below saturation.
"""

from __future__ import annotations

from repro.arch.accelerator import StrixAccelerator
from repro.params import PARAM_SET_I
from repro.sim.trace import build_occupancy_trace


def test_fig8_occupancy_trace(benchmark, save_result):
    accelerator = StrixAccelerator()
    trace = benchmark(build_occupancy_trace, accelerator, PARAM_SET_I, 3, 2)

    utilization = trace.utilization
    for unit in ("decomposer", "fft", "vma", "ifft", "accumulator"):
        assert utilization[unit] > 0.8, unit
    assert 0.3 < utilization["rotator"] < 0.7
    assert utilization["local_scratchpad"] > 0.7
    assert 0.2 < utilization["hbm"] < 0.9

    save_result("fig8_occupancy_trace", trace.render())
