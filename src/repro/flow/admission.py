"""Admission policies: who gets into a bounded request queue, who does not.

An overloaded server has exactly three honest options when a request
arrives and the queue is at capacity: turn the new request away, evict
queued work to make room, or have reserved room per tenant so one flooder
cannot fill the queue in the first place.  Each is an
:class:`AdmissionPolicy`; all three are registered behind the same
string-keyed, did-you-mean registry shape every other pluggable seam uses
(``Server(admission="shed-oldest")``).

A policy is a *pure decision function*: given the queue, the arriving
request and the configured limits it returns an :class:`AdmissionDecision`
— admit as-is, admit after shedding named queued victims, or reject with a
reason.  It never mutates the queue itself; the
:class:`~repro.flow.control.FlowController` executes the decision (pops
victims, counts outcomes, fails futures).  Decisions are deterministic
functions of queue state, so replayed overload traces shed bit-for-bit
the same requests every run.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import UnknownAdmissionPolicyError

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.serve.queue import RequestQueue
    from repro.serve.request import Request


@dataclass(frozen=True)
class AdmissionLimits:
    """Capacities an admission policy enforces.

    ``queue_capacity`` bounds total waiting requests; ``tenant_capacity``
    bounds one tenant's waiting requests.  ``None`` means unbounded on
    that axis (a policy with both ``None`` admits everything).
    """

    queue_capacity: int | None = None
    tenant_capacity: int | None = None

    def __post_init__(self) -> None:
        if self.queue_capacity is not None and self.queue_capacity < 1:
            raise ValueError("queue capacity must be at least one request")
        if self.tenant_capacity is not None and self.tenant_capacity < 1:
            raise ValueError("tenant capacity must be at least one request")

    @property
    def bounded(self) -> bool:
        """Whether any axis is actually limited."""
        return self.queue_capacity is not None or self.tenant_capacity is not None


@dataclass(frozen=True)
class AdmissionDecision:
    """What a policy decided for one arriving request.

    ``admit`` with an empty ``shed`` is the fast path.  ``shed`` names
    queued requests the controller must evict *before* pushing the new
    one (shed-oldest makes room this way).  A rejection carries a
    human-readable ``reason`` that travels to the typed error / BUSY
    reply.
    """

    admit: bool
    shed: tuple[Request, ...] = ()
    reason: str = ""


#: The decision every policy takes on an unbounded queue.
_ADMIT = AdmissionDecision(admit=True)


class AdmissionPolicy(abc.ABC):
    """Decides, per arriving request, admit / shed-then-admit / reject."""

    #: Registry name (set by subclasses).
    name = "base"

    @abc.abstractmethod
    def decide(
        self, queue: "RequestQueue", request: Request, limits: AdmissionLimits
    ) -> AdmissionDecision:
        """The admission decision for ``request`` against the current queue."""

    # -- shared predicates --------------------------------------------------------

    @staticmethod
    def _queue_full(queue: "RequestQueue", limits: AdmissionLimits) -> bool:
        return (
            limits.queue_capacity is not None
            and queue.depth >= limits.queue_capacity
        )

    @staticmethod
    def _tenant_full(
        queue: "RequestQueue", tenant: str, limits: AdmissionLimits
    ) -> bool:
        return (
            limits.tenant_capacity is not None
            and queue.tenant_depths.get(tenant, 0) >= limits.tenant_capacity
        )


class RejectNewestPolicy(AdmissionPolicy):
    """Turn the arriving request away when a capacity is exhausted.

    The classic tail-drop: queued work is never disturbed, the newcomer
    pays.  Cheapest and fairest to work already accepted; a client with a
    retry loop (which the BUSY reply's hint drives) gets in once the
    backlog drains.
    """

    name = "reject-newest"

    def decide(
        self, queue: "RequestQueue", request: Request, limits: AdmissionLimits
    ) -> AdmissionDecision:
        if self._queue_full(queue, limits):
            return AdmissionDecision(
                admit=False,
                reason=f"queue is at capacity ({limits.queue_capacity} requests)",
            )
        if self._tenant_full(queue, request.tenant, limits):
            return AdmissionDecision(
                admit=False,
                reason=(
                    f"tenant {request.tenant!r} is at capacity "
                    f"({limits.tenant_capacity} queued requests)"
                ),
            )
        return _ADMIT


class ShedOldestPolicy(AdmissionPolicy):
    """Evict the longest-waiting queued request to make room for the new one.

    Head-drop: under a deadline discipline the oldest queued request is
    the one most likely to miss its deadline anyway, so shedding it keeps
    the queue full of work that can still finish in time.  Per-tenant
    overflow sheds that tenant's own oldest request (a flooder evicts only
    itself).
    """

    name = "shed-oldest"

    def decide(
        self, queue: "RequestQueue", request: Request, limits: AdmissionLimits
    ) -> AdmissionDecision:
        if self._tenant_full(queue, request.tenant, limits):
            victim = queue.oldest_for_tenant(request.tenant)
            assert victim is not None
            return AdmissionDecision(
                admit=True,
                shed=(victim,),
                reason=f"tenant {request.tenant!r} at capacity; shed its oldest",
            )
        if self._queue_full(queue, limits):
            victim = queue.oldest()
            assert victim is not None
            return AdmissionDecision(
                admit=True,
                shed=(victim,),
                reason="queue at capacity; shed the oldest request",
            )
        return _ADMIT


@dataclass
class TenantQuotaPolicy(AdmissionPolicy):
    """Reserve each tenant a weighted slice of the queue capacity.

    Every tenant's waiting-request count is capped at its
    weight-proportional share of ``queue_capacity`` over the tenants
    *currently queued or arriving* (at least one request each), so a
    flooding tenant exhausts only its own slice while light tenants'
    arrivals keep being admitted.  The global bound still applies on top.

    ``weights`` mirrors the batcher's QoS weights (default 1.0); pass the
    same dict to both to align queue admission with batch shares.
    """

    weights: dict[str, float] = field(default_factory=dict)
    name = "tenant-quota"

    def __post_init__(self) -> None:
        if any(weight <= 0 for weight in self.weights.values()):
            raise ValueError("tenant weights must be positive")

    def _weight(self, tenant: str) -> float:
        return self.weights.get(tenant, 1.0)

    def quota(
        self, queue: "RequestQueue", tenant: str, limits: AdmissionLimits
    ) -> int | None:
        """The tenant's current waiting-request quota (``None`` = unbounded)."""
        if limits.queue_capacity is None:
            return limits.tenant_capacity
        tenants = set(queue.tenant_depths) | {tenant}
        total_weight = sum(self._weight(name) for name in tenants)
        share = max(
            1, int(limits.queue_capacity * self._weight(tenant) / total_weight)
        )
        if limits.tenant_capacity is not None:
            share = min(share, limits.tenant_capacity)
        return share

    def decide(
        self, queue: "RequestQueue", request: Request, limits: AdmissionLimits
    ) -> AdmissionDecision:
        if self._queue_full(queue, limits):
            return AdmissionDecision(
                admit=False,
                reason=f"queue is at capacity ({limits.queue_capacity} requests)",
            )
        quota = self.quota(queue, request.tenant, limits)
        if quota is not None and queue.tenant_depths.get(request.tenant, 0) >= quota:
            return AdmissionDecision(
                admit=False,
                reason=(
                    f"tenant {request.tenant!r} exhausted its quota "
                    f"({quota} queued requests)"
                ),
            )
        return _ADMIT


_POLICIES: dict[str, type[AdmissionPolicy]] = {
    RejectNewestPolicy.name: RejectNewestPolicy,
    ShedOldestPolicy.name: ShedOldestPolicy,
    TenantQuotaPolicy.name: TenantQuotaPolicy,
}


def list_admission_policies() -> list[str]:
    """Registered admission-policy names."""
    return sorted(_POLICIES)


def get_admission_policy(policy: "str | AdmissionPolicy") -> AdmissionPolicy:
    """Resolve a policy name (or pass an instance through).

    Raises :class:`~repro.errors.UnknownAdmissionPolicyError` for unknown
    names — the shared did-you-mean shape, still a ``ValueError`` for
    argument-validation callers.
    """
    if isinstance(policy, AdmissionPolicy):
        return policy
    try:
        return _POLICIES[policy]()
    except KeyError:
        raise UnknownAdmissionPolicyError(
            policy, list_admission_policies()
        ) from None
