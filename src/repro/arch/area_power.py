"""Area and power model (Table III of the paper).

The paper synthesizes Strix in TSMC 28 nm and reports a per-unit breakdown.
We cannot synthesize RTL here, so the model is seeded with the published
per-unit constants and extended with scaling rules (lane counts, FFT points,
scratchpad capacity) so the ablation studies — the folding scheme of
Table VI and the TvLP/CLP sweep of Table VII — report consistent relative
area changes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import StrixConfig
from repro.arch.functional_units import build_pbs_cluster
from repro.arch.noc import NocCost


#: Area (mm^2) and power (W) per MB of SRAM, derived from Table III's
#: scratchpad rows (0.92 mm^2 / 0.47 W for 0.625 MB; 51.4 mm^2 / 26.24 W for
#: 21 MB).  The global scratchpad is denser per MB because of its banking.
LOCAL_SRAM_AREA_PER_MB = 0.92 / 0.625
LOCAL_SRAM_POWER_PER_MB = 0.47 / 0.625
GLOBAL_SRAM_AREA_PER_MB = 51.40 / 21.0
GLOBAL_SRAM_POWER_PER_MB = 26.24 / 21.0

#: HBM2 PHY cost (one stack).
HBM_PHY_AREA_MM2 = 14.90
HBM_PHY_POWER_W = 1.23


@dataclass(frozen=True)
class ComponentCost:
    """Area/power of one named component."""

    name: str
    area_mm2: float
    power_w: float


@dataclass
class ChipCost:
    """Full-chip cost summary."""

    per_core: list[ComponentCost]
    core_area_mm2: float
    core_power_w: float
    num_cores: int
    uncore: list[ComponentCost]
    total_area_mm2: float
    total_power_w: float

    def component(self, name: str) -> ComponentCost:
        """Look up a per-core or uncore component by name."""
        for entry in self.per_core + self.uncore:
            if entry.name == name:
                return entry
        raise KeyError(f"unknown component {name!r}")

    def as_table(self) -> list[tuple[str, float, float]]:
        """Rows of (component, area mm^2, power W) mirroring Table III."""
        rows: list[tuple[str, float, float]] = []
        for entry in self.per_core:
            rows.append((entry.name, entry.area_mm2, entry.power_w))
        rows.append(("1 core", self.core_area_mm2, self.core_power_w))
        rows.append(
            (
                f"{self.num_cores} cores",
                self.core_area_mm2 * self.num_cores,
                self.core_power_w * self.num_cores,
            )
        )
        for entry in self.uncore:
            rows.append((entry.name, entry.area_mm2, entry.power_w))
        rows.append(("Total", self.total_area_mm2, self.total_power_w))
        return rows


class AreaPowerModel:
    """Builds :class:`ChipCost` summaries for a :class:`StrixConfig`."""

    def __init__(self, config: StrixConfig):
        self.config = config

    def core_cost(self) -> tuple[list[ComponentCost], float, float]:
        """Per-core component list plus core totals."""
        config = self.config
        cluster = build_pbs_cluster(config)
        components = [
            ComponentCost(
                "Local scratchpad",
                LOCAL_SRAM_AREA_PER_MB * config.local_scratchpad_mb,
                LOCAL_SRAM_POWER_PER_MB * config.local_scratchpad_mb,
            ),
            ComponentCost("Rotator", cluster["rotator"].area_mm2, cluster["rotator"].power_w),
            ComponentCost(
                "Decomposer", cluster["decomposer"].area_mm2, cluster["decomposer"].power_w
            ),
            ComponentCost(
                "I/FFTU",
                cluster["fft"].area_mm2 + cluster["ifft"].area_mm2,
                cluster["fft"].power_w + cluster["ifft"].power_w,
            ),
            ComponentCost("VMA", cluster["vma"].area_mm2, cluster["vma"].power_w),
            ComponentCost(
                "Accumulator", cluster["accumulator"].area_mm2, cluster["accumulator"].power_w
            ),
        ]
        area = sum(component.area_mm2 for component in components)
        power = sum(component.power_w for component in components)
        return components, area, power

    def chip_cost(self) -> ChipCost:
        """Full-chip area/power summary (the reproduction of Table III)."""
        config = self.config
        per_core, core_area, core_power = self.core_cost()
        noc = NocCost()
        uncore = [
            ComponentCost("Global NoC", noc.area_mm2, noc.power_w),
            ComponentCost(
                "Global scratchpad",
                GLOBAL_SRAM_AREA_PER_MB * config.global_scratchpad_mb,
                GLOBAL_SRAM_POWER_PER_MB * config.global_scratchpad_mb,
            ),
            ComponentCost("HBM2 PHY", HBM_PHY_AREA_MM2, HBM_PHY_POWER_W),
        ]
        total_area = core_area * config.tvlp + sum(c.area_mm2 for c in uncore)
        total_power = core_power * config.tvlp + sum(c.power_w for c in uncore)
        return ChipCost(
            per_core=per_core,
            core_area_mm2=core_area,
            core_power_w=core_power,
            num_cores=config.tvlp,
            uncore=uncore,
            total_area_mm2=total_area,
            total_power_w=total_power,
        )

    def fft_unit_area(self) -> float:
        """Area of a single (I)FFT unit, used by the Table VI ablation."""
        cluster = build_pbs_cluster(self.config)
        return cluster["fft"].unit.area_mm2
