"""Serving-layer benchmark: arrival patterns and cluster scaling.

Writes ``BENCH_serve.json`` with two families of records:

* ``serve/<pattern>`` — the serving simulation (queue → adaptive batcher →
  sharded cluster) under the steady, bursty and heavy-tail arrival patterns:
  p50/p99 latency, request and PBS throughput, mean batch fill and
  per-device utilization;
* ``cluster/...`` — the Fig. 7 Deep-NN workload on the single-device
  simulator versus the sharded cluster at 2 and 4 devices (latency,
  throughput, speedup, straggler imbalance);
* ``layout/...`` — the scheduling-core seams: data-parallel vs pipeline vs
  elastic placement and the analytical vs event-driven cost model under one
  heavy-tail trace (p99, key shipping, stage transfer);
* ``keymem/...`` — key-memory budgets: one many-tenant trace served with
  unbounded per-device key memory versus a two-tenant budget (evictions,
  re-ships, shipping seconds, p99), with and without key-affinity dispatch;
* ``plan_cache/...`` — the pipeline layout's stage-plan cache: event-model
  pipeline serving on repeated batch shapes, cold versus warm wall clock
  (timed records) plus the deterministic hit counters;
* ``cost_cache/...`` — the event model's schedule cache: the same
  repeated-shape trace priced cold (memoization disabled, one cycle-level
  simulation per batch) versus warm (every shape priced once, then
  dictionary lookups): wall clock, speedup, warm batches/s and the
  deterministic hit-rate/p99 records proving outputs are bit-for-bit
  unchanged;
* ``net/...`` — the wire front-end: deterministic proof that a trace
  replayed over loopback TCP is bit-for-bit the in-process simulation
  (plus framing bytes/frames per request), and timed client round-trip
  percentiles / wire throughput of a closed loop over 8 connections;
* ``faults/...`` — degraded-mode serving: the canonical device death at
  mid-trace per layout (requests lost, recovery seconds, key re-ship
  bytes, p99 under degradation — all deterministic), and the
  ``faults/none/bit_identical`` record proving an empty fault schedule
  keeps serving byte-identical;
* ``overload/...`` — admission control under saturation: goodput and
  p99-of-admitted at 1x/2x/4x the cluster's measured capacity per
  admission policy (all deterministic), plus the acceptance record — at
  4x saturation a reject-newest server keeps admitted p99 within 2x of
  its 1x baseline while goodput stays >= 80% of device capacity.  The
  shed-oldest records at >= 2x honestly exhibit the head-drop/age-flush
  livelock ``docs/overload.md`` discusses.

Run it directly (``--smoke`` shrinks the traces for CI)::

    python benchmarks/bench_serve.py --smoke
"""

from __future__ import annotations

import argparse
import time

from harness import BenchReport, ensure_repro_importable

ensure_repro_importable()

from repro import run  # noqa: E402  (path bootstrap above)
from repro.apps.traffic import bursty_trace, heavy_tail_trace, steady_trace  # noqa: E402
from repro.faults import FaultSchedule  # noqa: E402
from repro.net.loadgen import closed_loop, replay_trace  # noqa: E402
from repro.serve import Request, Server  # noqa: E402
from repro.serve.request import RequestKind  # noqa: E402

#: The Fig. 7 application workload the cluster scaling study runs.
FIG7_WORKLOAD = "NN-20"


def bench_serving_patterns(
    report: BenchReport, devices: int, duration_s: float, seed: int
) -> None:
    """Simulate the three arrival patterns and record their metrics."""
    traces = {
        "steady": steady_trace(rate_rps=1500.0, duration_s=duration_s, seed=seed),
        "bursty": bursty_trace(
            burst_rate_rps=6000.0, duration_s=duration_s, seed=seed
        ),
        "heavy-tail": heavy_tail_trace(
            rate_rps=1500.0, duration_s=duration_s, seed=seed
        ),
    }
    for pattern, trace in traces.items():
        server = Server(devices=devices, policy="least-loaded", params="I")
        serve_report = server.simulate(trace, label=pattern)
        metrics = serve_report.metrics
        base = f"serve/{pattern}"
        report.add(f"{base}/p50_latency", metrics.latency.p50_s, "s", **serve_report.to_dict())
        report.add(f"{base}/p99_latency", metrics.latency.p99_s, "s")
        report.add(f"{base}/requests_per_s", metrics.requests_per_s, "req/s")
        report.add(f"{base}/pbs_per_s", metrics.pbs_per_s, "PBS/s")
        report.add(
            f"{base}/mean_device_utilization",
            sum(metrics.device_utilization.values())
            / max(len(metrics.device_utilization), 1),
            "fraction",
            per_device=metrics.device_utilization,
        )
        print(serve_report.render())
        print()


def bench_cluster_scaling(report: BenchReport) -> None:
    """Fig. 7 Deep-NN workload: single device versus the sharded cluster."""
    single = run(FIG7_WORKLOAD, backend="strix-sim", params="I")
    report.add(
        "cluster/strix-sim/latency", single.latency_s, "s", workload=FIG7_WORKLOAD
    )
    report.add(
        "cluster/strix-sim/throughput", single.throughput_pbs_per_s, "PBS/s"
    )
    for devices in (2, 4):
        result = run(FIG7_WORKLOAD, backend="strix-cluster", devices=devices)
        speedup = single.latency_s / result.latency_s
        straggler = result.details["straggler"]
        base = f"cluster/{devices}dev"
        report.add(f"{base}/latency", result.latency_s, "s", workload=FIG7_WORKLOAD)
        report.add(f"{base}/throughput", result.throughput_pbs_per_s, "PBS/s")
        report.add(
            f"{base}/speedup_vs_single",
            speedup,
            "x",
            imbalance=straggler["imbalance"],
        )
        print(
            f"{FIG7_WORKLOAD} on {devices} device(s): "
            f"{result.latency_ms:.3f} ms ({speedup:.2f}x vs strix-sim)"
        )
    print()


def bench_layouts_and_cost_models(
    report: BenchReport, duration_s: float, seed: int
) -> None:
    """The scheduling-core seams under one heavy-tail trace."""
    trace = heavy_tail_trace(rate_rps=1200.0, duration_s=duration_s, seed=seed)
    variants = {
        "data-parallel/analytical": {"layout": "data-parallel"},
        "data-parallel/event": {"layout": "data-parallel", "cost_model": "event"},
        "pipeline/analytical": {"layout": "pipeline"},
        "elastic/analytical": {"layout": "elastic"},
    }
    for label, options in variants.items():
        server = Server(devices=4, policy="least-loaded", params="I", **options)
        serve_report = server.simulate(trace, label=label)
        metrics = serve_report.metrics
        base = f"layout/{label}"
        report.add(f"{base}/p99_latency", metrics.latency.p99_s, "s")
        report.add(
            f"{base}/key_shipping",
            metrics.cost_breakdown.get("key_shipping_s", 0.0),
            "s",
        )
        if "stage_transfer_s" in metrics.cost_breakdown:
            report.add(
                f"{base}/stage_transfer",
                metrics.cost_breakdown["stage_transfer_s"],
                "s",
            )
        if "active_devices" in metrics.cost_breakdown:
            report.add(
                f"{base}/peak_active_devices",
                metrics.cost_breakdown["active_devices"],
                "devices",
            )
        print(serve_report.render())
        print()


def bench_key_memory(report: BenchReport, duration_s: float, seed: int) -> None:
    """Key-memory budgets: tenant churn past the per-device HBM budget."""
    trace = heavy_tail_trace(
        rate_rps=1200.0, duration_s=duration_s, seed=seed, tenants=12
    )
    probe = Server(devices=4, params="I")
    per_tenant = probe.cluster.interconnect.key_set_bytes(probe.params)
    two_tenants = 2 * per_tenant + 1
    variants = {
        "unbounded": {},
        "budget-2": {"key_budget_bytes": two_tenants},
        "budget-2-affinity": {
            "key_budget_bytes": two_tenants,
            "policy": "key-affinity",
        },
    }
    for label, options in variants.items():
        policy = options.pop("policy", "least-loaded")
        server = Server(devices=4, policy=policy, params="I", **options)
        serve_report = server.simulate(list(trace), label=f"keymem-{label}")
        metrics = serve_report.metrics
        counters = metrics.key_cache
        base = f"keymem/{label}"
        report.add(f"{base}/p99_latency", metrics.latency.p99_s, "s")
        report.add(
            f"{base}/key_shipping",
            metrics.cost_breakdown.get("key_shipping_s", 0.0),
            "s",
        )
        report.add(f"{base}/evictions", counters["evictions"], "count")
        report.add(f"{base}/reships", counters["reships"], "count")
        report.add(
            f"{base}/hit_rate",
            counters["hits"] / max(counters["hits"] + counters["misses"], 1),
            "fraction",
        )
        print(serve_report.render())
        print()


def bench_stage_plan_cache(
    report: BenchReport, duration_s: float, seed: int
) -> None:
    """Event-priced pipeline serving: cold partitioning vs cached plans.

    A uniform bootstrap trace repeats one batch shape, so every dispatch
    after the first reuses the cached stage plan; the cold/warm wall-clock
    pair is the dispatch-overhead reduction the cache buys (the serving
    *model* outputs are identical by construction — the deterministic
    p99/hit records prove it).
    """
    requests = max(int(2000 * duration_s), 64)
    # Period-4 request pattern: three bootstrap bursts and one NN-20
    # inference per period, so flushed batches repeat a handful of shapes
    # and the inference graphs give the partitioner real multi-level work.
    trace = [
        Request.make(
            i + 1,
            f"tenant{i % 4}",
            "inference" if i % 4 == 3 else "bootstrap",
            1 if i % 4 == 3 else 8,
            arrival_s=i * 5e-4,
            model="NN-20" if i % 4 == 3 else None,
        )
        for i in range(requests)
    ]
    server = Server(
        devices=4, params="I", layout="pipeline", cost_model="event", batch_capacity=32
    )
    cold_s = report.time(
        "plan_cache/cold_simulate",
        lambda: server.simulate(list(trace), label="plan-cold"),
        repeats=1,
    )
    warm_report = server.simulate(list(trace), label="plan-warm")
    warm_s = report.time(
        "plan_cache/warm_simulate",
        lambda: server.simulate(list(trace), label="plan-warm"),
        repeats=3,
    )
    report.add(
        "plan_cache/overhead_reduction",
        cold_s / warm_s if warm_s > 0 else 1.0,
        "x",
        timed=True,
    )
    plans = warm_report.metrics.stage_plan_cache
    report.add("plan_cache/warm_hits", plans["hits"], "count")
    report.add("plan_cache/warm_misses", plans["misses"], "count")
    report.add(
        "plan_cache/p99_latency", warm_report.metrics.latency.p99_s, "s"
    )
    print(warm_report.render())
    print(f"stage-plan cache: cold {cold_s * 1e3:.1f} ms, warm {warm_s * 1e3:.1f} ms")
    print()


def bench_cost_cache(report: BenchReport, duration_s: float, seed: int) -> None:
    """Event-model batch pricing: cold (one simulation per batch) vs warm.

    The trace repeats a handful of batch shapes (bootstrap bursts plus
    NN-20/NN-50 inferences), the steady-traffic case the schedule cache
    exists for.  ``cold`` disables memoization (``cost_cache_capacity=0``),
    so every flushed batch pays a full discrete-event simulation — the
    pre-cache serving cost of ``cost_model="event"``.  ``warm`` serves the
    same trace with a warmed cache, so every batch prices as a dictionary
    lookup.  Model outputs are identical by construction; the deterministic
    p99/hit-rate records prove it while the timed pair captures the
    speedup that makes the event model affordable as a serving default.
    """
    requests = max(int(2000 * duration_s), 64)

    # Period-8 request pattern: bootstrap bursts of two sizes plus one
    # NN-20 and one NN-50 inference per period, so flushed batches repeat
    # a small set of shapes with real multi-level graphs in them.
    def shape(i: int) -> tuple[str, int, "str | None"]:
        slot = i % 8
        if slot == 3:
            return ("inference", 1, "NN-20")
        if slot == 7:
            return ("inference", 1, "NN-50")
        return ("bootstrap", 8 if slot % 2 == 0 else 12, None)

    trace = []
    for i in range(requests):
        kind, items, model = shape(i)
        trace.append(
            Request.make(
                i + 1,
                f"tenant{i % 4}",
                kind,
                items,
                arrival_s=i * 5e-4,
                model=model,
            )
        )
    cold_server = Server(
        devices=4,
        params="I",
        cost_model="event",
        batch_capacity=32,
        cost_cache_capacity=0,
    )
    warm_server = Server(devices=4, params="I", cost_model="event", batch_capacity=32)
    cold_s = report.time(
        "cost_cache/cold_simulate",
        lambda: cold_server.simulate(list(trace), label="cost-cold"),
        repeats=1,
    )
    warm_server.simulate(list(trace), label="cost-warm")  # populate the cache
    warm_s = report.time(
        "cost_cache/warm_simulate",
        lambda: warm_server.simulate(list(trace), label="cost-warm"),
        repeats=3,
    )
    warm_report = warm_server.simulate(list(trace), label="cost-warm")
    report.add(
        "cost_cache/speedup",
        cold_s / warm_s if warm_s > 0 else 1.0,
        "x",
        timed=True,
    )
    report.add(
        "cost_cache/warm_batches_per_s",
        warm_report.metrics.batches / warm_s if warm_s > 0 else 0.0,
        "batch/s",
        timed=True,
    )
    counters = warm_report.metrics.cost_cache
    report.add("cost_cache/warm_hits", counters["hits"], "count")
    report.add("cost_cache/warm_misses", counters["misses"], "count")
    report.add("cost_cache/entries", counters["entries"], "count")
    report.add(
        "cost_cache/hit_rate",
        counters["hits"] / max(counters["hits"] + counters["misses"], 1),
        "fraction",
    )
    report.add("cost_cache/p99_latency", warm_report.metrics.latency.p99_s, "s")
    print(warm_report.render())
    print(
        f"schedule cache: cold {cold_s * 1e3:.1f} ms, warm {warm_s * 1e3:.1f} ms "
        f"({cold_s / warm_s:.1f}x)"
    )
    print()


def bench_net(report: BenchReport, duration_s: float, seed: int) -> None:
    """The wire front-end: loopback replay fidelity plus live round trips.

    Deterministic records prove the transport does not change the model —
    the replayed-over-TCP outcomes are bit-for-bit the in-process ones, and
    the framing cost per request is a fixed byte count.  Timed records
    capture what only a socket can show: measured client round-trip
    percentiles, wire throughput of a closed loop over 8 connections, and
    the wall-clock overhead of serving through the loopback transport.
    """
    trace = steady_trace(rate_rps=1500.0, duration_s=duration_s, seed=seed)
    requests = len(trace)
    started = time.perf_counter()
    in_process = Server(devices=4, policy="least-loaded", params="I").simulate(
        list(trace), label="net-replay"
    )
    sim_s = time.perf_counter() - started
    started = time.perf_counter()
    wire = replay_trace(
        trace, devices=4, policy="least-loaded", params="I", label="net-replay"
    )
    wire_s = time.perf_counter() - started
    identical = (
        wire.outcomes == in_process.outcomes and wire.metrics == in_process.metrics
    )
    report.add("net/replay/bit_for_bit", 1.0 if identical else 0.0, "bool")
    report.add("net/replay/p99_latency", wire.metrics.latency.p99_s, "s")
    wire_bytes = wire.wire["bytes_received"] + wire.wire["bytes_sent"]
    wire_frames = wire.wire["frames_received"] + wire.wire["frames_sent"]
    report.add("net/replay/wire_bytes_per_request", wire_bytes / requests, "B/req")
    report.add("net/replay/frames_per_request", wire_frames / requests, "frames/req")
    report.add(
        "net/replay/transport_overhead",
        wire_s / sim_s if sim_s > 0 else 1.0,
        "x",
        timed=True,
    )
    live = closed_loop(
        trace, connections=8, devices=4, policy="least-loaded", params="I"
    )
    report.add("net/live/rtt_p50", live.wire["rtt_p50_ms"] / 1e3, "s", timed=True)
    report.add("net/live/rtt_p99", live.wire["rtt_p99_ms"] / 1e3, "s", timed=True)
    report.add(
        "net/live/requests_per_s",
        live.wire["wire_requests_per_s"],
        "req/s",
        timed=True,
        connections=live.wire["connections"],
    )
    print(wire.render())
    print(live.render())
    print(
        f"net replay: bit-for-bit={'yes' if identical else 'NO'}, "
        f"{wire_bytes / requests:.0f} B/req on the wire, "
        f"transport overhead {wire_s / sim_s:.1f}x"
    )
    print()


def bench_faults(report: BenchReport, duration_s: float, seed: int) -> None:
    """Degraded-mode serving under the canonical mid-trace device death.

    All records are deterministic: failure times come off the schedule and
    service times off the cost models, so requests lost, recovery seconds
    and re-shipped key bytes reproduce bit-for-bit.  The ``faults/none``
    record pins the subsystem's core invariant — an empty schedule leaves
    the serving report byte-identical to a fault-free server's.
    """
    trace = steady_trace(rate_rps=1500.0, duration_s=duration_s, seed=seed)
    death = FaultSchedule.of(FaultSchedule.death(device=1, at_s=duration_s / 2))

    plain = Server(devices=4, params="I").simulate(list(trace), label="faults-base")
    empty = Server(devices=4, params="I", faults=FaultSchedule.empty()).simulate(
        list(trace), label="faults-base"
    )
    identical = (
        empty.outcomes == plain.outcomes
        and empty.metrics.to_dict() == plain.metrics.to_dict()
    )
    report.add("faults/none/bit_identical", 1.0 if identical else 0.0, "bool")

    for layout in ("data-parallel", "pipeline", "elastic"):
        for on_death in ("retry", "drop"):
            server = Server(
                devices=4, params="I", layout=layout, faults=death, on_death=on_death
            )
            result = server.simulate(list(trace), label="faults-death")
            availability = result.metrics.availability
            base = f"faults/death/{layout}/{on_death}"
            lost = availability.get("requests_lost", 0)
            report.add(f"{base}/requests_lost", lost, "count")
            report.add(
                f"{base}/requests_retried",
                availability.get("requests_retried", 0),
                "count",
            )
            report.add(
                f"{base}/conserved",
                1.0 if len(result.outcomes) + lost == len(trace) else 0.0,
                "bool",
            )
            recovery = max(
                (event.get("recovery_s", 0.0) for event in availability.get("events", [])),
                default=0.0,
            )
            report.add(f"{base}/recovery", recovery, "s")
            report.add(
                f"{base}/key_reship_bytes",
                availability.get("key_reship_bytes", 0),
                "B",
            )
            report.add(f"{base}/degraded", availability.get("degraded_s", 0.0), "s")
            report.add(f"{base}/p99_latency", result.metrics.latency.p99_s, "s")
    print(
        f"faults: empty schedule bit-identical={'yes' if identical else 'NO'}, "
        f"canonical death at {duration_s / 2:.2f}s benched on 3 layouts x 2 policies"
    )
    print()


#: Sustained completion rate (requests/s) of the 4-device params-"I"
#: cluster under the bootstrap-only overload mix — measured once with an
#: unbounded queue; the saturation multipliers below scale off it.
OVERLOAD_CAPACITY_RPS = 31300.0


def bench_overload(report: BenchReport, duration_s: float, seed: int) -> None:
    """Admission control at 1x/2x/4x saturation, per policy.

    The server flushes on the batch deadline only (``batch_capacity`` well
    past what a flush window can accumulate), so the bounded request queue
    is the backpressure point and the admission policy is what keeps the
    device backlog finite.  Everything here replays deterministically:
    goodput, admitted-tail latency and every shed/reject count are
    bit-for-bit functions of the trace and the policy.
    """
    mix = {RequestKind.BOOTSTRAP: 1.0}
    config = dict(
        devices=4, params="I", queue_capacity=64, batch_capacity=4096
    )
    baselines: dict[str, dict[int, tuple[float, float]]] = {}
    for policy in ("reject-newest", "shed-oldest", "tenant-quota"):
        baselines[policy] = {}
        for mult in (1, 2, 4):
            trace = steady_trace(
                rate_rps=OVERLOAD_CAPACITY_RPS * mult,
                duration_s=duration_s,
                seed=seed,
                kind_mix=mix,
            )
            server = Server(admission=policy, **config)
            result = server.simulate(list(trace), label=f"overload-{mult}x")
            metrics = result.metrics
            overload = metrics.overload
            goodput = metrics.requests / duration_s
            baselines[policy][mult] = (goodput, metrics.latency.p99_s)
            base = f"overload/{policy}/{mult}x"
            report.add(f"{base}/goodput", goodput, "req/s")
            report.add(f"{base}/p99_admitted", metrics.latency.p99_s, "s")
            report.add(f"{base}/rejected", overload.get("rejected", 0), "count")
            report.add(f"{base}/shed", overload.get("shed", 0), "count")
            conserved = (
                metrics.requests
                + overload.get("rejected", 0)
                + overload.get("shed", 0)
                + overload.get("expired", 0)
                == len(trace)
            )
            report.add(f"{base}/conserved", 1.0 if conserved else 0.0, "bool")

    goodput_1x, p99_1x = baselines["reject-newest"][1]
    goodput_4x, p99_4x = baselines["reject-newest"][4]
    p99_ratio = p99_4x / p99_1x
    goodput_fraction = goodput_4x / OVERLOAD_CAPACITY_RPS
    accepted = p99_ratio <= 2.0 and goodput_fraction >= 0.8
    report.add("overload/acceptance/p99_ratio_4x", p99_ratio, "x")
    report.add("overload/acceptance/goodput_fraction_4x", goodput_fraction, "frac")
    report.add("overload/acceptance/pass", 1.0 if accepted else 0.0, "bool")
    print(
        f"overload: reject-newest 4x saturation p99 {p99_4x * 1e3:.2f}ms "
        f"({p99_ratio:.2f}x of 1x), goodput {goodput_4x:.0f} req/s "
        f"({goodput_fraction:.0%} of capacity) -> "
        f"{'PASS' if accepted else 'FAIL'}"
    )
    print()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="small traces for the CI smoke job"
    )
    parser.add_argument("--devices", type=int, default=4, help="cluster size")
    parser.add_argument("--seed", type=int, default=7, help="trace seed")
    parser.add_argument(
        "--output", default=None, help="output path (default: BENCH_serve.json)"
    )
    args = parser.parse_args()

    report = BenchReport("serve")
    duration_s = 0.1 if args.smoke else 0.5
    bench_serving_patterns(report, args.devices, duration_s, args.seed)
    bench_cluster_scaling(report)
    bench_layouts_and_cost_models(report, duration_s, args.seed)
    bench_key_memory(report, duration_s, args.seed)
    bench_stage_plan_cache(report, duration_s, args.seed)
    bench_cost_cache(report, duration_s, args.seed)
    bench_net(report, duration_s, args.seed)
    bench_faults(report, duration_s, args.seed)
    bench_overload(report, duration_s, args.seed)
    path = report.write(args.output)
    print(f"[saved {len(report.records)} records to {path}]")


if __name__ == "__main__":
    main()
