"""Cycle-level simulation framework.

The paper evaluates Strix with "a custom cycle-level simulator [that]
converts the input workload as a computational graph with nodes, where each
node mainly represents either bootstrapping or keyswitching or a combination
of both operations.  Each node in the graph will further be decomposed into
several blind rotation fragments." (Section VI-B).

This package reproduces that simulator:

* :mod:`repro.sim.graph` — computational graphs of PBS / keyswitch / linear
  nodes and helpers to build them from applications.
* :mod:`repro.sim.fragments` — blind-rotation fragment accounting (Eq. 1–2).
* :mod:`repro.sim.events` / :mod:`repro.sim.engine` — a small discrete-event
  engine with explicit resources (cores, HBM).
* :mod:`repro.sim.scheduler` — the epoch scheduler that maps graph nodes onto
  a :class:`~repro.arch.accelerator.StrixAccelerator` (or a baseline platform
  model) and reports end-to-end execution time.
* :mod:`repro.sim.trace` — functional-unit occupancy traces (Fig. 8).
"""

from repro.sim.graph import ComputationGraph, ComputationNode, NodeKind
from repro.sim.engine import SimulationEngine
from repro.sim.scheduler import StrixScheduler, ScheduleResult
from repro.sim.fragments import blind_rotation_fragments, fragmented_execution_time
from repro.sim.compiler import Netlist, compile_netlist

__all__ = [
    "ComputationGraph",
    "ComputationNode",
    "NodeKind",
    "SimulationEngine",
    "StrixScheduler",
    "ScheduleResult",
    "blind_rotation_fragments",
    "fragmented_execution_time",
    "Netlist",
    "compile_netlist",
]
