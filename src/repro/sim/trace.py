"""Functional-unit occupancy traces (the Fig. 8 reproduction).

The paper's Fig. 8 shows, for parameter set I with three LWEs per core, the
busy intervals of every functional unit plus the local scratchpad and HBM
over the first two blind-rotation iterations.  This module turns the HSC
occupancy model into that trace, adds the memory rows, renders a textual
Gantt chart and computes the utilization figures quoted in the text
(decomposer / FFT / VMA / IFFT / accumulator ≈ 100 %, rotator ≈ 50 %,
local scratchpad ≈ 90 %, HBM ≈ 60 %).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.accelerator import StrixAccelerator
from repro.arch.hsc import BusyInterval
from repro.params import TFHEParameters


@dataclass
class OccupancyTrace:
    """A Fig. 8-style trace: per-unit busy intervals plus utilizations."""

    parameter_set: str
    lwes_per_core: int
    iterations: int
    intervals: list[BusyInterval]
    utilization: dict[str, float]
    cycle_time_ns: float

    def rows(self) -> list[str]:
        """The resource rows of the trace, in display order."""
        order = [
            "rotator",
            "decomposer",
            "fft",
            "vma",
            "ifft",
            "accumulator",
            "local_scratchpad",
            "hbm",
        ]
        present = {interval.unit for interval in self.intervals}
        return [row for row in order if row in present]

    def horizon_cycles(self) -> int:
        """Last busy cycle of the trace."""
        return max(interval.end_cycle for interval in self.intervals) if self.intervals else 0

    def render(self, width: int = 96) -> str:
        """Render the trace as a textual Gantt chart."""
        horizon = max(self.horizon_cycles(), 1)
        scale = width / horizon
        lines = [
            f"Occupancy trace — parameter set {self.parameter_set}, "
            f"{self.lwes_per_core} LWEs/core, {self.iterations} BR iterations "
            f"({horizon} cycles ≈ {horizon * self.cycle_time_ns:.0f} ns)"
        ]
        for row in self.rows():
            chart = [" "] * width
            for interval in self.intervals:
                if interval.unit != row:
                    continue
                start = int(interval.start_cycle * scale)
                end = max(int(interval.end_cycle * scale), start + 1)
                marker = str((interval.lwe_index % 9) + 1)
                for position in range(start, min(end, width)):
                    chart[position] = marker
            busy = self.utilization.get(row, 0.0)
            lines.append(f"{row:>18} |{''.join(chart)}| {busy:5.1%}")
        return "\n".join(lines)


def build_occupancy_trace(
    accelerator: StrixAccelerator,
    params: TFHEParameters,
    lwes_per_core: int = 3,
    iterations: int = 2,
) -> OccupancyTrace:
    """Build the Fig. 8 trace for one HSC of the given accelerator."""
    core = accelerator.core
    intervals = list(core.occupancy_trace(params, lwes_per_core, iterations))
    timing = core.pipeline_timing(params)

    # Local scratchpad: read by the rotator, written by the accumulator.
    scratchpad_intervals = [
        BusyInterval(
            unit="local_scratchpad",
            lwe_index=interval.lwe_index,
            iteration=interval.iteration,
            start_cycle=interval.start_cycle,
            end_cycle=interval.end_cycle,
        )
        for interval in intervals
        if interval.unit in ("rotator", "accumulator")
    ]

    # HBM: one bootstrapping-key fragment fetched per iteration, overlapped
    # with compute (double buffering): it occupies the bus for
    # fragment_bytes / allocated bandwidth at the start of each iteration.
    fragment_bytes = accelerator.hbm.global_scratchpad.bootstrapping_key_fragment_bytes(params)
    bsk_bandwidth_gbps = (
        accelerator.config.hbm_bandwidth_gbps
        * accelerator.config.bsk_channels
        / 16.0
    )
    fetch_cycles = int(fragment_bytes / (bsk_bandwidth_gbps * 1e9) * accelerator.config.clock_hz)
    iteration_span = lwes_per_core * timing.initiation_interval
    hbm_intervals = [
        BusyInterval(
            unit="hbm",
            lwe_index=0,
            iteration=iteration,
            start_cycle=iteration * iteration_span,
            end_cycle=iteration * iteration_span + fetch_cycles,
        )
        for iteration in range(iterations)
    ]

    all_intervals = intervals + scratchpad_intervals + hbm_intervals
    utilization = _utilization(all_intervals)
    return OccupancyTrace(
        parameter_set=params.name,
        lwes_per_core=lwes_per_core,
        iterations=iterations,
        intervals=all_intervals,
        utilization=utilization,
        cycle_time_ns=accelerator.config.cycle_time_ns,
    )


def _utilization(intervals: list[BusyInterval]) -> dict[str, float]:
    """Busy fraction per resource, merging overlapping intervals."""
    if not intervals:
        return {}
    horizon = max(interval.end_cycle for interval in intervals)
    start = min(interval.start_cycle for interval in intervals)
    window = max(horizon - start, 1)
    by_unit: dict[str, list[tuple[int, int]]] = {}
    for interval in intervals:
        by_unit.setdefault(interval.unit, []).append((interval.start_cycle, interval.end_cycle))
    utilization = {}
    for unit, spans in by_unit.items():
        spans.sort()
        busy = 0
        current_start, current_end = spans[0]
        for span_start, span_end in spans[1:]:
            if span_start <= current_end:
                current_end = max(current_end, span_end)
            else:
                busy += current_end - current_start
                current_start, current_end = span_start, span_end
        busy += current_end - current_start
        utilization[unit] = busy / window
    return utilization
