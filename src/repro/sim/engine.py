"""A small discrete-event simulation engine.

The engine keeps a time-ordered event heap plus a set of named serially
reusable resources (HSCs, the HBM interface, the host link).  Work is
expressed as *activities*: a request to occupy a resource for a duration as
soon as it is free.  The engine records every completed activity on a
timeline so callers can compute makespan, per-resource utilization and
produce the Gantt-style traces used by the Fig. 8 reproduction.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.sim.events import Event, TimelineEntry


@dataclass
class Resource:
    """A serially reusable resource (one HSC, the HBM bus, ...)."""

    name: str
    free_at: float = 0.0
    busy_time: float = 0.0

    def reserve(self, earliest_start: float, duration: float) -> tuple[float, float]:
        """Occupy the resource for ``duration`` as soon as possible.

        Returns the (start, end) interval actually granted.
        """
        start = max(self.free_at, earliest_start)
        end = start + duration
        self.free_at = end
        self.busy_time += duration
        return start, end


class SimulationEngine:
    """Discrete-event engine with named resources and a recorded timeline."""

    def __init__(self):
        self._events: list[Event] = []
        self._resources: dict[str, Resource] = {}
        self.timeline: list[TimelineEntry] = []
        self.now: float = 0.0

    # -- resources -----------------------------------------------------------

    def add_resource(self, name: str) -> Resource:
        """Register a resource; returns the existing one if already present."""
        if name not in self._resources:
            self._resources[name] = Resource(name)
        return self._resources[name]

    def resource(self, name: str) -> Resource:
        """Look up a registered resource."""
        return self._resources[name]

    @property
    def resources(self) -> dict[str, Resource]:
        """All registered resources."""
        return dict(self._resources)

    # -- activities -----------------------------------------------------------

    def schedule_activity(
        self,
        resource_name: str,
        duration: float,
        earliest_start: float = 0.0,
        label: str = "",
    ) -> TimelineEntry:
        """Reserve a resource and record the activity on the timeline.

        The activity starts at ``max(earliest_start, resource free time)``;
        the engine's clock advances lazily when :meth:`run` drains events, so
        activities may be scheduled ahead of time.
        """
        resource = self.add_resource(resource_name)
        start, end = resource.reserve(earliest_start, duration)
        entry = TimelineEntry(resource=resource_name, label=label, start=start, end=end)
        self.timeline.append(entry)
        return entry

    # -- classic event queue -----------------------------------------------------

    def schedule_event(self, time: float, action, priority: int = 0, label: str = "") -> None:
        """Push a callback onto the event heap."""
        heapq.heappush(self._events, Event.at(time, action, priority, label))

    def run(self) -> float:
        """Drain the event heap; returns the final simulation time."""
        while self._events:
            event = heapq.heappop(self._events)
            self.now = event.time
            event.action()
        if self.timeline:
            self.now = max(self.now, max(entry.end for entry in self.timeline))
        return self.now

    # -- results --------------------------------------------------------------------

    @property
    def makespan(self) -> float:
        """Completion time of the last recorded activity."""
        if not self.timeline:
            return 0.0
        return max(entry.end for entry in self.timeline)

    def utilization(self, resource_name: str) -> float:
        """Busy fraction of a resource over the makespan."""
        span = self.makespan
        if span <= 0:
            return 0.0
        return self._resources[resource_name].busy_time / span

    def entries_for(self, resource_name: str) -> list[TimelineEntry]:
        """All timeline entries of one resource, in start order."""
        entries = [entry for entry in self.timeline if entry.resource == resource_name]
        return sorted(entries, key=lambda entry: entry.start)
