"""TFHE parameter sets used throughout the reproduction.

The paper evaluates four parameter sets (Table IV).  Each set fixes the LWE
mask length ``n``, the GLWE polynomial degree ``N``, the GLWE mask length
``k``, and the decomposition level of the bootstrapping key ``lb``.  This
module also carries the companion quantities the paper leaves implicit but
which a functional TFHE implementation needs: decomposition bases, the
keyswitching decomposition, message precision, and noise standard deviations.

Two extra families are provided:

* ``TOY`` / ``SMALL`` — very small parameter sets used by the unit tests so a
  full programmable bootstrapping runs in milliseconds.
* The ``DEEP_NN_*`` sets used by the Zama Deep-NN application benchmark
  (Fig. 7), which reuse the polynomial degrees 1024 / 2048 / 4096 reported in
  the paper.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TFHEParameters:
    """A complete TFHE parameter set.

    Attributes
    ----------
    name:
        Human readable identifier (``"I"`` .. ``"IV"``, ``"TOY"``, ...).
    n:
        LWE mask length (number of mask elements of an LWE ciphertext).
    N:
        Polynomial degree of the GLWE ring ``Z_q[X]/(X^N + 1)``.
    k:
        GLWE mask length (number of mask polynomials).
    lb:
        Number of decomposition levels used by the bootstrapping key.
    log2_base_pbs:
        log2 of the decomposition base ``B`` used during blind rotation.
    lk:
        Number of decomposition levels used by keyswitching.
    log2_base_ks:
        log2 of the keyswitching decomposition base.
    message_bits:
        Number of message bits carried by a ciphertext (the message modulus
        is ``2**message_bits``); one extra bit of padding is always reserved.
    lwe_noise_std / glwe_noise_std:
        Standard deviation of the encryption noise, expressed as a fraction
        of the torus (i.e. relative to ``q``).
    security_bits:
        Claimed security level, informational only.
    q_bits:
        Width of the torus modulus in bits (32 throughout the paper's
        datapath, except the FFT unit).
    """

    name: str
    n: int
    N: int
    k: int
    lb: int
    log2_base_pbs: int
    lk: int
    log2_base_ks: int
    message_bits: int = 2
    lwe_noise_std: float = 0.0
    glwe_noise_std: float = 0.0
    security_bits: int = 0
    q_bits: int = 32

    def __post_init__(self) -> None:
        if self.N & (self.N - 1):
            raise ValueError(f"N must be a power of two, got {self.N}")
        if self.n <= 0 or self.k <= 0 or self.lb <= 0 or self.lk <= 0:
            raise ValueError("n, k, lb and lk must all be positive")
        if self.message_bits < 1:
            raise ValueError("message_bits must be at least 1")
        if self.message_modulus * 2 > 2 * self.N:
            raise ValueError(
                "message modulus too large for the polynomial degree: "
                f"p={self.message_modulus}, N={self.N}"
            )

    # -- derived quantities -------------------------------------------------

    @property
    def q(self) -> int:
        """Ciphertext modulus (always a power of two)."""
        return 1 << self.q_bits

    @property
    def base_pbs(self) -> int:
        """Decomposition base used by the bootstrapping key."""
        return 1 << self.log2_base_pbs

    @property
    def base_ks(self) -> int:
        """Decomposition base used by keyswitching."""
        return 1 << self.log2_base_ks

    @property
    def message_modulus(self) -> int:
        """Number of representable messages ``p``."""
        return 1 << self.message_bits

    @property
    def delta(self) -> int:
        """Scaling factor placing a message in the upper torus bits.

        One bit of padding is reserved, so ``delta = q / (2 * p)``.
        """
        return self.q // (2 * self.message_modulus)

    @property
    def glwe_dimension(self) -> int:
        """Dimension of the LWE ciphertext extracted from a GLWE (``k * N``)."""
        return self.k * self.N

    @property
    def decomposed_polynomials(self) -> int:
        """Polynomials produced by decomposing a GLWE ciphertext: ``(k+1)*lb``."""
        return (self.k + 1) * self.lb

    # -- sizes (bytes), used by the memory/bandwidth models ------------------

    @property
    def lwe_ciphertext_bytes(self) -> int:
        """Size of one LWE ciphertext in bytes (``(n+1)`` coefficients)."""
        return (self.n + 1) * (self.q_bits // 8)

    @property
    def glwe_ciphertext_bytes(self) -> int:
        """Size of one GLWE ciphertext in bytes (``(k+1) * N`` coefficients)."""
        return (self.k + 1) * self.N * (self.q_bits // 8)

    @property
    def ggsw_ciphertext_bytes(self) -> int:
        """Size of one GGSW ciphertext: ``(k+1)*lb x (k+1)`` polynomials."""
        return (self.k + 1) * self.lb * self.glwe_ciphertext_bytes

    @property
    def ggsw_fourier_bytes(self) -> int:
        """Size of one GGSW ciphertext stored in the (folded) Fourier domain.

        The folding scheme stores ``N/2`` complex points per polynomial, each
        point a pair of 32-bit fixed-point values (Section V-A).
        """
        polys = (self.k + 1) * self.lb * (self.k + 1)
        return polys * (self.N // 2) * 8

    @property
    def bootstrapping_key_bytes(self) -> int:
        """Total bootstrapping key size (``n`` GGSW ciphertexts)."""
        return self.n * self.ggsw_ciphertext_bytes

    @property
    def bootstrapping_key_fourier_bytes(self) -> int:
        """Total bootstrapping key size in the Fourier domain."""
        return self.n * self.ggsw_fourier_bytes

    @property
    def keyswitching_key_bytes(self) -> int:
        """Total keyswitching key size.

        One LWE ciphertext of dimension ``n`` per input coefficient and level:
        ``k*N*lk`` ciphertexts of ``n+1`` coefficients.
        """
        return self.k * self.N * self.lk * (self.n + 1) * (self.q_bits // 8)

    def describe(self) -> str:
        """One-line human readable description of the parameter set."""
        return (
            f"set {self.name}: n={self.n}, N={self.N}, k={self.k}, "
            f"lb={self.lb}, B=2^{self.log2_base_pbs}, p={self.message_modulus}, "
            f"lambda={self.security_bits}-bit"
        )


def _noise_for_security(n: int) -> float:
    """Heuristic LWE noise standard deviation for a given mask length.

    The exact noise values are not reported in the paper; this follows the
    usual rule of thumb that the noise standard deviation shrinks roughly
    exponentially as the dimension grows for a fixed security target.  The
    functional implementation only needs values that keep decryption failure
    probability negligible, which these do.
    """
    return max(2.0 ** (-0.026 * n - 4.0), 2.0 ** -40)


# ---------------------------------------------------------------------------
# Paper parameter sets (Table IV)
# ---------------------------------------------------------------------------

PARAM_SET_I = TFHEParameters(
    name="I",
    n=500,
    N=1024,
    k=1,
    lb=2,
    log2_base_pbs=10,
    lk=3,
    log2_base_ks=4,
    message_bits=2,
    lwe_noise_std=_noise_for_security(500),
    glwe_noise_std=2.0 ** -25,
    security_bits=110,
)

PARAM_SET_II = TFHEParameters(
    name="II",
    n=630,
    N=1024,
    k=1,
    lb=3,
    log2_base_pbs=7,
    lk=4,
    log2_base_ks=3,
    message_bits=2,
    lwe_noise_std=_noise_for_security(630),
    glwe_noise_std=2.0 ** -25,
    security_bits=128,
)

PARAM_SET_III = TFHEParameters(
    name="III",
    n=592,
    N=2048,
    k=1,
    lb=3,
    log2_base_pbs=8,
    lk=4,
    log2_base_ks=3,
    message_bits=3,
    lwe_noise_std=_noise_for_security(592),
    glwe_noise_std=2.0 ** -26,
    security_bits=128,
)

PARAM_SET_IV = TFHEParameters(
    name="IV",
    n=991,
    N=16384,
    k=1,
    lb=2,
    log2_base_pbs=15,
    lk=4,
    log2_base_ks=4,
    message_bits=5,
    lwe_noise_std=_noise_for_security(991),
    glwe_noise_std=2.0 ** -31,
    security_bits=128,
)

#: The four evaluation parameter sets of Table IV, keyed by name.
PAPER_PARAMETER_SETS: dict[str, TFHEParameters] = {
    p.name: p for p in (PARAM_SET_I, PARAM_SET_II, PARAM_SET_III, PARAM_SET_IV)
}

# ---------------------------------------------------------------------------
# Deep-NN parameter variants (Fig. 7 uses N = 1024 / 2048 / 4096)
# ---------------------------------------------------------------------------

DEEP_NN_N1024 = TFHEParameters(
    name="NN-1024",
    n=600,
    N=1024,
    k=1,
    lb=2,
    log2_base_pbs=10,
    lk=3,
    log2_base_ks=4,
    message_bits=2,
    lwe_noise_std=_noise_for_security(600),
    glwe_noise_std=2.0 ** -25,
    security_bits=128,
)

DEEP_NN_N2048 = TFHEParameters(
    name="NN-2048",
    n=700,
    N=2048,
    k=1,
    lb=2,
    log2_base_pbs=11,
    lk=3,
    log2_base_ks=4,
    message_bits=3,
    lwe_noise_std=_noise_for_security(700),
    glwe_noise_std=2.0 ** -26,
    security_bits=128,
)

DEEP_NN_N4096 = TFHEParameters(
    name="NN-4096",
    n=800,
    N=4096,
    k=1,
    lb=2,
    log2_base_pbs=12,
    lk=3,
    log2_base_ks=4,
    message_bits=4,
    lwe_noise_std=_noise_for_security(800),
    glwe_noise_std=2.0 ** -27,
    security_bits=128,
)

#: Parameter sets for the Zama Deep-NN application benchmark, keyed by N.
DEEP_NN_PARAMETER_SETS: dict[int, TFHEParameters] = {
    1024: DEEP_NN_N1024,
    2048: DEEP_NN_N2048,
    4096: DEEP_NN_N4096,
}

# ---------------------------------------------------------------------------
# Test-sized parameter sets (not from the paper; used by the test suite)
# ---------------------------------------------------------------------------

TOY_PARAMETERS = TFHEParameters(
    name="TOY",
    n=16,
    N=128,
    k=1,
    lb=3,
    log2_base_pbs=8,
    lk=3,
    log2_base_ks=4,
    message_bits=2,
    lwe_noise_std=2.0 ** -20,
    glwe_noise_std=2.0 ** -24,
    security_bits=0,
)

SMALL_PARAMETERS = TFHEParameters(
    name="SMALL",
    n=64,
    N=256,
    k=2,
    lb=3,
    log2_base_pbs=8,
    lk=3,
    log2_base_ks=4,
    message_bits=2,
    lwe_noise_std=2.0 ** -22,
    glwe_noise_std=2.0 ** -25,
    security_bits=0,
)


def get_parameters(name: str) -> TFHEParameters:
    """Look up a parameter set by name (``"I"``–``"IV"``, ``"TOY"``, ``"SMALL"``).

    Raises ``KeyError`` with the list of known names when the set is unknown.
    """
    known: dict[str, TFHEParameters] = dict(PAPER_PARAMETER_SETS)
    known["TOY"] = TOY_PARAMETERS
    known["SMALL"] = SMALL_PARAMETERS
    for params in DEEP_NN_PARAMETER_SETS.values():
        known[params.name] = params
    try:
        return known[name]
    except KeyError:
        raise KeyError(
            f"unknown parameter set {name!r}; known sets: {sorted(known)}"
        ) from None
