"""Tests for tree inference, serialization and the energy model."""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.tree_inference import (
    DecisionNode,
    DecisionTree,
    HomomorphicTreeEvaluator,
    Leaf,
    tree_inference_graph,
)
from repro.arch.accelerator import StrixAccelerator
from repro.arch.energy import EnergyModel
from repro.params import PAPER_PARAMETER_SETS, PARAM_SET_I, TOY_PARAMETERS
from repro.tfhe import serialization
from repro.tfhe.keys import LweSecretKey


class TestDecisionTree:
    def _xor_like_tree(self) -> DecisionTree:
        """feature0 >= 2 XOR feature1 >= 2 as a depth-2 tree."""
        return DecisionTree(
            root=DecisionNode(
                feature=0,
                threshold=2,
                left=DecisionNode(feature=1, threshold=2, left=Leaf(0), right=Leaf(1)),
                right=DecisionNode(feature=1, threshold=2, left=Leaf(1), right=Leaf(0)),
            ),
            num_features=2,
        )

    def test_plaintext_prediction(self):
        tree = self._xor_like_tree()
        assert tree.predict([0, 0]) == 0
        assert tree.predict([3, 0]) == 1
        assert tree.predict([0, 3]) == 1
        assert tree.predict([3, 3]) == 0

    def test_shape_accessors(self):
        tree = self._xor_like_tree()
        assert tree.depth() == 2
        assert tree.internal_nodes() == 3

    def test_random_tree_is_complete(self):
        tree = DecisionTree.random(depth=3, num_features=4, params=TOY_PARAMETERS, seed=1)
        assert tree.depth() == 3
        assert tree.internal_nodes() == 7

    def test_homomorphic_inference_matches_plaintext(self, toy_context):
        tree = self._xor_like_tree()
        evaluator = HomomorphicTreeEvaluator(toy_context, tree)
        for features in itertools.product([0, 1, 2, 3], repeat=2):
            assert evaluator.infer(list(features)) == tree.predict(list(features)), features

    def test_random_tree_homomorphic_inference(self, toy_context):
        tree = DecisionTree.random(depth=2, num_features=3, params=TOY_PARAMETERS, seed=4)
        evaluator = HomomorphicTreeEvaluator(toy_context, tree)
        rng = np.random.default_rng(0)
        for _ in range(4):
            features = [int(value) for value in rng.integers(0, 4, size=3)]
            assert evaluator.infer(features) == tree.predict(features)

    def test_pbs_count(self, toy_context):
        tree = self._xor_like_tree()
        evaluator = HomomorphicTreeEvaluator(toy_context, tree)
        assert evaluator.pbs_count() == 3 * tree.internal_nodes()

    def test_feature_count_validated(self, toy_context):
        evaluator = HomomorphicTreeEvaluator(toy_context, self._xor_like_tree())
        with pytest.raises(ValueError):
            evaluator.evaluate([toy_context.encrypt(0)])

    def test_forest_graph(self):
        graph = tree_inference_graph(PARAM_SET_I, depth=3, trees=10, samples=100)
        # comparisons: (1 + 2 + 4) * 1000; selections: 2 * (4 + 2 + 1) * 1000
        assert graph.total_pbs() == 7 * 1000 + 14 * 1000
        assert len(graph.levels()) == 6

    def test_forest_graph_validation(self):
        with pytest.raises(ValueError):
            tree_inference_graph(PARAM_SET_I, depth=0, trees=1, samples=1)


class TestSerialization:
    def test_lwe_ciphertext_roundtrip(self, toy_context, tmp_path):
        ciphertexts = [toy_context.encrypt(m) for m in (0, 1, 2, 3)]
        path = tmp_path / "cts.npz"
        serialization.save_lwe_ciphertexts(path, ciphertexts)
        loaded = serialization.load_lwe_ciphertexts(path, TOY_PARAMETERS)
        assert [toy_context.decrypt(ct) for ct in loaded] == [0, 1, 2, 3]

    def test_empty_batch_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            serialization.save_lwe_ciphertexts(tmp_path / "x.npz", [])

    def test_mixed_dimensions_rejected(self, toy_context, tmp_path):
        from repro.tfhe.lwe import LweCiphertext

        mixed = [toy_context.encrypt(0), LweCiphertext.trivial(0, 5, TOY_PARAMETERS)]
        with pytest.raises(ValueError):
            serialization.save_lwe_ciphertexts(tmp_path / "x.npz", mixed)

    def test_parameter_mismatch_detected(self, toy_context, tmp_path):
        from repro.params import SMALL_PARAMETERS

        path = tmp_path / "cts.npz"
        serialization.save_lwe_ciphertexts(path, [toy_context.encrypt(1)])
        with pytest.raises(ValueError):
            serialization.load_lwe_ciphertexts(path, SMALL_PARAMETERS)

    def test_lwe_bytes_roundtrip(self, toy_context):
        ciphertexts = [toy_context.encrypt(m) for m in (0, 1, 2, 3)]
        blob = serialization.lwe_to_bytes(ciphertexts)
        header = serialization._LWE_WIRE_HEADER.size + len(TOY_PARAMETERS.name)
        assert len(blob) == header + len(ciphertexts) * (ciphertexts[0].dimension + 1) * 8
        loaded = serialization.lwe_from_bytes(blob, TOY_PARAMETERS)
        assert [toy_context.decrypt(ct) for ct in loaded] == [0, 1, 2, 3]
        # Byte-deterministic: the same batch encodes to the same bytes.
        assert serialization.lwe_to_bytes(loaded) == blob

    @given(
        masks=st.lists(
            st.lists(st.integers(min_value=-(2**40), max_value=2**40), min_size=5, max_size=5),
            min_size=1,
            max_size=6,
        ),
        bodies=st.data(),
    )
    @settings(max_examples=25, deadline=None)
    def test_lwe_bytes_roundtrip_property(self, masks, bodies):
        from repro.tfhe.lwe import LweCiphertext

        batch = [
            LweCiphertext(
                np.asarray(mask, dtype=np.int64),
                bodies.draw(st.integers(min_value=-(2**40), max_value=2**40)),
                TOY_PARAMETERS,
            )
            for mask in masks
        ]
        restored = serialization.lwe_from_bytes(
            serialization.lwe_to_bytes(batch), TOY_PARAMETERS
        )
        assert len(restored) == len(batch)
        for original, copy in zip(batch, restored):
            assert np.array_equal(original.mask, copy.mask)
            assert original.body == copy.body

    def test_lwe_bytes_params_mismatch_rejected(self, toy_context):
        from repro.params import SMALL_PARAMETERS

        blob = serialization.lwe_to_bytes([toy_context.encrypt(1)])
        with pytest.raises(ValueError, match="parameter"):
            serialization.lwe_from_bytes(blob, SMALL_PARAMETERS)

    def test_lwe_bytes_rejects_corrupt_blobs(self, toy_context):
        blob = serialization.lwe_to_bytes([toy_context.encrypt(1)])
        with pytest.raises(ValueError, match="magic"):
            serialization.lwe_from_bytes(b"XXXX" + blob[4:], TOY_PARAMETERS)
        with pytest.raises(ValueError, match="truncated"):
            serialization.lwe_from_bytes(blob[:6], TOY_PARAMETERS)
        with pytest.raises(ValueError, match="implies"):
            serialization.lwe_from_bytes(blob[:-8], TOY_PARAMETERS)
        with pytest.raises(ValueError, match="implies"):
            serialization.lwe_from_bytes(blob + b"\x00" * 8, TOY_PARAMETERS)
        with pytest.raises(ValueError, match="empty"):
            serialization.lwe_to_bytes([])

    def test_bootstrapping_key_roundtrip_still_bootstraps(self, toy_context, tmp_path):
        keys = toy_context.server_keys
        bsk_path = tmp_path / "bsk.npz"
        serialization.save_bootstrapping_key(bsk_path, keys.bootstrapping_key)
        restored = serialization.load_bootstrapping_key(bsk_path, TOY_PARAMETERS)
        from repro.tfhe.bootstrap import programmable_bootstrap

        result = programmable_bootstrap(
            toy_context.encrypt(2),
            lambda m: (m + 1) % 4,
            restored,
            TOY_PARAMETERS,
            keys.keyswitching_key,
        )
        assert toy_context.decrypt(result.ciphertext) == 3

    def test_keyswitching_key_roundtrip(self, toy_context, tmp_path):
        keys = toy_context.server_keys
        path = tmp_path / "ksk.npz"
        serialization.save_keyswitching_key(path, keys.keyswitching_key)
        restored = serialization.load_keyswitching_key(path, TOY_PARAMETERS)
        np.testing.assert_array_equal(restored.ciphertexts, keys.keyswitching_key.ciphertexts)

    def test_secret_key_roundtrip(self, tmp_path, rng):
        key = LweSecretKey.generate(TOY_PARAMETERS, rng)
        path = tmp_path / "sk.npz"
        serialization.save_lwe_secret_key(path, key)
        restored = serialization.load_lwe_secret_key(path, TOY_PARAMETERS)
        np.testing.assert_array_equal(restored.bits, key.bits)

    def test_serialized_sizes_match_table_i_scale(self):
        sizes = serialization.serialized_sizes(PARAM_SET_I)
        assert sizes["lwe_ciphertext"] < 16 * 1024                     # KB level
        assert 10 * 2 ** 20 < sizes["bootstrapping_key"] < 500 * 2 ** 20  # 10s-100s MB
        assert sizes["ggsw_ciphertext"] == PARAM_SET_I.ggsw_ciphertext_bytes


class TestEnergyModel:
    @pytest.fixture(scope="class")
    def model(self):
        return EnergyModel(StrixAccelerator())

    def test_energy_per_pbs_increases_with_parameter_size(self, model):
        energies = [model.energy_per_pbs_mj(PAPER_PARAMETER_SETS[name]) for name in ("I", "II", "III", "IV")]
        assert energies == sorted(energies)
        assert energies[0] > 0

    def test_workload_energy(self, model):
        assert model.workload_energy_j(2.0) == pytest.approx(2.0 * model.chip_power_w)

    def test_strix_more_efficient_than_cpu_and_gpu(self, model):
        comparison = model.compare_with_baselines(PARAM_SET_I)
        assert comparison.gain_vs_cpu > 1000
        assert comparison.gain_vs_gpu > 50

    def test_chip_power_from_table_iii(self, model):
        assert model.chip_power_w == pytest.approx(77.14, rel=0.05)
