"""Serving-traffic generators: request traces for the serving simulation.

The serving layer's behaviour depends on the *arrival process*, not just the
total load, so three canonical patterns ship:

* :func:`steady_trace` — a Poisson process (exponential inter-arrivals) at a
  constant rate: the well-behaved baseline;
* :func:`bursty_trace` — an on/off modulated Poisson process: short bursts
  at a high rate separated by idle gaps, the pattern that stresses queue
  depth and deadline flushes;
* :func:`heavy_tail_trace` — Pareto inter-arrivals and log-normal request
  sizes: a few huge requests among many small ones, the pattern that
  produces stragglers and long p99 tails.

Every generator returns a list of :class:`~repro.serve.request.Request`
objects (timestamped, multi-tenant, mixed kinds) ready for
:meth:`repro.serve.Server.simulate`, and is fully determined by its seed.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.serve.request import Request, RequestKind

#: Default kind mix of a trace: mostly bootstraps and gates, some encryption
#: traffic, the occasional full inference call.
DEFAULT_KIND_MIX: dict[RequestKind, float] = {
    RequestKind.BOOTSTRAP: 0.5,
    RequestKind.GATE: 0.3,
    RequestKind.ENCRYPT: 0.15,
    RequestKind.INFERENCE: 0.05,
}


def _make_requests(
    arrival_times: Sequence[float],
    sizes: Sequence[int],
    rng: np.random.Generator,
    tenants: int,
    kind_mix: dict[RequestKind, float],
    inference_model: str,
) -> list[Request]:
    """Assemble requests from arrival times and sizes (shared by all patterns)."""
    kinds = list(kind_mix)
    weights = np.asarray([kind_mix[kind] for kind in kinds], dtype=float)
    weights = weights / weights.sum()
    requests = []
    for index, (arrival, size) in enumerate(zip(arrival_times, sizes)):
        kind = kinds[int(rng.choice(len(kinds), p=weights))]
        # Inference items are whole encrypted samples, not ciphertexts — one
        # sample already costs a model's worth of PBS, so keep counts small.
        items = max(1, int(size)) if kind is not RequestKind.INFERENCE else 1
        requests.append(
            Request.make(
                request_id=index + 1,
                tenant=f"tenant{int(rng.integers(tenants))}",
                kind=kind,
                items=items,
                arrival_s=float(arrival),
                model=inference_model if kind is RequestKind.INFERENCE else None,
            )
        )
    return requests


def steady_trace(
    rate_rps: float,
    duration_s: float,
    seed: int = 0,
    tenants: int = 4,
    mean_items: float = 8.0,
    kind_mix: dict[RequestKind, float] | None = None,
    inference_model: str = "NN-20",
) -> list[Request]:
    """Poisson arrivals at a constant rate with geometric request sizes."""
    if rate_rps <= 0 or duration_s <= 0:
        raise ValueError("rate and duration must be positive")
    if mean_items <= 0:
        raise ValueError("mean_items must be positive")
    rng = np.random.default_rng(seed)
    times: list[float] = []
    now = 0.0
    while True:
        now += rng.exponential(1.0 / rate_rps)
        if now >= duration_s:
            break
        times.append(now)
    sizes = rng.geometric(min(1.0, 1.0 / mean_items), size=len(times))
    return _make_requests(
        times, sizes, rng, tenants, kind_mix or DEFAULT_KIND_MIX, inference_model
    )


def bursty_trace(
    burst_rate_rps: float,
    duration_s: float,
    seed: int = 0,
    burst_s: float = 0.02,
    idle_s: float = 0.08,
    tenants: int = 4,
    mean_items: float = 8.0,
    kind_mix: dict[RequestKind, float] | None = None,
    inference_model: str = "NN-20",
) -> list[Request]:
    """On/off traffic: Poisson bursts at ``burst_rate_rps`` with idle gaps.

    Burst and gap lengths are exponentially distributed around ``burst_s``
    and ``idle_s``; nothing arrives during the off phases, so queue depth
    whipsaws between empty and deep.
    """
    if burst_rate_rps <= 0 or duration_s <= 0:
        raise ValueError("rate and duration must be positive")
    if burst_s <= 0 or idle_s <= 0:
        raise ValueError("burst and idle durations must be positive")
    if mean_items <= 0:
        raise ValueError("mean_items must be positive")
    rng = np.random.default_rng(seed)
    times: list[float] = []
    now = 0.0
    while now < duration_s:
        burst_end = min(now + rng.exponential(burst_s), duration_s)
        while True:
            now += rng.exponential(1.0 / burst_rate_rps)
            if now >= burst_end:
                break
            times.append(now)
        now = burst_end + rng.exponential(idle_s)
    sizes = rng.geometric(min(1.0, 1.0 / mean_items), size=len(times))
    return _make_requests(
        times, sizes, rng, tenants, kind_mix or DEFAULT_KIND_MIX, inference_model
    )


def heavy_tail_trace(
    rate_rps: float,
    duration_s: float,
    seed: int = 0,
    pareto_shape: float = 1.5,
    size_sigma: float = 1.2,
    tenants: int = 4,
    mean_items: float = 8.0,
    kind_mix: dict[RequestKind, float] | None = None,
    inference_model: str = "NN-20",
) -> list[Request]:
    """Heavy-tailed traffic: Pareto inter-arrivals, log-normal request sizes.

    ``pareto_shape`` close to 1 makes inter-arrival times wildly variable
    (long quiet stretches, dense clumps); ``size_sigma`` controls how extreme
    the largest requests get relative to ``mean_items``.
    """
    if rate_rps <= 0 or duration_s <= 0:
        raise ValueError("rate and duration must be positive")
    if mean_items <= 0:
        raise ValueError("mean_items must be positive")
    if pareto_shape <= 1.0:
        raise ValueError("pareto shape must exceed 1 for a finite mean rate")
    rng = np.random.default_rng(seed)
    # Scale the Pareto so the mean inter-arrival matches 1/rate.
    mean_gap = 1.0 / rate_rps
    scale = mean_gap * (pareto_shape - 1.0) / pareto_shape
    times: list[float] = []
    now = 0.0
    while True:
        now += scale * (1.0 + rng.pareto(pareto_shape))
        if now >= duration_s:
            break
        times.append(now)
    # Log-normal sizes with the requested mean: E[lognormal] = exp(mu + s^2/2).
    mu = np.log(mean_items) - size_sigma**2 / 2.0
    sizes = np.maximum(1, rng.lognormal(mu, size_sigma, size=len(times)).round())
    return _make_requests(
        times, sizes, rng, tenants, kind_mix or DEFAULT_KIND_MIX, inference_model
    )


#: Named arrival patterns with paper-benchmark defaults, so callers (and the
#: serving benchmark) can sweep them uniformly: ``TRAFFIC_PATTERNS[name](...)``.
TRAFFIC_PATTERNS = {
    "steady": steady_trace,
    "bursty": bursty_trace,
    "heavy-tail": heavy_tail_trace,
}
