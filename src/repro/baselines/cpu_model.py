"""CPU (Concrete-library-style) cost model.

The paper's CPU baseline is the single-threaded Concrete library on an Intel
Xeon Platinum; it reports 14 ms per PBS for parameter set I (Table V) and the
workload breakdown of Fig. 1 (≈65 % PBS, 30 % keyswitch, 5 % linear; blind
rotation ≈98 % of PBS; the external product's FFT / vector-multiply /
accumulate+IFFT dominating each iteration).

We model the CPU by counting the primitive floating-point / integer
operations every TFHE sub-step performs — the same counts our functional
implementation executes — and calibrating a single constant (effective
operations per second) so that parameter set I lands on the published 14 ms.
Relative costs across sub-steps and parameter sets then follow from the
operation counts alone, which is what the breakdown and the application
benchmark need.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.params import PARAM_SET_I, TFHEParameters
from repro.sim.graph import ComputationGraph, NodeKind


@dataclass(frozen=True)
class CpuWorkloadBreakdown:
    """Execution-time shares of one TFHE gate/PBS on the CPU (Fig. 1)."""

    gate_shares: dict[str, float]
    pbs_shares: dict[str, float]
    blind_rotation_shares: dict[str, float]

    def dominant_gate_component(self) -> str:
        """Component with the largest share of the gate execution."""
        return max(self.gate_shares, key=self.gate_shares.get)


class ConcreteCpuModel:
    """Operation-count cost model of single/multi-core CPU TFHE execution."""

    #: Published single-core PBS latency for parameter set I (Table V).
    CALIBRATION_LATENCY_MS = 14.0

    #: Relative cost of one complex butterfly vs one integer MAC on the CPU.
    BUTTERFLY_COST = 10.0
    COMPLEX_MAC_COST = 6.0
    INTEGER_MAC_COST = 1.0
    DECOMPOSE_COST = 2.0
    ROTATE_COST = 1.0
    #: Keyswitching streams the multi-MB keyswitching key from DRAM with no
    #: reuse, so each of its integer MACs is dominated by the memory access
    #: rather than the arithmetic.  The factor is calibrated so keyswitching
    #: lands at the ~30 % gate share Concrete profiling reports (Fig. 1).
    KEYSWITCH_MAC_COST = 30.0
    #: Modulus switching + sample extraction + test-vector setup measured by
    #: Concrete profiling at ~2 % of PBS (Fig. 1: blind rotation is ~98 %).
    PBS_OVERHEAD_FRACTION = 0.0204

    def __init__(self, threads: int = 1):
        if threads < 1:
            raise ValueError("thread count must be at least 1")
        self.threads = threads
        self._ops_per_second = self._calibrate()

    # -- primitive operation counts -------------------------------------------------

    def fft_operations(self, params: TFHEParameters) -> float:
        """Weighted operations of one forward FFT (folded, N/2 points)."""
        points = params.N // 2
        return self.BUTTERFLY_COST * points * math.log2(points) / 2.0

    def blind_rotation_iteration_operations(self, params: TFHEParameters) -> dict[str, float]:
        """Weighted operation counts of one blind-rotation iteration."""
        k, lb, n_poly = params.k, params.lb, params.N
        decomposed = (k + 1) * lb
        rotate = self.ROTATE_COST * (k + 1) * n_poly
        decompose = self.DECOMPOSE_COST * decomposed * n_poly
        fft = decomposed * self.fft_operations(params)
        vector_multiply = self.COMPLEX_MAC_COST * decomposed * (k + 1) * (n_poly // 2)
        ifft = (k + 1) * self.fft_operations(params)
        accumulate = self.INTEGER_MAC_COST * (k + 1) * n_poly
        return {
            "rotate": rotate,
            "decompose": decompose,
            "fft": fft,
            "vector_multiply": vector_multiply,
            "accumulate_ifft": ifft + accumulate,
        }

    def blind_rotation_operations(self, params: TFHEParameters) -> float:
        """Weighted operations of a full blind rotation (n iterations)."""
        per_iteration = sum(self.blind_rotation_iteration_operations(params).values())
        return params.n * per_iteration

    def pbs_operations(self, params: TFHEParameters) -> dict[str, float]:
        """Weighted operation counts of one full PBS.

        Modulus switching and sample extraction perform a negligible number
        of arithmetic operations; their measured share (together with
        test-vector setup and allocation overheads) is the
        :data:`PBS_OVERHEAD_FRACTION` of blind rotation reported by the
        Concrete profiling the paper quotes.
        """
        blind_rotation = self.blind_rotation_operations(params)
        overhead = blind_rotation * self.PBS_OVERHEAD_FRACTION
        return {
            "blind_rotation": blind_rotation,
            "modulus_switch": overhead * 0.3,
            "sample_extract": overhead * 0.7,
        }

    def keyswitch_operations(self, params: TFHEParameters) -> float:
        """Weighted operations of one keyswitch (DRAM-bound integer MACs)."""
        return self.KEYSWITCH_MAC_COST * params.k * params.N * params.lk * (params.n + 1)

    def gate_operations(self, params: TFHEParameters) -> dict[str, float]:
        """Weighted operation counts of one gate bootstrap (PBS + KS + linear)."""
        pbs = sum(self.pbs_operations(params).values())
        keyswitch = self.keyswitch_operations(params)
        # Linear part: the input linear combination plus bookkeeping; Fig. 1
        # attributes ~5 % of the gate to it.
        linear = 0.05 / 0.95 * (pbs + keyswitch)
        return {"pbs": pbs, "keyswitch": keyswitch, "linear": linear}

    # -- calibration / latency ---------------------------------------------------------

    def _calibrate(self) -> float:
        operations = sum(self.pbs_operations(PARAM_SET_I).values())
        return operations / (self.CALIBRATION_LATENCY_MS / 1e3)

    def pbs_latency_ms(self, params: TFHEParameters) -> float:
        """Single-thread latency of one PBS."""
        operations = sum(self.pbs_operations(params).values())
        return operations / self._ops_per_second * 1e3

    def keyswitch_latency_ms(self, params: TFHEParameters) -> float:
        """Single-thread latency of one keyswitch."""
        return self.keyswitch_operations(params) / self._ops_per_second * 1e3

    def pbs_throughput(self, params: TFHEParameters) -> float:
        """PBS/s across all configured threads."""
        return self.threads / (self.pbs_latency_ms(params) / 1e3)

    # -- Fig. 1: workload breakdown ------------------------------------------------------

    def workload_breakdown(self, params: TFHEParameters) -> CpuWorkloadBreakdown:
        """Execution-time shares of one TFHE gate on the CPU."""
        gate = self.gate_operations(params)
        gate_total = sum(gate.values())
        gate_shares = {name: value / gate_total for name, value in gate.items()}

        pbs = self.pbs_operations(params)
        pbs_total = sum(pbs.values())
        pbs_shares = {name: value / pbs_total for name, value in pbs.items()}

        iteration = self.blind_rotation_iteration_operations(params)
        iteration_total = sum(iteration.values())
        blind_rotation_shares = {
            name: value / iteration_total for name, value in iteration.items()
        }
        return CpuWorkloadBreakdown(
            gate_shares=gate_shares,
            pbs_shares=pbs_shares,
            blind_rotation_shares=blind_rotation_shares,
        )

    # -- workload graphs -------------------------------------------------------------------

    def execute_graph(self, graph: ComputationGraph) -> float:
        """Execution time (seconds) of a computation graph on this CPU.

        Independent ciphertexts within a node spread across the available
        threads; nodes respect their dependency order.
        """
        params = graph.params
        pbs_latency_s = self.pbs_latency_ms(params) / 1e3
        ks_latency_s = self.keyswitch_latency_ms(params) / 1e3
        linear_rate = self._ops_per_second * self.threads
        total = 0.0
        for level in graph.levels():
            level_time = 0.0
            for node in level:
                if node.kind is NodeKind.LINEAR:
                    operations = node.ciphertexts * max(node.operations_per_ciphertext, 1)
                    node_time = operations * self.INTEGER_MAC_COST * (params.n + 1) / linear_rate
                else:
                    per_item = 0.0
                    if node.kind in (NodeKind.PBS, NodeKind.PBS_KS):
                        per_item += pbs_latency_s
                    if node.kind in (NodeKind.KEYSWITCH, NodeKind.PBS_KS):
                        per_item += ks_latency_s
                    rounds = math.ceil(node.ciphertexts / self.threads)
                    node_time = rounds * per_item
                level_time = max(level_time, node_time)
            total += level_time
        return total
