"""Setup shim so editable installs work without network access to fetch wheel."""
from setuptools import setup

setup()
