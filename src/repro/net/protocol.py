"""The wire protocol: versioned, length-prefixed, checksummed binary frames.

Every message between a client and the serving front-end travels in one
*frame*::

    0        4      5      6        8          12         16
    +--------+------+------+--------+----------+----------+=========+
    | magic  | ver  | type | flags  | length   | crc32    | payload |
    | "RFHE" | u8   | u8   | u16=0  | u32      | u32      | bytes   |
    +--------+------+------+--------+----------+----------+=========+

``length`` counts payload bytes only; ``crc32`` is the zlib CRC-32 of the
payload, so a flipped bit anywhere in the body is caught before the payload
is parsed.  The header is fixed-size and network byte order throughout.

Everything in this module is a pure function over ``bytes`` — framing,
message payloads and the incremental :class:`FrameDecoder` are all testable
without ever opening a socket; :mod:`repro.net.server` and
:mod:`repro.net.client` only add transport.

Message types
-------------

* ``HELLO`` / ``WELCOME`` — version negotiation: the client lists every
  protocol version it speaks, the server answers with the one it picked
  (or an ``ERROR`` with :attr:`ErrorCode.UNSUPPORTED_VERSION`).
* ``SUBMIT`` / ``RESULT`` — one serving request and its outcome (payload
  codecs live in :mod:`repro.net.codec`, which reuses the bytes-level LWE
  codecs of :mod:`repro.tfhe.serialization`).
* ``ERROR`` — a typed failure reply; carries the request id it answers
  when one exists, zero otherwise.
* ``PING`` / ``PONG`` — latency echo: the pong returns the ping's nonce
  and client timestamp untouched plus the server's own clock.
* ``DRAIN`` / ``DRAINED`` — flush everything still batched (trace replay
  uses it to terminate deterministically; ``DRAINED`` confirms all results
  are out).
* ``STATS`` / ``STATS_REPLY`` — scrape the server's unified metrics
  registry over the wire: the reply carries the flat
  ``{name: value}`` snapshot of
  :meth:`repro.serve.Server.metrics` as canonical JSON (sorted keys,
  compact separators), byte-reproducible for identical counter states.
* ``BUSY`` — the overload reply: the server is past capacity (admission
  rejected the submission, or the connection exhausted its credit
  window) and will not queue the request; carries the refused request id,
  a deterministic retry-after hint and a human-readable reason.  A BUSY
  is frame-local — the connection keeps serving.
"""

from __future__ import annotations

import enum
import json
import struct
import zlib
from dataclasses import dataclass

#: Leading bytes of every frame.
MAGIC = b"RFHE"

#: The protocol version this tree speaks.
PROTOCOL_VERSION = 1

#: Versions the server accepts (today a singleton; the HELLO/WELCOME
#: exchange exists so a future version 2 can coexist with 1).
SUPPORTED_VERSIONS = frozenset({PROTOCOL_VERSION})

#: Hard cap on payload size: a declared length past this is treated as a
#: corrupt header (desynchronized stream), not an allocation request.
MAX_PAYLOAD_BYTES = 16 * 1024 * 1024

#: Frame header: magic, version, message type, reserved flags, payload
#: length, payload CRC-32.
HEADER = struct.Struct("!4sBBHII")


class MessageType(enum.IntEnum):
    """Wire identifiers of every message the protocol speaks."""

    HELLO = 1
    WELCOME = 2
    SUBMIT = 3
    RESULT = 4
    ERROR = 5
    PING = 6
    PONG = 7
    DRAIN = 8
    DRAINED = 9
    STATS = 10
    STATS_REPLY = 11
    BUSY = 12


class ErrorCode(enum.IntEnum):
    """Typed failure classes an ``ERROR`` frame carries."""

    BAD_MAGIC = 1
    BAD_CHECKSUM = 2
    TRUNCATED = 3
    UNSUPPORTED_VERSION = 4
    UNKNOWN_TYPE = 5
    BAD_MESSAGE = 6
    FRAME_TOO_LARGE = 7
    SERVER_ERROR = 8
    DEADLINE_EXCEEDED = 9


class ProtocolError(Exception):
    """A transport-level defect in the byte stream.

    ``fatal`` distinguishes defects that desynchronize the stream (wrong
    magic, an unbelievable length — nothing after them can be trusted) from
    frame-local ones (a checksum miss, an unsupported version — the frame
    boundary is still known, so the connection keeps going).
    """

    def __init__(self, code: ErrorCode, message: str, fatal: bool = False):
        super().__init__(message)
        self.code = code
        self.message = message
        self.fatal = fatal


@dataclass(frozen=True)
class Frame:
    """One decoded frame: its protocol version, message type and payload."""

    version: int
    msg_type: int
    payload: bytes

    @property
    def type_name(self) -> str:
        """Readable message-type name (``type-N`` for unknown types)."""
        try:
            return MessageType(self.msg_type).name
        except ValueError:
            return f"type-{self.msg_type}"


def encode_frame(
    msg_type: int, payload: bytes = b"", version: int = PROTOCOL_VERSION
) -> bytes:
    """Encode one frame (header + payload) ready for the wire."""
    if len(payload) > MAX_PAYLOAD_BYTES:
        raise ValueError(
            f"payload of {len(payload)} bytes exceeds the {MAX_PAYLOAD_BYTES}-byte frame cap"
        )
    header = HEADER.pack(MAGIC, version, int(msg_type), 0, len(payload), zlib.crc32(payload))
    return header + payload


class FrameDecoder:
    """Incremental frame parser over an arbitrary byte stream.

    Feed it whatever chunks the transport delivers; it yields
    :class:`Frame` objects and :class:`ProtocolError` *values* (returned,
    not raised — the server answers each with a typed ``ERROR`` reply).
    After a fatal error the decoder refuses further input: the stream has
    lost frame alignment and every later byte would be misparsed.
    """

    def __init__(self, supported_versions: frozenset[int] = SUPPORTED_VERSIONS):
        self.supported_versions = supported_versions
        self._buffer = bytearray()
        self.dead = False

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered but not yet parsed into a complete frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> list[Frame | ProtocolError]:
        """Consume one chunk; return every frame or defect it completes."""
        events: list[Frame | ProtocolError] = []
        if self.dead:
            return events
        self._buffer.extend(data)
        while True:
            if len(self._buffer) < HEADER.size:
                return events
            magic, version, msg_type, _flags, length, crc = HEADER.unpack_from(self._buffer, 0)
            if magic != MAGIC:
                self.dead = True
                events.append(
                    ProtocolError(
                        ErrorCode.BAD_MAGIC,
                        f"bad frame magic {bytes(magic)!r}; stream is desynchronized",
                        fatal=True,
                    )
                )
                return events
            if length > MAX_PAYLOAD_BYTES:
                self.dead = True
                events.append(
                    ProtocolError(
                        ErrorCode.FRAME_TOO_LARGE,
                        f"declared payload of {length} bytes exceeds the "
                        f"{MAX_PAYLOAD_BYTES}-byte cap",
                        fatal=True,
                    )
                )
                return events
            if len(self._buffer) < HEADER.size + length:
                return events
            payload = bytes(self._buffer[HEADER.size : HEADER.size + length])
            del self._buffer[: HEADER.size + length]
            if version not in self.supported_versions:
                events.append(
                    ProtocolError(
                        ErrorCode.UNSUPPORTED_VERSION,
                        f"protocol version {version} is not supported "
                        f"(supported: {sorted(self.supported_versions)})",
                    )
                )
                continue
            actual = zlib.crc32(payload)
            if actual != crc:
                events.append(
                    ProtocolError(
                        ErrorCode.BAD_CHECKSUM,
                        f"payload checksum {actual:#010x} does not match the "
                        f"header's {crc:#010x}",
                    )
                )
                continue
            events.append(Frame(version=version, msg_type=msg_type, payload=payload))

    def at_eof(self) -> ProtocolError | None:
        """Call when the stream ends: a partial frame left over is truncation."""
        if not self.dead and self._buffer:
            return ProtocolError(
                ErrorCode.TRUNCATED,
                f"stream ended with {len(self._buffer)} bytes of an unfinished frame",
            )
        return None


# -- STATS / STATS_REPLY ----------------------------------------------------------


def encode_stats(snapshot: dict) -> bytes:
    """STATS_REPLY payload: a flat metrics snapshot as canonical JSON.

    Sorted keys and compact separators make the encoding a pure function
    of the snapshot, so identical counter states produce identical bytes
    (and identical CRCs) — the property the scrape-equality test pins.
    """
    return json.dumps(
        snapshot, sort_keys=True, separators=(",", ":"), allow_nan=False
    ).encode("utf-8")


def decode_stats(payload: bytes) -> dict:
    """Decode a ``STATS_REPLY`` payload back into the snapshot dict."""
    try:
        snapshot = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ValueError(f"STATS_REPLY payload is not valid JSON: {error}") from None
    if not isinstance(snapshot, dict):
        raise ValueError(
            f"STATS_REPLY payload must be a JSON object, got {type(snapshot).__name__}"
        )
    return snapshot


# -- string packing (shared by the payload codecs) -------------------------------


def pack_str(text: str) -> bytes:
    """Length-prefixed UTF-8: u16 byte count + bytes."""
    encoded = text.encode("utf-8")
    if len(encoded) > 0xFFFF:
        raise ValueError("string field exceeds 65535 encoded bytes")
    return struct.pack("!H", len(encoded)) + encoded


def unpack_str(payload: bytes, offset: int) -> tuple[str, int]:
    """Decode one :func:`pack_str` field; returns ``(text, next_offset)``."""
    if len(payload) < offset + 2:
        raise ValueError("string field is truncated before its length prefix")
    (length,) = struct.unpack_from("!H", payload, offset)
    offset += 2
    if len(payload) < offset + length:
        raise ValueError("string field is truncated inside its bytes")
    return payload[offset : offset + length].decode("utf-8"), offset + length


# -- HELLO / WELCOME --------------------------------------------------------------


def encode_hello(versions: frozenset[int] | tuple[int, ...] = (PROTOCOL_VERSION,)) -> bytes:
    """HELLO payload: every protocol version the client speaks."""
    ordered = sorted(set(int(version) for version in versions))
    if not ordered:
        raise ValueError("a HELLO must offer at least one version")
    return struct.pack("!B" + "B" * len(ordered), len(ordered), *ordered)


def decode_hello(payload: bytes) -> tuple[int, ...]:
    """Versions offered by a HELLO payload."""
    if len(payload) < 1:
        raise ValueError("HELLO payload is empty")
    count = payload[0]
    if len(payload) != 1 + count:
        raise ValueError(f"HELLO declares {count} versions but carries {len(payload) - 1}")
    return tuple(payload[1 : 1 + count])


@dataclass(frozen=True)
class Welcome:
    """Decoded ``WELCOME`` payload.

    ``credit_window`` is the per-connection in-flight request window the
    server grants (credit-based flow control), or ``None`` when the server
    does not limit in-flight work — the historical one-byte WELCOME.
    """

    version: int
    credit_window: int | None = None


def encode_welcome(
    version: int = PROTOCOL_VERSION, credit_window: int | None = None
) -> bytes:
    """WELCOME payload: the version the server picked, plus the optional
    per-connection credit window.

    Without a window the payload stays the historical single version byte
    — byte-identical frames for servers that do not flow-control.
    """
    if credit_window is None:
        return struct.pack("!B", version)
    if not 1 <= credit_window <= 0xFFFF:
        raise ValueError("credit window must be in [1, 65535]")
    return struct.pack("!BH", version, credit_window)


def decode_welcome(payload: bytes) -> Welcome:
    """Decode a ``WELCOME`` payload (with or without a credit window)."""
    if len(payload) == 1:
        return Welcome(version=payload[0])
    if len(payload) == 3:
        version, credit_window = struct.unpack("!BH", payload)
        if credit_window == 0:
            raise ValueError("WELCOME credit window cannot be zero")
        return Welcome(version=version, credit_window=credit_window)
    raise ValueError(
        "WELCOME payload must be one version byte or version + u16 credit window"
    )


def negotiate_version(
    offered: tuple[int, ...], supported: frozenset[int] = SUPPORTED_VERSIONS
) -> int | None:
    """Highest mutually supported version, or ``None`` when there is none."""
    common = set(offered) & supported
    return max(common) if common else None


# -- ERROR ------------------------------------------------------------------------


@dataclass(frozen=True)
class ErrorReply:
    """Decoded ``ERROR`` payload."""

    code: int
    request_id: int
    message: str

    @property
    def code_name(self) -> str:
        """Readable error-code name (``code-N`` for unknown codes)."""
        try:
            return ErrorCode(self.code).name
        except ValueError:
            return f"code-{self.code}"


def encode_error(code: int, message: str, request_id: int = 0) -> bytes:
    """ERROR payload: typed code, answered request id (0 = none), text."""
    return struct.pack("!HQ", int(code), request_id) + pack_str(message)


def decode_error(payload: bytes) -> ErrorReply:
    """Decode an ``ERROR`` payload."""
    if len(payload) < 10:
        raise ValueError("ERROR payload is truncated before its fixed fields end")
    code, request_id = struct.unpack_from("!HQ", payload, 0)
    message, _offset = unpack_str(payload, 10)
    return ErrorReply(code=code, request_id=request_id, message=message)


# -- BUSY -------------------------------------------------------------------------


@dataclass(frozen=True)
class BusyReply:
    """Decoded ``BUSY`` payload: the server refused to queue a request.

    ``retry_after_s`` is the server's deterministic backoff hint — a pure
    function of its queue state, so a replayed overload run produces
    bit-for-bit identical hints.
    """

    request_id: int
    retry_after_s: float
    reason: str


_BUSY = struct.Struct("!Qd")


def encode_busy(request_id: int, retry_after_s: float, reason: str) -> bytes:
    """BUSY payload: refused request id, retry-after hint, reason text."""
    if retry_after_s < 0:
        raise ValueError("retry-after hint cannot be negative")
    return _BUSY.pack(request_id, retry_after_s) + pack_str(reason)


def decode_busy(payload: bytes) -> BusyReply:
    """Decode a ``BUSY`` payload."""
    if len(payload) < _BUSY.size:
        raise ValueError("BUSY payload is truncated before its fixed fields end")
    request_id, retry_after_s = _BUSY.unpack_from(payload, 0)
    reason, offset = unpack_str(payload, _BUSY.size)
    if offset != len(payload):
        raise ValueError(f"BUSY payload has {len(payload) - offset} trailing bytes")
    return BusyReply(
        request_id=request_id, retry_after_s=retry_after_s, reason=reason
    )


# -- PING / PONG ------------------------------------------------------------------


@dataclass(frozen=True)
class Pong:
    """Decoded ``PONG`` payload: the echo plus the server's clock."""

    nonce: int
    client_s: float
    server_s: float


_PING = struct.Struct("!Qd")
_PONG = struct.Struct("!Qdd")


def encode_ping(nonce: int, client_s: float) -> bytes:
    """PING payload: an opaque nonce and the client's send timestamp."""
    return _PING.pack(nonce, client_s)


def decode_ping(payload: bytes) -> tuple[int, float]:
    """Decode a ``PING`` payload into ``(nonce, client_s)``."""
    if len(payload) != _PING.size:
        raise ValueError(f"PING payload must be {_PING.size} bytes, got {len(payload)}")
    nonce, client_s = _PING.unpack(payload)
    return nonce, client_s


def encode_pong(nonce: int, client_s: float, server_s: float) -> bytes:
    """PONG payload: the ping echoed back plus the server's own clock."""
    return _PONG.pack(nonce, client_s, server_s)


def decode_pong(payload: bytes) -> Pong:
    """Decode a ``PONG`` payload."""
    if len(payload) != _PONG.size:
        raise ValueError(f"PONG payload must be {_PONG.size} bytes, got {len(payload)}")
    nonce, client_s, server_s = _PONG.unpack(payload)
    return Pong(nonce=nonce, client_s=client_s, server_s=server_s)
