"""Per-device key residency under an HBM key-memory budget.

Every tenant served by a device needs that tenant's bootstrapping key and
keyswitching key resident in the device's HBM — at the paper's parameter
set I that is ~22.5 MB per tenant, so a 16 GB stack holds a few hundred
tenants, not millions.  This module is the subsystem that makes the
serving tier honest about it:

* :class:`DeviceKeyCache` — one device's resident key sets and byte budget;
* :class:`KeyEvictionPolicy` — *which* tenant loses residency when a device
  runs out of key memory.  Three policies ship behind the same
  registry/did-you-mean shape as layouts and cost models:

  - ``"lru"`` — evict the least-recently-used tenant (the default: serving
    traffic is bursty per tenant, so recency predicts re-use);
  - ``"lfu"`` — evict the least-frequently-used tenant (frequency counts
    reset on eviction), ties broken by recency;
  - ``"pinned"`` — LRU over the *unpinned* tenants only; pinned tenants
    (premium / latency-SLA customers) never lose residency.

* :class:`KeyResidencyManager` — the cluster-wide coordinator every
  :class:`~repro.sched.layouts.PlacementLayout` charges through: it tracks
  which devices hold which tenants' keys, prices BSK/KSK (re-)shipping on
  the shared :class:`~repro.arch.interconnect.InterconnectModel`, enforces
  the per-device budget, and keeps the hit/miss/evict/re-ship counters the
  serving report surfaces.

The compatibility contract: with an *unbounded* budget (``budget_bytes is
None``, the default) nothing is ever evicted and the manager reproduces the
historical key-shipping arithmetic bit-for-bit — a tenant's first placement
is free (onboarding provisions keys) and each device pays for one key-set
transfer the first time the tenant lands on it.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Mapping, Sequence

from repro.arch.config import StrixConfig
from repro.errors import UnknownKeyPolicyError
from repro.params import TFHEParameters

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.arch.interconnect import InterconnectModel


def hbm_key_budget_bytes(device: StrixConfig, fraction: float = 0.5) -> int:
    """A hardware-honest per-device key-memory budget.

    ``fraction`` of the device's HBM capacity is reserved for resident
    tenant key sets; the rest stays with ciphertexts, test vectors and
    staging buffers.  Capacity follows the GB = 1e9 bytes convention the
    bandwidth figures already use.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError("key-memory fraction must be in (0, 1]")
    return int(device.hbm_capacity_gb * 1e9 * fraction)


class KeyEvictionPolicy(abc.ABC):
    """Strategy choosing which resident tenant a full device evicts.

    The policy observes every cache event (insert / access / evict, always
    per device) and answers :meth:`victim` when a device must free key
    memory.  Implementations keep their own recency/frequency state, so the
    caches themselves stay plain byte maps.
    """

    #: Registry name of the policy.
    name = ""

    def __init__(self) -> None:
        self._clock = 0

    def _tick(self) -> int:
        self._clock += 1
        return self._clock

    @abc.abstractmethod
    def on_insert(self, device: int, tenant: str) -> None:
        """A tenant's key set became resident on ``device``."""

    @abc.abstractmethod
    def on_access(self, device: int, tenant: str) -> None:
        """A resident tenant's key set was used on ``device``."""

    @abc.abstractmethod
    def on_evict(self, device: int, tenant: str) -> None:
        """A tenant's key set was evicted from ``device``."""

    @abc.abstractmethod
    def victim(self, device: int, candidates: Iterable[str]) -> str | None:
        """The tenant ``device`` should evict, or ``None`` if none may go.

        ``candidates`` excludes tenants the in-flight dispatch needs — a
        batch must never evict its own keys to admit them.
        """

    def reset(self) -> None:
        """Clear all recency/frequency state between simulations."""
        self._clock = 0


class LRUEvictionPolicy(KeyEvictionPolicy):
    """Evict the tenant whose keys were used longest ago."""

    name = "lru"

    def __init__(self) -> None:
        super().__init__()
        self._last_used: dict[tuple[int, str], int] = {}

    def on_insert(self, device: int, tenant: str) -> None:
        self._last_used[(device, tenant)] = self._tick()

    def on_access(self, device: int, tenant: str) -> None:
        self._last_used[(device, tenant)] = self._tick()

    def on_evict(self, device: int, tenant: str) -> None:
        self._last_used.pop((device, tenant), None)

    def victim(self, device: int, candidates: Iterable[str]) -> str | None:
        pool = list(candidates)
        if not pool:
            return None
        return min(pool, key=lambda tenant: self._last_used.get((device, tenant), 0))

    def reset(self) -> None:
        super().reset()
        self._last_used.clear()


class LFUEvictionPolicy(KeyEvictionPolicy):
    """Evict the tenant whose keys were used least often (ties: least recent).

    Frequency counts cover the *current* residency only — they reset when a
    tenant is evicted, so a historically chatty tenant cannot squat on key
    memory through a quiet spell the way a cumulative count would let it.
    """

    name = "lfu"

    def __init__(self) -> None:
        super().__init__()
        self._uses: dict[tuple[int, str], int] = {}
        self._last_used: dict[tuple[int, str], int] = {}

    def on_insert(self, device: int, tenant: str) -> None:
        self._uses[(device, tenant)] = 1
        self._last_used[(device, tenant)] = self._tick()

    def on_access(self, device: int, tenant: str) -> None:
        key = (device, tenant)
        self._uses[key] = self._uses.get(key, 0) + 1
        self._last_used[key] = self._tick()

    def on_evict(self, device: int, tenant: str) -> None:
        self._uses.pop((device, tenant), None)
        self._last_used.pop((device, tenant), None)

    def victim(self, device: int, candidates: Iterable[str]) -> str | None:
        pool = list(candidates)
        if not pool:
            return None
        return min(
            pool,
            key=lambda tenant: (
                self._uses.get((device, tenant), 0),
                self._last_used.get((device, tenant), 0),
            ),
        )

    def reset(self) -> None:
        super().reset()
        self._uses.clear()
        self._last_used.clear()


class PinnedTenantPolicy(LRUEvictionPolicy):
    """LRU over unpinned tenants; pinned tenants never lose residency.

    The operator's tool for latency-SLA customers: a pinned tenant's keys,
    once shipped, stay resident no matter how hard the rest of the
    population churns.  Pins come in two granularities:

    * a flat iterable of tenants pins them on *every* device (the
      historical form);
    * a ``{device_id: {tenants}}`` mapping pins each set only on its device
      — the shape an operator uses to reserve one device's key memory for a
      premium tenant while the rest of the cluster still evicts them.

    With nothing pinned the policy degenerates to plain LRU, and when
    *every* eviction candidate is pinned the device simply overcommits (see
    :meth:`KeyResidencyManager.place`).
    """

    name = "pinned"

    def __init__(self, pinned: "Iterable[str] | Mapping[int, Iterable[str]]" = ()) -> None:
        super().__init__()
        if isinstance(pinned, Mapping):
            self.pinned = frozenset()
            self.device_pins = {
                int(device): frozenset(tenants) for device, tenants in pinned.items()
            }
        else:
            self.pinned = frozenset(pinned)
            self.device_pins: dict[int, frozenset[str]] = {}

    def pin(self, tenant: str, device: int | None = None) -> None:
        """Pin one more tenant — everywhere, or on one device only."""
        if device is None:
            self.pinned = self.pinned | {tenant}
        else:
            self.device_pins[device] = self.device_pins.get(device, frozenset()) | {tenant}

    def is_pinned(self, device: int, tenant: str) -> bool:
        """Whether the tenant's keys are protected on this device."""
        return tenant in self.pinned or tenant in self.device_pins.get(device, frozenset())

    def victim(self, device: int, candidates: Iterable[str]) -> str | None:
        unpinned = [tenant for tenant in candidates if not self.is_pinned(device, tenant)]
        return super().victim(device, unpinned)


_KEY_POLICIES: dict[str, Callable[[], KeyEvictionPolicy]] = {
    policy.name: policy
    for policy in (LRUEvictionPolicy, LFUEvictionPolicy, PinnedTenantPolicy)
}


def list_key_policies() -> list[str]:
    """Names of all key-cache eviction policies, sorted."""
    return sorted(_KEY_POLICIES)


def get_key_policy(policy: "str | KeyEvictionPolicy") -> KeyEvictionPolicy:
    """Resolve an eviction-policy name (or pass an instance through).

    Raises :class:`~repro.errors.UnknownKeyPolicyError` — the shared
    did-you-mean shape — for unknown names.
    """
    if isinstance(policy, KeyEvictionPolicy):
        return policy
    try:
        factory = _KEY_POLICIES[policy]
    except KeyError:
        raise UnknownKeyPolicyError(policy, list_key_policies()) from None
    return factory()


@dataclass
class KeyCacheStats:
    """Counters of one serving run's key-residency traffic.

    ``hits`` and ``misses`` count per *(tenant, device)* placement checks;
    ``onboards`` counts free first placements (keys provisioned at tenant
    onboarding, never charged); ``reships`` is the subset of misses where
    the device held this tenant's keys before and evicted them — the cost
    eviction exists to expose.
    """

    hits: int = 0
    misses: int = 0
    onboards: int = 0
    evictions: int = 0
    reships: int = 0
    shipped_bytes: int = 0

    def to_dict(self) -> dict[str, int]:
        """JSON-friendly snapshot (what ``ServeReport`` carries)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "onboards": self.onboards,
            "evictions": self.evictions,
            "reships": self.reships,
            "shipped_bytes": self.shipped_bytes,
        }


@dataclass
class DeviceKeyCache:
    """One device's resident tenant key sets under a byte budget."""

    index: int
    budget_bytes: float | None
    #: Resident tenants mapped to the bytes their key set occupies.
    resident: dict[str, int] = field(default_factory=dict)
    used_bytes: int = 0

    def holds(self, tenant: str) -> bool:
        """Whether the tenant's keys are resident on this device."""
        return tenant in self.resident

    def insert(self, tenant: str, key_bytes: int) -> None:
        """Make a tenant's key set resident (idempotent per tenant)."""
        if tenant in self.resident:
            return
        self.resident[tenant] = key_bytes
        self.used_bytes += key_bytes

    def evict(self, tenant: str) -> int:
        """Drop a tenant's key set; returns the bytes freed."""
        freed = self.resident.pop(tenant)
        self.used_bytes -= freed
        return freed

    @property
    def over_budget(self) -> bool:
        """Whether resident key sets exceed the configured budget."""
        return self.budget_bytes is not None and self.used_bytes > self.budget_bytes


class KeyResidencyManager:
    """Cluster-wide key residency: placement, eviction, (re-)ship pricing.

    One instance per :class:`~repro.serve.cluster.StrixCluster`; every
    placement layout funnels its dispatch targets through :meth:`place`,
    which returns the seconds of BSK/KSK interconnect traffic the dispatch
    must absorb and updates residency, budgets and counters as a side
    effect.
    """

    def __init__(
        self,
        devices: int,
        interconnect: "InterconnectModel",
        budget_bytes: float | None = None,
        policy: "str | KeyEvictionPolicy" = "lru",
    ):
        self.interconnect = interconnect
        self.budget_bytes = budget_bytes
        self.policy = get_key_policy(policy)
        self.devices = [DeviceKeyCache(index, budget_bytes) for index in range(devices)]
        self.stats = KeyCacheStats()
        #: Tenants whose first placement already happened (onboarding).
        self._onboarded: set[str] = set()
        #: Tenants each device ever held — distinguishes a re-ship (evicted,
        #: shipped again) from a first ship to a new device.
        self._ever_held: list[set[str]] = [set() for _ in range(devices)]

    # -- queries -----------------------------------------------------------------

    def resident_devices(self, tenant: str) -> frozenset[int]:
        """Indices of the devices currently holding the tenant's keys."""
        return frozenset(
            cache.index for cache in self.devices if cache.holds(tenant)
        )

    def resident_flags(self, tenant: str, indices: Sequence[int]) -> list[bool]:
        """Residency of ``tenant`` on each of ``indices``, in order.

        The mask the key-affinity sharding policy reads: aligned with the
        ``busy_until`` list the layout passes to
        :meth:`~repro.serve.sharding.ShardingPolicy.select`.
        """
        return [self.devices[index].holds(tenant) for index in indices]

    # -- placement ---------------------------------------------------------------

    def place(
        self,
        tenants: Iterable[str],
        targets: Sequence[int],
        params: TFHEParameters,
    ) -> float:
        """Make every tenant's keys resident on every target device.

        Returns the seconds of key shipping the dispatch is charged.  A
        tenant's very first placement is free — onboarding provisions keys,
        which keeps one-device clusters bit-for-bit with the single-device
        simulator — but still occupies budget; later placements pay one
        key-set transfer per device that lacks the keys (a *re-ship* when
        the device evicted them earlier).

        The in-flight batch's tenants are protected from eviction during
        their own placement, so a device whose budget cannot hold one
        batch's tenant set overcommits instead of thrashing within a single
        dispatch.
        """
        tenant_set = sorted(set(tenants))
        key_bytes = self.interconnect.key_set_bytes(params)
        per_key_s = self.interconnect.key_shipping_s(params)
        shipping = 0.0
        protected = set(tenant_set)
        for tenant in tenant_set:
            onboarding = tenant not in self._onboarded
            if onboarding:
                self._onboarded.add(tenant)
                self.stats.onboards += 1
            ships = 0
            for index in targets:
                cache = self.devices[index]
                if cache.holds(tenant):
                    if not onboarding:
                        self.stats.hits += 1
                    self.policy.on_access(index, tenant)
                    continue
                if not onboarding:
                    ships += 1
                    self.stats.misses += 1
                    self.stats.shipped_bytes += key_bytes
                    if tenant in self._ever_held[index]:
                        self.stats.reships += 1
                cache.insert(tenant, key_bytes)
                self._ever_held[index].add(tenant)
                self.policy.on_insert(index, tenant)
                self._enforce_budget(cache, protected)
            if ships:
                # One multiply per tenant, matching the historical
                # ``len(missing) * per_key_s`` arithmetic to the last bit.
                shipping += ships * per_key_s
        return shipping

    def evict_device(self, index: int) -> list[str]:
        """Reclaim every key set resident on ``index`` (the device died).

        Device death loses HBM contents: each resident tenant is evicted —
        through the policy, counted against the ordinary ``evictions``
        stat — and returned, sorted, so the fault injector can attribute
        the re-shipping those tenants pay when they land again.  Because
        the device stays in ``_ever_held``, any return ship is priced as a
        re-ship by :meth:`place`, exactly once per surviving placement.
        """
        cache = self.devices[index]
        evicted = sorted(cache.resident)
        for tenant in evicted:
            cache.evict(tenant)
            self.policy.on_evict(index, tenant)
            self.stats.evictions += 1
        return evicted

    def _enforce_budget(self, cache: DeviceKeyCache, protected: set[str]) -> None:
        """Evict until ``cache`` fits its budget (or only protected keys remain)."""
        while cache.over_budget:
            candidates = [
                tenant for tenant in cache.resident if tenant not in protected
            ]
            victim = self.policy.victim(cache.index, candidates)
            if victim is None:
                return  # everything left is in use or pinned: overcommit
            cache.evict(victim)
            self.policy.on_evict(cache.index, victim)
            self.stats.evictions += 1

    def reset(self) -> None:
        """Clear residency, counters and policy state between simulations."""
        for cache in self.devices:
            cache.resident.clear()
            cache.used_bytes = 0
        self._onboarded.clear()
        for held in self._ever_held:
            held.clear()
        self.policy.reset()
        self.stats = KeyCacheStats()
