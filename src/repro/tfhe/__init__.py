"""Functional TFHE implementation (the workload Strix accelerates).

This package is a from-scratch, numpy-based implementation of the TFHE
scheme as used by the paper: LWE/GLWE/GGSW ciphertexts over the discretized
torus, gadget decomposition, the external product and CMux, blind rotation,
sample extraction, keyswitching, programmable bootstrapping (PBS), boolean
gate bootstrapping, and programmable look-up tables for integer messages.

The public entry points most users need are:

* :class:`repro.tfhe.context.TFHEContext` — key generation plus high level
  ``encrypt`` / ``decrypt`` / ``programmable_bootstrap`` / gate helpers.
* :func:`repro.tfhe.bootstrap.programmable_bootstrap` — the raw PBS pipeline
  (Algorithm 1 of the paper).
* :func:`repro.tfhe.keyswitch.keyswitch` — Algorithm 2 of the paper.
"""

from repro.tfhe.context import TFHEContext
from repro.tfhe.lwe import LweCiphertext
from repro.tfhe.glwe import GlweCiphertext
from repro.tfhe.ggsw import GgswCiphertext, FourierGgswCiphertext
from repro.tfhe.keys import (
    LweSecretKey,
    GlweSecretKey,
    BootstrappingKey,
    KeySwitchingKey,
)
from repro.tfhe.lut import LookUpTable
from repro.tfhe.gates import GateBootstrapper
from repro.tfhe.integer import EncryptedInteger, RadixIntegerCodec

__all__ = [
    "TFHEContext",
    "LweCiphertext",
    "GlweCiphertext",
    "GgswCiphertext",
    "FourierGgswCiphertext",
    "LweSecretKey",
    "GlweSecretKey",
    "BootstrappingKey",
    "KeySwitchingKey",
    "LookUpTable",
    "GateBootstrapper",
    "EncryptedInteger",
    "RadixIntegerCodec",
]
