"""Published PBS results of the compared platforms (Table V).

The FPGA (YKP, XHEC) and ASIC (Matcha) baselines are closed systems; the
cross-platform comparison only needs their published latency / throughput
numbers, which are encoded here verbatim.  The CPU and GPU rows are also
included so the Table V reproduction can print the paper's reference values
next to the numbers produced by our analytical models and the Strix
simulator.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PublishedResult:
    """One row of the paper's Table V."""

    platform: str
    technology: str
    parameter_set: str
    latency_ms: float | None
    throughput_pbs_per_s: float

    @property
    def has_latency(self) -> bool:
        """Whether the paper reports a latency for this row."""
        return self.latency_ms is not None


#: Every row of Table V, keyed implicitly by (platform, parameter set).
PUBLISHED_PBS_RESULTS: tuple[PublishedResult, ...] = (
    PublishedResult("Concrete", "CPU", "I", 14.00, 70),
    PublishedResult("Concrete", "CPU", "II", 19.00, 52),
    PublishedResult("Concrete", "CPU", "III", 38.00, 26),
    PublishedResult("Concrete", "CPU", "IV", 969.00, 1),
    PublishedResult("NuFHE", "GPU", "I", 37.00, 2000),
    PublishedResult("NuFHE", "GPU", "II", 700.00, 500),
    PublishedResult("YKP", "FPGA", "I", 1.88, 2657),
    PublishedResult("YKP", "FPGA", "III", 4.78, 836),
    PublishedResult("XHEC", "FPGA", "I", None, 2200),
    PublishedResult("XHEC", "FPGA", "II", None, 1800),
    PublishedResult("Matcha", "ASIC", "I", 0.20, 10000),
    PublishedResult("Strix", "ASIC", "I", 0.16, 74696),
    PublishedResult("Strix", "ASIC", "II", 0.23, 39600),
    PublishedResult("Strix", "ASIC", "III", 0.44, 21104),
    PublishedResult("Strix", "ASIC", "IV", 3.31, 2368),
)


def published_results_for(
    platform: str | None = None, parameter_set: str | None = None
) -> list[PublishedResult]:
    """Filter the published Table V rows by platform and/or parameter set."""
    rows = []
    for row in PUBLISHED_PBS_RESULTS:
        if platform is not None and row.platform.lower() != platform.lower():
            continue
        if parameter_set is not None and row.parameter_set != parameter_set:
            continue
        rows.append(row)
    return rows


def published_strix_result(parameter_set: str) -> PublishedResult:
    """The paper's Strix row for one parameter set."""
    rows = published_results_for("Strix", parameter_set)
    if not rows:
        raise KeyError(f"no published Strix result for parameter set {parameter_set!r}")
    return rows[0]
