"""Tests for the extension studies (batch sensitivity, unrolling, energy)."""

from __future__ import annotations

import pytest

from repro.analysis.batch_sensitivity import batch_sensitivity_study
from repro.analysis.energy_comparison import energy_comparison
from repro.analysis.unrolling_ablation import unrolling_ablation
from repro.params import PARAM_SET_I


class TestBatchSensitivity:
    @pytest.fixture(scope="class")
    def study(self):
        return batch_sensitivity_study(PARAM_SET_I)

    def test_strix_throughput_monotone_in_parallelism(self, study):
        throughputs = [point.strix_pbs_per_s for point in study.points]
        assert all(later >= earlier * 0.99 for earlier, later in zip(throughputs, throughputs[1:]))

    def test_strix_beats_gpu_everywhere(self, study):
        for point in study.points:
            assert point.strix_pbs_per_s > point.gpu_pbs_per_s

    def test_core_batching_pays_off_at_scale(self, study):
        large = [p for p in study.points if p.available_ciphertexts >= 64]
        assert all(point.core_batching_gain > 1.1 for point in large)

    def test_saturation_point_within_sweep(self, study):
        counts = [point.available_ciphertexts for point in study.points]
        assert study.saturation_point() in counts

    def test_single_ciphertext_offers_no_batching_gain(self, study):
        single = study.points[0]
        assert single.available_ciphertexts == 1
        assert single.core_batching_gain == pytest.approx(1.0, rel=0.1)

    def test_render(self, study):
        text = study.render()
        assert "core-batching gain" in text and "saturates" in text


class TestUnrollingAblation:
    @pytest.fixture(scope="class")
    def study(self):
        return unrolling_ablation(PARAM_SET_I)

    def test_iterations_shrink_with_unrolling(self, study):
        iterations = [point.iterations for point in study.points]
        assert iterations == sorted(iterations, reverse=True)

    def test_key_size_grows_superlinearly(self, study):
        sizes = [point.bootstrapping_key_mb for point in study.points]
        assert sizes == sorted(sizes)
        assert sizes[-1] > 2 * sizes[0]

    def test_bandwidth_demand_explodes(self, study):
        by_factor = {point.unroll_factor: point for point in study.points}
        assert by_factor[4].required_bandwidth_gbps > 4 * by_factor[1].required_bandwidth_gbps

    def test_baseline_is_compute_bound_and_matches_strix(self, study):
        baseline = study.points[0]
        assert baseline.unroll_factor == 1
        assert not baseline.memory_bound
        assert baseline.throughput_pbs_per_s == pytest.approx(75000, rel=0.05)

    def test_aggressive_unrolling_is_counterproductive(self, study):
        by_factor = {point.unroll_factor: point for point in study.points}
        assert by_factor[4].throughput_pbs_per_s < by_factor[1].throughput_pbs_per_s

    def test_design_choice_confirmed(self, study):
        """The paper's choice of no unrolling is the largest compute-bound point."""
        assert study.best_compute_bound_factor() == 1

    def test_render(self, study):
        assert "unrolling" in study.render().lower()


class TestEnergyComparison:
    @pytest.fixture(scope="class")
    def study(self):
        return energy_comparison()

    def test_covers_all_parameter_sets(self, study):
        assert [row.parameter_set for row in study.rows] == ["I", "II", "III", "IV"]

    def test_strix_most_efficient_everywhere(self, study):
        for row in study.rows:
            assert row.strix_mj < row.gpu_mj < row.cpu_mj

    def test_efficiency_gains_exceed_throughput_gains(self, study):
        """Strix draws ~77 W vs a 280 W GPU, so the energy gain beats the
        ~37x throughput gain."""
        set_i = study.rows[0]
        assert set_i.gain_vs_gpu > 37
        assert set_i.gain_vs_cpu > 1000

    def test_render(self, study):
        text = study.render()
        assert "Energy per PBS" in text and "Strix" in text
