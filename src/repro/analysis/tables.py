"""Table III and Table V reproductions.

Table III — the area/power breakdown of the Strix chip — comes straight from
the area/power model.  Table V — PBS latency and throughput across platforms
and parameter sets — combines the Strix simulator with the analytical CPU /
GPU models and the published FPGA/ASIC reference points, and reports the
headline speedups (Strix vs CPU, GPU and Matcha).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.accelerator import StrixAccelerator
from repro.arch.area_power import ChipCost
from repro.baselines.cpu_model import ConcreteCpuModel
from repro.baselines.gpu_model import NuFheGpuModel
from repro.baselines.reference_platforms import published_results_for
from repro.params import PAPER_PARAMETER_SETS, TFHEParameters


# -- Table III -----------------------------------------------------------------


def area_power_table(accelerator: StrixAccelerator | None = None) -> ChipCost:
    """Compute the Table III chip cost summary."""
    accelerator = accelerator or StrixAccelerator()
    return accelerator.chip_cost()


def render_area_power_table(cost: ChipCost) -> str:
    """Render the Table III rows as text."""
    lines = ["Strix area and power breakdown (TSMC 28 nm model)"]
    lines.append(f"  {'Component':<22} {'Area (mm^2)':>12} {'Power (W)':>10}")
    for name, area, power in cost.as_table():
        lines.append(f"  {name:<22} {area:>12.2f} {power:>10.2f}")
    return "\n".join(lines)


# -- Table V --------------------------------------------------------------------


@dataclass(frozen=True)
class PbsComparisonRow:
    """One row of the Table V reproduction."""

    platform: str
    technology: str
    parameter_set: str
    latency_ms: float | None
    throughput_pbs_per_s: float
    source: str  # "model" or "published"


@dataclass(frozen=True)
class PbsComparison:
    """The full Table V reproduction plus the headline speedups."""

    rows: list[PbsComparisonRow]

    def strix_row(self, parameter_set: str) -> PbsComparisonRow:
        """The modelled Strix row for a parameter set."""
        for row in self.rows:
            if row.platform == "Strix" and row.parameter_set == parameter_set and row.source == "model":
                return row
        raise KeyError(f"no modelled Strix row for set {parameter_set!r}")

    def speedup_over(self, platform: str, parameter_set: str = "I") -> float:
        """Strix throughput gain over a platform for one parameter set."""
        strix = self.strix_row(parameter_set)
        candidates = [
            row
            for row in self.rows
            if row.platform.lower() == platform.lower()
            and row.parameter_set == parameter_set
        ]
        if not candidates:
            raise KeyError(f"no {platform!r} row for parameter set {parameter_set!r}")
        baseline = candidates[0]
        return strix.throughput_pbs_per_s / baseline.throughput_pbs_per_s

    def render(self) -> str:
        """Render the table as text."""
        lines = ["PBS latency and throughput across platforms (Table V reproduction)"]
        lines.append(
            f"  {'Platform':<10} {'Tech':<5} {'Set':<4} {'Latency (ms)':>13} "
            f"{'Throughput (PBS/s)':>20} {'Source':>10}"
        )
        for row in self.rows:
            latency = f"{row.latency_ms:.2f}" if row.latency_ms is not None else "-"
            lines.append(
                f"  {row.platform:<10} {row.technology:<5} {row.parameter_set:<4} "
                f"{latency:>13} {row.throughput_pbs_per_s:>20,.0f} {row.source:>10}"
            )
        lines.append("")
        lines.append(
            f"  Strix vs CPU (set I):    {self.speedup_over('Concrete'):8.0f}x throughput"
        )
        lines.append(
            f"  Strix vs GPU (set I):    {self.speedup_over('NuFHE'):8.0f}x throughput"
        )
        lines.append(
            f"  Strix vs Matcha (set I): {self.speedup_over('Matcha'):8.1f}x throughput"
        )
        return "\n".join(lines)


def pbs_comparison_table(
    accelerator: StrixAccelerator | None = None,
    parameter_sets: dict[str, TFHEParameters] | None = None,
    include_published: bool = True,
) -> PbsComparison:
    """Build the Table V reproduction.

    CPU and GPU rows come from the analytical models (single-core Concrete
    and 72-SM NuFHE respectively); FPGA and ASIC baselines are published
    reference points; Strix rows come from the architecture model.
    """
    accelerator = accelerator or StrixAccelerator()
    parameter_sets = parameter_sets or PAPER_PARAMETER_SETS
    cpu = ConcreteCpuModel(threads=1)
    gpu = NuFheGpuModel()

    rows: list[PbsComparisonRow] = []
    for name, params in parameter_sets.items():
        rows.append(
            PbsComparisonRow(
                platform="Concrete",
                technology="CPU",
                parameter_set=name,
                latency_ms=cpu.pbs_latency_ms(params),
                throughput_pbs_per_s=cpu.pbs_throughput(params),
                source="model",
            )
        )
    for name, params in parameter_sets.items():
        if params.N <= 2048:  # NuFHE only supports moderate polynomial degrees
            rows.append(
                PbsComparisonRow(
                    platform="NuFHE",
                    technology="GPU",
                    parameter_set=name,
                    latency_ms=gpu.pbs_latency_ms(params),
                    throughput_pbs_per_s=gpu.pbs_throughput(params),
                    source="model",
                )
            )
    if include_published:
        for row in published_results_for():
            if row.platform in ("Concrete", "NuFHE", "Strix"):
                continue
            rows.append(
                PbsComparisonRow(
                    platform=row.platform,
                    technology=row.technology,
                    parameter_set=row.parameter_set,
                    latency_ms=row.latency_ms,
                    throughput_pbs_per_s=row.throughput_pbs_per_s,
                    source="published",
                )
            )
    for name, params in parameter_sets.items():
        performance = accelerator.pbs_performance(params)
        rows.append(
            PbsComparisonRow(
                platform="Strix",
                technology="ASIC",
                parameter_set=name,
                latency_ms=performance.latency_ms,
                throughput_pbs_per_s=performance.throughput_pbs_per_s,
                source="model",
            )
        )
    return PbsComparison(rows=rows)
