"""``"strix-cluster"``: the sharded cluster as a runtime backend.

Registers the multi-device cluster in the :mod:`repro.runtime` registry so
the PR 1 facade targets it transparently::

    from repro import run

    result = run("NN-20", backend="strix-cluster", devices=4)
    deep = run("NN-100", backend="strix-cluster", devices=4, layout="pipeline")

``devices`` / ``policy`` / ``layout`` / ``cost_model`` ride along as run
options (every other backend ignores them), so the same call site scales
from one chip to a rack and from data-parallel sharding to stage-per-device
pipelining.
"""

from __future__ import annotations

from typing import Any

from repro.arch.config import StrixClusterConfig, StrixConfig
from repro.params import TFHEParameters
from repro.runtime.backend import Backend, register_backend
from repro.runtime.result import RunResult
from repro.runtime.session import Session
from repro.runtime.workload import WorkloadLike
from repro.sched.cost import CostModel
from repro.sched.layouts import PlacementLayout
from repro.serve.cluster import CLUSTER_BACKEND_NAME, StrixCluster
from repro.serve.sharding import ShardingPolicy


class StrixClusterBackend(Backend):
    """Executes workloads sharded across a simulated Strix cluster."""

    name = CLUSTER_BACKEND_NAME

    def __init__(
        self,
        devices: int = 4,
        policy: str | ShardingPolicy = "round-robin",
        config: StrixClusterConfig | None = None,
        device_config: StrixConfig | None = None,
        layout: str | PlacementLayout = "data-parallel",
        cost_model: str | CostModel = "analytical",
        cost_cache_capacity: int | None = None,
    ):
        # Remembered so per-call reshapes default to the configured value
        # (an explicit 0 here must not be silently re-enabled by a
        # devices=/policy= override later).
        self.cost_cache_capacity = cost_cache_capacity
        self.cluster = StrixCluster(
            devices=devices,
            policy=policy,
            config=config,
            device_config=device_config,
            layout=layout,
            cost_model=cost_model,
            cost_cache_capacity=cost_cache_capacity,
        )

    def run(
        self,
        workload: WorkloadLike,
        *,
        params: TFHEParameters | str | None = None,
        session: Session | None = None,
        inputs: Any = None,
        instances: int = 1,
        devices: int | None = None,
        policy: str | ShardingPolicy | None = None,
        layout: str | PlacementLayout | None = None,
        cost_model: str | CostModel | None = None,
        cost_cache_capacity: int | None = None,
        **options: Any,
    ) -> RunResult:
        """Shard ``workload`` across the cluster's devices.

        ``devices`` / ``policy`` / ``layout`` / ``cost_model`` /
        ``cost_cache_capacity`` given at the call site re-shape the cluster
        for this run (the registry instantiates the backend with defaults,
        so per-call overrides are how
        ``run(..., devices=4, layout="pipeline")`` works); ``inputs``
        is ignored — the cluster is a performance model, use the
        ``"reference"`` backend for functional execution.
        """
        cluster = self.cluster
        reshaped = (
            (devices is not None and devices != len(cluster.devices))
            or policy is not None
            or layout is not None
            or cost_model is not None
            or cost_cache_capacity is not None
        )
        if reshaped:
            resolved_devices = devices if devices is not None else len(cluster.devices)
            cluster = StrixCluster(
                devices=resolved_devices,
                # Pass the instances through (not their registry names) so
                # custom policy/layout/cost-model objects survive per-call
                # reshaping.  An already-wrapped ScheduleCache instance is
                # reused as-is (the cluster never double-wraps).
                policy=policy if policy is not None else cluster.policy,
                config=cluster.config.with_devices(resolved_devices),
                layout=layout if layout is not None else cluster.layout,
                cost_model=(
                    cost_model if cost_model is not None else cluster.cost_model
                ),
                cost_cache_capacity=(
                    cost_cache_capacity
                    if cost_cache_capacity is not None
                    else self.cost_cache_capacity
                ),
            )
        return cluster.run(workload, params=params, instances=instances)


register_backend(StrixClusterBackend.name, StrixClusterBackend)
