"""Client libraries for the serving front-end: async-first, with a sync twin.

:class:`AsyncNetClient` is the real client: one connection, a background
reader task, and any number of in-flight submissions multiplexed by request
id.  ``await client.submit(...)`` is the closed-loop call — it returns the
:class:`~repro.serve.request.RequestOutcome` when the server's ``RESULT``
frame lands and records the round-trip time of every such call.
``submit_nowait`` is the streaming variant trace replay needs: it returns a
future immediately so a whole trace can be pushed down the pipe before the
first result comes back.

:class:`NetClient` is the blocking wrapper for scripts and docs: plain
sockets, one outstanding request at a time, no event loop required.

Typed ``ERROR`` replies surface as :class:`NetError` — carrying the decoded
:class:`~repro.net.protocol.ErrorReply` — never as silently dropped
connections.
"""

from __future__ import annotations

import asyncio
import socket
import time
from typing import Any

from repro.net import codec, protocol
from repro.net.codec import ResultMessage
from repro.net.protocol import (
    PROTOCOL_VERSION,
    ErrorReply,
    Frame,
    FrameDecoder,
    MessageType,
    Pong,
    ProtocolError,
)
from repro.serve.request import Request, RequestOutcome


class NetError(Exception):
    """A typed ``ERROR`` reply from the server."""

    def __init__(self, reply: ErrorReply):
        super().__init__(f"{reply.code_name}: {reply.message}")
        self.reply = reply


class AsyncNetClient:
    """One connection to a :class:`~repro.net.server.NetServer`.

    Build with :meth:`connect`, which performs the HELLO/WELCOME version
    negotiation before returning.  Every ``submit`` / ``ping`` round trip
    is timed; :attr:`rtts_s` and :attr:`ping_rtts_s` accumulate the
    samples the load generator turns into wire-level percentiles.
    """

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer
        self._decoder = FrameDecoder()
        self._write_lock = asyncio.Lock()
        self._next_id = 0
        self._next_nonce = 0
        #: request id -> (submitted request, send time, outcome future)
        self._pending: dict[int, tuple[Request, float, asyncio.Future]] = {}
        self._pings: dict[int, tuple[float, asyncio.Future]] = {}
        self._hello: asyncio.Future | None = None
        self._drained: asyncio.Future | None = None
        self._stats: asyncio.Future | None = None
        self._reader_task: asyncio.Task | None = None
        self._closed = False
        self.negotiated_version: int | None = None
        #: Round-trip seconds of every awaited ``submit`` call.
        self.rtts_s: list[float] = []
        #: Round-trip seconds of every ``ping`` call.
        self.ping_rtts_s: list[float] = []
        self.frames_sent = 0
        self.frames_received = 0
        self.bytes_sent = 0
        self.bytes_received = 0

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        versions: tuple[int, ...] = (PROTOCOL_VERSION,),
    ) -> "AsyncNetClient":
        """Open a connection and negotiate a protocol version."""
        reader, writer = await asyncio.open_connection(host, port)
        client = cls(reader, writer)
        client._reader_task = asyncio.get_running_loop().create_task(client._read_loop())
        loop = asyncio.get_running_loop()
        client._hello = loop.create_future()
        await client._send(MessageType.HELLO, protocol.encode_hello(versions))
        client.negotiated_version = await client._hello
        return client

    # -- requests ----------------------------------------------------------------

    async def submit(
        self,
        tenant: str,
        kind: str,
        items: int = 1,
        model: str | None = None,
        ciphertexts: Any = None,
    ) -> RequestOutcome:
        """Submit live work and wait for its outcome (round trip is timed)."""
        self._next_id += 1
        request = Request.make(self._next_id, tenant, kind, items, model=model)
        payload = codec.encode_submit(
            request.request_id,
            tenant,
            request.kind.value,
            items,
            model=model,
            ciphertexts=ciphertexts,
        )
        future = await self._send_submit(request, payload)
        return await future

    async def submit_request(self, request: Request) -> RequestOutcome:
        """Submit an existing request (timestamps included) and await it."""
        future = self.submit_nowait(request)
        return await future

    def submit_nowait(self, request: Request) -> asyncio.Future:
        """Send a trace request without waiting; returns the outcome future.

        This is the replay primitive: the whole trace streams down the
        connection in arrival order while results flow back as the server's
        batcher releases them.
        """
        payload = codec.submit_from_request(request, with_arrival=True)
        future = self._register(request)
        data = protocol.encode_frame(MessageType.SUBMIT, payload)
        self._write_raw(data)
        return future

    async def _send_submit(self, request: Request, payload: bytes) -> asyncio.Future:
        future = self._register(request)
        await self._send(MessageType.SUBMIT, payload)
        return future

    def _register(self, request: Request) -> asyncio.Future:
        if self._closed:
            raise ConnectionError("the client is closed")
        if request.request_id in self._pending:
            raise ValueError(f"request id {request.request_id} is already in flight")
        self._next_id = max(self._next_id, request.request_id)
        future = asyncio.get_running_loop().create_future()
        self._pending[request.request_id] = (request, time.perf_counter(), future)
        return future

    async def ping(self) -> Pong:
        """Round-trip latency echo; the RTT lands in :attr:`ping_rtts_s`."""
        self._next_nonce += 1
        nonce = self._next_nonce
        sent_at = time.perf_counter()
        future = asyncio.get_running_loop().create_future()
        self._pings[nonce] = (sent_at, future)
        await self._send(MessageType.PING, protocol.encode_ping(nonce, sent_at))
        return await future

    async def drain(self) -> None:
        """Ask the server to flush everything batched; returns on ``DRAINED``."""
        self._drained = asyncio.get_running_loop().create_future()
        await self._send(MessageType.DRAIN, b"")
        await self._drained

    async def stats(self) -> dict[str, float]:
        """Scrape the server's metrics registry over the wire.

        Returns the flat ``{name: value}`` snapshot the server's
        :meth:`~repro.serve.server.Server.metrics` produced when the
        ``STATS`` frame was handled.
        """
        self._stats = asyncio.get_running_loop().create_future()
        await self._send(MessageType.STATS, b"")
        return await self._stats

    async def close(self) -> None:
        """Close the connection and stop the reader task."""
        if self._closed:
            return
        self._closed = True
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except asyncio.CancelledError:
                pass
        self._fail_pending(ConnectionError("connection closed"))

    async def __aenter__(self) -> "AsyncNetClient":
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.close()

    # -- transport ---------------------------------------------------------------

    async def _send(self, msg_type: MessageType, payload: bytes) -> None:
        data = protocol.encode_frame(msg_type, payload)
        async with self._write_lock:
            self._write_raw(data)
            await self._writer.drain()

    def _write_raw(self, data: bytes) -> None:
        if self._closed:
            raise ConnectionError("the client is closed")
        self._writer.write(data)
        self.frames_sent += 1
        self.bytes_sent += len(data)

    async def _read_loop(self) -> None:
        try:
            while True:
                data = await self._reader.read(64 * 1024)
                if not data:
                    self._fail_pending(ConnectionError("server closed the connection"))
                    return
                self.bytes_received += len(data)
                for event in self._decoder.feed(data):
                    if isinstance(event, ProtocolError):
                        self._fail_pending(event)
                        if event.fatal:
                            return
                    else:
                        self.frames_received += 1
                        self._handle_frame(event)
        except (ConnectionResetError, BrokenPipeError):
            self._fail_pending(ConnectionError("connection lost"))
        except asyncio.CancelledError:
            raise

    def _handle_frame(self, frame: Frame) -> None:
        msg_type = frame.msg_type
        if msg_type == MessageType.RESULT:
            self._handle_result(codec.decode_result(frame.payload))
        elif msg_type == MessageType.ERROR:
            self._handle_error(protocol.decode_error(frame.payload))
        elif msg_type == MessageType.WELCOME:
            if self._hello is not None and not self._hello.done():
                self._hello.set_result(protocol.decode_welcome(frame.payload))
        elif msg_type == MessageType.PONG:
            pong = protocol.decode_pong(frame.payload)
            entry = self._pings.pop(pong.nonce, None)
            if entry is not None:
                sent_at, future = entry
                self.ping_rtts_s.append(time.perf_counter() - sent_at)
                if not future.done():
                    future.set_result(pong)
        elif msg_type == MessageType.DRAINED:
            if self._drained is not None and not self._drained.done():
                self._drained.set_result(None)
        elif msg_type == MessageType.STATS_REPLY:
            if self._stats is not None and not self._stats.done():
                self._stats.set_result(protocol.decode_stats(frame.payload))

    def _handle_result(self, message: ResultMessage) -> None:
        entry = self._pending.pop(message.request_id, None)
        if entry is None:
            return
        request, sent_at, future = entry
        self.rtts_s.append(time.perf_counter() - sent_at)
        if not future.done():
            future.set_result(message.to_outcome(request))

    def _handle_error(self, reply: ErrorReply) -> None:
        error = NetError(reply)
        if reply.request_id:
            entry = self._pending.pop(reply.request_id, None)
            if entry is not None:
                _, _, future = entry
                if not future.done():
                    future.set_exception(error)
                return
        if self._hello is not None and not self._hello.done():
            self._hello.set_exception(error)
            return
        self._fail_pending(error)

    def _fail_pending(self, error: Exception) -> None:
        for _, _, future in self._pending.values():
            if not future.done():
                future.set_exception(error)
        self._pending.clear()
        for _, future in self._pings.values():
            if not future.done():
                future.set_exception(error)
        self._pings.clear()
        for waiter in (self._hello, self._drained, self._stats):
            if waiter is not None and not waiter.done():
                waiter.set_exception(error)


class NetClient:
    """Blocking client: plain sockets, one outstanding request at a time.

    The simple face of the protocol for scripts and documentation —
    ``connect``, ``submit``, ``ping``, ``close`` — with the same typed
    :class:`NetError` failures as the async client.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 10.0,
        versions: tuple[int, ...] = (PROTOCOL_VERSION,),
    ):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._decoder = FrameDecoder()
        self._frames: list[Frame] = []
        self._next_id = 0
        self._next_nonce = 0
        self._closed = False
        #: Round-trip seconds of every ``submit`` and ``ping`` call.
        self.rtts_s: list[float] = []
        self._send(MessageType.HELLO, protocol.encode_hello(versions))
        welcome = self._expect(MessageType.WELCOME)
        self.negotiated_version = protocol.decode_welcome(welcome.payload)

    def submit(
        self,
        tenant: str,
        kind: str,
        items: int = 1,
        model: str | None = None,
        ciphertexts: Any = None,
    ) -> RequestOutcome:
        """Submit live work and block until its outcome arrives."""
        self._next_id += 1
        request = Request.make(self._next_id, tenant, kind, items, model=model)
        payload = codec.encode_submit(
            request.request_id, tenant, request.kind.value, items,
            model=model, ciphertexts=ciphertexts,
        )
        started = time.perf_counter()
        self._send(MessageType.SUBMIT, payload)
        frame = self._expect(MessageType.RESULT)
        self.rtts_s.append(time.perf_counter() - started)
        return codec.decode_result(frame.payload).to_outcome(request)

    def ping(self) -> float:
        """One latency echo; returns the round-trip time in seconds."""
        self._next_nonce += 1
        started = time.perf_counter()
        self._send(MessageType.PING, protocol.encode_ping(self._next_nonce, started))
        self._expect(MessageType.PONG)
        rtt = time.perf_counter() - started
        self.rtts_s.append(rtt)
        return rtt

    def stats(self) -> dict[str, float]:
        """Scrape the server's metrics registry over the wire."""
        self._send(MessageType.STATS, b"")
        frame = self._expect(MessageType.STATS_REPLY)
        return protocol.decode_stats(frame.payload)

    def close(self) -> None:
        """Close the socket."""
        if not self._closed:
            self._closed = True
            self._sock.close()

    def __enter__(self) -> "NetClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- transport ---------------------------------------------------------------

    def _send(self, msg_type: MessageType, payload: bytes) -> None:
        self._sock.sendall(protocol.encode_frame(msg_type, payload))

    def _expect(self, msg_type: MessageType) -> Frame:
        while True:
            frame = self._next_frame()
            if frame.msg_type == MessageType.ERROR:
                raise NetError(protocol.decode_error(frame.payload))
            if frame.msg_type == msg_type:
                return frame
            # Any other frame (e.g. a stray PONG) is skipped.

    def _next_frame(self) -> Frame:
        while True:
            if self._frames:
                return self._frames.pop(0)
            data = self._sock.recv(64 * 1024)
            if not data:
                raise ConnectionError("server closed the connection")
            for event in self._decoder.feed(data):
                if isinstance(event, ProtocolError):
                    raise event
                self._frames.append(event)
