"""Tests for repro.obs: span tracing, the metrics registry, and the exporters.

Four layers of coverage:

* metric primitives — counter/gauge/histogram semantics, name validation,
  bucket bookkeeping, the registry's get-or-create and did-you-mean error;
* the tracer — every replayed request gets a complete span (enqueue →
  admit → execute → complete), and tracing is *free of observable effect*:
  the :class:`~repro.serve.server.ServeReport` is byte-identical with the
  tracer on or off, and two traced runs of the same trace produce
  bit-for-bit identical span timelines;
* exporters — JSONL round-trips through ``json.loads``, the Chrome
  ``trace_event`` dump covers every request's full lifecycle, Prometheus
  text exposition renders well-formed ``# HELP``/``# TYPE``/sample lines;
* the wire — a ``STATS`` scrape over loopback TCP returns exactly the
  snapshot the server's registry held at scrape time.
"""

from __future__ import annotations

import asyncio
import json
import math
import threading

import pytest

from repro.apps.traffic import bursty_trace, steady_trace
from repro.errors import UnknownMetricError
from repro.net import protocol
from repro.net.client import AsyncNetClient, NetClient
from repro.net.loadgen import replay_trace_async
from repro.net.protocol import MessageType
from repro.net.server import NetServer
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Tracer,
    chrome_trace,
    spans_to_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.serve.metrics import ServeSnapshot
from repro.serve.server import Server


# -- metric primitives --------------------------------------------------------------


class TestInstruments:
    def test_counter_accumulates_and_rejects_negatives(self):
        counter = Counter("requests_total", "Requests")
        counter.inc()
        counter.inc(3.5)
        assert counter.value == 4.5
        with pytest.raises(ValueError, match="cannot decrease"):
            counter.inc(-1.0)

    def test_gauge_moves_both_ways(self):
        gauge = Gauge("depth", "Queue depth")
        gauge.set(5.0)
        gauge.inc(2.0)
        gauge.dec(4.0)
        assert gauge.value == 3.0

    def test_metric_names_are_validated(self):
        with pytest.raises(ValueError, match="name"):
            Counter("bad name", "spaces are not allowed")
        with pytest.raises(ValueError, match="name"):
            Gauge("", "empty")

    def test_histogram_buckets_are_cumulative(self):
        hist = Histogram("latency", "Latency", buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.05, 0.05, 0.5, 5.0):
            hist.observe(value)
        assert hist.count == 5
        assert hist.sum == pytest.approx(5.605)
        cumulative = hist.cumulative_buckets()
        assert [count for _, count in cumulative] == [1, 3, 4, 5]
        assert cumulative[-1][0] == math.inf

    def test_histogram_bounds_must_increase(self):
        with pytest.raises(ValueError, match="increasing"):
            Histogram("h", "bad bounds", buckets=(1.0, 1.0))


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        first = registry.counter("hits", "Cache hits")
        second = registry.counter("hits", "Cache hits")
        assert first is second

    def test_kind_mismatch_is_rejected(self):
        registry = MetricsRegistry()
        registry.counter("hits", "Cache hits")
        with pytest.raises(ValueError, match="hits"):
            registry.gauge("hits", "not a counter")

    def test_unknown_metric_suggests_a_name(self):
        registry = MetricsRegistry()
        registry.counter("requests_total", "Requests")
        with pytest.raises(UnknownMetricError) as excinfo:
            registry.get("request_total")
        assert "requests_total" in str(excinfo.value)
        assert excinfo.value.kind == "metric"

    def test_views_expand_in_collect(self):
        registry = MetricsRegistry()
        registry.counter("hits", "Cache hits").inc(2)
        registry.register_view("cache", lambda: {"size": 7.0}, "Cache view")
        collected = registry.collect()
        assert collected["hits"] == 2.0
        assert collected["cache_size"] == 7.0
        assert list(collected) == sorted(collected)

    def test_view_reregistration_replaces(self):
        registry = MetricsRegistry()
        registry.register_view("wire", lambda: {"frames": 1.0}, "v1")
        registry.register_view("wire", lambda: {"frames": 9.0}, "v2")
        assert registry.collect()["wire_frames"] == 9.0

    def test_prometheus_exposition_is_well_formed(self):
        registry = MetricsRegistry()
        registry.counter("requests_total", "Requests served").inc(3)
        hist = registry.histogram("latency_seconds", "Latency", buckets=(0.01, 0.1))
        hist.observe(0.05)
        text = registry.render_prometheus(namespace="repro")
        assert "# HELP repro_requests_total Requests served" in text
        assert "# TYPE repro_requests_total counter" in text
        assert "repro_requests_total 3" in text
        assert 'repro_latency_seconds_bucket{le="0.01"} 0' in text
        assert 'repro_latency_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_latency_seconds_count 1" in text
        assert text.endswith("\n")


# -- the tracer through a replayed trace --------------------------------------------


def _traced_simulation(trace, **server_options):
    server = Server(**server_options)
    tracer = server.enable_tracing()
    report = server.simulate(list(trace), label="traced")
    return server, tracer, report


class TestTracer:
    def test_every_request_gets_a_complete_span(self):
        trace = bursty_trace(1200.0, 0.15, seed=3, tenants=4)
        _, tracer, report = _traced_simulation(trace, devices=3, cost_model="event")
        spans = tracer.spans()
        assert len(spans) == len(trace) == len(report.outcomes)
        for span in spans:
            assert span.admit_s is not None and span.batch_id is not None
            assert span.execute_s is not None and span.complete_s is not None
            assert span.enqueue_s <= span.admit_s <= span.execute_s <= span.complete_s
            assert span.device is not None and span.flush_reason
            assert span.queue_s >= 0.0 and span.service_s > 0.0

    def test_report_is_byte_identical_with_tracing_on_or_off(self):
        trace = steady_trace(rate_rps=900.0, duration_s=0.1, seed=7, tenants=3)
        plain = Server(devices=2).simulate(list(trace), label="traced")
        _, _, traced = _traced_simulation(trace, devices=2)
        assert json.dumps(traced.to_dict(), sort_keys=True) == json.dumps(
            plain.to_dict(), sort_keys=True
        )
        assert traced.outcomes == plain.outcomes

    def test_span_timelines_are_deterministic_across_runs(self):
        trace = bursty_trace(1500.0, 0.12, seed=21, tenants=5)
        _, first, _ = _traced_simulation(trace, devices=4, cost_model="event")
        _, second, _ = _traced_simulation(trace, devices=4, cost_model="event")
        timelines = [[span.to_dict() for span in t.spans()] for t in (first, second)]
        assert timelines[0] == timelines[1]

    def test_external_tracer_can_be_supplied_and_disabled(self):
        trace = steady_trace(rate_rps=400.0, duration_s=0.05, seed=2)
        server = Server(devices=1)
        tracer = Tracer()
        assert server.enable_tracing(tracer) is tracer
        server.simulate(list(trace), label="external")
        assert len(tracer) == len(trace)
        server.disable_tracing()
        assert server.tracer is None
        server.simulate(list(trace), label="untraced")
        assert len(tracer) == len(trace)  # no longer attached: nothing new

    def test_enqueue_is_idempotent_and_clear_resets(self):
        trace = steady_trace(rate_rps=400.0, duration_s=0.05, seed=1)
        _, tracer, _ = _traced_simulation(trace, devices=1)
        assert len(tracer) == len(trace)
        tracer.clear()
        assert len(tracer) == 0 and tracer.spans() == []

    def test_server_registry_counts_the_simulation(self):
        trace = steady_trace(rate_rps=700.0, duration_s=0.08, seed=4, tenants=2)
        server, _, report = _traced_simulation(trace, devices=2)
        collected = server.metrics()
        assert collected["serve_requests_total"] == float(len(report.outcomes))
        assert collected["serve_latency_seconds_count"] == float(len(report.outcomes))
        assert collected["serve_queue_total_enqueued"] >= float(len(trace))
        assert "serve_key_cache_hits" in collected


# -- exporters ----------------------------------------------------------------------


class TestExporters:
    def _spans(self):
        trace = bursty_trace(1000.0, 0.1, seed=9, tenants=3)
        _, tracer, _ = _traced_simulation(trace, devices=2, cost_model="event")
        return tracer.spans()

    def test_jsonl_round_trips(self, tmp_path):
        spans = self._spans()
        lines = spans_to_jsonl(spans).splitlines()
        assert len(lines) == len(spans)
        for line, span in zip(lines, spans):
            record = json.loads(line)
            assert record["request_id"] == span.request_id
            assert record["tenant"] == span.tenant
        path = tmp_path / "spans.jsonl"
        assert write_jsonl(spans, path) == len(spans)
        assert path.read_text().splitlines() == lines

    def test_chrome_trace_covers_every_lifecycle(self, tmp_path):
        spans = self._spans()
        document = chrome_trace(spans)
        events = document["traceEvents"]
        slices = [e for e in events if e.get("ph") == "X"]
        for span in spans:
            named = [
                e["name"]
                for e in slices
                if e["pid"] == 0 and e["tid"] == span.request_id
            ]
            assert {"queue", "wait", "execute"} <= set(named)
        device_lanes = {e["tid"] for e in slices if e["pid"] == 1}
        assert device_lanes  # at least one device lane materialized
        for event in slices:
            assert event["dur"] >= 0 and event["ts"] >= 0
        path = tmp_path / "trace.json"
        assert write_chrome_trace(spans, path) == len(events)
        assert json.loads(path.read_text())["traceEvents"] == events


# -- live snapshots -----------------------------------------------------------------


class TestSnapshots:
    def test_replay_snapshot_reports_progress(self):
        trace = sorted(
            steady_trace(rate_rps=800.0, duration_s=0.1, seed=6, tenants=3),
            key=lambda r: r.arrival_s,
        )
        server = Server(devices=2)
        server.replay_begin()
        resolved = 0
        for request in trace[: len(trace) // 2]:
            resolved += len(server.replay_offer(request))
        snapshot = server.snapshot()
        assert isinstance(snapshot, ServeSnapshot)
        assert snapshot.requests_done == resolved
        assert snapshot.queue_depth == len(trace) // 2 - resolved
        assert set(snapshot.tenant_p99_s) <= {r.tenant for r in trace}
        as_dict = snapshot.to_dict()
        assert as_dict["requests_done"] == resolved
        assert isinstance(as_dict["device_utilization"], dict)
        report = server.replay_finish(label="snap")
        final = server.snapshot()  # replay closed: the collector is gone
        assert len(report.outcomes) == len(trace) // 2
        assert final.requests_done == 0 and final.queue_depth == 0

    def test_watch_requires_async_serving(self):
        server = Server(devices=1)

        async def scenario():
            stream = server.watch(interval_s=0.01)
            with pytest.raises(RuntimeError, match="async"):
                await stream.__anext__()

        asyncio.run(scenario())

    def test_watch_yields_snapshots_while_serving(self):
        async def scenario():
            seen = []
            async with Server(devices=2) as server:

                async def observe():
                    async for snapshot in server.watch(interval_s=0.005):
                        seen.append(snapshot)
                        if len(seen) >= 2:
                            break

                watcher = asyncio.get_running_loop().create_task(observe())
                jobs = [server.submit_async("t0", "gate", 4) for _ in range(6)]
                await asyncio.gather(*jobs)
                await watcher
            return seen

        snapshots = asyncio.run(scenario())
        assert len(snapshots) >= 2
        assert all(isinstance(s, ServeSnapshot) for s in snapshots)
        assert snapshots[-1].t_s >= snapshots[0].t_s


# -- the wire -----------------------------------------------------------------------


class _ThreadedServer:
    """A NetServer on its own thread+loop, for the blocking-client test."""

    def __init__(self, **options):
        self._options = options
        self._loop = asyncio.new_event_loop()
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self.address = None
        self.net = None

    def _run(self):
        asyncio.set_event_loop(self._loop)
        self._stop = self._loop.create_future()

        async def main():
            async with NetServer(**self._options) as net:
                self.net = net
                self.address = net.address
                self._ready.set()
                await self._stop

        self._loop.run_until_complete(main())
        self._loop.close()

    def __enter__(self):
        self._thread.start()
        assert self._ready.wait(5.0), "server did not start"
        return self

    def __exit__(self, *exc_info):
        self._loop.call_soon_threadsafe(
            lambda: self._stop.done() or self._stop.set_result(None)
        )
        self._thread.join(5.0)


class TestStatsFrame:
    def test_stats_payload_round_trips_canonically(self):
        snapshot = {"serve_requests_total": 3.0, "wire_frames_sent": 12.0}
        payload = protocol.encode_stats(snapshot)
        assert payload == protocol.encode_stats(dict(reversed(snapshot.items())))
        assert protocol.decode_stats(payload) == snapshot
        with pytest.raises(ValueError):
            protocol.decode_stats(b"not json")
        with pytest.raises(ValueError):
            protocol.decode_stats(b"[1, 2]")

    def test_stats_message_types_are_registered(self):
        assert MessageType.STATS == 10 and MessageType.STATS_REPLY == 11

    def test_scrape_matches_registry_exactly_over_loopback(self):
        trace = steady_trace(rate_rps=600.0, duration_s=0.1, seed=11, tenants=2)

        async def scenario():
            server = Server(devices=2, cost_model="event")
            net = NetServer(server, mode="replay")
            await net.start()
            host, port = net.address
            async with await AsyncNetClient.connect(host, port) as client:
                futures = [
                    client.submit_nowait(request)
                    for request in sorted(trace, key=lambda r: r.arrival_s)
                ]
                await client.drain()
                outcomes = await asyncio.gather(*futures)
                scraped = await client.stats()
            await net.aclose()
            return scraped, net.last_stats, len(outcomes)

        scraped, at_scrape_time, done = asyncio.run(scenario())
        assert scraped == at_scrape_time
        assert scraped["serve_requests_total"] == float(done) == float(len(trace))
        assert scraped["wire_frames_received"] == float(len(trace) + 3)
        assert any(key.startswith("serve_key_cache_") for key in scraped)

    def test_replayed_wire_spans_close_at_completion_time(self):
        trace = steady_trace(rate_rps=500.0, duration_s=0.08, seed=13, tenants=2)

        async def scenario():
            server = Server(devices=2)
            tracer = server.enable_tracing()
            await replay_trace_async(trace, server=server)
            return tracer.spans()

        spans = asyncio.run(scenario())
        assert len(spans) == len(trace)
        for span in spans:
            assert span.reply_s == span.complete_s  # simulated clock, not wall

    def test_blocking_client_scrapes_stats(self):
        with _ThreadedServer(mode="live", devices=1, params="I") as served:
            host, port = served.address
            with NetClient(host, port) as client:
                client.submit("tenant0", "gate", 2)
                stats = client.stats()
        assert stats["serve_requests_total"] == 1.0
        assert stats["wire_connections"] == 1.0
