"""Deterministic fault injection and degraded-mode serving (Seam 7).

Production clusters lose devices mid-trace; this package makes the serving
tier model it without giving up a single bit of reproducibility:

* :class:`FaultSchedule` — an immutable, time-sorted plan of
  :class:`FaultEvent`\\ s (device death, slow-device thermal throttle,
  interconnect partition), every availability question a pure function of
  time;
* :class:`FaultInjector` — the per-cluster resolver: excludes unreachable
  devices from placement, reclaims a dead device's key memory through
  :class:`~repro.arch.key_cache.KeyResidencyManager`, replays (or drops)
  batches whose device dies under them per ``on_death="retry"|"drop"``,
  throttles service on slowed devices, and accounts the impact the
  :class:`~repro.serve.server.ServeReport` ``availability`` block reports;
* :class:`RequestLostError` — what an async submitter awaits into when its
  request dies with its device and is not replayed.

The contract, enforced by the chaos suite in ``tests/test_faults.py``: an
empty schedule changes nothing (byte-for-byte), the same seed and schedule
reproduce the same report bit-for-bit, and ``completed + lost ==
submitted`` under every fault mix.  See ``docs/resilience.md``.

Quickstart::

    from repro.apps.traffic import steady_trace
    from repro.faults import FaultSchedule
    from repro.serve import Server

    schedule = FaultSchedule.of(FaultSchedule.death(device=1, at_s=0.05))
    server = Server(devices=4, faults=schedule, on_death="retry")
    report = server.simulate(
        steady_trace(rate_rps=2000, duration_s=0.1, seed=7), label="chaos"
    )
    print(report.metrics.availability)     # lost/retried/recovery/re-ship
"""

from repro.faults.injector import (
    MAX_RETRIES,
    ON_DEATH_POLICIES,
    FaultInjector,
    RequestLostError,
)
from repro.faults.schedule import FaultEvent, FaultKind, FaultSchedule

__all__ = [
    "MAX_RETRIES",
    "ON_DEATH_POLICIES",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultSchedule",
    "RequestLostError",
]
