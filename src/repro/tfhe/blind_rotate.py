"""Blind rotation and test-vector construction.

Blind rotation is the core (and, per the paper's Fig. 1, ~96-98 % of the
cost) of programmable bootstrapping: starting from a trivial GLWE holding the
test vector, it homomorphically rotates the polynomial by the *encrypted*
phase of the input LWE ciphertext, one CMux per LWE mask element.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.params import TFHEParameters
from repro.tfhe import torus
from repro.tfhe.glwe import GlweCiphertext
from repro.tfhe.keys import BootstrappingKey
from repro.tfhe.lwe import LweCiphertext


def modulus_switch(ciphertext: LweCiphertext, params: TFHEParameters) -> tuple[np.ndarray, int]:
    """Switch an LWE ciphertext from modulus ``q`` to ``2N`` (Algorithm 1, line 3)."""
    two_n = 2 * params.N
    mask = torus.switch_modulus(ciphertext.mask, params.q, two_n)
    body = int(torus.switch_modulus(ciphertext.body, params.q, two_n))
    return mask.astype(np.int64), body


def make_test_vector(
    function: Callable[[int], int],
    params: TFHEParameters,
    output_delta: int | None = None,
) -> np.ndarray:
    """Build the test-vector polynomial encoding a function ``Z_p -> Z_p``.

    Each of the ``p`` message values owns a block of ``N / p`` consecutive
    coefficients holding ``delta * f(m)``; the polynomial is then pre-rotated
    by half a block so rounding noise on the encrypted phase lands inside the
    correct block.
    """
    p = params.message_modulus
    n_poly = params.N
    if n_poly % p:
        raise ValueError(f"message modulus {p} must divide the polynomial degree {n_poly}")
    delta = params.delta if output_delta is None else output_delta
    block = n_poly // p
    values = np.zeros(n_poly, dtype=np.int64)
    for message in range(p):
        values[message * block : (message + 1) * block] = (int(function(message)) % (2 * p)) * delta
    # Negacyclic left rotation by half a block: coefficients that wrap around
    # re-enter negated (X^N = -1).
    half_block = block // 2
    rotated = np.concatenate([values[half_block:], -values[:half_block]])
    return torus.reduce(rotated, params.q)


def make_constant_test_vector(value: int, params: TFHEParameters) -> np.ndarray:
    """Test vector with every coefficient equal to ``value``.

    Used by gate bootstrapping, where the result only depends on which half
    of the torus the phase falls in.
    """
    return torus.reduce(np.full(params.N, int(value), dtype=np.int64), params.q)


def blind_rotate(
    test_vector: np.ndarray,
    ciphertext: LweCiphertext,
    bootstrapping_key: BootstrappingKey,
    params: TFHEParameters,
) -> GlweCiphertext:
    """Homomorphically rotate ``test_vector`` by the phase of ``ciphertext``.

    Returns a GLWE ciphertext whose constant coefficient encrypts
    ``test_vector[phase_2N]`` (with the negacyclic sign for phases in the
    upper half), ready for sample extraction.
    """
    if len(bootstrapping_key) != ciphertext.dimension:
        raise ValueError(
            f"bootstrapping key has {len(bootstrapping_key)} entries but the "
            f"ciphertext has dimension {ciphertext.dimension}"
        )
    mask_2n, body_2n = modulus_switch(ciphertext, params)
    accumulator = GlweCiphertext.trivial(test_vector, params).rotate(-body_2n)
    for index in range(ciphertext.dimension):
        exponent = int(mask_2n[index])
        if exponent == 0:
            continue
        rotated = accumulator.rotate(exponent)
        accumulator = bootstrapping_key[index].cmux(accumulator, rotated)
    return accumulator


def blind_rotate_plaintext(
    test_vector: Sequence[int],
    phase_2n: int,
    params: TFHEParameters,
) -> int:
    """Plaintext model of blind rotation: the value extraction would return.

    Computes the constant coefficient of ``test_vector * X^{-phase_2n}``
    modulo ``X^N + 1``; used by tests and by the CPU baseline cost model to
    validate the functional pipeline without any encryption.
    """
    n_poly = params.N
    phase = phase_2n % (2 * n_poly)
    values = np.asarray(test_vector, dtype=np.int64)
    if phase < n_poly:
        return int(values[phase]) % params.q
    return int(-values[phase - n_poly]) % params.q
