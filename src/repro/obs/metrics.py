"""A unified metrics registry: counters, gauges, histograms, derived views.

Before this module every subsystem kept its own counter dict —
:class:`~repro.arch.key_cache.KeyCacheStats` for key residency,
:class:`~repro.sched.memo.ScheduleCache` for schedule memoization, the
pipeline layout's stage-plan cache, :class:`~repro.net.server.WireStats`
for the transport — and answering "what is this server doing right now"
meant knowing every one of them.  :class:`MetricsRegistry` is the single
place they all surface:

* **primitive instruments** — :class:`Counter` (monotonic),
  :class:`Gauge` (set to the current level) and :class:`Histogram`
  (bucketed observations with sum and count) created through the
  registry's get-or-create accessors;
* **views** — the existing ad-hoc counter dicts *re-registered* as derived
  read-throughs: a view is a prefix plus a zero-argument callable returning
  ``{key: number}``, sampled at collection time, so the historical counters
  keep their one source of truth (``ServeReport.to_dict()`` stays
  byte-identical) while appearing in the unified namespace;
* **exposition** — :meth:`MetricsRegistry.collect` flattens everything into
  one sorted ``{name: value}`` snapshot (what the net protocol's ``STATS``
  frame serializes) and :meth:`MetricsRegistry.render_prometheus` renders
  the Prometheus text format for scrape-style consumers.

Lookups follow the repository's registry contract: unknown names raise
:class:`~repro.errors.UnknownMetricError`, the shared did-you-mean shape.
"""

from __future__ import annotations

import bisect
import math
from typing import Callable, Iterable, Mapping

from repro.errors import UnknownMetricError

#: Default :class:`Histogram` bucket bounds (seconds), spanning the
#: sub-millisecond-to-seconds range serving latencies live in.
DEFAULT_LATENCY_BUCKETS_S = (
    1e-4,
    2.5e-4,
    5e-4,
    1e-3,
    2.5e-3,
    5e-3,
    1e-2,
    2.5e-2,
    5e-2,
    1e-1,
    2.5e-1,
    1.0,
)


def _format_bound(bound: float) -> str:
    """Bucket-bound label: ``+Inf`` for the overflow bucket, ``%g`` otherwise."""
    if math.isinf(bound):
        return "+Inf"
    return f"{bound:g}"


def _format_value(value: float) -> str:
    """Exposition-format a sample (integers without a trailing ``.0``)."""
    if isinstance(value, bool):  # pragma: no cover - defensive; bools are ints
        return str(int(value))
    if isinstance(value, int) or (isinstance(value, float) and value.is_integer()):
        return str(int(value))
    return repr(float(value))


class Metric:
    """Base of every registered instrument: a name, a kind and a help line."""

    #: Exposition kind (``counter`` / ``gauge`` / ``histogram``).
    kind = "untyped"

    def __init__(self, name: str, help: str = ""):
        if not name or not all(ch.isalnum() or ch == "_" for ch in name):
            raise ValueError(
                f"metric name {name!r} must be non-empty [a-zA-Z0-9_] "
                "(prometheus-compatible)"
            )
        self.name = name
        self.help = help

    def samples(self) -> dict[str, float]:
        """Flattened ``{sample_name: value}`` this instrument contributes."""
        raise NotImplementedError


class Counter(Metric):
    """A monotonically increasing count (requests, batches, bytes)."""

    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self._value = 0.0

    @property
    def value(self) -> float:
        """The current count."""
        return self._value

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative: counters never go down)."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc({amount}))")
        self._value += amount

    def samples(self) -> dict[str, float]:
        return {self.name: self._value}


class Gauge(Metric):
    """An instantaneous level (queue depth, active devices)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self._value = 0.0

    @property
    def value(self) -> float:
        """The current level."""
        return self._value

    def set(self, value: float) -> None:
        """Set the gauge to ``value``."""
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Adjust the gauge by ``amount`` (may be negative)."""
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Adjust the gauge down by ``amount``."""
        self._value -= amount

    def samples(self) -> dict[str, float]:
        return {self.name: self._value}


class Histogram(Metric):
    """Bucketed observations with a running sum and count.

    Buckets are *cumulative* in exposition (Prometheus semantics): the
    sample for bound ``b`` counts every observation ``<= b``, and the
    implicit ``+Inf`` bucket equals the total count.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS_S,
    ):
        super().__init__(name, help)
        bounds = sorted(float(bound) for bound in buckets)
        if not bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        if any(math.isinf(bound) for bound in bounds):
            raise ValueError("the +Inf bucket is implicit; pass finite bounds only")
        if any(a >= b for a, b in zip(bounds, bounds[1:])):
            raise ValueError("histogram bucket bounds must be strictly increasing")
        self.bounds = tuple(bounds)
        self._counts = [0] * (len(self.bounds) + 1)  # last slot = overflow
        self._sum = 0.0
        self._count = 0

    @property
    def count(self) -> int:
        """Total observations."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of every observed value."""
        return self._sum

    def observe(self, value: float) -> None:
        """Record one observation."""
        self._counts[bisect.bisect_left(self.bounds, value)] += 1
        self._sum += value
        self._count += 1

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``(bound, cumulative_count)`` per bucket, ``+Inf`` last."""
        out: list[tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.bounds, self._counts):
            running += count
            out.append((bound, running))
        out.append((math.inf, self._count))
        return out

    def samples(self) -> dict[str, float]:
        flat: dict[str, float] = {}
        for bound, cumulative in self.cumulative_buckets():
            flat[f"{self.name}_bucket_le_{_format_bound(bound)}"] = cumulative
        flat[f"{self.name}_sum"] = self._sum
        flat[f"{self.name}_count"] = self._count
        return flat


class MetricsRegistry:
    """One namespace over primitive instruments and derived views.

    Instruments are created through the get-or-create accessors
    (:meth:`counter` / :meth:`gauge` / :meth:`histogram`); asking for an
    existing name with a different kind is an error.  Views re-register
    external counter dicts without copying them: the callable is sampled at
    every :meth:`collect`, so the owning subsystem remains the single
    source of truth.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}
        self._views: dict[str, Callable[[], Mapping[str, float]]] = {}

    # -- creation ----------------------------------------------------------------

    def _get_or_create(self, name: str, kind: type, factory: Callable[[], Metric]) -> Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, kind):
                raise ValueError(
                    f"metric {name!r} is already registered as a "
                    f"{existing.kind}, not a {kind.kind}"
                )
            return existing
        if name in self._views:
            raise ValueError(f"{name!r} is already registered as a view prefix")
        metric = factory()
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create a :class:`Counter`."""
        metric = self._get_or_create(name, Counter, lambda: Counter(name, help))
        assert isinstance(metric, Counter)
        return metric

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create a :class:`Gauge`."""
        metric = self._get_or_create(name, Gauge, lambda: Gauge(name, help))
        assert isinstance(metric, Gauge)
        return metric

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS_S,
    ) -> Histogram:
        """Get or create a :class:`Histogram`."""
        metric = self._get_or_create(name, Histogram, lambda: Histogram(name, help, buckets))
        assert isinstance(metric, Histogram)
        return metric

    def register_view(
        self,
        prefix: str,
        sample: Callable[[], Mapping[str, float]],
        help: str = "",
    ) -> None:
        """Register (or replace) a derived view under ``prefix``.

        ``sample`` is called at collection time and must return a flat
        ``{key: number}`` mapping; every key appears as ``{prefix}_{key}``.
        Re-registering a prefix replaces its callable — the natural
        semantics for components (a net front-end, a rebuilt cluster) that
        re-bind on start.
        """
        if prefix in self._metrics:
            raise ValueError(f"{prefix!r} is already registered as a {self._metrics[prefix].kind}")
        Metric(prefix, help)  # reuse the name validation
        self._views[prefix] = sample

    # -- lookup ------------------------------------------------------------------

    def names(self) -> list[str]:
        """Registered instrument names and view prefixes, sorted."""
        return sorted([*self._metrics, *self._views])

    def get(self, name: str) -> Metric:
        """Look up an instrument by name.

        Raises :class:`~repro.errors.UnknownMetricError` — the shared
        did-you-mean shape — for unknown names (view prefixes are listed in
        the message but are not instruments and cannot be returned).
        """
        try:
            return self._metrics[name]
        except KeyError:
            raise UnknownMetricError(name, self.names()) from None

    def __getitem__(self, name: str) -> Metric:
        return self.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics or name in self._views

    # -- collection --------------------------------------------------------------

    def collect(self) -> dict[str, float]:
        """One flat, name-sorted ``{sample: value}`` snapshot.

        Histograms flatten to their cumulative buckets plus ``_sum`` and
        ``_count``; views are sampled live and expand to
        ``{prefix}_{key}``.  This is exactly what the ``STATS`` wire frame
        serializes, so a scrape over the socket and an in-process read see
        the same numbers.
        """
        flat: dict[str, float] = {}
        for metric in self._metrics.values():
            flat.update(metric.samples())
        for prefix, sample in self._views.items():
            for key, value in sample().items():
                flat[f"{prefix}_{key}"] = value
        return dict(sorted(flat.items()))

    def render_prometheus(self, namespace: str = "repro") -> str:
        """Prometheus text exposition of every instrument and view.

        ``namespace`` prefixes every family name (``repro_`` by default);
        views render as untyped gauges.
        """

        def full(name: str) -> str:
            return f"{namespace}_{name}" if namespace else name

        lines: list[str] = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if metric.help:
                lines.append(f"# HELP {full(name)} {metric.help}")
            lines.append(f"# TYPE {full(name)} {metric.kind}")
            if isinstance(metric, Histogram):
                for bound, cumulative in metric.cumulative_buckets():
                    lines.append(
                        f'{full(name)}_bucket{{le="{_format_bound(bound)}"}} {cumulative}'
                    )
                lines.append(f"{full(name)}_sum {_format_value(metric.sum)}")
                lines.append(f"{full(name)}_count {metric.count}")
            else:
                lines.append(f"{full(name)} {_format_value(metric.value)}")
        for prefix in sorted(self._views):
            lines.append(f"# TYPE {full(prefix)} gauge")
            for key, value in sorted(self._views[prefix]().items()):
                lines.append(f"{full(prefix)}_{key} {_format_value(value)}")
        return "\n".join(lines) + "\n"
