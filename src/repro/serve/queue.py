"""FIFO request queue with per-tenant accounting and depth tracking.

The queue sits between the submission paths (sync and async) and the
adaptive batcher.  It is deliberately simple — arrival order is preserved
across tenants so no tenant can starve another — but it keeps the counters
the metrics layer and the batcher's flush decisions need: instantaneous and
peak depth, queued items/PBS, and per-tenant composition.
"""

from __future__ import annotations

from collections import deque

from repro.serve.request import Request


class RequestQueue:
    """Arrival-ordered queue of pending :class:`Request` objects."""

    def __init__(self) -> None:
        self._pending: deque[Request] = deque()
        self.total_enqueued = 0
        self.peak_depth = 0
        self._tenant_depths: dict[str, int] = {}
        self._queued_items = 0
        self._queued_pbs = 0

    # -- state ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._pending)

    def __bool__(self) -> bool:
        return bool(self._pending)

    @property
    def depth(self) -> int:
        """Requests currently waiting."""
        return len(self._pending)

    @property
    def queued_items(self) -> int:
        """Batchable items across all waiting requests (O(1), kept on push/pop)."""
        return self._queued_items

    @property
    def queued_pbs(self) -> int:
        """Bootstraps across all waiting requests (O(1), kept on push/pop)."""
        return self._queued_pbs

    @property
    def tenant_depths(self) -> dict[str, int]:
        """Waiting request count per tenant (zero entries omitted)."""
        return {tenant: n for tenant, n in self._tenant_depths.items() if n > 0}

    def oldest(self) -> Request | None:
        """The longest-waiting request, or ``None`` when empty."""
        return self._pending[0] if self._pending else None

    # -- mutation ---------------------------------------------------------------

    def push(self, request: Request) -> None:
        """Enqueue a request (arrival order is the only order)."""
        self._pending.append(request)
        self.total_enqueued += 1
        self.peak_depth = max(self.peak_depth, len(self._pending))
        self._tenant_depths[request.tenant] = (
            self._tenant_depths.get(request.tenant, 0) + 1
        )
        self._queued_items += request.items
        self._queued_pbs += request.total_pbs

    def pop(self) -> Request:
        """Dequeue the oldest request."""
        request = self._pending.popleft()
        self._tenant_depths[request.tenant] -= 1
        self._queued_items -= request.items
        self._queued_pbs -= request.total_pbs
        return request
