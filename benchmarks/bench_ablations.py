"""Extension ablations for the design choices DESIGN.md calls out.

Three studies beyond the paper's own tables:

* batching sensitivity — how much of Strix's throughput comes from
  core-level batching as the available ciphertext parallelism varies;
* bootstrapping-key unrolling — Matcha's iteration-reduction technique
  layered on the Strix datapath (the paper argues against it implicitly);
* energy per PBS — the power model combined with the throughput model,
  compared against nominal CPU/GPU board power.
"""

from __future__ import annotations

from repro.analysis.batch_sensitivity import batch_sensitivity_study
from repro.analysis.energy_comparison import energy_comparison
from repro.analysis.parameter_sweep import parameter_sweep
from repro.analysis.unrolling_ablation import unrolling_ablation
from repro.params import PARAM_SET_I


def test_ablation_batch_sensitivity(benchmark, save_result):
    study = benchmark(batch_sensitivity_study, PARAM_SET_I)

    large = [point for point in study.points if point.available_ciphertexts >= 64]
    assert all(point.core_batching_gain > 1.1 for point in large)
    assert all(point.strix_pbs_per_s > point.gpu_pbs_per_s for point in study.points)

    save_result("ablation_batch_sensitivity", study.render())


def test_ablation_key_unrolling(benchmark, save_result):
    study = benchmark(unrolling_ablation, PARAM_SET_I)

    # The paper's design choice (no unrolling) is the largest compute-bound point.
    assert study.best_compute_bound_factor() == 1
    by_factor = {point.unroll_factor: point for point in study.points}
    assert by_factor[4].throughput_pbs_per_s < by_factor[1].throughput_pbs_per_s
    assert by_factor[4].bootstrapping_key_mb > by_factor[1].bootstrapping_key_mb

    save_result("ablation_key_unrolling", study.render())


def test_ablation_energy_per_pbs(benchmark, save_result):
    study = benchmark(energy_comparison)

    for row in study.rows:
        assert row.strix_mj < row.gpu_mj < row.cpu_mj
    assert study.rows[0].gain_vs_gpu > 37

    save_result("ablation_energy", study.render())


def test_ablation_parameter_sensitivity(benchmark, save_result):
    sweep = benchmark(parameter_sweep)

    # Throughput falls monotonically with N for a fixed decomposition level.
    for lb in (2, 3, 4):
        points = sorted(
            (p for p in sweep.points if p.decomposition_levels == lb),
            key=lambda p: p.polynomial_degree,
        )
        throughputs = [p.throughput_pbs_per_s for p in points]
        assert throughputs == sorted(throughputs, reverse=True)

    save_result("ablation_parameter_sweep", sweep.render())
