"""Deterministic fault schedules: what breaks, when, and for how long.

Production clusters lose devices; a *simulated* cluster has to lose them
deterministically, or no availability number it reports can be trusted
twice.  A :class:`FaultSchedule` is the whole fault story of one serving
run, fixed before the run starts: a sorted tuple of :class:`FaultEvent`\\ s,
each naming a device, an injection time and (optionally) a heal time.
Three kinds of event exist:

* ``DEVICE_DEATH`` — the device drops off the cluster at ``inject_s``: it
  rejects placement, any batch occupying it at that instant fails (the
  injector replays or drops it per the ``on_death`` policy), and its HBM
  contents — resident tenant key sets — are lost.  A finite ``heal_s``
  models a reboot: the device returns *empty*, so returning tenants pay
  key re-shipping.
* ``SLOW_DEVICE`` — a thermal throttle: every batch (or pipeline stage)
  *starting* on the device while the event is active takes
  ``slow_factor``× its modeled service time.  Keys stay resident; nothing
  fails.
* ``PARTITION`` — an interconnect partition: the host cannot reach the
  device, so it rejects *new* placement while the event is active, but
  work already on it completes and its key sets survive — when the
  partition heals the device rejoins warm, with no re-shipping.

The schedule is **pure data**: every availability question
(:meth:`FaultSchedule.dead_at`, :meth:`FaultSchedule.available_indices`,
:meth:`FaultSchedule.slow_factor_at`) is a time-indexed query with no
internal state, which is what makes degraded-mode serving replayable —
the :class:`~repro.faults.injector.FaultInjector` keeps the one-shot
side effects (key eviction on death, impact accounting) and the schedule
never changes under it.  An empty schedule is the explicit no-fault case
and costs nothing: every fast path in the serving tier checks
``schedule`` truthiness once and falls through to the historical
arithmetic, byte-for-byte.
"""

from __future__ import annotations

import enum
import math
import random
from dataclasses import dataclass, field


class FaultKind(enum.Enum):
    """The three failure modes the serving tier models."""

    DEVICE_DEATH = "death"
    SLOW_DEVICE = "slow"
    PARTITION = "partition"


@dataclass(frozen=True)
class FaultEvent:
    """One fault on one device: ``[inject_s, heal_s)`` on the serving clock.

    ``heal_s`` defaults to ``math.inf`` (the fault never heals);
    ``slow_factor`` is only meaningful for ``SLOW_DEVICE`` events, where it
    multiplies the service time of work starting inside the window.
    """

    kind: FaultKind
    device: int
    inject_s: float
    heal_s: float = math.inf
    slow_factor: float = 1.0

    def __post_init__(self) -> None:
        if not isinstance(self.kind, FaultKind):
            object.__setattr__(self, "kind", FaultKind(self.kind))
        if self.device < 0:
            raise ValueError("fault events target device indices >= 0")
        if self.inject_s < 0:
            raise ValueError("faults cannot inject before the run starts")
        if self.heal_s <= self.inject_s:
            raise ValueError("a fault must heal strictly after it injects")
        if self.kind is FaultKind.SLOW_DEVICE:
            if self.slow_factor <= 1.0:
                raise ValueError(
                    "a slow-device event needs slow_factor > 1 "
                    "(1.0 is not a fault)"
                )
        elif self.slow_factor != 1.0:
            raise ValueError("slow_factor only applies to SLOW_DEVICE events")

    def active_at(self, t_s: float) -> bool:
        """Whether the fault is in effect at time ``t_s``."""
        return self.inject_s <= t_s < self.heal_s

    def to_dict(self) -> dict:
        """JSON-friendly representation (``heal_s`` is ``None`` when inf)."""
        out: dict = {
            "kind": self.kind.value,
            "device": self.device,
            "inject_s": self.inject_s,
            "heal_s": None if math.isinf(self.heal_s) else self.heal_s,
        }
        if self.kind is FaultKind.SLOW_DEVICE:
            out["slow_factor"] = self.slow_factor
        return out


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable, time-sorted set of :class:`FaultEvent`\\ s.

    Build one with :meth:`of` (which sorts) from the :meth:`death` /
    :meth:`slowdown` / :meth:`partition` helpers, or draw a seeded random
    mix with :meth:`random` (the chaos suite's generator — same seed, same
    schedule, always).  All queries are pure functions of time, so two runs
    over one schedule can never observe different fault states.
    """

    events: tuple[FaultEvent, ...] = field(default=())

    def __post_init__(self) -> None:
        ordered = tuple(
            sorted(
                self.events,
                key=lambda event: (event.inject_s, event.device, event.kind.value),
            )
        )
        object.__setattr__(self, "events", ordered)

    def __bool__(self) -> bool:
        return bool(self.events)

    def __len__(self) -> int:
        return len(self.events)

    # -- construction ------------------------------------------------------------

    @classmethod
    def empty(cls) -> "FaultSchedule":
        """The explicit no-fault schedule (serving stays byte-identical)."""
        return cls()

    @classmethod
    def of(cls, *events: FaultEvent) -> "FaultSchedule":
        """A schedule from events in any order."""
        return cls(events=tuple(events))

    @staticmethod
    def death(device: int, at_s: float, heal_s: float = math.inf) -> FaultEvent:
        """A device-death event (reboot at ``heal_s`` if finite)."""
        return FaultEvent(FaultKind.DEVICE_DEATH, device, at_s, heal_s)

    @staticmethod
    def slowdown(
        device: int, factor: float, at_s: float, heal_s: float = math.inf
    ) -> FaultEvent:
        """A thermal-throttle event multiplying service time by ``factor``."""
        return FaultEvent(
            FaultKind.SLOW_DEVICE, device, at_s, heal_s, slow_factor=factor
        )

    @staticmethod
    def partition(device: int, at_s: float, heal_s: float = math.inf) -> FaultEvent:
        """An interconnect-partition event (placement-only exclusion)."""
        return FaultEvent(FaultKind.PARTITION, device, at_s, heal_s)

    @classmethod
    def random(
        cls,
        devices: int,
        duration_s: float,
        seed: int,
        events: int = 3,
    ) -> "FaultSchedule":
        """A seeded random fault mix over ``[0, duration_s)``.

        The chaos suite's generator: deaths, slowdowns and partitions in
        roughly equal measure, most of them healing within the run.  Device
        0 is never killed or partitioned permanently by construction —
        at least one survivor keeps ``on_death="retry"`` runs meaningful —
        but everything else (which device, when, how long, how slow) comes
        off ``random.Random(seed)``, so one seed is one schedule forever.
        """
        if devices < 1:
            raise ValueError("a fault schedule needs at least one device")
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        rng = random.Random(seed)
        drawn: list[FaultEvent] = []
        kinds = (FaultKind.DEVICE_DEATH, FaultKind.SLOW_DEVICE, FaultKind.PARTITION)
        for _ in range(events):
            kind = kinds[rng.randrange(len(kinds))]
            inject = rng.uniform(0.0, duration_s * 0.9)
            heals = rng.random() < 0.75
            heal = inject + rng.uniform(duration_s * 0.05, duration_s * 0.5)
            if kind is FaultKind.SLOW_DEVICE:
                device = rng.randrange(devices)
                drawn.append(
                    FaultSchedule.slowdown(
                        device,
                        1.0 + rng.uniform(0.5, 3.0),
                        inject,
                        heal if heals else math.inf,
                    )
                )
            else:
                # Keep device 0 out of permanent death/partition events.
                device = rng.randrange(1, devices) if devices > 1 else 0
                if devices == 1:
                    heals = True
                maker = (
                    FaultSchedule.death
                    if kind is FaultKind.DEVICE_DEATH
                    else FaultSchedule.partition
                )
                drawn.append(maker(device, inject, heal if heals else math.inf))
        return cls.of(*drawn)

    # -- per-kind views ----------------------------------------------------------

    @property
    def deaths(self) -> tuple[FaultEvent, ...]:
        """Device-death events, in injection order."""
        return tuple(
            event for event in self.events if event.kind is FaultKind.DEVICE_DEATH
        )

    @property
    def slowdowns(self) -> tuple[FaultEvent, ...]:
        """Slow-device events, in injection order."""
        return tuple(
            event for event in self.events if event.kind is FaultKind.SLOW_DEVICE
        )

    @property
    def partitions(self) -> tuple[FaultEvent, ...]:
        """Interconnect-partition events, in injection order."""
        return tuple(
            event for event in self.events if event.kind is FaultKind.PARTITION
        )

    # -- time-indexed queries ----------------------------------------------------

    def dead_at(self, device: int, t_s: float) -> bool:
        """Whether ``device`` is dead at time ``t_s``."""
        return any(
            event.device == device and event.active_at(t_s)
            for event in self.events
            if event.kind is FaultKind.DEVICE_DEATH
        )

    def partitioned_at(self, device: int, t_s: float) -> bool:
        """Whether ``device`` is unreachable (partitioned) at time ``t_s``."""
        return any(
            event.device == device and event.active_at(t_s)
            for event in self.events
            if event.kind is FaultKind.PARTITION
        )

    def placeable_at(self, device: int, t_s: float) -> bool:
        """Whether new work may land on ``device`` at time ``t_s``.

        Dead devices reject everything; partitioned devices reject *new*
        placement (work already on them completes).
        """
        return not (self.dead_at(device, t_s) or self.partitioned_at(device, t_s))

    def available_indices(self, t_s: float, devices: int) -> list[int]:
        """Indices accepting placement at ``t_s``, ascending."""
        return [
            index for index in range(devices) if self.placeable_at(index, t_s)
        ]

    def first_available_s(self, t_s: float, devices: int) -> float | None:
        """Earliest time ``>= t_s`` at which *some* device accepts placement.

        ``t_s`` itself when a device is already placeable; otherwise the
        first event boundary that frees one; ``None`` when every device
        stays unreachable forever (all remaining faults are permanent).
        """
        if self.available_indices(t_s, devices):
            return t_s
        boundaries = sorted(
            {
                boundary
                for event in self.events
                for boundary in (event.inject_s, event.heal_s)
                if t_s < boundary < math.inf
            }
        )
        for boundary in boundaries:
            if self.available_indices(boundary, devices):
                return boundary
        return None

    def slow_factor_at(self, device: int, t_s: float) -> float:
        """Combined service-time multiplier on ``device`` at ``t_s``.

        Overlapping slow-device events compose multiplicatively; ``1.0``
        means full speed.
        """
        factor = 1.0
        for event in self.events:
            if (
                event.kind is FaultKind.SLOW_DEVICE
                and event.device == device
                and event.active_at(t_s)
            ):
                factor *= event.slow_factor
        return factor
