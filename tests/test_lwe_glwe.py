"""Tests for LWE and GLWE ciphertexts."""

from __future__ import annotations

import numpy as np
import pytest

from repro.params import SMALL_PARAMETERS, TOY_PARAMETERS
from repro.tfhe import encoding, torus
from repro.tfhe.glwe import GlweCiphertext
from repro.tfhe.keys import GlweSecretKey, LweSecretKey
from repro.tfhe.lwe import LweCiphertext

PARAMS = TOY_PARAMETERS


@pytest.fixture(scope="module")
def lwe_key():
    return LweSecretKey.generate(PARAMS, np.random.default_rng(7))


@pytest.fixture(scope="module")
def glwe_key():
    return GlweSecretKey.generate(PARAMS, np.random.default_rng(8))


class TestLwe:
    def test_encrypt_decrypt_phase_close_to_message(self, lwe_key, rng):
        value = encoding.encode(1, PARAMS)
        ciphertext = lwe_key.encrypt(value, rng)
        phase = lwe_key.decrypt_phase(ciphertext)
        assert torus.absolute_distance(phase, value, PARAMS.q) < PARAMS.delta // 2

    def test_trivial_ciphertext_has_exact_phase(self, lwe_key):
        ciphertext = LweCiphertext.trivial(12345, PARAMS.n, PARAMS)
        assert lwe_key.decrypt_phase(ciphertext) == 12345

    def test_homomorphic_addition(self, lwe_key, rng):
        a = lwe_key.encrypt(encoding.encode(1, PARAMS), rng)
        b = lwe_key.encrypt(encoding.encode(2, PARAMS), rng)
        total = a + b
        decoded = encoding.decode(lwe_key.decrypt_phase(total), PARAMS)
        assert decoded == 3

    def test_homomorphic_subtraction_and_negation(self, lwe_key, rng):
        a = lwe_key.encrypt(encoding.encode(3, PARAMS), rng)
        b = lwe_key.encrypt(encoding.encode(1, PARAMS), rng)
        diff = a - b
        assert encoding.decode(lwe_key.decrypt_phase(diff), PARAMS) == 2
        neg = -b
        # -1 wraps to 2p - 1 in the padded message space.
        assert encoding.decode(lwe_key.decrypt_phase(neg), PARAMS) == 2 * PARAMS.message_modulus - 1

    def test_scalar_multiply(self, lwe_key, rng):
        a = lwe_key.encrypt(encoding.encode(1, PARAMS), rng)
        doubled = a.scalar_multiply(2)
        assert encoding.decode(lwe_key.decrypt_phase(doubled), PARAMS) == 2

    def test_add_plaintext(self, lwe_key, rng):
        a = lwe_key.encrypt(encoding.encode(1, PARAMS), rng)
        shifted = a.add_plaintext(encoding.encode(2, PARAMS))
        assert encoding.decode(lwe_key.decrypt_phase(shifted), PARAMS) == 3

    def test_dimension_mismatch_rejected(self, lwe_key, rng):
        a = lwe_key.encrypt(0, rng)
        other = LweCiphertext.trivial(0, PARAMS.n + 1, PARAMS)
        with pytest.raises(ValueError):
            _ = a + other

    def test_phase_requires_matching_key_dimension(self, lwe_key, rng):
        a = lwe_key.encrypt(0, rng)
        with pytest.raises(ValueError):
            a.phase(np.zeros(PARAMS.n + 3, dtype=np.int64))

    def test_copy_is_independent(self, lwe_key, rng):
        a = lwe_key.encrypt(0, rng)
        b = a.copy()
        b.mask[0] = (b.mask[0] + 1) % PARAMS.q
        assert a.mask[0] != b.mask[0] or a.mask[0] == (b.mask[0] - 1) % PARAMS.q

    def test_mask_canonicalized_on_construction(self):
        ciphertext = LweCiphertext(np.array([-1, PARAMS.q + 3]), -5, PARAMS)
        assert ciphertext.mask.tolist() == [PARAMS.q - 1, 3]
        assert ciphertext.body == PARAMS.q - 5

    def test_noise_grows_with_additions(self, lwe_key, rng):
        zero = encoding.encode(0, PARAMS)
        singles = [lwe_key.encrypt(zero, rng) for _ in range(64)]
        accumulated = singles[0]
        for ciphertext in singles[1:]:
            accumulated = accumulated + ciphertext
        single_error = abs(torus.to_signed(lwe_key.decrypt_phase(singles[0]) - zero, PARAMS.q))
        total_error = abs(torus.to_signed(lwe_key.decrypt_phase(accumulated) - zero, PARAMS.q))
        # Not a strict inequality sample-by-sample, but 64 accumulated fresh
        # noises are overwhelmingly likely to exceed a single one.
        assert total_error >= single_error


class TestGlwe:
    def test_encrypt_decrypt_phase(self, glwe_key, rng):
        message = torus.reduce(
            np.arange(PARAMS.N, dtype=np.int64) * PARAMS.delta, PARAMS.q
        )
        ciphertext = GlweCiphertext.encrypt(message, glwe_key.polynomials, PARAMS, rng)
        phase = ciphertext.phase(glwe_key.polynomials)
        error = torus.absolute_distance(phase, message, PARAMS.q)
        assert error.max() < PARAMS.delta // 2

    def test_trivial_phase_is_exact(self, glwe_key, rng):
        message = torus.uniform(PARAMS.N, PARAMS.q, rng)
        ciphertext = GlweCiphertext.trivial(message, PARAMS)
        np.testing.assert_array_equal(ciphertext.phase(glwe_key.polynomials), message)

    def test_addition_subtraction(self, glwe_key, rng):
        m1 = torus.uniform(PARAMS.N, PARAMS.q, rng)
        m2 = torus.uniform(PARAMS.N, PARAMS.q, rng)
        c1 = GlweCiphertext.trivial(m1, PARAMS)
        c2 = GlweCiphertext.trivial(m2, PARAMS)
        np.testing.assert_array_equal(
            (c1 + c2).phase(glwe_key.polynomials), torus.reduce(m1 + m2, PARAMS.q)
        )
        np.testing.assert_array_equal(
            (c1 - c2).phase(glwe_key.polynomials), torus.reduce(m1 - m2, PARAMS.q)
        )

    def test_rotation_rotates_the_phase(self, glwe_key, rng):
        from repro.tfhe import polynomial

        message = torus.uniform(PARAMS.N, PARAMS.q, rng)
        ciphertext = GlweCiphertext.encrypt(message, glwe_key.polynomials, PARAMS, rng, noise_std=0.0)
        rotated = ciphertext.rotate(5)
        expected = polynomial.monomial_multiply(message, 5, PARAMS.q)
        np.testing.assert_array_equal(rotated.phase(glwe_key.polynomials), expected)

    def test_sample_extract_constant_coefficient(self, glwe_key, rng):
        message = torus.uniform(PARAMS.N, PARAMS.q, rng)
        ciphertext = GlweCiphertext.encrypt(message, glwe_key.polynomials, PARAMS, rng, noise_std=0.0)
        extracted = ciphertext.sample_extract(0)
        assert extracted.dimension == PARAMS.k * PARAMS.N
        phase = extracted.phase(glwe_key.extracted_lwe_key())
        assert phase == int(message[0])

    @pytest.mark.parametrize("index", [1, 7, 63, 127])
    def test_sample_extract_other_coefficients(self, glwe_key, rng, index):
        message = torus.uniform(PARAMS.N, PARAMS.q, rng)
        ciphertext = GlweCiphertext.encrypt(message, glwe_key.polynomials, PARAMS, rng, noise_std=0.0)
        extracted = ciphertext.sample_extract(index)
        phase = extracted.phase(glwe_key.extracted_lwe_key())
        assert phase == int(message[index])

    def test_sample_extract_bad_index(self, glwe_key):
        ciphertext = GlweCiphertext.trivial(np.zeros(PARAMS.N, dtype=np.int64), PARAMS)
        with pytest.raises(ValueError):
            ciphertext.sample_extract(PARAMS.N)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            GlweCiphertext(np.zeros((1, 4)), np.zeros(PARAMS.N), PARAMS)
        with pytest.raises(ValueError):
            GlweCiphertext(np.zeros((PARAMS.k, PARAMS.N)), np.zeros(3), PARAMS)

    def test_k2_parameter_set_roundtrip(self, rng):
        params = SMALL_PARAMETERS
        key = GlweSecretKey.generate(params, rng)
        message = torus.reduce(np.full(params.N, 3 * params.delta, dtype=np.int64), params.q)
        ciphertext = GlweCiphertext.encrypt(message, key.polynomials, params, rng)
        error = torus.absolute_distance(ciphertext.phase(key.polynomials), message, params.q)
        assert error.max() < params.delta // 2
