"""Unified scheduling core shared by the simulator and serving paths.

Two orthogonal seams, both string-registered and pluggable:

* **Cost models** (:mod:`repro.sched.cost`) price a serving batch on one
  device: :class:`AnalyticalCostModel` keeps the closed-form epoch-stream
  arithmetic (``pbs_batch_time_ms``) as the fast default, while
  :class:`EventDrivenCostModel` lowers the batch's real request composition
  to a computation graph and runs the cycle-level
  :class:`~repro.sim.scheduler.StrixScheduler` on it, so per-epoch
  keyswitch overlap and epoch fragmentation become visible in serving
  latency.  :class:`ScheduleCache` (:mod:`repro.sched.memo`) memoizes the
  event model by request-mix signature × parameter set × device geometry,
  so repeated batch shapes price in dictionary-lookup time — the cluster
  wraps ``cost_model="event"`` in it automatically.
* **Placement layouts** (:mod:`repro.sched.layouts`) decide *where* work
  lands on the cluster: :class:`DataParallelLayout` (every device runs every
  layer; one batch → one device), :class:`PipelineLayout` (stage-per-device
  for deep LUT pipelines, charging inter-stage ciphertext transfers, with a
  stage-plan cache keyed on :func:`batch_mix_signature` so repeated batch
  shapes partition once), and :class:`ElasticLayout` (autoscaling the
  active device count from queue-backlog signals with a configurable
  scale-up latency).  All layouts charge BSK/KSK key shipping through the
  cluster's :class:`~repro.arch.key_cache.KeyResidencyManager`, which under
  a finite per-device key-memory budget also evicts cold tenants' keys and
  prices the re-shipping on the shared
  :class:`~repro.arch.interconnect.InterconnectModel`.

The invariant tying everything back to the paper: one device, the
data-parallel layout, the analytical cost model, zero overheads and an
unbounded key budget reproduce the single-device simulator numbers
bit-for-bit.
"""

from repro.sched.cost import (
    AnalyticalCostModel,
    BatchCost,
    CostModel,
    EventDrivenCostModel,
    batch_graph,
    batch_mix_signature,
    get_cost_model,
    list_cost_models,
)
from repro.sched.layouts import (
    DataParallelLayout,
    Dispatch,
    ElasticLayout,
    PipelineLayout,
    PlacementLayout,
    get_layout,
    list_layouts,
)
from repro.sched.memo import (
    DEFAULT_COST_CACHE_CAPACITY,
    ScheduleCache,
    graph_signature,
)
from repro.sched.partition import StagePlan, partition_graph_stages

__all__ = [
    "AnalyticalCostModel",
    "BatchCost",
    "CostModel",
    "DEFAULT_COST_CACHE_CAPACITY",
    "DataParallelLayout",
    "Dispatch",
    "ElasticLayout",
    "EventDrivenCostModel",
    "PipelineLayout",
    "PlacementLayout",
    "ScheduleCache",
    "StagePlan",
    "batch_graph",
    "batch_mix_signature",
    "get_cost_model",
    "get_layout",
    "graph_signature",
    "list_cost_models",
    "list_layouts",
    "partition_graph_stages",
]
