"""Table VI reproduction: effect of the FFT folding scheme.

Two Strix variants are compared on parameter set I: the shipped design with
folding (an N-point negacyclic transform computed on an N/2-point FFT unit,
all other units widened to ``2*CLP`` lanes) and a non-folded design whose
16,384-point FFT unit forces every unit to the narrow 4-lane datapath.  The
paper reports 1.68x latency, 1.99x throughput, 1.73x FFT-unit area and
1.48x core area in favour of folding.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.accelerator import StrixAccelerator
from repro.arch.config import STRIX_DEFAULT, StrixConfig
from repro.params import PARAM_SET_I, TFHEParameters


@dataclass(frozen=True)
class FoldingAblation:
    """The Table VI comparison."""

    parameter_set: str
    latency_ms_unfolded: float
    latency_ms_folded: float
    throughput_unfolded: float
    throughput_folded: float
    fft_area_unfolded_mm2: float
    fft_area_folded_mm2: float
    core_area_unfolded_mm2: float
    core_area_folded_mm2: float

    @property
    def latency_improvement(self) -> float:
        """Latency gain of folding (>1 means folding is faster)."""
        return self.latency_ms_unfolded / self.latency_ms_folded

    @property
    def throughput_improvement(self) -> float:
        """Throughput gain of folding."""
        return self.throughput_folded / self.throughput_unfolded

    @property
    def fft_area_improvement(self) -> float:
        """FFT-unit area reduction of folding."""
        return self.fft_area_unfolded_mm2 / self.fft_area_folded_mm2

    @property
    def core_area_improvement(self) -> float:
        """Whole-core area reduction of folding."""
        return self.core_area_unfolded_mm2 / self.core_area_folded_mm2

    def render(self) -> str:
        """Render the Table VI rows as text."""
        rows = [
            ("Latency (ms)", self.latency_ms_unfolded, self.latency_ms_folded, self.latency_improvement),
            ("Throughput (PBS/s)", self.throughput_unfolded, self.throughput_folded, self.throughput_improvement),
            ("FFT unit area (mm^2)", self.fft_area_unfolded_mm2, self.fft_area_folded_mm2, self.fft_area_improvement),
            ("Total core area (mm^2)", self.core_area_unfolded_mm2, self.core_area_folded_mm2, self.core_area_improvement),
        ]
        lines = [f"FFT folding ablation (parameter set {self.parameter_set})"]
        lines.append(f"  {'Metric':<24} {'No fold':>12} {'With fold':>12} {'Improv.':>9}")
        for name, unfolded, folded, improvement in rows:
            lines.append(f"  {name:<24} {unfolded:>12,.2f} {folded:>12,.2f} {improvement:>8.2f}x")
        return "\n".join(lines)


def folding_ablation(
    params: TFHEParameters = PARAM_SET_I, base_config: StrixConfig = STRIX_DEFAULT
) -> FoldingAblation:
    """Run the Table VI ablation for one parameter set."""
    folded = StrixAccelerator(base_config)
    unfolded = StrixAccelerator(base_config.without_folding())
    folded_cost = folded.chip_cost()
    unfolded_cost = unfolded.chip_cost()
    return FoldingAblation(
        parameter_set=params.name,
        latency_ms_unfolded=unfolded.pbs_latency_ms(params),
        latency_ms_folded=folded.pbs_latency_ms(params),
        throughput_unfolded=unfolded.pbs_throughput(params),
        throughput_folded=folded.pbs_throughput(params),
        fft_area_unfolded_mm2=unfolded.area_power.fft_unit_area(),
        fft_area_folded_mm2=folded.area_power.fft_unit_area(),
        core_area_unfolded_mm2=unfolded_cost.core_area_mm2,
        core_area_folded_mm2=folded_cost.core_area_mm2,
    )
