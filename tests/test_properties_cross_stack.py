"""Cross-cutting property-based tests.

These hypothesis tests check invariants that span layers: linearity of the
LWE phase, consistency of the noise model, scaling laws of the architecture
model, and conservation properties of the scheduler.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.accelerator import StrixAccelerator
from repro.arch.config import STRIX_DEFAULT
from repro.params import PARAM_SET_I, TOY_PARAMETERS
from repro.tfhe import encoding, torus
from repro.tfhe.lwe import LweCiphertext
from repro.tfhe.noise import (
    blind_rotation_variance,
    external_product_variance,
    keyswitch_variance,
)

PARAMS = TOY_PARAMETERS


class TestLwePhaseLinearity:
    @given(
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=0, max_value=3),
    )
    @settings(max_examples=30, deadline=None)
    def test_phase_of_linear_combination(self, toy_context, m1, m2, scale):
        """phase(a + scale*b) == phase(a) + scale*phase(b) exactly (mod q)."""
        ct1 = toy_context.encrypt(m1)
        ct2 = toy_context.encrypt(m2)
        combined = ct1 + ct2.scalar_multiply(scale)
        key = toy_context.lwe_key.bits
        expected = (ct1.phase(key) + scale * ct2.phase(key)) % PARAMS.q
        assert combined.phase(key) == expected

    @given(st.integers(min_value=0, max_value=2 ** 32 - 1))
    @settings(max_examples=100, deadline=None)
    def test_trivial_ciphertexts_have_exact_phase(self, value):
        ciphertext = LweCiphertext.trivial(value, PARAMS.n, PARAMS)
        assert ciphertext.phase(np.ones(PARAMS.n, dtype=np.int64)) == value % PARAMS.q

    @given(st.integers(min_value=0, max_value=3), st.integers(min_value=0, max_value=3))
    @settings(max_examples=20, deadline=None)
    def test_homomorphic_addition_decodes_to_sum(self, toy_context, m1, m2):
        total = toy_context.encrypt(m1) + toy_context.encrypt(m2)
        phase = toy_context.lwe_key.decrypt_phase(total)
        assert encoding.decode(phase, PARAMS) == (m1 + m2) % (2 * PARAMS.message_modulus)


class TestNoiseModelProperties:
    @given(st.floats(min_value=0.0, max_value=1e-6))
    @settings(max_examples=50, deadline=None)
    def test_external_product_variance_monotone_in_input(self, base_variance):
        grown = external_product_variance(PARAMS, base_variance)
        assert grown >= base_variance

    @given(st.integers(min_value=1, max_value=64))
    @settings(max_examples=30, deadline=None)
    def test_blind_rotation_variance_monotone_in_iterations(self, iterations):
        short = dataclasses.replace(PARAMS, n=iterations)
        longer = dataclasses.replace(PARAMS, n=iterations + 8)
        assert blind_rotation_variance(longer) > blind_rotation_variance(short)

    @given(st.floats(min_value=0.0, max_value=1e-6))
    @settings(max_examples=50, deadline=None)
    def test_keyswitch_variance_additive(self, base_variance):
        assert keyswitch_variance(PARAMS, base_variance) > base_variance


class TestArchitectureScalingLaws:
    @given(st.sampled_from([1, 2, 4, 8, 16]))
    @settings(max_examples=10, deadline=None)
    def test_throughput_linear_in_core_count(self, tvlp):
        accelerator = StrixAccelerator(STRIX_DEFAULT.with_parallelism(tvlp=tvlp))
        single = StrixAccelerator(STRIX_DEFAULT.with_parallelism(tvlp=1))
        ratio = accelerator.pbs_throughput(PARAM_SET_I) / single.pbs_throughput(PARAM_SET_I)
        assert ratio == pytest.approx(tvlp, rel=0.01)

    @given(st.sampled_from([1024, 2048, 4096, 8192]))
    @settings(max_examples=8, deadline=None)
    def test_iteration_interval_linear_in_degree(self, degree):
        accelerator = StrixAccelerator()
        params = dataclasses.replace(PARAM_SET_I, N=degree)
        timing = accelerator.pipeline_timing(params)
        expected = (
            -(-(params.k + 1) * params.lb // STRIX_DEFAULT.plp)
            * degree
            // (2 * STRIX_DEFAULT.clp)
        )
        assert timing.initiation_interval == expected

    @given(st.integers(min_value=1, max_value=4096))
    @settings(max_examples=50, deadline=None)
    def test_batch_cycles_monotone_in_lwes(self, lwes):
        accelerator = StrixAccelerator()
        assert accelerator.pbs_batch_cycles(PARAM_SET_I, lwes) <= accelerator.pbs_batch_cycles(
            PARAM_SET_I, lwes + 1
        )


class TestSchedulerConservation:
    @given(st.integers(min_value=1, max_value=2000), st.integers(min_value=1, max_value=5))
    @settings(max_examples=25, deadline=None)
    def test_every_pbs_is_scheduled_exactly_once(self, ciphertexts, stages):
        from repro.apps.workloads import lut_pipeline_graph
        from repro.sim.scheduler import StrixScheduler

        scheduler = StrixScheduler(StrixAccelerator())
        graph = lut_pipeline_graph(PARAM_SET_I, stages=stages, ciphertexts_per_stage=ciphertexts)
        result = scheduler.run(graph)
        assert result.total_pbs == ciphertexts * stages
        assert result.total_time_s > 0
        assert len(result.node_schedules) == stages

    @given(st.integers(min_value=1, max_value=3000))
    @settings(max_examples=30, deadline=None)
    def test_throughput_never_exceeds_microbenchmark_peak(self, ciphertexts):
        from repro.apps.workloads import pbs_batch_graph
        from repro.sim.scheduler import StrixScheduler

        accelerator = StrixAccelerator()
        scheduler = StrixScheduler(accelerator)
        result = scheduler.run(pbs_batch_graph(PARAM_SET_I, ciphertexts))
        peak = accelerator.pbs_throughput(PARAM_SET_I)
        assert result.pbs_throughput <= peak * 1.001


class TestEncodingProperties:
    @given(st.integers(min_value=0, max_value=2 ** 32 - 1), st.integers(min_value=0, max_value=2 ** 32 - 1))
    @settings(max_examples=200, deadline=None)
    def test_torus_distance_is_symmetric_and_bounded(self, a, b):
        distance = int(torus.absolute_distance(a, b, PARAMS.q))
        assert distance == int(torus.absolute_distance(b, a, PARAMS.q))
        assert 0 <= distance <= PARAMS.q // 2

    @given(st.integers(min_value=0, max_value=3))
    @settings(max_examples=20, deadline=None)
    def test_boolean_and_integer_encodings_do_not_collide(self, message):
        """Integer encodings stay in the lower half; boolean 'false' lives in
        the upper half — the two encodings are distinguishable."""
        integer_value = encoding.encode(message, PARAMS)
        false_value = encoding.encode_boolean(False, PARAMS)
        assert torus.to_signed(integer_value, PARAMS.q) >= 0
        assert torus.to_signed(false_value, PARAMS.q) < 0
