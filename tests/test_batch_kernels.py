"""Vectorized batch kernels vs. the scalar reference, bit for bit.

The contract of :mod:`repro.tfhe.batch` is *exact* equality: element ``i``
of every batched kernel result must equal the scalar kernel applied to
element ``i`` — same masks, same bodies, to the last bit.  This suite
enforces that with seeded randomized sweeps across parameter sets and batch
sizes, covers the degenerate shapes (empty batches raise, batch-1 equals
scalar exactly), and exercises the ``kernels`` knob end to end through
:class:`~repro.runtime.session.Session` and the reference backend, the
transform-instance registry, and the stacked wire codecs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import UnknownKernelError
from repro.fft import (
    clear_transform_caches,
    get_folded_transform,
    get_negacyclic_transform,
    register_transform_cache_view,
    transform_cache_stats,
)
from repro.obs.metrics import MetricsRegistry
from repro.params import SMALL_PARAMETERS, TOY_PARAMETERS
from repro.runtime.api import run
from repro.runtime.session import Session
from repro.sim.compiler import Netlist, full_adder_netlist
from repro.tfhe.batch import (
    BATCH_GATES,
    KERNEL_BACKENDS,
    GlweBatch,
    LweBatch,
    batch_gate,
    batch_keyswitch,
    batch_monomial_multiply,
    batch_programmable_bootstrap,
    batch_sample_extract,
    resolve_kernels,
)
from repro.tfhe.bootstrap import programmable_bootstrap
from repro.tfhe.context import TFHEContext
from repro.tfhe.gates import GateBootstrapper
from repro.tfhe.keyswitch import keyswitch
from repro.tfhe.lut import relu_lut
from repro.tfhe.polynomial import monomial_multiply
from repro.tfhe.serialization import (
    LWE_BATCH_WIRE_MAGIC,
    lwe_batch_from_bytes,
    lwe_batch_to_bytes,
)

#: (parameter set, batch sizes swept).  TOY covers the paper's batch-64
#: epoch shape; SMALL covers ``k > 1`` with smaller batches to keep the
#: scalar comparison loop fast.
SWEEPS = [
    (TOY_PARAMETERS, (1, 2, 7, 64)),
    (SMALL_PARAMETERS, (1, 2, 7)),
]


@pytest.fixture(scope="module")
def toy_context() -> TFHEContext:
    context = TFHEContext(TOY_PARAMETERS, seed=1234)
    context.generate_server_keys()
    return context


@pytest.fixture(scope="module")
def small_context() -> TFHEContext:
    context = TFHEContext(SMALL_PARAMETERS, seed=1234)
    context.generate_server_keys()
    return context


def _context_for(params, toy_context, small_context) -> TFHEContext:
    return toy_context if params is TOY_PARAMETERS else small_context


def _assert_batch_equals_scalars(batch: LweBatch, scalars) -> None:
    assert len(batch) == len(scalars)
    for index, scalar in enumerate(scalars):
        np.testing.assert_array_equal(batch.masks[index], scalar.mask)
        assert int(batch.bodies[index]) == scalar.body


# -- the registry knob -----------------------------------------------------------


class TestKernelRegistry:
    def test_registered_backends(self):
        assert KERNEL_BACKENDS == ("scalar", "vectorized")
        for name in KERNEL_BACKENDS:
            assert resolve_kernels(name) == name

    def test_unknown_name_gets_did_you_mean(self):
        with pytest.raises(UnknownKernelError) as excinfo:
            resolve_kernels("vectorised")
        message = str(excinfo.value)
        assert "kernel backend" in message
        assert "did you mean 'vectorized'" in message
        # Matches both historical catch styles of the other registries.
        assert isinstance(excinfo.value, KeyError)
        assert isinstance(excinfo.value, ValueError)

    def test_session_validates_the_knob(self):
        with pytest.raises(UnknownKernelError, match="scalar"):
            Session("TOY", kernels="simd")

    def test_reference_backend_validates_the_knob(self):
        netlist = Netlist(TOY_PARAMETERS, name="tiny")
        netlist.add_input("a")
        netlist.add_gate("not", "b", "a")
        with pytest.raises(UnknownKernelError, match="vectorized"):
            run(netlist, backend="reference", kernels="avx2")


# -- stacked containers ----------------------------------------------------------


class TestBatchTypes:
    def test_lwe_round_trip_is_loss_free(self, toy_context):
        ciphertexts = [toy_context.encrypt(m % 4) for m in range(5)]
        batch = LweBatch.from_ciphertexts(ciphertexts)
        assert len(batch) == 5
        assert batch.dimension == TOY_PARAMETERS.n
        _assert_batch_equals_scalars(batch, ciphertexts)
        _assert_batch_equals_scalars(batch, batch.to_ciphertexts())

    def test_empty_lwe_batch_raises(self):
        with pytest.raises(ValueError, match="at least one"):
            LweBatch.from_ciphertexts([])
        with pytest.raises(ValueError, match="at least one"):
            LweBatch(
                np.empty((0, TOY_PARAMETERS.n), dtype=np.int64),
                np.empty((0,), dtype=np.int64),
                TOY_PARAMETERS,
            )

    def test_mixed_dimensions_rejected(self, toy_context):
        narrow = toy_context.encrypt(1)
        wide = toy_context.programmable_bootstrap(narrow, lambda m: m, keyswitch=False)
        with pytest.raises(ValueError, match="mixed dimensions"):
            LweBatch.from_ciphertexts([narrow, wide.ciphertext])

    def test_empty_glwe_batch_raises(self):
        params = TOY_PARAMETERS
        with pytest.raises(ValueError, match="at least one"):
            GlweBatch(
                np.empty((0, params.k, params.N), dtype=np.int64),
                np.empty((0, params.N), dtype=np.int64),
                params,
            )


# -- seeded property sweeps -------------------------------------------------------


class TestBitForBitEquality:
    @pytest.mark.parametrize(
        "params,batch_sizes", SWEEPS, ids=[p.name for p, _ in SWEEPS]
    )
    def test_programmable_bootstrap_chain(
        self, params, batch_sizes, toy_context, small_context
    ):
        """Blind rotate + extract + keyswitch: batched == scalar, bit for bit."""
        context = _context_for(params, toy_context, small_context)
        keys = context.server_keys
        rng = np.random.default_rng(2024)
        p = params.message_modulus

        def function(m: int) -> int:
            return (3 * m + 1) % p

        for batch_size in batch_sizes:
            messages = rng.integers(0, p, size=batch_size)
            ciphertexts = [context.encrypt(int(m)) for m in messages]
            batched = batch_programmable_bootstrap(
                LweBatch.from_ciphertexts(ciphertexts),
                function,
                keys.bootstrapping_key,
                params,
                keys.keyswitching_key,
            )
            scalars = [
                programmable_bootstrap(
                    ct, function, keys.bootstrapping_key, params, keys.keyswitching_key
                )
                for ct in ciphertexts
            ]
            _assert_batch_equals_scalars(
                batched.ciphertexts, [s.ciphertext for s in scalars]
            )
            _assert_batch_equals_scalars(
                batched.extracted, [s.extracted for s in scalars]
            )

    def test_batch_of_one_equals_scalar_exactly(self, toy_context):
        keys = toy_context.server_keys
        params = TOY_PARAMETERS
        ciphertext = toy_context.encrypt(2)
        batched = batch_programmable_bootstrap(
            LweBatch.from_ciphertexts([ciphertext]),
            lambda m: m,
            keys.bootstrapping_key,
            params,
            keys.keyswitching_key,
        )
        scalar = programmable_bootstrap(
            ciphertext, lambda m: m, keys.bootstrapping_key, params, keys.keyswitching_key
        )
        np.testing.assert_array_equal(batched.ciphertexts.masks[0], scalar.ciphertext.mask)
        assert int(batched.ciphertexts.bodies[0]) == scalar.ciphertext.body

    @pytest.mark.parametrize(
        "params,batch_sizes", SWEEPS, ids=[p.name for p, _ in SWEEPS]
    )
    def test_monomial_multiply(self, params, batch_sizes, toy_context, small_context):
        """Batched negacyclic rotation == scalar for random and edge exponents."""
        rng = np.random.default_rng(7)
        n = params.N
        for batch_size in batch_sizes:
            polys = rng.integers(0, params.q, size=(batch_size, n), dtype=np.int64)
            edge = np.array([0, 1, n - 1, n, 2 * n - 1, -1, -n, 3 * n])
            exponents = np.concatenate(
                [edge, rng.integers(-2 * n, 2 * n, size=batch_size)]
            )[:batch_size]
            rotated = batch_monomial_multiply(polys, exponents, params.q)
            for index in range(batch_size):
                expected = monomial_multiply(
                    polys[index], int(exponents[index]), params.q
                )
                np.testing.assert_array_equal(rotated[index], expected)

    def test_keyswitch_matches_scalar(self, small_context):
        """The int-exact keyswitch contraction: batched == scalar on k > 1."""
        params = SMALL_PARAMETERS
        keys = small_context.server_keys
        rng = np.random.default_rng(11)
        extracted = []
        for message in rng.integers(0, params.message_modulus, size=4):
            ct = small_context.encrypt(int(message))
            extracted.append(
                programmable_bootstrap(
                    ct, lambda m: m, keys.bootstrapping_key, params
                ).ciphertext
            )
        batched = batch_keyswitch(
            LweBatch.from_ciphertexts(extracted), keys.keyswitching_key, params
        )
        scalars = [keyswitch(ct, keys.keyswitching_key, params) for ct in extracted]
        _assert_batch_equals_scalars(batched, scalars)

    def test_sample_extract_rejects_nothing_but_chain_validates_shapes(
        self, toy_context
    ):
        params = TOY_PARAMETERS
        keys = toy_context.server_keys
        narrow = LweBatch.from_ciphertexts([toy_context.encrypt(1)])
        with pytest.raises(ValueError, match="dimension"):
            batch_keyswitch(narrow, keys.keyswitching_key, params)
        rng = np.random.default_rng(3)
        stack = GlweBatch(
            rng.integers(0, params.q, size=(2, params.k, params.N)),
            rng.integers(0, params.q, size=(2, params.N)),
            params,
        )
        extracted = batch_sample_extract(stack)
        for index, glwe in enumerate(stack.to_ciphertexts()):
            scalar = glwe.sample_extract(0)
            np.testing.assert_array_equal(extracted.masks[index], scalar.mask)
            assert int(extracted.bodies[index]) == scalar.body


# -- gates -----------------------------------------------------------------------


class TestBatchGates:
    def test_gate_registry_covers_the_scalar_gate_set(self):
        assert set(BATCH_GATES) == set(GateBootstrapper.PBS_COST)

    def test_all_gates_match_scalar_bit_for_bit(self, toy_context):
        params = TOY_PARAMETERS
        keys = toy_context.server_keys
        gates = toy_context.gates()
        rng = np.random.default_rng(42)
        batch_size = 8
        lhs = [toy_context.encrypt_boolean(bool(b)) for b in rng.integers(0, 2, batch_size)]
        rhs = [toy_context.encrypt_boolean(bool(b)) for b in rng.integers(0, 2, batch_size)]
        sel = [toy_context.encrypt_boolean(bool(b)) for b in rng.integers(0, 2, batch_size)]
        stacked = {
            name: LweBatch.from_ciphertexts(cts)
            for name, cts in (("lhs", lhs), ("rhs", rhs), ("sel", sel))
        }
        scalar_methods = {
            "and": gates.and_,
            "or": gates.or_,
            "nand": gates.nand,
            "nor": gates.nor,
            "xor": gates.xor,
            "xnor": gates.xnor,
            "andny": gates.andny,
        }
        for name, method in scalar_methods.items():
            batched = batch_gate(
                name,
                (stacked["lhs"], stacked["rhs"]),
                keys.bootstrapping_key,
                keys.keyswitching_key,
                params,
            )
            _assert_batch_equals_scalars(batched, [method(a, b) for a, b in zip(lhs, rhs)])
        batched_not = batch_gate(
            "not", (stacked["lhs"],), keys.bootstrapping_key, keys.keyswitching_key, params
        )
        _assert_batch_equals_scalars(batched_not, [gates.not_(a) for a in lhs])
        batched_mux = batch_gate(
            "mux",
            (stacked["sel"], stacked["lhs"], stacked["rhs"]),
            keys.bootstrapping_key,
            keys.keyswitching_key,
            params,
        )
        _assert_batch_equals_scalars(
            batched_mux, [gates.mux(s, t, f) for s, t, f in zip(sel, lhs, rhs)]
        )

    def test_mismatched_operand_sizes_rejected(self, toy_context):
        keys = toy_context.server_keys
        two = LweBatch.from_ciphertexts(
            [toy_context.encrypt_boolean(True), toy_context.encrypt_boolean(False)]
        )
        one = LweBatch.from_ciphertexts([toy_context.encrypt_boolean(True)])
        with pytest.raises(ValueError, match="mixed sizes"):
            batch_gate(
                "and", (two, one), keys.bootstrapping_key, keys.keyswitching_key,
                TOY_PARAMETERS,
            )


# -- the Session knob -------------------------------------------------------------


class TestSessionKernels:
    @pytest.fixture(scope="class")
    def session(self) -> Session:
        sess = Session("TOY", seed=99)
        sess.generate_server_keys()
        return sess

    def test_default_is_scalar(self, session):
        assert session.kernels == "scalar"

    def test_vectorized_round_trips(self):
        sess = Session("TOY", seed=5, kernels="vectorized")
        messages = [0, 1, 2, 3, 1]
        assert sess.decrypt_batch(sess.encrypt_batch(messages)) == messages
        values = [True, False, True]
        assert sess.decrypt_boolean_batch(sess.encrypt_boolean_batch(values)) == values
        assert sess.encrypt_batch([]) == []
        assert sess.decrypt_batch([]) == []

    def test_bootstrap_batch_identical_across_backends(self, session):
        p = session.params.message_modulus
        ciphertexts = session.encrypt_batch([0, 1, 2, 3])
        session.kernels = "scalar"
        scalar_out = session.bootstrap_batch(ciphertexts, lambda m: (m + 1) % p)
        session.kernels = "vectorized"
        try:
            vector_out = session.bootstrap_batch(ciphertexts, lambda m: (m + 1) % p)
        finally:
            session.kernels = "scalar"
        for scalar, vector in zip(scalar_out, vector_out):
            np.testing.assert_array_equal(scalar.mask, vector.mask)
            assert scalar.body == vector.body

    def test_lut_and_gate_batches_identical_across_backends(self, session):
        lut = relu_lut(session.params)
        ciphertexts = session.encrypt_batch([0, 1, 2, 3])
        lhs = session.encrypt_boolean_batch([True, False, True])
        rhs = session.encrypt_boolean_batch([True, True, False])
        session.kernels = "scalar"
        scalar_lut = session.apply_lut_batch(ciphertexts, lut)
        scalar_gate = session.gate_batch("xor", lhs, rhs)
        session.kernels = "vectorized"
        try:
            vector_lut = session.apply_lut_batch(ciphertexts, lut)
            vector_gate = session.gate_batch("xor", lhs, rhs)
        finally:
            session.kernels = "scalar"
        for scalar, vector in zip(scalar_lut + scalar_gate, vector_lut + vector_gate):
            np.testing.assert_array_equal(scalar.mask, vector.mask)
            assert scalar.body == vector.body


# -- the reference-backend knob ----------------------------------------------------


class TestReferenceBackendKernels:
    @pytest.fixture(scope="class")
    def session(self) -> Session:
        sess = Session("TOY", seed=77)
        sess.generate_server_keys()
        return sess

    def test_adder_outputs_identical(self, session):
        netlist = full_adder_netlist(TOY_PARAMETERS, bits=2)
        cases = [(1, 3), (2, 2), (3, 1)]
        inputs = [
            {
                "a0": bool(a & 1),
                "a1": bool(a >> 1 & 1),
                "b0": bool(b & 1),
                "b1": bool(b >> 1 & 1),
            }
            for a, b in cases
        ]
        scalar = run(netlist, backend="reference", session=session, inputs=inputs)
        vector = run(
            netlist,
            backend="reference",
            session=session,
            inputs=inputs,
            kernels="vectorized",
        )
        assert scalar.outputs == vector.outputs
        assert scalar.details["kernels"] == "scalar"
        assert vector.details["kernels"] == "vectorized"

    def test_lut_linear_outputs_identical(self, session):
        p = TOY_PARAMETERS.message_modulus
        netlist = Netlist(TOY_PARAMETERS, name="lut-linear")
        a = netlist.add_input("a")
        b = netlist.add_input("b")
        combined = netlist.add_linear("combined", (a, b), coefficients=(1, 2))
        netlist.add_lut("out", combined, function=lambda m: (m * m) % p)
        inputs = [{"a": 1, "b": 0}, {"a": 0, "b": 1}, {"a": 1, "b": 1}]
        scalar = run(netlist, backend="reference", session=session, inputs=inputs)
        vector = run(
            netlist, backend="reference", session=session, inputs=inputs,
            kernels="vectorized",
        )
        assert scalar.outputs == vector.outputs

    def test_session_kernels_are_inherited(self):
        sess = Session("TOY", seed=31, kernels="vectorized")
        netlist = Netlist(TOY_PARAMETERS, name="inherit")
        a = netlist.add_input("a")
        netlist.add_gate("not", "b", a)
        result = run(netlist, backend="reference", session=sess, inputs={"a": True})
        assert result.details["kernels"] == "vectorized"
        assert result.outputs == [{"b": False}]

    def test_mixed_encodings_on_one_wire_rejected(self, session):
        netlist = Netlist(TOY_PARAMETERS, name="mixed")
        a = netlist.add_input("a")
        netlist.add_gate("not", "b", a)
        with pytest.raises(ValueError, match="one encoding per wire"):
            run(
                netlist,
                backend="reference",
                session=session,
                inputs=[{"a": True}, {"a": 2}],
                kernels="vectorized",
            )


# -- transform-instance registry ---------------------------------------------------


class TestTransformRegistry:
    def test_instances_are_cached_with_hit_miss_accounting(self):
        clear_transform_caches()
        try:
            first = get_folded_transform(128)
            again = get_folded_transform(128)
            other = get_negacyclic_transform(128)
            assert first is again
            assert other is get_negacyclic_transform(128)
            stats = transform_cache_stats()
            assert stats["folded_misses"] == 1
            assert stats["folded_hits"] == 1
            assert stats["full_misses"] == 1
            assert stats["full_hits"] == 1
            assert stats["folded_entries"] == stats["full_entries"] == 1
        finally:
            clear_transform_caches()

    def test_counters_surface_as_an_obs_view(self):
        clear_transform_caches()
        try:
            registry = MetricsRegistry()
            register_transform_cache_view(registry)
            get_folded_transform(256)
            get_folded_transform(256)
            collected = registry.collect()
            assert collected["fft_transform_cache_folded_misses"] == 1.0
            assert collected["fft_transform_cache_folded_hits"] == 1.0
            assert collected["fft_transform_cache_folded_entries"] == 1.0
        finally:
            clear_transform_caches()

    def test_kernel_paths_share_one_instance(self, toy_context):
        """Scalar and vectorized PBS must use the same cached transform."""
        clear_transform_caches()
        try:
            keys = toy_context.server_keys
            ct = toy_context.encrypt(1)
            programmable_bootstrap(
                ct, lambda m: m, keys.bootstrapping_key, TOY_PARAMETERS
            )
            after_scalar = transform_cache_stats()["folded_entries"]
            batch_programmable_bootstrap(
                LweBatch.from_ciphertexts([ct]),
                lambda m: m,
                keys.bootstrapping_key,
                TOY_PARAMETERS,
            )
            stats = transform_cache_stats()
            assert stats["folded_entries"] == after_scalar == 1
            assert stats["folded_misses"] == 1
            assert stats["folded_hits"] > 0
        finally:
            clear_transform_caches()


# -- stacked wire codecs -----------------------------------------------------------


class TestBatchCodecs:
    def _batch(self, count: int = 5) -> LweBatch:
        rng = np.random.default_rng(9)
        params = TOY_PARAMETERS
        return LweBatch(
            rng.integers(0, params.q, size=(count, params.n)),
            rng.integers(0, params.q, size=count),
            params,
        )

    def test_round_trip_is_exact(self):
        batch = self._batch()
        decoded = lwe_batch_from_bytes(lwe_batch_to_bytes(batch), TOY_PARAMETERS)
        np.testing.assert_array_equal(decoded.masks, batch.masks)
        np.testing.assert_array_equal(decoded.bodies, batch.bodies)

    def test_size_is_header_plus_one_contiguous_array(self):
        batch = self._batch(3)
        encoded = lwe_batch_to_bytes(batch)
        header = 14 + len(TOY_PARAMETERS.name.encode("utf-8"))
        assert len(encoded) == header + 3 * (TOY_PARAMETERS.n + 1) * 8
        assert encoded.startswith(LWE_BATCH_WIRE_MAGIC)

    def test_parameter_mismatch_rejected(self):
        encoded = lwe_batch_to_bytes(self._batch())
        with pytest.raises(ValueError, match="parameter set"):
            lwe_batch_from_bytes(encoded, SMALL_PARAMETERS)

    def test_corruption_rejected(self):
        encoded = lwe_batch_to_bytes(self._batch())
        with pytest.raises(ValueError, match="magic"):
            lwe_batch_from_bytes(b"XXXX" + encoded[4:], TOY_PARAMETERS)
        with pytest.raises(ValueError, match="truncated"):
            lwe_batch_from_bytes(encoded[:8], TOY_PARAMETERS)
        with pytest.raises(ValueError, match="implies"):
            lwe_batch_from_bytes(encoded[:-8], TOY_PARAMETERS)
        with pytest.raises(ValueError, match="implies"):
            lwe_batch_from_bytes(encoded + b"\x00" * 8, TOY_PARAMETERS)
