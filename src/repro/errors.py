"""Shared registry-lookup errors with a did-you-mean rendering.

The stack grew several string-keyed registries — execution backends,
sharding policies, placement layouts, cost models — and each used to fail
lookups its own way (bare ``KeyError``, ad-hoc ``ValueError``).  They now
share one error shape: a plain-sentence message listing every registered
name, a did-you-mean suggestion when one is close, and pickling that
survives process boundaries (xdist workers, executors).

Subclasses set :attr:`UnknownNameError.kind` to the registry's noun
(``"backend"``, ``"sharding policy"``, ...) and keep whatever base classes
their callers historically caught (``KeyError`` here; policies add
``ValueError``).
"""

from __future__ import annotations

import difflib


class UnknownNameError(KeyError):
    """A name was looked up in a registry that does not contain it.

    Subclasses ``KeyError`` for compatibility with callers that catch the
    registries' historical exception, but renders as a plain sentence (bare
    ``KeyError`` wraps its message in quotes) listing every registered name
    and, when one is close, a did-you-mean suggestion.
    """

    #: Noun describing what the registry holds (set by subclasses).
    kind = "name"
    #: Plural of :attr:`kind` when adding ``"s"`` is not enough.
    kind_plural: str | None = None

    def __init__(self, name: str, registered: list[str]):
        self.name = name
        self.registered = registered
        plural = self.kind_plural or f"{self.kind}s"
        message = f"unknown {self.kind} {name!r}; registered {plural}: {registered}"
        matches = difflib.get_close_matches(name, registered, n=1)
        if matches:
            message += f" — did you mean {matches[0]!r}?"
        super().__init__(message)

    def __str__(self) -> str:  # KeyError.__str__ shows repr(args[0]); undo that.
        return self.args[0]

    def __reduce__(self):  # BaseException pickles as cls(*args); args is the message.
        return (type(self), (self.name, self.registered))


class UnknownPolicyError(UnknownNameError, ValueError):
    """Unknown sharding-policy name.

    Also a ``ValueError``: that is what :func:`repro.serve.sharding
    .get_policy` historically raised, and callers match on it.
    """

    kind = "sharding policy"
    kind_plural = "sharding policies"


class UnknownLayoutError(UnknownNameError):
    """Unknown placement-layout name."""

    kind = "placement layout"


class UnknownCostModelError(UnknownNameError):
    """Unknown cost-model name."""

    kind = "cost model"


class UnknownKeyPolicyError(UnknownNameError):
    """Unknown key-cache eviction-policy name."""

    kind = "key-cache policy"
    kind_plural = "key-cache policies"


class UnknownMetricError(UnknownNameError):
    """Unknown metric name in a :class:`repro.obs.MetricsRegistry`."""

    kind = "metric"


class UnknownAdmissionPolicyError(UnknownNameError, ValueError):
    """Unknown admission-policy name (``repro.flow.get_admission_policy``).

    Also a ``ValueError``: admission is an argument-validation surface
    (``Server(admission=...)``) and its callers match on ``ValueError``
    like the sharding-policy and kernel knobs.
    """

    kind = "admission policy"
    kind_plural = "admission policies"


class UnknownKernelError(UnknownNameError, ValueError):
    """Unknown kernel-backend name (``"scalar"`` / ``"vectorized"``).

    Also a ``ValueError``: the kernels knob is an argument-validation
    surface (``Session(kernels=...)``, ``run(..., kernels=...)``) and its
    callers match on ``ValueError`` like every other bad-argument path.
    """

    kind = "kernel backend"
