"""A sharded multi-device Strix cluster.

One Strix chip saturates at ``TvLP × core-batch`` ciphertexts per epoch; the
serving tier the ROADMAP asks for needs more.  :class:`StrixCluster` models
``N`` identical chips behind one host.  *Where* work lands is delegated to a
pluggable :class:`~repro.sched.layouts.PlacementLayout` (data-parallel /
pipeline / elastic) and *how long* a serving batch occupies its device to a
pluggable :class:`~repro.sched.cost.CostModel` (closed-form analytical or
event-driven on the cycle-level scheduler, the latter memoized by a
:class:`~repro.sched.memo.ScheduleCache` so repeated batch shapes price in
dictionary-lookup time); both paths share the
:class:`~repro.arch.interconnect.InterconnectModel` for ciphertext and
BSK/KSK key-shipping traffic, and every dispatch funnels its targets
through the cluster's :class:`~repro.arch.key_cache.KeyResidencyManager`,
which tracks which devices hold which tenants' keys and — under a finite
``key_budget_bytes`` — evicts and charges re-shipping:

* :meth:`run` — one large workload across the devices: the layout shards it
  (data-parallel: per-node ciphertext splits; pipeline: stage-per-device)
  and aggregates per-device schedules into a cluster-level
  :class:`~repro.runtime.result.RunResult`.
* :meth:`dispatch` — the serving path: a flushed :class:`Batch` executes
  where the layout places it and occupies those devices for the cost
  model's service time; per-device busy horizons are the load signal the
  least-loaded policy (and the elastic layout's autoscaler) read.

With one device, the data-parallel layout, the analytical cost model and
the default (zero) dispatch overhead the cluster degenerates to the
single-device simulator bit-for-bit, which is what ties cluster results
back to the paper's numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.accelerator import StrixAccelerator
from repro.arch.config import StrixClusterConfig, StrixConfig
from repro.arch.energy import EnergyModel
from repro.arch.interconnect import InterconnectModel
from repro.arch.key_cache import KeyEvictionPolicy, KeyResidencyManager
from repro.faults import FaultInjector, FaultSchedule
from repro.params import TFHEParameters
from repro.runtime.result import RunResult
from repro.runtime.workload import WorkloadLike, resolve_params
from repro.sched.cost import CostModel, EventDrivenCostModel, get_cost_model
from repro.sched.layouts import (
    DeviceShardResult,
    Dispatch,
    PlacementLayout,
    get_layout,
)
from repro.sched.memo import DEFAULT_COST_CACHE_CAPACITY, ScheduleCache
from repro.serve.batcher import Batch
from repro.serve.sharding import ShardingPolicy, get_policy
from repro.sim.scheduler import StrixScheduler

#: Name under which the cluster registers in the runtime backend registry.
CLUSTER_BACKEND_NAME = "strix-cluster"

__all__ = [
    "CLUSTER_BACKEND_NAME",
    "DeviceShardResult",
    "StrixCluster",
    "StrixDevice",
    "resolve_cluster_params",
]


@dataclass
class StrixDevice:
    """One chip of the cluster plus its serving-time state."""

    index: int
    accelerator: StrixAccelerator
    scheduler: StrixScheduler
    energy_model: EnergyModel
    #: Simulated time at which the device finishes its last accepted batch.
    busy_until: float = 0.0
    #: Accumulated busy seconds (for utilization over a horizon).
    busy_s: float = 0.0
    #: Serving batches and bootstraps this device executed.
    batches: int = 0
    pbs: int = 0

    def reset_serving_state(self) -> None:
        """Clear the busy horizon and counters between simulations."""
        self.busy_until = 0.0
        self.busy_s = 0.0
        self.batches = 0
        self.pbs = 0


class StrixCluster:
    """``N`` simulated Strix devices behind one placement layout."""

    #: Runtime-registry name reported in cluster-level :class:`RunResult`\ s.
    backend_name = CLUSTER_BACKEND_NAME

    def __init__(
        self,
        devices: int | None = None,
        policy: str | ShardingPolicy = "round-robin",
        config: StrixClusterConfig | None = None,
        device_config: StrixConfig | None = None,
        layout: str | PlacementLayout = "data-parallel",
        cost_model: str | CostModel = "analytical",
        key_budget_bytes: float | None = None,
        key_policy: "str | KeyEvictionPolicy | None" = None,
        cost_cache_capacity: int | None = None,
        faults: FaultSchedule | None = None,
        on_death: str = "retry",
    ):
        """Build ``N`` identical simulated devices behind one layout.

        ``faults`` is the deterministic fault plan serving replays under
        (see :mod:`repro.faults`); ``None`` — and the explicit
        :meth:`~repro.faults.FaultSchedule.empty` — keep every dispatch on
        the historical fast path, byte-for-byte.  ``on_death`` decides what
        happens to a batch whose device dies mid-execution: ``"retry"``
        (default) replays it onto a survivor from the failure instant,
        ``"drop"`` counts its requests as lost.

        ``key_budget_bytes`` / ``key_policy`` override the cluster config's
        key-memory knobs for this cluster; ``None`` means *unspecified*
        (the config's value stands — build a config with
        ``key_budget_bytes=None`` to model unbounded key memory
        explicitly).  String policy names are folded back into
        ``self.config`` so re-deriving a cluster from it reproduces the
        policy; an explicit
        :class:`~repro.arch.key_cache.KeyEvictionPolicy` instance — e.g. a
        :class:`~repro.arch.key_cache.PinnedTenantPolicy` with a pinned
        set — passes straight through to the residency manager instead.

        ``cost_cache_capacity`` sizes the schedule cache the event-driven
        cost model is wrapped in (memoized batch pricing is bit-for-bit
        identical, so ``cost_model="event"`` gets the cache by default):
        ``None`` uses :data:`~repro.sched.memo.DEFAULT_COST_CACHE_CAPACITY`,
        ``0`` disables memoization, any other value bounds the LRU.  A
        pre-built :class:`~repro.sched.memo.ScheduleCache` instance passed
        as ``cost_model`` is used as-is when ``cost_cache_capacity`` is
        unspecified; an explicit capacity re-sizes it (fresh cache around
        the same inner model) and ``0`` unwraps it — the knob always wins,
        including on the backend's per-call reshape path.
        """
        if config is None:
            config = StrixClusterConfig(
                devices=devices if devices is not None else 4,
                device=device_config if device_config is not None else StrixConfig(),
            )
        else:
            if device_config is not None:
                raise ValueError(
                    "pass either config (which carries the per-device "
                    "configuration) or device_config, not both"
                )
            if devices is not None and devices != config.devices:
                config = config.with_devices(devices)
        if key_budget_bytes is not None or isinstance(key_policy, str):
            config = config.with_key_budget(
                key_budget_bytes
                if key_budget_bytes is not None
                else config.key_budget_bytes,
                key_policy if isinstance(key_policy, str) else None,
            )
        self.config = config
        self.policy = get_policy(policy)
        self.layout = get_layout(layout)
        #: Tracer notified on every serving dispatch (``None`` = tracing off);
        #: installed by :meth:`repro.serve.Server.enable_tracing`.
        self.tracer = None
        self.cost_model = get_cost_model(cost_model)
        if isinstance(self.cost_model, ScheduleCache):
            if cost_cache_capacity == 0:
                self.cost_model = self.cost_model.inner
            elif (
                cost_cache_capacity is not None
                and cost_cache_capacity != self.cost_model.capacity
            ):
                self.cost_model = ScheduleCache(
                    self.cost_model.inner, capacity=cost_cache_capacity
                )
        elif cost_cache_capacity != 0 and isinstance(
            self.cost_model, EventDrivenCostModel
        ):
            self.cost_model = ScheduleCache(
                self.cost_model,
                capacity=(
                    cost_cache_capacity
                    if cost_cache_capacity is not None
                    else DEFAULT_COST_CACHE_CAPACITY
                ),
            )
        #: Fault resolver (active only when a non-empty schedule is given).
        self.faults = FaultInjector(
            faults if faults is not None else FaultSchedule.empty(),
            on_death=on_death,
        )
        self.interconnect = InterconnectModel(config)
        self.key_residency = KeyResidencyManager(
            devices=config.devices,
            interconnect=self.interconnect,
            budget_bytes=config.key_budget_bytes,
            policy=key_policy if key_policy is not None else config.key_policy,
        )
        self.devices = [
            StrixDevice(
                index=index,
                accelerator=(accelerator := StrixAccelerator(config.device)),
                scheduler=StrixScheduler(accelerator),
                energy_model=EnergyModel(accelerator),
            )
            for index in range(config.devices)
        ]

    def __len__(self) -> int:
        return len(self.devices)

    def available_indices(self, now: float) -> list[int]:
        """Device indices accepting placement at ``now``.

        Every index when no fault is scheduled (the common case — one list
        build, no schedule scan); under a schedule, dead and partitioned
        devices are excluded for the duration of their events.
        """
        if not self.faults.active:
            return list(range(len(self.devices)))
        return self.faults.schedule.available_indices(now, len(self.devices))

    # -- capacity ---------------------------------------------------------------

    def device_epoch_capacity(self, params: TFHEParameters) -> int:
        """Ciphertexts one device bootstraps per epoch (device × core batch)."""
        device = self.devices[0]
        return device.accelerator.config.tvlp * device.accelerator.core.core_batch_size(
            params
        )

    def epoch_capacity(self, params: TFHEParameters) -> int:
        """Ciphertexts the whole cluster bootstraps per epoch."""
        return len(self.devices) * self.device_epoch_capacity(params)

    # -- sharded workload execution ----------------------------------------------

    def run(
        self,
        workload: WorkloadLike,
        params: TFHEParameters | str | None = None,
        instances: int = 1,
    ) -> RunResult:
        """Execute one workload across all devices, placed by the layout.

        Under the data-parallel (and elastic) layout, netlists replicated
        over ``instances`` shard at instance granularity and everything
        else lowers to a computation graph whose per-node ciphertexts are
        partitioned by the sharding policy; the pipeline layout instead
        cuts the graph's dependency levels into one stage per device.
        """
        return self.layout.run_workload(self, workload, params, instances)

    # -- serving path ------------------------------------------------------------

    def batch_service_s(self, batch: Batch, params: TFHEParameters) -> float:
        """Time one device needs to execute a serving batch.

        The cost model prices the compute residency (bootstraps streaming
        through the epoch pipeline, PBS-free encryption traffic on the
        host-side vector pipeline); shipping the batch's ciphertexts to the
        device is charged against the cluster interconnect.
        """
        cost = self.cost_model.batch_cost(batch, params, self.devices[0])
        transfer_s = self.interconnect.ciphertext_transfer_s(params, batch.total_items)
        return cost.compute_s + transfer_s + self.config.dispatch_overhead_s

    def dispatch(self, batch: Batch, now: float, params: TFHEParameters) -> Dispatch:
        """Execute a batch where the layout places it.

        Returns a :class:`~repro.sched.layouts.Dispatch` (iterable as the
        historical ``(device, start_s, end_s)`` triple) carrying the cost
        breakdown — transfer, dispatch overhead, key shipping, per-stage
        detail under the pipeline layout.

        With a non-empty fault schedule the dispatch routes through the
        cluster's :class:`~repro.faults.FaultInjector`, which excludes
        unreachable devices, replays (or drops) batches killed by a
        device death, and accounts the availability impact; the returned
        dispatch then carries ``retried`` / ``lost`` flags.
        """
        if self.faults.active:
            dispatch = self.faults.run(self, batch, now, params)
        else:
            dispatch = self.layout.dispatch(self, batch, now, params)
        if self.tracer is not None:
            self.tracer.on_dispatch(batch, dispatch)
        return dispatch

    def reset_serving_state(self) -> None:
        """Clear every device's busy horizon and counters (and policy,
        layout, cost-model and key-residency state), so repeated
        simulations on one cluster are deterministic."""
        for device in self.devices:
            device.reset_serving_state()
        self.policy.reset()
        self.layout.reset()
        self.cost_model.reset()
        self.key_residency.reset()
        self.faults.reset()

    @property
    def key_cache_stats(self) -> dict[str, int]:
        """Key-residency counters of the current simulation (see
        :class:`~repro.arch.key_cache.KeyCacheStats`)."""
        return self.key_residency.stats.to_dict()

    @property
    def cost_cache_stats(self) -> dict[str, int]:
        """Schedule-cache counters of the cost model (empty when the model
        doesn't memoize — e.g. the analytical default)."""
        return self.cost_model.cache_stats

    def device_utilization(self, horizon_s: float) -> dict[str, float]:
        """Busy fraction of every device over a serving horizon."""
        if horizon_s <= 0:
            return {f"dev{device.index}": 0.0 for device in self.devices}
        return {
            f"dev{device.index}": min(device.busy_s / horizon_s, 1.0)
            for device in self.devices
        }


def resolve_cluster_params(
    params: TFHEParameters | str | None, default_name: str = "I"
) -> TFHEParameters:
    """Resolve the parameter set serving operates under (set I by default)."""
    resolved = resolve_params(params)
    if resolved is None:
        resolved = resolve_params(default_name)
    assert resolved is not None
    return resolved
