"""Batched boolean gate bootstrapping.

The batch twin of :class:`repro.tfhe.gates.GateBootstrapper`: every gate is
one small integer linear combination of the operand stacks followed by one
*batched* sign bootstrap, so a batch of 64 AND gates costs one pass through
the vectorized PBS chain instead of 64 scalar passes.  The linear
combinations are exact ``int64`` arithmetic and the sign bootstrap is the
bit-for-bit honest :func:`repro.tfhe.batch.kernels.batch_bootstrap_to_sign`,
so gate outputs equal the scalar gate applied element by element.
"""

from __future__ import annotations

from repro.params import TFHEParameters
from repro.tfhe.batch.kernels import batch_bootstrap_to_sign
from repro.tfhe.batch.types import LweBatch
from repro.tfhe.keys import BootstrappingKey, KeySwitchingKey

#: Linear combination defining each two-input gate before the sign bootstrap:
#: ``(operand coefficients, offset sign, offset denominator)`` meaning
#: ``sign * (q // denominator) + sum(c_i * operand_i)``.  The constants match
#: the scalar :class:`repro.tfhe.gates.GateBootstrapper` formulas exactly.
_GATE_COMBINATIONS: dict[str, tuple[tuple[int, ...], int, int]] = {
    "and": ((1, 1), -1, 8),
    "or": ((1, 1), 1, 8),
    "nand": ((-1, -1), 1, 8),
    "nor": ((-1, -1), -1, 8),
    "xor": ((2, 2), 1, 4),
    "xnor": ((-2, -2), -1, 4),
    "andny": ((-1, 1), -1, 8),
}

#: Gates evaluable on a batch, including the compositions handled directly
#: by :func:`batch_gate`.
BATCH_GATES = tuple(_GATE_COMBINATIONS) + ("not", "mux")


def batch_gate(
    gate: str,
    operands: tuple[LweBatch, ...],
    bootstrapping_key: BootstrappingKey,
    keyswitching_key: KeySwitchingKey,
    params: TFHEParameters,
) -> LweBatch:
    """Evaluate ``gate`` element-wise across aligned operand batches.

    ``operands`` holds one :class:`LweBatch` per gate input (1 for ``not``,
    2 for the binary gates, 3 for ``mux`` as ``(select, if_true,
    if_false)``), all of the same length.  Returns the batch of gate
    outputs, freshly bootstrapped for every gate except ``not``.
    """
    sizes = {len(operand) for operand in operands}
    if len(sizes) > 1:
        raise ValueError(f"gate operand batches have mixed sizes: {sorted(sizes)}")
    if gate == "not":
        (operand,) = operands
        return LweBatch(-operand.masks, -operand.bodies, params)
    if gate == "mux":
        select, if_true, if_false = operands
        first = batch_gate(
            "and", (select, if_true), bootstrapping_key, keyswitching_key, params
        )
        second = batch_gate(
            "andny", (select, if_false), bootstrapping_key, keyswitching_key, params
        )
        return batch_gate(
            "or", (first, second), bootstrapping_key, keyswitching_key, params
        )
    try:
        coefficients, offset_sign, denominator = _GATE_COMBINATIONS[gate]
    except KeyError:
        raise ValueError(f"unknown gate {gate!r}") from None
    if len(operands) != len(coefficients):
        raise ValueError(
            f"gate {gate!r} takes {len(coefficients)} operands, got {len(operands)}"
        )
    masks = sum(c * operand.masks for c, operand in zip(coefficients, operands))
    bodies = sum(c * operand.bodies for c, operand in zip(coefficients, operands))
    offset = offset_sign * ((params.q // denominator) % params.q)
    combination = LweBatch(masks, bodies + offset, params)
    return batch_bootstrap_to_sign(
        combination, bootstrapping_key, params, keyswitching_key
    ).ciphertexts
