"""Workload normalization: one front door for every workload description.

The stack grew three ways of describing a workload — gate-level
:class:`~repro.sim.compiler.Netlist` circuits, aggregate
:class:`~repro.sim.graph.ComputationGraph` DAGs, and the
:class:`~repro.apps.deep_nn.DeepNNModel` application descriptions — and every
consumer used to pick one.  The runtime accepts any of them (plus Deep-NN
model names like ``"NN-20"``) and lowers them to the representation a backend
needs.
"""

from __future__ import annotations

from typing import Union

from repro.apps.deep_nn import ZAMA_DEEP_NN_MODELS, DeepNNModel, build_deep_nn_graph
from repro.params import PARAM_SET_I, TFHEParameters, get_parameters
from repro.sim.compiler import Netlist, compile_netlist
from repro.sim.graph import ComputationGraph

#: Everything :func:`repro.runtime.run` accepts as a workload.
WorkloadLike = Union[Netlist, ComputationGraph, DeepNNModel, str]


def resolve_params(
    params: TFHEParameters | str | None, default: TFHEParameters | None = None
) -> TFHEParameters | None:
    """Resolve a parameter-set argument (object, name, or ``None``)."""
    if params is None:
        return default
    if isinstance(params, str):
        return get_parameters(params)
    return params


def workload_params(workload: WorkloadLike) -> TFHEParameters | None:
    """The parameter set a workload was built with, when it carries one."""
    if isinstance(workload, (Netlist, ComputationGraph)):
        return workload.params
    return None


def workload_name(workload: WorkloadLike) -> str:
    """Human-readable name of a workload."""
    if isinstance(workload, (Netlist, ComputationGraph)):
        return workload.name
    if isinstance(workload, DeepNNModel):
        return workload.name
    return str(workload)


def as_netlist(workload: WorkloadLike, params: TFHEParameters | str | None = None) -> Netlist:
    """Lower a workload to a :class:`Netlist`, or explain why it cannot be.

    Only netlists carry operation-level semantics (which gate, which LUT
    function), so only they can be executed *functionally*; aggregate graphs
    and model descriptions only know PBS counts.
    """
    if not isinstance(workload, Netlist):
        raise TypeError(
            f"functional execution needs a Netlist (got {type(workload).__name__}); "
            "computation graphs and Deep-NN models only carry operation counts, "
            "not operation semantics — use a performance backend for those"
        )
    resolved = resolve_params(params, default=workload.params)
    if resolved != workload.params:
        return workload.with_params(resolved)
    return workload


def as_graph(
    workload: WorkloadLike,
    params: TFHEParameters | str | None = None,
    instances: int = 1,
) -> ComputationGraph:
    """Lower any workload description to a :class:`ComputationGraph`.

    ``instances`` replicates a netlist over independent inputs (the batching
    knob); graphs and Deep-NN models describe a fixed shape, so replication
    is only supported for netlists.
    """
    if instances < 1:
        raise ValueError("instances must be at least 1")
    if isinstance(workload, str):
        try:
            workload = ZAMA_DEEP_NN_MODELS[workload]
        except KeyError:
            raise KeyError(
                f"unknown workload {workload!r}; known Deep-NN models: "
                f"{sorted(ZAMA_DEEP_NN_MODELS)}"
            ) from None
    if isinstance(workload, Netlist):
        return compile_netlist(as_netlist(workload, params), instances)
    if instances != 1:
        raise ValueError(
            "instances > 1 is only supported for Netlist workloads; replicate "
            "graphs explicitly when building them"
        )
    if isinstance(workload, ComputationGraph):
        resolved = resolve_params(params, default=workload.params)
        if resolved != workload.params:
            return workload.with_params(resolved)
        return workload
    if isinstance(workload, DeepNNModel):
        resolved = resolve_params(params, default=PARAM_SET_I)
        return build_deep_nn_graph(workload, resolved)
    raise TypeError(
        f"unsupported workload type {type(workload).__name__}; expected a "
        "Netlist, ComputationGraph, DeepNNModel or Deep-NN model name"
    )
