"""Adaptive batcher: turns a trickle of requests into epoch-sized batches.

The accelerator wants device×core epochs; clients send requests that are
orders of magnitude smaller.  The batcher coalesces queued requests into
:class:`Batch` objects under two flush triggers:

* **full** — queued items reach the configured capacity (one device epoch by
  default), so the batch ships at maximum occupancy;
* **deadline** — the oldest queued request has waited ``max_delay_s``, so
  tail latency stays bounded even under light load.

*Which* requests fill a flushing batch is the QoS discipline:

* ``"fifo"`` (default) — strict arrival order across tenants, exactly the
  historical behaviour;
* ``"fair"`` — weighted fair queuing over the per-tenant subqueues: each
  tenant accrues virtual time proportional to the items it ships divided by
  its weight, the batch takes the request with the earliest virtual finish
  tag, and — because every request in a batch completes *together* — each
  tenant's share of one batch is additionally capped at its
  weight-proportional slice of the capacity (a request that would bust the
  cap still ships, but in its own batch).  A tenant flooding large requests
  then only delays *itself*: light tenants keep their slice of every batch
  and their p99 stops inflating with someone else's backlog.

A single request larger than the capacity is shipped alone as an oversized
batch — the cluster already splits any batch into multiple epochs, so
splitting one logical request across batches would only complicate
completion tracking without saving any cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.serve.queue import RequestQueue
from repro.serve.request import Request

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.obs.trace import Tracer


@dataclass(frozen=True)
class Batch:
    """A flushed group of requests headed for one device.

    ``flush_reason`` records the *trigger* (``"full"`` = capacity pressure,
    ``"deadline"``, ``"drain"``), not the achieved occupancy: a capacity
    flush can ship below capacity when the next whole request would not fit
    (requests are never split), so read fill levels from
    :meth:`fill_fraction`, not from the reason.

    ``attempt`` is 0 for every batch the batcher flushes; the fault
    injector's retry path replays a batch whose device died under it as a
    copy with ``attempt`` incremented, so retries are distinguishable in
    traces without a new identity.
    """

    batch_id: int
    requests: tuple[Request, ...]
    created_s: float
    flush_reason: str
    attempt: int = 0

    def __post_init__(self) -> None:
        if not self.requests:
            raise ValueError("a batch must contain at least one request")

    @property
    def total_items(self) -> int:
        """Batchable items across the batch's requests."""
        return sum(request.items for request in self.requests)

    @property
    def total_pbs(self) -> int:
        """Bootstraps the batch costs on the accelerator."""
        return sum(request.total_pbs for request in self.requests)

    @property
    def tenants(self) -> set[str]:
        """Distinct tenants sharing the batch."""
        return {request.tenant for request in self.requests}

    def fill_fraction(self, capacity: int) -> float:
        """Occupancy of the batch relative to a capacity (may exceed 1)."""
        if capacity <= 0:
            return 0.0
        return self.total_items / capacity


class AdaptiveBatcher:
    """Flush-on-full / flush-on-deadline batching over a :class:`RequestQueue`."""

    def __init__(
        self,
        capacity_items: int,
        max_delay_s: float,
        qos: str = "fifo",
        tenant_weights: dict[str, float] | None = None,
        observer: "Tracer | None" = None,
        on_expired: Callable[[Request], None] | None = None,
    ):
        if capacity_items < 1:
            raise ValueError("batch capacity must be at least one item")
        if max_delay_s < 0:
            raise ValueError("max batch delay cannot be negative")
        if qos not in ("fifo", "fair"):
            raise ValueError(
                f"unknown QoS discipline {qos!r}; choose 'fifo' or 'fair'"
            )
        weights = dict(tenant_weights or {})
        if any(weight <= 0 for weight in weights.values()):
            raise ValueError("tenant weights must be positive")
        self.capacity_items = capacity_items
        self.max_delay_s = max_delay_s
        self.qos = qos
        self.tenant_weights = weights
        #: Tracer notified on every flushed batch (``None`` = tracing off).
        self.observer = observer
        #: Called with each request dropped as past its deadline (the flow
        #: controller counts them; ``None`` = drops are silent, but without
        #: deadlines on requests nothing is ever dropped).
        self.on_expired = on_expired
        self.batches_flushed = 0
        self.flush_reasons: dict[str, int] = {}
        # Weighted-fair-queuing state: per-tenant virtual finish tags and the
        # virtual clock (the start tag of the last dequeued request), which
        # re-anchors tenants that went idle so they don't bank credit.
        self._virtual_finish: dict[str, float] = {}
        self._virtual_clock = 0.0

    # -- flush decisions ----------------------------------------------------------

    def next_deadline(self, queue: RequestQueue) -> float | None:
        """Time at which the current queue head must flush, or ``None``.

        The deadline always tracks the *globally* oldest request — fair
        queuing reorders which requests fill a batch, not when one is owed.
        """
        oldest = queue.oldest()
        if oldest is None:
            return None
        return oldest.arrival_s + self.max_delay_s

    def poll(self, queue: RequestQueue, now: float) -> list[Batch]:
        """Flush every batch that is due at ``now``.

        Called after each arrival and at deadline expiries; an empty queue
        (or one that is neither full nor past its deadline) flushes nothing.
        """
        batches: list[Batch] = []
        while queue.queued_items >= self.capacity_items:
            batch = self._take(queue, now, "full")
            if batch is not None:
                batches.append(batch)
        deadline = self.next_deadline(queue)
        if deadline is not None and now >= deadline:
            batch = self._take(queue, now, "deadline")
            if batch is not None:
                batches.append(batch)
        return batches

    def drain(self, queue: RequestQueue, now: float) -> list[Batch]:
        """Flush everything still queued (end of a simulation / shutdown)."""
        batches: list[Batch] = []
        while queue:
            batch = self._take(queue, now, "drain")
            if batch is not None:
                batches.append(batch)
        return batches

    # -- internals ----------------------------------------------------------------

    def _weight(self, tenant: str) -> float:
        return self.tenant_weights.get(tenant, 1.0)

    def _tenant_caps(self, queue: RequestQueue) -> dict[str, int]:
        """Items each tenant may occupy in the batch being assembled.

        The weight-proportional slice of the capacity over the tenants
        queued when the batch *starts* (frozen for the whole take, so
        popping a tenant's last request does not hand its slice to the
        flooder mid-batch).  With a lone tenant the cap degenerates to the
        full capacity, so fair mode never slows an uncontended queue down.
        """
        tenants = list(queue.tenant_depths)
        total_weight = sum(self._weight(name) for name in tenants)
        if total_weight <= 0:
            return {}
        return {
            tenant: max(
                1,
                int(self.capacity_items * self._weight(tenant) / total_weight),
            )
            for tenant in tenants
        }

    def _select_tenant(
        self,
        queue: RequestQueue,
        in_batch: dict[str, int],
        caps: dict[str, int],
    ) -> str | None:
        """Tenant whose head request the next pop should take.

        FIFO follows global arrival order.  Fair queuing picks the minimal
        virtual finish tag ``max(tenant finish, virtual clock) + items /
        weight`` among tenants whose head still fits their per-batch
        admission cap — ties break on arrival order so equal-weight tenants
        interleave deterministically.  ``None`` means no queued head is
        admissible (the batch closes; capped requests ship in the next one).
        """
        if self.qos == "fifo":
            oldest = queue.oldest()
            assert oldest is not None
            return oldest.tenant
        heads = queue.tenant_heads()
        admissible = [
            tenant
            for tenant, head in heads.items()
            if not in_batch  # an empty batch admits anything (oversized ships alone)
            or in_batch.get(tenant, 0) + head.items
            <= caps.get(tenant, self.capacity_items)
        ]
        if not admissible:
            return None

        def finish_tag(tenant: str) -> tuple[float, float, int]:
            head = heads[tenant]
            start = max(self._virtual_finish.get(tenant, 0.0), self._virtual_clock)
            return (
                start + head.items / self._weight(tenant),
                head.arrival_s,
                head.request_id,
            )

        return min(admissible, key=finish_tag)

    def _pop_from(self, queue: RequestQueue, tenant: str) -> Request:
        request = queue.pop_for_tenant(tenant)
        if self.qos == "fair":
            start = max(self._virtual_finish.get(tenant, 0.0), self._virtual_clock)
            self._virtual_clock = start
            self._virtual_finish[tenant] = start + request.items / self._weight(tenant)
        return request

    def _take(self, queue: RequestQueue, now: float, reason: str) -> Batch | None:
        """Pop requests for one batch: fill up to capacity, never split one.

        Requests already past their deadline are popped and reported to
        ``on_expired`` instead of batched — executing them would waste
        device epochs on results nobody will read.  Returns ``None`` when
        every candidate had expired (the pops still made progress, so
        callers just skip the batch).
        """
        taken: list[Request] = []
        in_batch: dict[str, int] = {}
        caps = self._tenant_caps(queue) if self.qos == "fair" else {}
        items = 0
        while queue:
            tenant = self._select_tenant(queue, in_batch, caps)
            if tenant is None:
                break
            head = queue.oldest_for_tenant(tenant)
            assert head is not None
            if head.expired(now):
                # Plain pop, not _pop_from: expired work ships nothing, so
                # it must not advance the tenant's virtual finish tag.
                queue.pop_for_tenant(tenant)
                if self.on_expired is not None:
                    self.on_expired(head)
                continue
            if taken and items + head.items > self.capacity_items:
                break
            taken.append(self._pop_from(queue, tenant))
            in_batch[tenant] = in_batch.get(tenant, 0) + head.items
            items += head.items
            if items >= self.capacity_items:
                break
        if not taken:
            return None
        batch = Batch(
            batch_id=self.batches_flushed,
            requests=tuple(taken),
            created_s=now,
            flush_reason=reason,
        )
        self.batches_flushed += 1
        self.flush_reasons[reason] = self.flush_reasons.get(reason, 0) + 1
        if self.observer is not None:
            self.observer.on_batch(batch)
        return batch
