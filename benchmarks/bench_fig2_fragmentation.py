"""Fig. 2 — blind-rotation fragmentation on the GPU.

Regenerates both curves: the device-level batching staircase (kernel time
steps up every 72 ciphertexts) and the linear growth of emulated core-level
batching on the GPU, plus the Strix two-level batching comparison that
motivates the architecture.
"""

from __future__ import annotations

from repro.analysis.fragmentation import gpu_fragmentation_study, strix_batching_study
from repro.params import PARAM_SET_I


def test_fig2_gpu_fragmentation(benchmark, save_result):
    study = benchmark(gpu_fragmentation_study, PARAM_SET_I, 288, 8, 3)

    by_count = {point.ciphertexts: point for point in study.device_level}
    assert by_count[72].normalized_time == 1.0
    assert by_count[144].normalized_time == 2.0
    assert by_count[216].normalized_time == 3.0
    assert by_count[288].normalized_time == 4.0
    core_level = [point.normalized_time for point in study.core_level]
    assert core_level == [1.0, 2.0, 3.0]

    comparisons = strix_batching_study([72, 144, 288, 784, 2048], PARAM_SET_I)
    lines = [study.render(), "", "Two-level batching comparison (set I):",
             "  #LWE   GPU batch  GPU frag   Strix batch  Strix frag  reduction"]
    for row in comparisons:
        lines.append(
            f"  {row.ciphertexts:5d}   {row.gpu_batch_size:9d}  {row.gpu_fragments:8d}   "
            f"{row.strix_batch_size:11d}  {row.strix_fragments:10d}  {row.fragment_reduction:8.1f}x"
        )
    save_result("fig2_fragmentation", "\n".join(lines))
