"""Client-side overload handling: retry backoff and a circuit breaker.

The server half of the flow layer sheds and rejects; this is the client
half that makes those signals *useful*.  A :class:`RetryPolicy` turns an
attempt number into a capped exponential delay with seeded deterministic
jitter (two clients built from the same seed compute the same delays — a
replayable load test stays replayable even with retries on).  A
:class:`CircuitBreaker` stops a client from hammering a server that keeps
refusing it: after enough consecutive failures the circuit opens, calls
fail fast with :class:`CircuitOpenError`, and after a cool-down one probe
is let through to test recovery.

Time is always injected (``now_s`` arguments) — the breaker never reads a
wall clock, so its behaviour in tests and simulations is a pure function
of the call sequence.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


class RequestTimeoutError(TimeoutError):
    """A submitted request did not complete within its per-request timeout.

    Also a ``TimeoutError``: callers that already handle socket timeouts
    catch this without change.
    """


class ServerBusyError(RuntimeError):
    """The server answered ``BUSY`` — over capacity, try again later.

    ``retry_after_s`` is the server's deterministic backoff hint;
    :meth:`RetryPolicy.delay_s` folds it in when retrying.
    """

    def __init__(self, message: str, retry_after_s: float = 0.0):
        super().__init__(message)
        self.retry_after_s = retry_after_s


class CircuitOpenError(RuntimeError):
    """The client's circuit breaker is open — failing fast, not sending.

    ``retry_in_s`` is how long until the breaker will let a probe through.
    """

    def __init__(self, message: str, retry_in_s: float = 0.0):
        super().__init__(message)
        self.retry_in_s = retry_in_s


@dataclass
class RetryPolicy:
    """Capped exponential backoff with seeded deterministic jitter.

    Attempt ``n`` (0-based) waits ``base_delay_s * multiplier**n`` capped
    at ``max_delay_s``, scaled by a jitter factor drawn uniformly from
    ``[1 - jitter, 1 + jitter]`` out of a private ``random.Random(seed)``
    stream — deterministic per policy instance, decorrelated across
    instances with different seeds.  A server ``retry_after_s`` hint acts
    as a floor: the client never retries sooner than the server asked.
    """

    max_attempts: int = 5
    base_delay_s: float = 0.05
    multiplier: float = 2.0
    max_delay_s: float = 5.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("retry policy needs at least one attempt")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("retry delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("retry multiplier must be at least 1.0")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        self._rng = random.Random(self.seed)

    def should_retry(self, attempt: int) -> bool:
        """Whether attempt number ``attempt`` (0-based) may be made."""
        return attempt < self.max_attempts

    def delay_s(self, attempt: int, hint_s: float = 0.0) -> float:
        """Backoff before retry attempt ``attempt`` (the first retry is 1).

        ``hint_s`` is a server-supplied retry-after floor (from a BUSY
        reply); the returned delay is never below it.
        """
        backoff = min(
            self.max_delay_s, self.base_delay_s * self.multiplier ** max(0, attempt - 1)
        )
        factor = 1.0 + self.jitter * (2.0 * self._rng.random() - 1.0)
        return max(hint_s, backoff * factor)


@dataclass
class CircuitBreaker:
    """Consecutive-failure circuit breaker with injected time.

    Closed (normal) → ``failure_threshold`` consecutive failures → open
    (fail fast) → after ``reset_timeout_s`` → half-open (one probe
    allowed) → success closes, failure re-opens.  All transitions are
    driven by the ``now_s`` the caller passes, never a wall clock.
    """

    failure_threshold: int = 5
    reset_timeout_s: float = 1.0

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure threshold must be at least one")
        if self.reset_timeout_s < 0:
            raise ValueError("reset timeout must be non-negative")
        self._failures = 0
        self._opened_at_s: float | None = None
        self._probing = False
        self._probe_started_s = 0.0
        #: Times the breaker tripped open (monotone counter, for reports).
        self.trips = 0

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"`` or ``"half-open"`` (as of the last call)."""
        if self._opened_at_s is None:
            return "closed"
        return "half-open" if self._probing else "open"

    def check(self, now_s: float) -> None:
        """Gate a call at time ``now_s``.

        Raises :class:`CircuitOpenError` while open; silently admits the
        single half-open probe once the cool-down has elapsed.  A probe
        that never reported a verdict (its caller was cancelled, or died
        of an error the retry loop does not route back) expires after
        another ``reset_timeout_s``, so an abandoned probe cannot latch
        the breaker half-open forever.
        """
        if self._opened_at_s is None:
            return
        elapsed = now_s - self._opened_at_s
        if elapsed < self.reset_timeout_s:
            raise CircuitOpenError(
                f"circuit breaker is open ({self._failures} consecutive "
                "failures); failing fast",
                retry_in_s=self.reset_timeout_s - elapsed,
            )
        if self._probing:
            probe_age = now_s - self._probe_started_s
            if probe_age < self.reset_timeout_s:
                raise CircuitOpenError(
                    "circuit breaker is half-open and its probe is in flight",
                    retry_in_s=self.reset_timeout_s - probe_age,
                )
            # The outstanding probe is stale — treat it as abandoned and
            # let this call become the new probe.
        self._probing = True
        self._probe_started_s = now_s

    def abort_probe(self) -> None:
        """A gated call ended without a verdict — release the probe slot.

        For failures the breaker should not count (the caller was
        cancelled, or hit an error that is not the server's overload
        signal): the circuit returns to open with its cool-down clock
        untouched instead of staying half-open behind a probe that will
        never report back.  A no-op while the circuit is closed.
        """
        self._probing = False

    def record_success(self) -> None:
        """A gated call completed — close the circuit."""
        self._failures = 0
        self._opened_at_s = None
        self._probing = False

    def record_failure(self, now_s: float) -> None:
        """A gated call failed — trip the circuit when the threshold hits."""
        self._failures += 1
        if self._probing or self._failures >= self.failure_threshold:
            if self._opened_at_s is None or self._probing:
                self.trips += 1
            self._opened_at_s = now_s
            self._probing = False
