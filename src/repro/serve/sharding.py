"""Sharding policies: how work spreads over the cluster's devices.

Two decisions are delegated to a policy:

* :meth:`ShardingPolicy.partition` — splitting one large workload's
  ciphertexts across **all** devices (data-parallel sharding of a
  computation graph);
* :meth:`ShardingPolicy.select` — picking **one** device for a flushed
  serving batch (each batch is a single device's epoch stream).

Four policies ship: ``round-robin`` (balanced splits, rotating dispatch),
``least-loaded`` (dispatch to the device that frees up first, partition by
available headroom), ``affinity`` (tenant-sticky dispatch so a tenant's
bootstrapping keys stay resident on one device's HBM) and ``key-affinity``
(dispatch to the least-loaded device *currently holding* the tenant's
keys, read from the cluster's key-residency manager — the policy that
stays cheap when a finite key-memory budget starts evicting).

Dispatch decisions may consult key residency: the placement layout passes
``select`` a ``resident`` mask — one flag per candidate device, true where
the batch's lead tenant's BSK/KSK set is already resident — and policies
are free to ignore it (all but ``key-affinity`` do).
"""

from __future__ import annotations

import abc
import zlib

from repro.errors import UnknownPolicyError
from repro.serve.batcher import Batch


def _balanced_split(items: int, devices: int, offset: int = 0) -> list[int]:
    """Split ``items`` into ``devices`` near-equal shares.

    The remainder lands on consecutive devices starting at ``offset`` so
    repeated splits (one per graph node) do not pile every leftover
    ciphertext onto device 0.
    """
    base, remainder = divmod(items, devices)
    return [
        base + (1 if (index - offset) % devices < remainder else 0)
        for index in range(devices)
    ]


class ShardingPolicy(abc.ABC):
    """Strategy for partitioning and dispatching work across devices."""

    #: Registry name of the policy.
    name: str = ""

    @abc.abstractmethod
    def partition(self, items: int, devices: int, *, offset: int = 0) -> list[int]:
        """Per-device item counts for sharding one workload (sums to ``items``)."""

    @abc.abstractmethod
    def select(
        self,
        busy_until: list[float],
        batch: Batch,
        resident: list[bool] | None = None,
    ) -> int:
        """Device index that should execute a flushed serving batch.

        ``resident`` (when provided by the layout) flags, per candidate
        device, whether the batch's lead tenant's keys are already resident
        there; key-residency-aware policies prefer those devices to avoid
        BSK/KSK shipping, all others ignore the mask.
        """

    def reset(self) -> None:
        """Clear dispatch state between simulations (default: stateless)."""


class RoundRobinPolicy(ShardingPolicy):
    """Balanced partitioning; dispatch cycles through the devices in order."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def partition(self, items: int, devices: int, *, offset: int = 0) -> list[int]:
        return _balanced_split(items, devices, offset)

    def select(
        self,
        busy_until: list[float],
        batch: Batch,
        resident: list[bool] | None = None,
    ) -> int:
        device = self._next % len(busy_until)
        self._next += 1
        return device

    def reset(self) -> None:
        self._next = 0


class LeastLoadedPolicy(ShardingPolicy):
    """Dispatch to the device that frees up first; partition evenly.

    For partitioning, identical devices have identical throughput, so the
    headroom-weighted split degenerates to the balanced split; the policy
    earns its name on the dispatch path, where device busy horizons diverge
    under uneven batch sizes.
    """

    name = "least-loaded"

    def partition(self, items: int, devices: int, *, offset: int = 0) -> list[int]:
        return _balanced_split(items, devices, offset)

    def select(
        self,
        busy_until: list[float],
        batch: Batch,
        resident: list[bool] | None = None,
    ) -> int:
        return min(range(len(busy_until)), key=busy_until.__getitem__)


class AffinityPolicy(ShardingPolicy):
    """Tenant-sticky dispatch: one tenant's batches land on one device.

    Keeps a tenant's bootstrapping/keyswitching keys resident in a single
    device's HBM instead of replicating them cluster-wide.  Multi-tenant
    batches follow the first (oldest) request's tenant.  Partitioning a
    single large workload has no tenant axis, so it falls back to the
    balanced split.
    """

    name = "affinity"

    def partition(self, items: int, devices: int, *, offset: int = 0) -> list[int]:
        return _balanced_split(items, devices, offset)

    def select(
        self,
        busy_until: list[float],
        batch: Batch,
        resident: list[bool] | None = None,
    ) -> int:
        tenant = batch.requests[0].tenant
        return zlib.crc32(tenant.encode()) % len(busy_until)


class KeyAffinityPolicy(ShardingPolicy):
    """Prefer devices where the tenant's keys are already resident.

    The residency-aware refinement of ``affinity``: instead of a static
    tenant→device hash, dispatch follows the *actual* key placement the
    cluster's :class:`~repro.arch.key_cache.KeyResidencyManager` tracks —
    the least-loaded device among those already holding the lead tenant's
    BSK/KSK set.  When no device holds them (first placement, or the budget
    evicted them everywhere) it falls back to plain least-loaded, pays the
    one ship, and subsequent batches stick to that device.  Under a finite
    key-memory budget this is the policy that keeps hit rates high without
    hard-pinning tenants the way the hash policy does.
    """

    name = "key-affinity"

    def partition(self, items: int, devices: int, *, offset: int = 0) -> list[int]:
        return _balanced_split(items, devices, offset)

    def select(
        self,
        busy_until: list[float],
        batch: Batch,
        resident: list[bool] | None = None,
    ) -> int:
        candidates = range(len(busy_until))
        if resident is not None and any(resident):
            candidates = [index for index in candidates if resident[index]]
        return min(candidates, key=busy_until.__getitem__)


_POLICIES: dict[str, type[ShardingPolicy]] = {
    policy.name: policy
    for policy in (
        RoundRobinPolicy,
        LeastLoadedPolicy,
        AffinityPolicy,
        KeyAffinityPolicy,
    )
}


def list_policies() -> list[str]:
    """Names of all sharding policies, sorted."""
    return sorted(_POLICIES)


def get_policy(policy: str | ShardingPolicy) -> ShardingPolicy:
    """Resolve a policy name (or pass an instance through).

    Raises :class:`~repro.errors.UnknownPolicyError` for unknown names —
    the shared did-you-mean shape (registered names listed, picklable,
    plain-sentence rendering), still a ``ValueError`` for historical
    callers.
    """
    if isinstance(policy, ShardingPolicy):
        return policy
    try:
        return _POLICIES[policy]()
    except KeyError:
        raise UnknownPolicyError(policy, list_policies()) from None
