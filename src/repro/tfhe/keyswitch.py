"""LWE keyswitching (Algorithm 2 of the paper).

After sample extraction the LWE ciphertext lives under the flattened GLWE
key of dimension ``k*N``.  Keyswitching converts it back to the original
``n``-dimensional key: each input mask coefficient is decomposed into ``lk``
signed digits which multiply precomputed LWE encryptions of the scaled key
bits, all of which are subtracted from the trivial embedding of the body.
"""

from __future__ import annotations

import numpy as np

from repro.params import TFHEParameters
from repro.tfhe import torus
from repro.tfhe.decomposition import decompose
from repro.tfhe.keys import KeySwitchingKey
from repro.tfhe.lwe import LweCiphertext


def keyswitch(
    ciphertext: LweCiphertext,
    keyswitching_key: KeySwitchingKey,
    params: TFHEParameters,
) -> LweCiphertext:
    """Switch an extracted LWE ciphertext back to the ``n``-dimensional key."""
    input_dim = params.k * params.N
    if ciphertext.dimension != input_dim:
        raise ValueError(
            f"expected an extracted ciphertext of dimension {input_dim}, "
            f"got {ciphertext.dimension}"
        )
    # digits: shape (lk, k*N) — level-major to match the keyswitching key layout.
    digits = decompose(ciphertext.mask, params.lk, params.log2_base_ks, params.q_bits)
    table = keyswitching_key.ciphertexts  # (k*N, lk, n+1)
    # Accumulate sum_{j,l} d[l, j] * ksk[j, l, :] in one tensor contraction.
    combination = np.einsum("lj,jlc->c", digits, table)
    mask = torus.reduce(-combination[: params.n], params.q)
    body = (ciphertext.body - int(combination[params.n])) % params.q
    return LweCiphertext(mask, body, params)
