"""Tests for the streaming decomposer microarchitecture model (Fig. 6)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.config import STRIX_DEFAULT
from repro.arch.decomposer_unit import (
    DecomposerLaneConfig,
    StreamingDecomposerLane,
    StreamingDecomposerUnit,
)
from repro.params import PARAM_SET_I, PARAM_SET_IV, TOY_PARAMETERS
from repro.tfhe.decomposition import decompose

Q = TOY_PARAMETERS.q


class TestLaneConfig:
    def test_masks_for_set_i(self):
        cfg = DecomposerLaneConfig(q_bits=32, levels=PARAM_SET_I.lb, log2_base=PARAM_SET_I.log2_base_pbs)
        assert cfg.kept_bits == 20
        assert cfg.dropped_bits == 12
        assert cfg.keep_mask == ((1 << 20) - 1) << 12
        assert cfg.round_bit_mask == 1 << 11
        assert cfg.digit_mask == (1 << 10) - 1
        assert cfg.half_base == 512

    def test_full_width_decomposition_has_no_rounding(self):
        cfg = DecomposerLaneConfig(q_bits=32, levels=4, log2_base=8)
        assert cfg.dropped_bits == 0
        assert cfg.round_bit_mask == 0


class TestStreamingDecomposerLane:
    @pytest.fixture(scope="class")
    def lane(self):
        return StreamingDecomposerLane(TOY_PARAMETERS)

    def test_matches_reference_on_random_coefficients(self, lane, rng):
        coefficients = rng.integers(0, Q, 512)
        assert lane.matches_reference(coefficients)

    def test_matches_reference_on_boundary_values(self, lane):
        cfg = lane.config
        boundary = np.array(
            [
                0,
                1,
                Q - 1,
                Q // 2,
                Q // 2 - 1,
                Q // 2 + 1,
                1 << cfg.dropped_bits,
                (1 << cfg.dropped_bits) - 1,
                cfg.round_bit_mask,
                cfg.round_bit_mask - 1,
                cfg.keep_mask,
            ],
            dtype=np.int64,
        )
        assert lane.matches_reference(boundary)

    def test_digits_within_signed_range(self, lane, rng):
        coefficients = rng.integers(0, Q, 256)
        digits = lane.decompose_polynomial(coefficients)
        base = 1 << lane.config.log2_base
        assert digits.min() >= -(base // 2)
        assert digits.max() <= base // 2

    def test_keyswitch_lane_uses_keyswitch_parameters(self, rng):
        lane = StreamingDecomposerLane(TOY_PARAMETERS, keyswitch=True)
        assert lane.config.levels == TOY_PARAMETERS.lk
        assert lane.config.log2_base == TOY_PARAMETERS.log2_base_ks
        coefficients = rng.integers(0, Q, 128)
        reference = decompose(
            coefficients, TOY_PARAMETERS.lk, TOY_PARAMETERS.log2_base_ks
        )
        np.testing.assert_array_equal(lane.decompose_polynomial(coefficients), reference)

    def test_set_iv_parameters_supported(self, rng):
        lane = StreamingDecomposerLane(PARAM_SET_IV)
        coefficients = rng.integers(0, PARAM_SET_IV.q, 128)
        assert lane.matches_reference(coefficients)

    def test_rejects_decomposition_wider_than_torus(self):
        import dataclasses

        bad = dataclasses.replace(TOY_PARAMETERS, lb=5, log2_base_pbs=8)
        with pytest.raises(ValueError):
            StreamingDecomposerLane(bad)

    @given(st.integers(min_value=0, max_value=Q - 1))
    @settings(max_examples=300, deadline=None)
    def test_mask_shift_add_datapath_matches_reference(self, coefficient):
        """The multiplier-free datapath is bit-exact with the arithmetic
        reference for every coefficient — the claim of Section V-B."""
        lane = StreamingDecomposerLane(TOY_PARAMETERS)
        reference = decompose(
            np.array([coefficient], dtype=np.int64),
            TOY_PARAMETERS.lb,
            TOY_PARAMETERS.log2_base_pbs,
        )[:, 0]
        assert lane.decompose_coefficient(coefficient) == list(reference)

    @given(st.integers(min_value=0, max_value=(1 << 32) - 1))
    @settings(max_examples=200, deadline=None)
    def test_set_i_datapath_matches_reference(self, coefficient):
        lane = StreamingDecomposerLane(PARAM_SET_I)
        reference = decompose(
            np.array([coefficient], dtype=np.int64),
            PARAM_SET_I.lb,
            PARAM_SET_I.log2_base_pbs,
        )[:, 0]
        assert lane.decompose_coefficient(coefficient) == list(reference)


class TestStreamingDecomposerUnit:
    @pytest.fixture(scope="class")
    def unit(self):
        return StreamingDecomposerUnit(PARAM_SET_I, STRIX_DEFAULT)

    def test_lane_count_matches_config(self, unit):
        assert unit.lanes_per_instance == STRIX_DEFAULT.effective_lanes
        assert unit.coefficients_per_cycle == STRIX_DEFAULT.effective_lanes * STRIX_DEFAULT.colp

    def test_cycles_per_polynomial_matches_timing_model(self, unit):
        from repro.arch.functional_units import DecomposerUnit

        timing_model = DecomposerUnit(STRIX_DEFAULT)
        per_lwe = timing_model.busy_cycles_per_lwe(PARAM_SET_I)
        # The timing model covers (k+1) input polynomials over CoLP instances.
        expected = unit.cycles_per_polynomial() * (PARAM_SET_I.k + 1) // STRIX_DEFAULT.colp
        assert per_lwe == expected

    def test_lane_interleaving_preserves_results(self, rng):
        unit = StreamingDecomposerUnit(TOY_PARAMETERS, STRIX_DEFAULT)
        polynomials = rng.integers(0, Q, (3, TOY_PARAMETERS.N))
        streamed = unit.decompose_stream(polynomials)
        reference = decompose(
            polynomials, TOY_PARAMETERS.lb, TOY_PARAMETERS.log2_base_pbs
        )
        # reference shape: (lb, m, N) -> transpose to (m, lb, N)
        np.testing.assert_array_equal(streamed, np.transpose(reference, (1, 0, 2)))

    def test_stream_requires_2d_input(self, unit):
        with pytest.raises(ValueError):
            unit.decompose_stream(np.zeros(8, dtype=np.int64))
