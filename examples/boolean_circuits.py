"""Encrypted boolean circuits: adders and comparators over TFHE gates.

TFHE's programmable bootstrapping makes arbitrary boolean logic possible on
encrypted data — the generality the paper contrasts against CKKS.  This
example adds and compares small encrypted integers bit by bit, with every
gate evaluated through a real gate bootstrap, then shows how long the same
circuits would take on Strix versus the GPU baseline.

Run with:  python examples/boolean_circuits.py
"""

from __future__ import annotations

import time

from repro import Session, run
from repro.apps.boolean_circuits import Comparator, RippleCarryAdder, boolean_circuit_graph
from repro.params import PARAM_SET_I


def encrypt_number(session: Session, value: int, bits: int):
    """Encrypt an integer as little-endian boolean ciphertexts."""
    return session.encrypt_boolean_batch([bool((value >> i) & 1) for i in range(bits)])


def decrypt_number(session: Session, ciphertexts) -> int:
    """Decrypt little-endian boolean ciphertexts back to an integer."""
    return sum(int(bit) << i for i, bit in enumerate(session.decrypt_boolean_batch(ciphertexts)))


def functional_demo() -> None:
    print("== Encrypted 4-bit arithmetic (TOY parameters) ==")
    session = Session("TOY", seed=3)
    session.generate_server_keys()
    adder = RippleCarryAdder(session.gates())
    comparator = Comparator(session.gates())

    a, b = 11, 6
    bits = 4
    start = time.perf_counter()
    encrypted_sum = adder.add(encrypt_number(session, a, bits), encrypt_number(session, b, bits))
    total = decrypt_number(session, encrypted_sum)
    elapsed = time.perf_counter() - start
    gates = RippleCarryAdder.gate_count(bits)
    print(f"{a} + {b} = {total}   ({gates} gate bootstraps, {elapsed:.2f} s)")

    greater = comparator.greater_than(
        encrypt_number(session, a, bits), encrypt_number(session, b, bits)
    )
    equal = comparator.equals(encrypt_number(session, b, bits), encrypt_number(session, b, bits))
    print(f"{a} > {b}  -> {session.decrypt_boolean(greater)}")
    print(f"{b} == {b} -> {session.decrypt_boolean(equal)}\n")


def acceleration_projection() -> None:
    print("== Projected execution of 1,024 encrypted 32-bit additions ==")
    graph = boolean_circuit_graph(PARAM_SET_I, "adder", bits=32, instances=1024)
    strix = run(graph, backend="strix-sim")
    gpu = run(graph, backend="gpu-analytical")
    print(f"gate bootstraps:   {strix.pbs_count:,}")
    print(strix.render())
    print(gpu.render())
    print(f"speedup:           {gpu.latency_s / strix.latency_s:10.1f}x")


def main() -> None:
    functional_demo()
    acceleration_projection()


if __name__ == "__main__":
    main()
