"""Serialization of ciphertexts and keys.

A practical TFHE deployment moves ciphertexts and evaluation keys between a
client and an evaluation server (or an accelerator's host).  This module
provides a compact ``.npz``-based format for the library's objects, and
size accounting that matches the paper's Table I discussion (KB-level
ciphertexts, 10s–100s MB bootstrapping keys).

Only public material (ciphertexts, bootstrapping / keyswitching keys) gets a
``save``/``load`` pair; secret keys are serialized through a separate
explicit function so it is always obvious when secret material touches disk.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.params import TFHEParameters
from repro.tfhe.ggsw import FourierGgswCiphertext
from repro.tfhe.keys import BootstrappingKey, KeySwitchingKey, LweSecretKey
from repro.tfhe.lwe import LweCiphertext


def _check_params_match(stored_name: str, params: TFHEParameters) -> None:
    if stored_name != params.name:
        raise ValueError(
            f"file was written with parameter set {stored_name!r} but "
            f"{params.name!r} was supplied"
        )


# -- LWE ciphertexts -------------------------------------------------------------


def save_lwe_ciphertexts(path: str | Path, ciphertexts: list[LweCiphertext]) -> None:
    """Save a batch of LWE ciphertexts sharing one parameter set."""
    if not ciphertexts:
        raise ValueError("cannot save an empty ciphertext batch")
    params = ciphertexts[0].params
    dimensions = {ct.dimension for ct in ciphertexts}
    if len(dimensions) != 1:
        raise ValueError(f"ciphertexts have mixed dimensions: {sorted(dimensions)}")
    masks = np.stack([ct.mask for ct in ciphertexts])
    bodies = np.array([ct.body for ct in ciphertexts], dtype=np.int64)
    np.savez_compressed(
        Path(path), masks=masks, bodies=bodies, parameter_set=params.name
    )


def load_lwe_ciphertexts(path: str | Path, params: TFHEParameters) -> list[LweCiphertext]:
    """Load a batch of LWE ciphertexts saved by :func:`save_lwe_ciphertexts`."""
    with np.load(Path(path), allow_pickle=False) as data:
        _check_params_match(str(data["parameter_set"]), params)
        masks = data["masks"]
        bodies = data["bodies"]
    return [
        LweCiphertext(masks[index], int(bodies[index]), params)
        for index in range(masks.shape[0])
    ]


# -- evaluation keys ---------------------------------------------------------------


def save_bootstrapping_key(path: str | Path, key: BootstrappingKey) -> None:
    """Save a Fourier-domain bootstrapping key."""
    spectra = np.stack([ggsw.spectra for ggsw in key.ggsw_list])
    np.savez_compressed(Path(path), spectra=spectra, parameter_set=key.params.name)


def load_bootstrapping_key(path: str | Path, params: TFHEParameters) -> BootstrappingKey:
    """Load a bootstrapping key saved by :func:`save_bootstrapping_key`."""
    with np.load(Path(path), allow_pickle=False) as data:
        _check_params_match(str(data["parameter_set"]), params)
        spectra = data["spectra"]
    ggsw_list = [FourierGgswCiphertext(spectra[index], params) for index in range(spectra.shape[0])]
    return BootstrappingKey(ggsw_list, params)


def save_keyswitching_key(path: str | Path, key: KeySwitchingKey) -> None:
    """Save a keyswitching key."""
    np.savez_compressed(
        Path(path), ciphertexts=key.ciphertexts, parameter_set=key.params.name
    )


def load_keyswitching_key(path: str | Path, params: TFHEParameters) -> KeySwitchingKey:
    """Load a keyswitching key saved by :func:`save_keyswitching_key`."""
    with np.load(Path(path), allow_pickle=False) as data:
        _check_params_match(str(data["parameter_set"]), params)
        ciphertexts = data["ciphertexts"]
    return KeySwitchingKey(ciphertexts, params)


# -- secret keys (explicit) -----------------------------------------------------------


def save_lwe_secret_key(path: str | Path, key: LweSecretKey) -> None:
    """Save an LWE secret key.  Handle the resulting file as a secret."""
    np.savez_compressed(Path(path), bits=key.bits, parameter_set=key.params.name)


def load_lwe_secret_key(path: str | Path, params: TFHEParameters) -> LweSecretKey:
    """Load an LWE secret key saved by :func:`save_lwe_secret_key`."""
    with np.load(Path(path), allow_pickle=False) as data:
        _check_params_match(str(data["parameter_set"]), params)
        bits = data["bits"]
    return LweSecretKey(bits, params)


# -- size accounting -------------------------------------------------------------------


def serialized_sizes(params: TFHEParameters) -> dict[str, int]:
    """Nominal serialized sizes (bytes) of the main objects for a parameter set.

    These are the uncompressed, in-memory sizes — the quantities the paper's
    Table I and the Strix memory system reason about.
    """
    return {
        "lwe_ciphertext": params.lwe_ciphertext_bytes,
        "glwe_ciphertext": params.glwe_ciphertext_bytes,
        "ggsw_ciphertext": params.ggsw_ciphertext_bytes,
        "bootstrapping_key": params.bootstrapping_key_fourier_bytes,
        "keyswitching_key": params.keyswitching_key_bytes,
    }
