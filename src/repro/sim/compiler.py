"""Netlist-to-workload compiler.

The paper frames every TFHE application as "a series of sequential PBS and
keyswitching operations" (Section IV-C).  This module provides the small
front end that turns a program description into such a series: a *netlist*
of homomorphic operations (gates, LUT applications, linear combinations) on
named wires is levelized into a :class:`~repro.sim.graph.ComputationGraph`,
grouping every level's bootstraps into one batched node — exactly the
batching opportunity Strix's epoch scheduler exploits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.params import TFHEParameters
from repro.sim.graph import ComputationGraph
from repro.tfhe.gates import GateBootstrapper


@dataclass(frozen=True)
class Operation:
    """One homomorphic operation in a netlist.

    Attributes
    ----------
    kind:
        ``"gate"`` (one PBS unless it is a free NOT), ``"lut"`` (one PBS) or
        ``"linear"`` (no PBS; ``cost`` multiply-accumulates).
    output:
        Name of the wire the operation produces.
    inputs:
        Names of the wires it consumes.
    name:
        For gates: the gate name (``"and"``, ``"xor"``, ``"mux"``, ...).
    cost:
        For linear operations: multiply-accumulate count.
    function:
        For LUT operations: the univariate function the PBS evaluates.  Only
        needed for *functional* execution (the reference backend); the
        simulator and the analytical models cost every LUT as one PBS
        regardless.
    coefficients:
        For linear operations: plaintext coefficients of the combination,
        one per input wire.  Defaults to all ones (a plain homomorphic sum)
        when functional execution is requested without them.
    """

    kind: str
    output: str
    inputs: tuple[str, ...]
    name: str = ""
    cost: int = 1
    function: Callable[[int], int] | None = None
    coefficients: tuple[int, ...] | None = None


class Netlist:
    """A DAG of homomorphic operations over named wires."""

    def __init__(self, params: TFHEParameters, name: str = "netlist"):
        self.params = params
        self.name = name
        self._operations: list[Operation] = []
        self._producers: dict[str, Operation] = {}
        self._primary_inputs: set[str] = set()

    # -- construction ------------------------------------------------------------

    def add_input(self, wire: str) -> str:
        """Declare a primary input wire."""
        if wire in self._producers or wire in self._primary_inputs:
            raise ValueError(f"wire {wire!r} is already defined")
        self._primary_inputs.add(wire)
        return wire

    def add_gate(self, gate: str, output: str, *inputs: str) -> str:
        """Add a boolean gate (costed from :data:`GateBootstrapper.PBS_COST`)."""
        if gate not in GateBootstrapper.PBS_COST:
            raise ValueError(
                f"unknown gate {gate!r}; known gates: {sorted(GateBootstrapper.PBS_COST)}"
            )
        return self._add(Operation("gate", output, tuple(inputs), name=gate))

    def add_lut(
        self, output: str, *inputs: str, function: Callable[[int], int] | None = None
    ) -> str:
        """Add a programmable LUT application (one PBS).

        ``function`` is optional and only consumed by functional execution
        (the runtime's reference backend); when omitted there, the LUT
        defaults to the identity (a noise-refreshing bootstrap).  Multiple
        inputs are summed homomorphically before the PBS.
        """
        return self._add(Operation("lut", output, tuple(inputs), name="lut", function=function))

    def add_linear(
        self,
        output: str,
        inputs: tuple[str, ...],
        cost: int = 1,
        coefficients: tuple[int, ...] | None = None,
    ) -> str:
        """Add a linear combination (homomorphic adds / plaintext multiplies).

        ``coefficients`` (one per input wire) are only needed for functional
        execution; the performance models use ``cost`` alone.
        """
        if coefficients is not None and len(coefficients) != len(inputs):
            raise ValueError(f"expected {len(inputs)} coefficients, got {len(coefficients)}")
        return self._add(
            Operation(
                "linear",
                output,
                tuple(inputs),
                name="linear",
                cost=cost,
                coefficients=tuple(coefficients) if coefficients is not None else None,
            )
        )

    def _add(self, operation: Operation) -> str:
        if operation.output in self._producers or operation.output in self._primary_inputs:
            raise ValueError(f"wire {operation.output!r} is already defined")
        for wire in operation.inputs:
            if wire not in self._producers and wire not in self._primary_inputs:
                raise ValueError(f"operation consumes undefined wire {wire!r}")
        self._operations.append(operation)
        self._producers[operation.output] = operation
        return operation.output

    # -- inspection --------------------------------------------------------------

    @property
    def operations(self) -> list[Operation]:
        """All operations in insertion order."""
        return list(self._operations)

    @property
    def primary_inputs(self) -> set[str]:
        """Declared primary input wires."""
        return set(self._primary_inputs)

    def output_wires(self) -> list[str]:
        """Wires produced but never consumed (the netlist's outputs)."""
        consumed = {wire for operation in self._operations for wire in operation.inputs}
        return [
            operation.output
            for operation in self._operations
            if operation.output not in consumed
        ]

    def with_params(self, params: TFHEParameters) -> "Netlist":
        """Rebind the netlist to another parameter set (structure unchanged).

        Operations carry no parameter-dependent state, so the same circuit
        can be costed (or executed) under any parameter set — e.g. built once
        on TOY parameters for functional testing and simulated under set I.
        """
        clone = Netlist(params, name=self.name)
        clone._primary_inputs = set(self._primary_inputs)
        clone._operations = list(self._operations)
        clone._producers = dict(self._producers)
        return clone

    def pbs_count(self) -> int:
        """Total programmable bootstraps of the netlist."""
        total = 0
        for operation in self._operations:
            if operation.kind == "gate":
                total += GateBootstrapper.PBS_COST[operation.name]
            elif operation.kind == "lut":
                total += 1
        return total

    def levelize(self) -> list[list[Operation]]:
        """Group operations into dependency levels (ASAP scheduling)."""
        level_of_wire: dict[str, int] = {wire: 0 for wire in self._primary_inputs}
        levels: list[list[Operation]] = []
        for operation in self._operations:
            input_levels = [level_of_wire[wire] for wire in operation.inputs]
            level = max(input_levels, default=0)
            # A bootstrapping operation occupies a level of its own; linear
            # operations stay on their input level (they are cheap and do not
            # gate batching).
            if operation.kind in ("gate", "lut") and (
                operation.kind != "gate" or GateBootstrapper.PBS_COST[operation.name] > 0
            ):
                level += 1
            while len(levels) <= level:
                levels.append([])
            levels[level].append(operation)
            level_of_wire[operation.output] = level
        return [group for group in levels if group]


def compile_netlist(netlist: Netlist, instances: int = 1) -> ComputationGraph:
    """Compile a netlist into a computation graph for the simulator.

    ``instances`` replicates the netlist over independent inputs (e.g. the
    same circuit applied to many records), which multiplies every level's
    batchable ciphertext count.
    """
    if instances < 1:
        raise ValueError("instances must be at least 1")
    graph = ComputationGraph(netlist.params, name=f"{netlist.name}-x{instances}")
    previous: str | None = None
    for index, level in enumerate(netlist.levelize()):
        pbs = 0
        linear_ops = 0
        for operation in level:
            if operation.kind == "gate":
                pbs += GateBootstrapper.PBS_COST[operation.name]
            elif operation.kind == "lut":
                pbs += 1
            else:
                linear_ops += operation.cost
        depends = [previous] if previous else []
        if pbs:
            node_name = f"level{index}_pbs"
            graph.add_pbs_layer(node_name, pbs * instances, depends_on=depends)
            previous = node_name
        if linear_ops:
            node_name = f"level{index}_linear"
            graph.add_linear_layer(node_name, instances, linear_ops, depends_on=depends)
            if not pbs:
                previous = node_name
    return graph


def full_adder_netlist(params: TFHEParameters, bits: int) -> Netlist:
    """Reference netlist: a ``bits``-wide ripple-carry adder."""
    netlist = Netlist(params, name=f"adder{bits}")
    carry = None
    for bit in range(bits):
        a = netlist.add_input(f"a{bit}")
        b = netlist.add_input(f"b{bit}")
        axb = netlist.add_gate("xor", f"axb{bit}", a, b)
        if carry is None:
            carry = netlist.add_gate("and", f"c{bit}", a, b)
        else:
            netlist.add_gate("xor", f"s{bit}", axb, carry)
            overflow_ab = netlist.add_gate("and", f"cab{bit}", a, b)
            overflow_axb = netlist.add_gate("and", f"caxb{bit}", axb, carry)
            carry = netlist.add_gate("or", f"c{bit}", overflow_ab, overflow_axb)
    return netlist
