"""Analysis layer: the experiments of Section VI.

Each module reproduces one table or figure of the paper's evaluation, built
on top of the architecture model, the simulator and the baseline models:

* :mod:`repro.analysis.breakdown` — Fig. 1, CPU workload breakdown.
* :mod:`repro.analysis.fragmentation` — Fig. 2, GPU blind-rotation
  fragmentation and the two-level batching remedy.
* :mod:`repro.analysis.tables` — Table III (area/power) and Table V (PBS
  latency/throughput across platforms).
* :mod:`repro.analysis.folding_ablation` — Table VI, FFT folding effects.
* :mod:`repro.analysis.tradeoffs` — Table VII, TvLP vs CLP sweep.
* :mod:`repro.analysis.deep_nn_benchmark` — Fig. 7, Zama Deep-NN execution
  time on CPU / GPU / Strix.

Beyond the paper's own evaluation, three extension studies probe the design
choices the paper argues for:

* :mod:`repro.analysis.batch_sensitivity` — throughput vs available
  ciphertext parallelism (the value of core-level batching).
* :mod:`repro.analysis.unrolling_ablation` — bootstrapping-key unrolling
  (Matcha's technique) layered on the Strix datapath.
* :mod:`repro.analysis.energy_comparison` — energy per PBS vs CPU / GPU.
* :mod:`repro.analysis.parameter_sweep` — sensitivity to the TFHE parameters
  (polynomial degree, decomposition level).
"""

from repro.analysis.breakdown import cpu_workload_breakdown
from repro.analysis.fragmentation import gpu_fragmentation_study, strix_batching_study
from repro.analysis.folding_ablation import folding_ablation
from repro.analysis.tradeoffs import tvlp_clp_tradeoff
from repro.analysis.tables import area_power_table, pbs_comparison_table
from repro.analysis.deep_nn_benchmark import deep_nn_benchmark
from repro.analysis.batch_sensitivity import batch_sensitivity_study
from repro.analysis.unrolling_ablation import unrolling_ablation
from repro.analysis.energy_comparison import energy_comparison
from repro.analysis.parameter_sweep import parameter_sweep

__all__ = [
    "cpu_workload_breakdown",
    "gpu_fragmentation_study",
    "strix_batching_study",
    "folding_ablation",
    "tvlp_clp_tradeoff",
    "area_power_table",
    "pbs_comparison_table",
    "deep_nn_benchmark",
    "batch_sensitivity_study",
    "unrolling_ablation",
    "energy_comparison",
    "parameter_sweep",
]
