"""Top-level Strix accelerator model.

:class:`StrixAccelerator` binds a :class:`~repro.arch.config.StrixConfig`
to a TFHE parameter set and answers the evaluation questions of Section VI:
PBS latency and throughput (Table V), required external bandwidth and the
compute-/memory-bound boundary (Table VII), epoch scheduling with two-level
batching, and end-to-end execution-time estimates for workload graphs
(Fig. 7) via the discrete-event simulator of :mod:`repro.sim`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.arch.area_power import AreaPowerModel, ChipCost
from repro.arch.config import STRIX_DEFAULT, StrixConfig
from repro.arch.hsc import HomomorphicStreamingCore, PipelineTiming
from repro.arch.memory import BandwidthDemand, HBMModel
from repro.arch.noc import MulticastNetwork
from repro.params import TFHEParameters


@dataclass(frozen=True)
class PbsPerformance:
    """PBS microbenchmark result for one parameter set (one Table V row)."""

    parameter_set: str
    latency_ms: float
    throughput_pbs_per_s: float
    compute_bound: bool
    required_bandwidth_gbps: float
    core_batch_size: int
    device_batch_size: int

    @property
    def total_batch_size(self) -> int:
        """Ciphertexts in flight across the chip (device x core batching)."""
        return self.core_batch_size * self.device_batch_size


@dataclass(frozen=True)
class EpochPlan:
    """How a batch of LWEs maps onto one scheduling epoch."""

    lwes: int
    device_batch: int
    core_batch: int
    lwes_per_core: tuple[int, ...]
    blind_rotation_cycles: int
    keyswitch_cycles: int
    keyswitch_hidden: bool

    @property
    def epoch_cycles(self) -> int:
        """Cycles the epoch occupies the PBS clusters (KS hides if possible)."""
        if self.keyswitch_hidden:
            return self.blind_rotation_cycles
        return self.blind_rotation_cycles + self.keyswitch_cycles


class StrixAccelerator:
    """Latency / throughput / bandwidth model of a full Strix chip."""

    def __init__(self, config: StrixConfig = STRIX_DEFAULT):
        self.config = config
        self.core = HomomorphicStreamingCore(config)
        self.hbm = HBMModel(config)
        self.noc = MulticastNetwork(config)
        self.area_power = AreaPowerModel(config)
        # Pure functions of (params, config) memoized off the scheduler's
        # per-epoch hot path; config is frozen, so entries can never go
        # stale.  Epoch plans are keyed per (params, lwes) — at most
        # epoch-capacity distinct sizes per parameter set.
        self._iteration_latency: dict[TFHEParameters, int] = {}
        self._epoch_plans: dict[tuple[TFHEParameters, int], EpochPlan] = {}

    # -- microbenchmark (Table V) -------------------------------------------------

    def pipeline_timing(self, params: TFHEParameters) -> PipelineTiming:
        """Per-iteration PBS-cluster timing for the parameter set."""
        return self.core.pipeline_timing(params)

    def iteration_latency_cycles(self, params: TFHEParameters) -> int:
        """Latency of one blind-rotation iteration for a single LWE.

        The compute latency is the pipeline traversal; when the operating
        point is memory bound the iteration additionally cannot complete
        faster than the next bootstrapping-key fragment can be fetched over
        the HBM channels allocated to it.  Memoized per parameter set — the
        epoch scheduler asks once per single-LWE core booking.
        """
        cached = self._iteration_latency.get(params)
        if cached is not None:
            return cached
        timing = self.core.pipeline_timing(params)
        fragment_bytes = self.hbm.global_scratchpad.bootstrapping_key_fragment_bytes(params)
        bsk_bandwidth = (
            self.config.hbm_bandwidth_gbps
            * self.config.bsk_channels
            / (
                self.config.bsk_channels
                + self.config.ksk_channels
                + self.config.ciphertext_channels
            )
        )
        fetch_seconds = fragment_bytes / (bsk_bandwidth * 1e9)
        fetch_cycles = math.ceil(fetch_seconds * self.config.clock_hz)
        latency = max(timing.iteration_latency, fetch_cycles)
        self._iteration_latency[params] = latency
        return latency

    def pbs_latency_ms(self, params: TFHEParameters) -> float:
        """Latency of a single PBS (one LWE, no batching)."""
        cycles = params.n * self.iteration_latency_cycles(params)
        return self.config.cycles_to_ms(cycles)

    def required_bandwidth(self, params: TFHEParameters) -> BandwidthDemand:
        """External bandwidth demand at this operating point."""
        timing = self.core.pipeline_timing(params)
        return self.hbm.bandwidth_demand(
            params,
            timing.initiation_interval,
            core_batch=self.core.core_batch_size(params),
        )

    def pbs_throughput(self, params: TFHEParameters) -> float:
        """Sustained PBS/s with full two-level batching.

        The compute-bound throughput is one LWE per ``n * initiation interval``
        cycles per core times the number of cores; when the bandwidth demand
        exceeds the HBM capability the throughput scales down proportionally
        (the memory-bound regime of Table VII).
        """
        per_core_cycles = self.core.pbs_cycles_per_lwe_streaming(params)
        compute_bound = self.config.clock_hz / per_core_cycles * self.config.tvlp
        scaling = self.hbm.compute_scaling(self.required_bandwidth(params))
        return compute_bound * scaling

    def pbs_performance(self, params: TFHEParameters) -> PbsPerformance:
        """Full PBS microbenchmark summary (one Table V row)."""
        demand = self.required_bandwidth(params)
        return PbsPerformance(
            parameter_set=params.name,
            latency_ms=self.pbs_latency_ms(params),
            throughput_pbs_per_s=self.pbs_throughput(params),
            compute_bound=not self.hbm.is_memory_bound(demand),
            required_bandwidth_gbps=demand.total,
            core_batch_size=self.core.core_batch_size(params),
            device_batch_size=self.config.tvlp,
        )

    # -- epoch scheduling (Section IV-C) ---------------------------------------------

    def plan_epoch(self, params: TFHEParameters, lwes: int) -> EpochPlan:
        """Map ``lwes`` ciphertexts onto one epoch of the chip.

        Ciphertexts are spread across the ``tvlp`` cores; each core streams
        its share through the PBS pipeline (core-level batching), then the
        keyswitch cluster drains while the next epoch's blind rotation runs.

        Plans are memoized per ``(params, lwes)`` — the epoch scheduler and
        ``pbs_batch_cycles`` replan the same epoch sizes constantly — and
        shared, which is safe because :class:`EpochPlan` is immutable
        (frozen dataclass, per-core counts stored as a tuple).
        """
        if lwes < 1:
            raise ValueError("an epoch needs at least one LWE")
        cached = self._epoch_plans.get((params, lwes))
        if cached is not None:
            return cached
        device_batch = self.config.tvlp
        core_batch = self.core.core_batch_size(params)
        capacity = device_batch * core_batch
        scheduled = min(lwes, capacity)
        per_core = [0] * device_batch
        for index in range(scheduled):
            per_core[index % device_batch] += 1
        timing = self.core.pipeline_timing(params)
        busiest = max(per_core)
        if busiest == 1:
            blind_rotation_cycles = params.n * timing.iteration_latency
        else:
            blind_rotation_cycles = params.n * busiest * timing.initiation_interval
        keyswitch_cycles = busiest * self.core.keyswitch_cycles(params)
        plan = EpochPlan(
            lwes=scheduled,
            device_batch=device_batch,
            core_batch=core_batch,
            lwes_per_core=tuple(per_core),
            blind_rotation_cycles=blind_rotation_cycles,
            keyswitch_cycles=keyswitch_cycles,
            keyswitch_hidden=keyswitch_cycles <= blind_rotation_cycles,
        )
        self._epoch_plans[(params, lwes)] = plan
        return plan

    def pbs_batch_cycles(self, params: TFHEParameters, lwes: int) -> int:
        """Cycles to bootstrap ``lwes`` ciphertexts (multiple epochs if needed).

        The PBS clusters run the epochs' blind rotations back to back; the
        keyswitch clusters form a second pipeline that starts an epoch's
        keyswitching once its blind rotation finishes and runs concurrently
        with the next epoch's blind rotation.  The batch completes when both
        pipelines have drained.
        """
        if lwes < 1:
            return 0
        capacity = self.config.tvlp * self.core.core_batch_size(params)
        remaining = lwes
        blind_rotation_end = 0
        keyswitch_end = 0
        while remaining > 0:
            chunk = min(remaining, capacity)
            plan = self.plan_epoch(params, chunk)
            blind_rotation_end += plan.blind_rotation_cycles
            keyswitch_end = max(keyswitch_end, blind_rotation_end) + plan.keyswitch_cycles
            remaining -= chunk
        return max(blind_rotation_end, keyswitch_end)

    def pbs_batch_time_ms(self, params: TFHEParameters, lwes: int) -> float:
        """Milliseconds to bootstrap ``lwes`` ciphertexts."""
        return self.config.cycles_to_ms(self.pbs_batch_cycles(params, lwes))

    # -- chip cost -----------------------------------------------------------------

    def chip_cost(self) -> ChipCost:
        """Area/power summary of the configured chip (Table III)."""
        return self.area_power.chip_cost()
