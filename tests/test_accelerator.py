"""Tests for the top-level Strix accelerator model (Table V behaviour)."""

from __future__ import annotations

import pytest

from repro.arch.accelerator import StrixAccelerator
from repro.arch.config import STRIX_DEFAULT, STRIX_UNFOLDED
from repro.params import PAPER_PARAMETER_SETS, PARAM_SET_I, PARAM_SET_IV


class TestPbsMicrobenchmark:
    @pytest.mark.parametrize(
        "name, expected_throughput",
        [("I", 74696), ("II", 39600), ("III", 21104), ("IV", 2368)],
    )
    def test_throughput_matches_paper_within_five_percent(self, strix, name, expected_throughput):
        params = PAPER_PARAMETER_SETS[name]
        modelled = strix.pbs_throughput(params)
        assert modelled == pytest.approx(expected_throughput, rel=0.05)

    @pytest.mark.parametrize(
        "name, expected_latency_ms, tolerance",
        [("I", 0.16, 0.15), ("II", 0.23, 0.25), ("III", 0.44, 0.25), ("IV", 3.31, 0.60)],
    )
    def test_latency_matches_paper_shape(self, strix, name, expected_latency_ms, tolerance):
        params = PAPER_PARAMETER_SETS[name]
        assert strix.pbs_latency_ms(params) == pytest.approx(expected_latency_ms, rel=tolerance)

    def test_latency_ordering_across_sets(self, strix):
        latencies = [strix.pbs_latency_ms(PAPER_PARAMETER_SETS[name]) for name in ("I", "II", "III", "IV")]
        assert latencies == sorted(latencies)

    def test_throughput_ordering_across_sets(self, strix):
        throughputs = [strix.pbs_throughput(PAPER_PARAMETER_SETS[name]) for name in ("I", "II", "III", "IV")]
        assert throughputs == sorted(throughputs, reverse=True)

    def test_performance_summary_fields(self, strix):
        performance = strix.pbs_performance(PARAM_SET_I)
        assert performance.parameter_set == "I"
        assert performance.compute_bound is True
        assert performance.device_batch_size == 8
        assert performance.core_batch_size == 64
        assert performance.total_batch_size == 512
        assert performance.required_bandwidth_gbps < STRIX_DEFAULT.hbm_bandwidth_gbps

    def test_required_bandwidth_within_hbm_for_default_config(self, strix):
        for params in PAPER_PARAMETER_SETS.values():
            demand = strix.required_bandwidth(params)
            assert demand.total < STRIX_DEFAULT.hbm_bandwidth_gbps, params.name

    def test_unfolded_variant_half_throughput(self):
        folded = StrixAccelerator(STRIX_DEFAULT)
        unfolded = StrixAccelerator(STRIX_UNFOLDED)
        ratio = folded.pbs_throughput(PARAM_SET_I) / unfolded.pbs_throughput(PARAM_SET_I)
        assert ratio == pytest.approx(2.0, rel=0.05)

    def test_more_cores_means_more_throughput(self):
        four_cores = StrixAccelerator(STRIX_DEFAULT.with_parallelism(tvlp=4))
        eight_cores = StrixAccelerator(STRIX_DEFAULT)
        assert eight_cores.pbs_throughput(PARAM_SET_I) == pytest.approx(
            2 * four_cores.pbs_throughput(PARAM_SET_I), rel=0.01
        )

    def test_iteration_latency_floor_applies_when_memory_bound(self):
        fast = StrixAccelerator(STRIX_DEFAULT.with_parallelism(tvlp=1, clp=32))
        timing = fast.pipeline_timing(PARAM_SET_IV)
        assert fast.iteration_latency_cycles(PARAM_SET_IV) > timing.iteration_latency


class TestEpochPlanning:
    def test_small_batch_uses_all_cores_round_robin(self, strix):
        plan = strix.plan_epoch(PARAM_SET_I, 12)
        assert plan.lwes == 12
        assert sum(plan.lwes_per_core) == 12
        assert max(plan.lwes_per_core) - min(plan.lwes_per_core) <= 1

    def test_epoch_capacity_clamps_oversized_requests(self, strix):
        capacity = strix.config.tvlp * strix.core.core_batch_size(PARAM_SET_I)
        plan = strix.plan_epoch(PARAM_SET_I, capacity * 3)
        assert plan.lwes == capacity

    def test_keyswitch_hidden_in_full_epoch(self, strix):
        plan = strix.plan_epoch(PARAM_SET_I, 512)
        assert plan.keyswitch_hidden is True
        assert plan.epoch_cycles == plan.blind_rotation_cycles

    def test_plan_rejects_empty_epoch(self, strix):
        with pytest.raises(ValueError):
            strix.plan_epoch(PARAM_SET_I, 0)

    def test_batch_cycles_scale_with_lwes(self, strix):
        one = strix.pbs_batch_cycles(PARAM_SET_I, 1)
        many = strix.pbs_batch_cycles(PARAM_SET_I, 512)
        assert many > one
        # Two-level batching amortization: 512 LWEs cost far less than 512x.
        assert many < 512 * one

    def test_batch_time_of_zero_lwes_is_zero(self, strix):
        assert strix.pbs_batch_cycles(PARAM_SET_I, 0) == 0
        assert strix.pbs_batch_time_ms(PARAM_SET_I, 0) == 0.0

    def test_batch_throughput_consistent_with_microbenchmark(self, strix):
        lwes = 4096
        time_s = strix.pbs_batch_time_ms(PARAM_SET_I, lwes) / 1e3
        achieved = lwes / time_s
        assert achieved == pytest.approx(strix.pbs_throughput(PARAM_SET_I), rel=0.1)


class TestPaperHeadlineClaims:
    """The abstract's headline comparisons, evaluated with our models."""

    def test_speedup_over_cpu_exceeds_1000x(self, strix):
        from repro.baselines.cpu_model import ConcreteCpuModel

        cpu = ConcreteCpuModel(threads=1)
        speedup = strix.pbs_throughput(PARAM_SET_I) / cpu.pbs_throughput(PARAM_SET_I)
        assert speedup > 1000

    def test_speedup_over_gpu_tens_of_times(self, strix):
        from repro.baselines.gpu_model import NuFheGpuModel

        gpu = NuFheGpuModel()
        speedup = strix.pbs_throughput(PARAM_SET_I) / gpu.pbs_throughput(PARAM_SET_I)
        assert 20 < speedup < 60

    def test_speedup_over_matcha_about_7x(self, strix):
        from repro.baselines.reference_platforms import published_results_for

        matcha = published_results_for("Matcha", "I")[0]
        speedup = strix.pbs_throughput(PARAM_SET_I) / matcha.throughput_pbs_per_s
        assert speedup == pytest.approx(7.4, rel=0.1)

    def test_latency_better_than_matcha(self, strix):
        from repro.baselines.reference_platforms import published_results_for

        matcha = published_results_for("Matcha", "I")[0]
        assert strix.pbs_latency_ms(PARAM_SET_I) < matcha.latency_ms

    def test_set_iv_speedup_over_concrete(self, strix):
        """Paper: 2,368x throughput and ~292x latency gain over Concrete on set IV."""
        from repro.baselines.cpu_model import ConcreteCpuModel

        cpu = ConcreteCpuModel(threads=1)
        throughput_gain = strix.pbs_throughput(PARAM_SET_IV) / cpu.pbs_throughput(PARAM_SET_IV)
        latency_gain = cpu.pbs_latency_ms(PARAM_SET_IV) / strix.pbs_latency_ms(PARAM_SET_IV)
        assert throughput_gain > 1000
        assert latency_gain > 100
