"""Tests of the unified batch-first execution runtime (:mod:`repro.runtime`).

Covers the backend registry, the Session batch APIs (round-trips against the
per-ciphertext loops they batch), functional parity between the reference
backend and direct gate-level execution, and the simulator/analytical
backends against direct model calls.
"""

from __future__ import annotations

import pytest

import repro
from repro import Netlist, RunResult, Session, TFHEContext, list_backends, run
from repro.arch.accelerator import StrixAccelerator
from repro.apps.workloads import pbs_batch_graph
from repro.baselines.cpu_model import ConcreteCpuModel
from repro.baselines.gpu_model import NuFheGpuModel
from repro.params import PARAM_SET_I, TOY_PARAMETERS
from repro.runtime import (
    AnalyticalBackend,
    ReferenceBackend,
    StrixSimBackend,
    as_graph,
    get_backend,
    register_backend,
    unregister_backend,
)
from repro.sim.compiler import full_adder_netlist
from repro.sim.scheduler import StrixScheduler


@pytest.fixture(scope="module")
def session() -> Session:
    """A TOY-parameter session with server keys, shared across the module."""
    sess = Session("TOY", seed=99)
    sess.generate_server_keys()
    return sess


# -- registry -------------------------------------------------------------------


def test_list_backends_contains_the_three_families():
    names = list_backends()
    for expected in ("reference", "strix-sim", "cpu-analytical", "gpu-analytical"):
        assert expected in names


def test_get_backend_unknown_name_lists_known_backends():
    with pytest.raises(KeyError, match="strix-sim"):
        get_backend("does-not-exist")


def test_get_backend_returns_configured_instances():
    backend = get_backend("cpu-analytical", threads=8)
    assert isinstance(backend, AnalyticalBackend)
    assert backend.model.threads == 8


def test_register_and_unregister_custom_backend():
    register_backend("custom-test", lambda: ReferenceBackend())
    try:
        assert "custom-test" in list_backends()
        assert isinstance(get_backend("custom-test"), ReferenceBackend)
    finally:
        unregister_backend("custom-test")
    assert "custom-test" not in list_backends()


def test_top_level_reexports():
    assert repro.run is run
    assert repro.Session is Session
    assert repro.Netlist is Netlist
    assert repro.TFHEContext is TFHEContext
    assert isinstance(repro.__version__, str)


# -- session batch APIs ------------------------------------------------------------


def test_encrypt_decrypt_batch_roundtrip_matches_per_ciphertext_loop(session):
    messages = [0, 1, 2, 3, 2, 1, 0, 3]
    ciphertexts = session.encrypt_batch(messages)
    assert len(ciphertexts) > 1
    assert session.decrypt_batch(ciphertexts) == messages
    assert [session.context.decrypt(ct) for ct in ciphertexts] == messages


def test_boolean_batch_roundtrip(session):
    values = [True, False, True, True, False]
    ciphertexts = session.encrypt_boolean_batch(values)
    assert session.decrypt_boolean_batch(ciphertexts) == values


def test_bootstrap_batch_matches_per_ciphertext_bootstraps(session):
    p = session.params.message_modulus
    messages = [0, 1, 1, 0]
    def function(m):
        return (m + 1) % p

    ciphertexts = session.encrypt_batch(messages)
    batched = session.bootstrap_batch(ciphertexts, function)
    looped = [
        session.context.programmable_bootstrap(ct, function).ciphertext
        for ct in ciphertexts
    ]
    assert session.decrypt_batch(batched) == session.decrypt_batch(looped)
    assert session.decrypt_batch(batched) == [function(m) for m in messages]


def test_gate_batch_matches_individual_gates(session):
    lhs_bits = [True, True, False, False]
    rhs_bits = [True, False, True, False]
    lhs = session.encrypt_boolean_batch(lhs_bits)
    rhs = session.encrypt_boolean_batch(rhs_bits)
    gates = session.gates()
    for gate, method in (("and", gates.and_), ("xor", gates.xor), ("nor", gates.nor)):
        batched = session.decrypt_boolean_batch(session.gate_batch(gate, lhs, rhs))
        individual = session.decrypt_boolean_batch(
            [method(a, b) for a, b in zip(lhs, rhs)]
        )
        assert batched == individual


def test_gate_batch_validates_inputs(session):
    lhs = session.encrypt_boolean_batch([True, False])
    with pytest.raises(ValueError, match="unknown gate"):
        session.gate_batch("nope", lhs, lhs)
    with pytest.raises(ValueError, match="mismatched"):
        session.gate_batch("and", lhs, lhs[:1])


def test_batch_geometry_matches_paper_epoch_sizing(session):
    accelerator = session.accelerator
    assert session.device_batch_size == accelerator.config.tvlp
    assert session.core_batch_size == accelerator.core.core_batch_size(session.params)
    assert session.batch_capacity == session.device_batch_size * session.core_batch_size
    chunks = list(session.iter_epochs(list(range(2 * session.batch_capacity + 1))))
    assert [len(chunk) for chunk in chunks] == [
        session.batch_capacity,
        session.batch_capacity,
        1,
    ]


# -- reference backend ----------------------------------------------------------------


def test_reference_backend_matches_direct_gate_execution(session):
    netlist = Netlist(TOY_PARAMETERS, name="mix")
    a = netlist.add_input("a")
    b = netlist.add_input("b")
    c = netlist.add_input("c")
    x = netlist.add_gate("xor", "x", a, b)
    netlist.add_gate("or", "y", x, c)

    result = run(
        netlist,
        backend="reference",
        session=session,
        inputs={"a": True, "b": True, "c": True},
    )

    gates = session.gates()
    ct_a = session.encrypt_boolean(True)
    ct_b = session.encrypt_boolean(True)
    ct_c = session.encrypt_boolean(True)
    direct = session.decrypt_boolean(gates.or_(gates.xor(ct_a, ct_b), ct_c))

    assert isinstance(result, RunResult)
    assert result.outputs == [{"y": direct}]
    assert result.pbs_count == netlist.pbs_count()
    assert result.latency_s > 0


def test_reference_backend_adder_over_instance_batch(session):
    netlist = full_adder_netlist(TOY_PARAMETERS, bits=2)
    cases = [(1, 3), (2, 2), (3, 3)]
    inputs = [
        {
            "a0": bool(a & 1),
            "a1": bool(a >> 1 & 1),
            "b0": bool(b & 1),
            "b1": bool(b >> 1 & 1),
        }
        for a, b in cases
    ]
    result = run(netlist, backend="reference", session=session, inputs=inputs)
    assert len(result.outputs) == len(cases) > 1
    assert result.pbs_count == netlist.pbs_count() * len(cases)
    for (a, b), bits in zip(cases, result.outputs):
        total = int(bits["axb0"]) + 2 * int(bits["s1"]) + 4 * int(bits["c1"])
        assert total == a + b


def test_reference_backend_executes_lut_and_linear_operations(session):
    p = TOY_PARAMETERS.message_modulus
    netlist = Netlist(TOY_PARAMETERS, name="lut-linear")
    a = netlist.add_input("a")
    b = netlist.add_input("b")
    combined = netlist.add_linear("combined", (a, b), coefficients=(1, 1))
    netlist.add_lut("squared", combined, function=lambda m: (m * m) % p)

    result = run(
        netlist, backend="reference", session=session, inputs={"a": 1, "b": 0}
    )
    assert result.outputs == [{"squared": 1}]


def test_reference_backend_rejects_boolean_wire_into_lut(session):
    p = TOY_PARAMETERS.message_modulus
    netlist = Netlist(TOY_PARAMETERS, name="cross-domain")
    a = netlist.add_input("a")
    b = netlist.add_input("b")
    g = netlist.add_gate("and", "g", a, b)
    netlist.add_lut("y", g, function=lambda m: (m + 1) % p)
    with pytest.raises(ValueError, match="boolean-encoded"):
        run(netlist, backend="reference", session=session, inputs={"a": True, "b": True})


def test_reference_backend_rejects_message_wire_into_gate(session):
    netlist = Netlist(TOY_PARAMETERS, name="cross-domain-2")
    a = netlist.add_input("a")
    b = netlist.add_input("b")
    netlist.add_gate("and", "g", a, b)
    with pytest.raises(ValueError, match="message-encoded"):
        run(netlist, backend="reference", session=session, inputs={"a": 2, "b": True})


def test_reference_backend_rejects_graph_workloads(session):
    graph = pbs_batch_graph(TOY_PARAMETERS, 4)
    with pytest.raises(TypeError, match="Netlist"):
        run(graph, backend="reference", session=session)


def test_reference_backend_rejects_mismatched_session(session):
    netlist = Netlist(PARAM_SET_I, name="wrong-params")
    netlist.add_input("a")
    netlist.add_gate("not", "b", "a")
    with pytest.raises(ValueError, match="parameter set"):
        run(netlist, backend="reference", session=session)


# -- simulator / analytical backends ---------------------------------------------------


def test_strix_sim_backend_matches_direct_scheduler_run():
    graph = pbs_batch_graph(PARAM_SET_I, 1000)
    accelerator = StrixAccelerator()
    direct = StrixScheduler(accelerator).run(graph)
    result = run(graph, backend=StrixSimBackend(accelerator))
    assert result.latency_s == pytest.approx(direct.total_time_s)
    assert result.pbs_count == direct.total_pbs == 1000
    assert result.utilization == direct.core_utilization
    assert result.energy_j is not None and result.energy_j > 0
    assert result.details["epochs"] == direct.total_epochs


def test_analytical_backends_match_direct_models():
    graph = pbs_batch_graph(PARAM_SET_I, 512)
    cpu_result = run(graph, backend=AnalyticalBackend("cpu", threads=4))
    assert cpu_result.latency_s == pytest.approx(
        ConcreteCpuModel(threads=4).execute_graph(graph)
    )
    gpu_result = run(graph, backend="gpu-analytical")
    assert gpu_result.latency_s == pytest.approx(NuFheGpuModel().execute_graph(graph))
    assert cpu_result.backend == "cpu-analytical"
    assert gpu_result.backend == "gpu-analytical"


def test_analytical_backend_rejects_unknown_platform():
    with pytest.raises(ValueError, match="platform"):
        AnalyticalBackend("tpu")


# -- the run() facade -------------------------------------------------------------------


def test_same_netlist_runs_on_all_three_backend_families(session):
    """Acceptance: one netlist, three backends, one RunResult shape each."""
    netlist = full_adder_netlist(TOY_PARAMETERS, bits=2)

    reference = run(
        netlist,
        backend="reference",
        session=session,
        inputs=[{"a0": True, "b0": True, "a1": False, "b1": True}] * 2,
    )
    simulated = run(netlist, backend="strix-sim", params="I", instances=32)
    analytical = run(netlist, backend="cpu-analytical", params="I", instances=32)

    for result in (reference, simulated, analytical):
        assert isinstance(result, RunResult)
        assert result.latency_s > 0
        assert result.throughput_pbs_per_s > 0

    # Functional outputs decrypt to 1 + 3 = 4 on both instances.
    for bits in reference.outputs:
        assert int(bits["axb0"]) + 2 * int(bits["s1"]) + 4 * int(bits["c1"]) == 4
    # The performance backends costed the same replicated workload.
    assert simulated.pbs_count == analytical.pbs_count == netlist.pbs_count() * 32
    assert simulated.parameter_set == analytical.parameter_set == "I"


def test_run_resolves_deep_nn_models_by_name():
    result = run("NN-20", backend="cpu-analytical", params="I")
    assert result.pbs_count == 2588
    with pytest.raises(KeyError, match="NN-20"):
        run("NN-9000", backend="cpu-analytical")


def test_session_run_uses_session_accelerator(session):
    custom = Session(
        "TOY",
        seed=1,
        accelerator=StrixAccelerator(),
    )
    graph = pbs_batch_graph(TOY_PARAMETERS, 16)
    result = custom.run(graph, backend="strix-sim")
    assert result.backend == "strix-sim"
    assert result.pbs_count == 16


# -- workload normalization ---------------------------------------------------------------


def test_netlist_with_params_preserves_structure():
    netlist = full_adder_netlist(TOY_PARAMETERS, bits=3)
    rebound = netlist.with_params(PARAM_SET_I)
    assert rebound.params == PARAM_SET_I
    assert rebound.pbs_count() == netlist.pbs_count()
    assert rebound.primary_inputs == netlist.primary_inputs
    assert [op.output for op in rebound.operations] == [
        op.output for op in netlist.operations
    ]


def test_graph_with_params_preserves_structure():
    graph = pbs_batch_graph(TOY_PARAMETERS, 64)
    rebound = graph.with_params(PARAM_SET_I)
    assert rebound.params == PARAM_SET_I
    assert rebound.total_pbs() == graph.total_pbs()
    assert [node.name for node in rebound.nodes] == [node.name for node in graph.nodes]


def test_as_graph_rejects_replicating_non_netlists():
    graph = pbs_batch_graph(TOY_PARAMETERS, 4)
    with pytest.raises(ValueError, match="instances"):
        as_graph(graph, instances=2)


def test_netlist_output_wires():
    netlist = Netlist(TOY_PARAMETERS)
    a = netlist.add_input("a")
    b = netlist.add_input("b")
    x = netlist.add_gate("and", "x", a, b)
    netlist.add_gate("not", "y", x)
    assert netlist.output_wires() == ["y"]
