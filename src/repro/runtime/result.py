"""The common result type every execution backend returns.

Whatever executes a workload — the functional TFHE interpreter, the
cycle-level Strix simulator or an analytical baseline model — the caller gets
back one :class:`RunResult` carrying the quantities the paper's evaluation
compares: latency, PBS count and throughput, per-resource utilization,
energy, and (for functional execution) the decrypted outputs.  This is what
makes ``run(workload, backend=...)`` results directly comparable across
backends.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class RunResult:
    """Outcome of executing one workload on one backend.

    Attributes
    ----------
    workload:
        Name of the executed workload (netlist / graph name).
    backend:
        Registry name of the backend that produced the result.
    parameter_set:
        Name of the TFHE parameter set the workload ran under.
    latency_s:
        End-to-end execution time in seconds.  Estimated for the simulator
        and the analytical models; wall-clock for functional execution.
    pbs_count:
        Programmable bootstraps the workload performed.
    utilization:
        Per-resource busy fraction (e.g. ``{"hsc0": 0.93, ...}`` from the
        Strix simulator).  Empty when the backend does not model resources.
    energy_j:
        Estimated energy of the run in joules, ``None`` when the backend has
        no power model (functional execution).
    outputs:
        Decrypted outputs, one ``{wire: value}`` dict per workload instance.
        Only the reference backend produces them; performance backends leave
        this ``None``.
    details:
        Backend-specific extras (e.g. the full
        :class:`~repro.sim.scheduler.ScheduleResult` or epoch counts).
    """

    workload: str
    backend: str
    parameter_set: str
    latency_s: float
    pbs_count: int
    utilization: dict[str, float] = field(default_factory=dict)
    energy_j: float | None = None
    outputs: list[dict[str, int | bool]] | None = None
    details: dict[str, Any] = field(default_factory=dict)

    @property
    def latency_ms(self) -> float:
        """End-to-end execution time in milliseconds."""
        return self.latency_s * 1e3

    @property
    def throughput_pbs_per_s(self) -> float:
        """Achieved PBS/s over the whole run."""
        if self.latency_s <= 0:
            return 0.0
        return self.pbs_count / self.latency_s

    def render(self) -> str:
        """One-line human-readable summary (used by the examples)."""
        energy = f", {self.energy_j:.3f} J" if self.energy_j is not None else ""
        return (
            f"{self.backend:>14}: {self.latency_ms:12.3f} ms, "
            f"{self.pbs_count:,} PBS "
            f"({self.throughput_pbs_per_s:,.0f} PBS/s{energy})"
        )
