"""Fig. 1 — CPU workload breakdown of a TFHE gate.

Regenerates the three nested breakdowns (gate, PBS, blind-rotation
iteration) from the operation-count CPU model and checks the headline
proportions the paper quotes: ~65 % PBS / ~30 % keyswitch at the gate level
and ~98 % blind rotation inside PBS.
"""

from __future__ import annotations

from repro.analysis.breakdown import cpu_workload_breakdown
from repro.params import PARAM_SET_I


def test_fig1_cpu_workload_breakdown(benchmark, save_result):
    report = benchmark(cpu_workload_breakdown, PARAM_SET_I)

    assert 0.55 <= report.gate_shares["pbs"] <= 0.75
    assert 0.20 <= report.gate_shares["keyswitch"] <= 0.40
    assert report.pbs_shares["blind_rotation"] >= 0.96
    assert report.blind_rotation_shares["fft"] == max(
        report.blind_rotation_shares.values()
    )

    save_result("fig1_breakdown", report.render())
