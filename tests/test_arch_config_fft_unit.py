"""Tests for the Strix configuration and the pipelined FFT unit model."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.arch.config import STRIX_DEFAULT, STRIX_UNFOLDED, StrixConfig
from repro.arch.fft_unit import PipelinedFFTUnit


class TestStrixConfig:
    def test_default_matches_paper_design_point(self):
        assert STRIX_DEFAULT.tvlp == 8
        assert STRIX_DEFAULT.clp == 4
        assert STRIX_DEFAULT.plp == 2
        assert STRIX_DEFAULT.colp == 2
        assert STRIX_DEFAULT.clock_ghz == pytest.approx(1.2)
        assert STRIX_DEFAULT.hbm_bandwidth_gbps == pytest.approx(300.0)
        assert STRIX_DEFAULT.global_scratchpad_mb == pytest.approx(21.0)
        assert STRIX_DEFAULT.local_scratchpad_mb == pytest.approx(0.625)

    def test_effective_lanes_doubled_by_folding(self):
        assert STRIX_DEFAULT.effective_lanes == 8
        assert STRIX_UNFOLDED.effective_lanes == 4

    def test_fft_points_halved_by_folding(self):
        assert STRIX_DEFAULT.fft_points == 8192
        assert STRIX_UNFOLDED.fft_points == 16384

    def test_chip_coefficient_throughput(self):
        # 2*CLP*CoLP*TvLP coefficients per cycle (Section V).
        assert STRIX_DEFAULT.chip_coefficient_throughput == 2 * 4 * 2 * 8

    def test_cycle_conversions(self):
        assert STRIX_DEFAULT.cycles_to_seconds(1.2e9) == pytest.approx(1.0)
        assert STRIX_DEFAULT.cycles_to_ms(1.2e6) == pytest.approx(1.0)
        assert STRIX_DEFAULT.cycle_time_ns == pytest.approx(1 / 1.2)

    def test_with_parallelism_returns_new_config(self):
        changed = STRIX_DEFAULT.with_parallelism(tvlp=2, clp=16)
        assert (changed.tvlp, changed.clp) == (2, 16)
        assert (STRIX_DEFAULT.tvlp, STRIX_DEFAULT.clp) == (8, 4)

    def test_without_folding(self):
        assert STRIX_DEFAULT.without_folding().fft_folding is False

    def test_validation(self):
        with pytest.raises(ValueError):
            StrixConfig(tvlp=0)
        with pytest.raises(ValueError):
            StrixConfig(clock_ghz=0)
        with pytest.raises(ValueError):
            StrixConfig(bsk_channels=10, ksk_channels=10, ciphertext_channels=10)

    def test_config_is_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            STRIX_DEFAULT.tvlp = 4  # type: ignore[misc]


class TestPipelinedFFTUnit:
    def test_folded_unit_has_half_points(self):
        unit = PipelinedFFTUnit(16384, clp=4, folding=True)
        assert unit.points == 8192
        assert unit.num_stages == 13

    def test_unfolded_unit_keeps_full_points(self):
        unit = PipelinedFFTUnit(16384, clp=4, folding=False)
        assert unit.points == 16384
        assert unit.num_stages == 14

    def test_butterflies_per_stage_is_half_clp(self):
        unit = PipelinedFFTUnit(1024, clp=4)
        assert unit.butterflies_per_stage == 2
        assert unit.total_butterflies == 2 * unit.num_stages

    def test_initiation_interval_matches_paper_formula(self):
        # Paper: a new N-point polynomial every N/CLP cycles (per physical
        # size); with folding an N=1024 polynomial uses 512 points.
        unit = PipelinedFFTUnit(16384, clp=4, folding=True)
        assert unit.initiation_interval(1024) == 128
        assert unit.initiation_interval(16384) == 2048

    def test_latency_equals_initiation_interval(self):
        unit = PipelinedFFTUnit(16384, clp=4, folding=True)
        assert unit.latency(1024) == unit.initiation_interval(1024)

    def test_degree_exceeding_maximum_rejected(self):
        unit = PipelinedFFTUnit(1024, clp=4)
        with pytest.raises(ValueError):
            unit.initiation_interval(2048)

    def test_stage_shuffle_delays_shrink(self):
        unit = PipelinedFFTUnit(1024, clp=4)
        delays = [stage.shuffle_delay for stage in unit.stages()]
        assert delays[-1] == 0
        assert all(a >= b for a, b in zip(delays[:-2], delays[1:-1]))

    def test_large_delays_use_sram(self):
        unit = PipelinedFFTUnit(16384, clp=4)
        stages = unit.stages()
        assert stages[0].uses_sram_delay is True
        assert stages[-2].uses_sram_delay is False

    def test_area_matches_table_vi(self):
        folded = PipelinedFFTUnit(16384, clp=4, folding=True)
        unfolded = PipelinedFFTUnit(16384, clp=4, folding=False)
        assert folded.area_mm2 == pytest.approx(1.81, rel=0.05)
        assert unfolded.area_mm2 == pytest.approx(3.13, rel=0.05)
        assert unfolded.area_mm2 / folded.area_mm2 == pytest.approx(1.73, rel=0.05)

    def test_power_scales_with_area(self):
        small = PipelinedFFTUnit(1024, clp=4)
        large = PipelinedFFTUnit(16384, clp=4)
        assert large.power_w > small.power_w

    def test_functional_transform_roundtrip(self, rng):
        unit = PipelinedFFTUnit(1024, clp=4, folding=True)
        poly = rng.integers(-1000, 1000, 256).astype(np.float64)
        spectrum = unit.functional_transform(poly)
        assert spectrum.shape == (128,)
        recovered = unit.functional_inverse(spectrum, 256)
        np.testing.assert_allclose(recovered, poly, atol=1e-6)

    def test_from_config(self):
        unit = PipelinedFFTUnit.from_config(STRIX_DEFAULT)
        assert unit.points == STRIX_DEFAULT.fft_points
        assert unit.clp == STRIX_DEFAULT.clp

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            PipelinedFFTUnit(100, clp=4)
        with pytest.raises(ValueError):
            PipelinedFFTUnit(1024, clp=3)
        with pytest.raises(ValueError):
            PipelinedFFTUnit(4, clp=16)
