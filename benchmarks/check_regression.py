"""Bench-regression gate: diff ``BENCH_*.json`` against a previous commit.

The benchmark scripts leave machine-readable artifacts (``BENCH_serve.json``,
``BENCH_sim.json``) at the repository root; this script compares a freshly
generated file against the version a previous commit recorded and fails when
any shared record drifted beyond a tolerance — the perf-trajectory check the
ROADMAP asks CI to run.

Records fall into two classes:

* **model outputs** (simulated latencies, throughputs, percentiles) are
  deterministic — any drift is a real behaviour change and is judged against
  ``--tolerance``;
* **wall-clock timings** (records with ``timed: true``, written by
  ``BenchReport.time``) are noisy across runners and are judged against the
  much looser ``--timed-tolerance`` (or skipped with ``--skip-timed``).

Usage::

    python benchmarks/check_regression.py --current BENCH_serve.json \
        --baseline-ref HEAD~1
    python benchmarks/check_regression.py --current /tmp/BENCH_sim.json \
        --baseline old/BENCH_sim.json --tolerance 0.05

A missing baseline (first commit, file not yet recorded at the ref) is
reported and tolerated — there is nothing to regress against.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

#: Relative drift tolerated on deterministic model records.
DEFAULT_TOLERANCE = 0.05
#: Relative drift tolerated on wall-clock (``timed``) records.
DEFAULT_TIMED_TOLERANCE = 2.0


def load_records(document: dict) -> dict[str, dict]:
    """Index a ``BENCH_*.json`` document by record name."""
    if document.get("schema") != 1:
        raise ValueError(f"unsupported benchmark schema: {document.get('schema')!r}")
    return {record["name"]: record for record in document["records"]}


def load_baseline(ref: str | None, path: str | None, current_name: str) -> dict | None:
    """Baseline document from an explicit path or a git ref (``None`` if absent)."""
    if path is not None:
        baseline_path = Path(path)
        if not baseline_path.exists():
            return None
        return json.loads(baseline_path.read_text())
    assert ref is not None
    result = subprocess.run(
        ["git", "show", f"{ref}:{current_name}"],
        capture_output=True,
        text=True,
        cwd=Path(__file__).resolve().parent.parent,
    )
    if result.returncode != 0:
        return None
    return json.loads(result.stdout)


def relative_drift(current: float, baseline: float) -> float:
    """Symmetric relative change between two record values."""
    if baseline == current:
        return 0.0
    scale = max(abs(baseline), abs(current), 1e-30)
    return abs(current - baseline) / scale


def compare(
    current: dict[str, dict],
    baseline: dict[str, dict],
    tolerance: float,
    timed_tolerance: float | None,
) -> tuple[list[str], list[str]]:
    """Diff two record sets; returns ``(violations, notes)``."""
    violations: list[str] = []
    notes: list[str] = []
    for name in sorted(set(current) | set(baseline)):
        if name not in baseline:
            notes.append(f"new record {name} (no baseline)")
            continue
        if name not in current:
            notes.append(f"record {name} disappeared from the current run")
            continue
        new, old = current[name], baseline[name]
        timed = bool(new.get("timed") or old.get("timed"))
        if timed and timed_tolerance is None:
            notes.append(f"skipping wall-clock record {name}")
            continue
        budget = timed_tolerance if timed else tolerance
        drift = relative_drift(float(new["value"]), float(old["value"]))
        line = (
            f"{name}: {old['value']:.6g} -> {new['value']:.6g} "
            f"({drift:+.1%} drift, budget {budget:.0%}"
            f"{', wall-clock' if timed else ''})"
        )
        if drift > budget:
            violations.append(line)
        else:
            notes.append(f"ok {line}")
    return violations, notes


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--current", required=True, help="freshly generated BENCH_*.json to judge"
    )
    parser.add_argument(
        "--baseline", default=None, help="explicit baseline file to diff against"
    )
    parser.add_argument(
        "--baseline-ref",
        default="HEAD~1",
        help="git ref whose committed artifact is the baseline (default: HEAD~1)",
    )
    parser.add_argument(
        "--name",
        default=None,
        help="artifact name at the ref (default: the --current file's basename)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="relative drift allowed on deterministic records",
    )
    parser.add_argument(
        "--timed-tolerance",
        type=float,
        default=DEFAULT_TIMED_TOLERANCE,
        help="relative drift allowed on wall-clock records",
    )
    parser.add_argument(
        "--skip-timed",
        action="store_true",
        help="ignore wall-clock records entirely",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="also print records within budget"
    )
    args = parser.parse_args()

    current_path = Path(args.current)
    current = load_records(json.loads(current_path.read_text()))
    name = args.name or current_path.name
    baseline_document = load_baseline(args.baseline_ref, args.baseline, name)
    if baseline_document is None:
        source = args.baseline or f"{args.baseline_ref}:{name}"
        print(f"[check_regression] no baseline at {source}; nothing to regress against")
        return 0
    baseline = load_records(baseline_document)

    violations, notes = compare(
        current,
        baseline,
        tolerance=args.tolerance,
        timed_tolerance=None if args.skip_timed else args.timed_tolerance,
    )
    if args.verbose:
        for note in notes:
            print(f"[check_regression] {note}")
    else:
        for note in notes:
            if not note.startswith("ok "):
                print(f"[check_regression] {note}")
    if violations:
        print(
            f"[check_regression] {len(violations)} record(s) drifted beyond "
            f"tolerance against {args.baseline or args.baseline_ref}:"
        )
        for violation in violations:
            print(f"  REGRESSION {violation}")
        return 1
    print(
        f"[check_regression] {len(current)} record(s) checked against "
        f"{args.baseline or args.baseline_ref}: within tolerance"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
