"""Tests for the application workloads (Deep-NN, boolean circuits, generators)."""

from __future__ import annotations

import pytest

from repro.apps.boolean_circuits import Comparator, RippleCarryAdder, boolean_circuit_graph
from repro.apps.deep_nn import (
    DeepNNModel,
    EncryptedMLP,
    ZAMA_DEEP_NN_MODELS,
    build_deep_nn_graph,
)
from repro.apps.workloads import (
    gate_workload_graph,
    lut_pipeline_graph,
    pbs_batch_graph,
    random_layered_graph,
)
from repro.params import DEEP_NN_N1024, PARAM_SET_I, TOY_PARAMETERS
from repro.sim.graph import NodeKind


class TestDeepNNModel:
    def test_paper_model_shapes(self):
        nn20 = ZAMA_DEEP_NN_MODELS["NN-20"]
        assert nn20.input_ciphertexts == 784
        assert nn20.conv_activations == 840
        assert nn20.dense_layers == 19
        assert nn20.dense_neurons == 92

    @pytest.mark.parametrize(
        "name, expected_pbs",
        [("NN-20", 840 + 19 * 92), ("NN-50", 840 + 49 * 92), ("NN-100", 840 + 99 * 92)],
    )
    def test_pbs_counts(self, name, expected_pbs):
        assert ZAMA_DEEP_NN_MODELS[name].pbs_count() == expected_pbs

    def test_linear_operations_grow_with_depth(self):
        ops = [ZAMA_DEEP_NN_MODELS[name].linear_operations() for name in ("NN-20", "NN-50", "NN-100")]
        assert ops == sorted(ops)

    def test_graph_matches_model_counts(self):
        model = ZAMA_DEEP_NN_MODELS["NN-20"]
        graph = build_deep_nn_graph(model, DEEP_NN_N1024)
        assert graph.total_pbs() == model.pbs_count()
        assert graph.total_linear_operations() == model.linear_operations()
        # 2 nodes per layer (linear + relu).
        assert len(graph) == 2 * model.depth

    def test_graph_layers_are_sequential(self):
        graph = build_deep_nn_graph(ZAMA_DEEP_NN_MODELS["NN-20"], DEEP_NN_N1024)
        levels = graph.levels()
        assert len(levels) == len(graph)
        assert all(len(level) == 1 for level in levels)

    def test_custom_model(self):
        tiny = DeepNNModel("NN-3", depth=3)
        assert tiny.pbs_count() == 840 + 2 * 92


class TestEncryptedMLP:
    @pytest.fixture(scope="class")
    def mlp(self, toy_context_class):
        return EncryptedMLP(toy_context_class, layer_sizes=[3, 2], weight_magnitude=1, seed=3)

    @pytest.fixture(scope="class")
    def toy_context_class(self, request):
        # Reuse the session fixture through the class-scoped request.
        return request.getfixturevalue("toy_context")

    def test_weight_shapes(self, mlp):
        assert len(mlp.weights) == 1
        assert mlp.weights[0].shape == (2, 3)

    def test_encrypted_inference_matches_plaintext_reference(self, mlp):
        inputs = [1, 0, 1]
        assert mlp.infer(inputs) == mlp.infer_plaintext(inputs)

    def test_two_layer_network(self, toy_context):
        mlp = EncryptedMLP(toy_context, layer_sizes=[2, 2, 1], weight_magnitude=1, seed=7)
        inputs = [1, 1]
        assert mlp.infer(inputs) == mlp.infer_plaintext(inputs)

    def test_input_length_validated(self, mlp):
        with pytest.raises(ValueError):
            mlp.forward_encrypted([])

    def test_needs_two_layers(self, toy_context):
        with pytest.raises(ValueError):
            EncryptedMLP(toy_context, layer_sizes=[4])


class TestBooleanCircuits:
    @pytest.fixture(scope="class")
    def circuits(self, request):
        context = request.getfixturevalue("toy_context")
        gates = context.gates()
        return context, RippleCarryAdder(gates), Comparator(gates)

    def _encrypt_number(self, context, value, bits):
        return [context.encrypt_boolean(bool((value >> i) & 1)) for i in range(bits)]

    def _decrypt_number(self, context, ciphertexts):
        return sum(int(context.decrypt_boolean(ct)) << i for i, ct in enumerate(ciphertexts))

    @pytest.mark.parametrize("a, b", [(0, 0), (1, 2), (3, 3), (2, 1)])
    def test_two_bit_addition(self, circuits, a, b):
        context, adder, _ = circuits
        result = adder.add(
            self._encrypt_number(context, a, 2), self._encrypt_number(context, b, 2)
        )
        assert self._decrypt_number(context, result) == a + b

    def test_adder_requires_equal_width(self, circuits):
        context, adder, _ = circuits
        with pytest.raises(ValueError):
            adder.add(self._encrypt_number(context, 1, 2), self._encrypt_number(context, 1, 3))

    @pytest.mark.parametrize("a, b, expected", [(2, 2, True), (1, 3, False)])
    def test_equality(self, circuits, a, b, expected):
        context, _, comparator = circuits
        result = comparator.equals(
            self._encrypt_number(context, a, 2), self._encrypt_number(context, b, 2)
        )
        assert context.decrypt_boolean(result) is expected

    @pytest.mark.parametrize("a, b, expected", [(3, 1, True), (1, 3, False), (2, 2, False)])
    def test_greater_than(self, circuits, a, b, expected):
        context, _, comparator = circuits
        result = comparator.greater_than(
            self._encrypt_number(context, a, 2), self._encrypt_number(context, b, 2)
        )
        assert context.decrypt_boolean(result) is expected

    def test_gate_counts(self):
        assert RippleCarryAdder.gate_count(8) == 40
        assert Comparator.gate_count_equals(8) == 15
        assert Comparator.gate_count_greater_than(8) == 32

    def test_circuit_graph_pbs_total(self):
        graph = boolean_circuit_graph(PARAM_SET_I, "adder", bits=8, instances=16)
        assert graph.total_pbs() == RippleCarryAdder.gate_count(8) // 8 * 8 * 16
        assert len(graph.levels()) == 8

    def test_circuit_graph_unknown_circuit(self):
        with pytest.raises(ValueError):
            boolean_circuit_graph(PARAM_SET_I, "divider", bits=8)


class TestWorkloadGenerators:
    def test_pbs_batch_graph(self):
        graph = pbs_batch_graph(PARAM_SET_I, 100)
        assert graph.total_pbs() == 100
        assert len(graph) == 1

    def test_lut_pipeline_graph_is_sequential(self):
        graph = lut_pipeline_graph(PARAM_SET_I, stages=5, ciphertexts_per_stage=10)
        assert graph.total_pbs() == 50
        assert len(graph.levels()) == 5

    def test_gate_workload_graph_splits_by_parallelism(self):
        graph = gate_workload_graph(PARAM_SET_I, gates=100, parallelism=32)
        assert graph.total_pbs() == 100
        assert len(graph.levels()) == 4

    def test_gate_workload_rejects_bad_parallelism(self):
        with pytest.raises(ValueError):
            gate_workload_graph(PARAM_SET_I, gates=10, parallelism=0)

    def test_random_layered_graph_is_valid_dag(self):
        graph = random_layered_graph(TOY_PARAMETERS, levels=5, max_width=4, seed=11)
        order = [node.name for node in graph.topological_order()]
        assert len(order) == len(graph)
        kinds = {node.kind for node in graph}
        assert kinds <= {NodeKind.PBS_KS, NodeKind.LINEAR}

    def test_random_layered_graph_deterministic_per_seed(self):
        first = random_layered_graph(TOY_PARAMETERS, 4, 3, seed=5)
        second = random_layered_graph(TOY_PARAMETERS, 4, 3, seed=5)
        assert [node.name for node in first] == [node.name for node in second]
        assert first.total_pbs() == second.total_pbs()
