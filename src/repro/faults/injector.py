"""Degraded-mode dispatch: resolving a fault schedule against live serving.

The :class:`~repro.faults.schedule.FaultSchedule` says *what* breaks;
:class:`FaultInjector` is the piece that makes the serving path feel it.
One injector lives on each :class:`~repro.serve.cluster.StrixCluster` and
owns every stateful consequence of the schedule:

* **death side effects** — when a death's injection time is reached, the
  dying device's resident key sets are reclaimed through
  :meth:`~repro.arch.key_cache.KeyResidencyManager.evict_device` (its HBM
  contents are gone; surviving copies on other devices stay).  Tenants
  left with *no* residency anywhere are tracked so the re-shipping their
  next placement pays is attributed to the event that orphaned them.
* **dispatch resolution** — :meth:`run` wraps the layout's dispatch.  It
  first waits out any window in which *no* device accepts placement, then
  lets the layout place the batch among the placeable devices.  If a
  death lands inside the resulting execution window, the batch *fails at
  the death instant*: the device state the attempt booked is rolled back,
  the partial occupancy up to the failure is re-booked as wasted work,
  the dead device's keys are reclaimed, and — per ``on_death`` — the
  batch is replayed from the failure time onto the survivors
  (``"retry"``, the default) or counted as lost (``"drop"``).
* **impact accounting** — requests lost and retried, batches deferred,
  wasted and throttle-extra seconds, per-event recovery time and key
  re-ship bytes.  :meth:`availability` folds it into the report block and
  returns ``{}`` when nothing was ever impacted, so a schedule that heals
  before the first flush leaves every report byte-identical to no faults
  at all — the invariant the chaos suite pins.

Determinism: the injector adds no randomness and reads no wall clock.
Failure times come off the schedule, retry times off the failure times,
and every counter update is a pure consequence of (trace, schedule,
config) — so the same seed and the same schedule reproduce the same
:class:`~repro.serve.server.ServeReport` bit for bit.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Any

from repro.faults.schedule import FaultEvent, FaultSchedule

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.params import TFHEParameters
    from repro.sched.layouts import Dispatch
    from repro.serve.batcher import Batch
    from repro.serve.cluster import StrixCluster

#: Valid ``on_death`` policies.
ON_DEATH_POLICIES = ("retry", "drop")

#: Retry ceiling per batch — far above any real schedule's event count; a
#: batch that fails this often under a pathological schedule is lost.
MAX_RETRIES = 64


class RequestLostError(RuntimeError):
    """A request died with its device and was not replayed.

    Raised to async submitters awaiting an outcome when their batch is
    dropped (``on_death="drop"``) or runs out of surviving devices.
    """


class FaultInjector:
    """Applies one :class:`FaultSchedule` to one cluster's serving path."""

    def __init__(self, schedule: FaultSchedule, on_death: str = "retry"):
        if on_death not in ON_DEATH_POLICIES:
            raise ValueError(
                f"unknown on_death policy {on_death!r}; "
                f"choose one of {list(ON_DEATH_POLICIES)}"
            )
        self.schedule = schedule
        self.on_death = on_death
        self._has_slowdowns = bool(schedule.slowdowns)
        self.reset()

    @property
    def active(self) -> bool:
        """Whether any fault is scheduled (``False`` keeps every fast path)."""
        return bool(self.schedule)

    def reset(self) -> None:
        """Clear all per-simulation impact state (the schedule is immutable)."""
        self._deaths_applied: set[int] = set()
        self._pending_reship: dict[int, set[str]] = {}
        self._impacts: dict[int, dict[str, Any]] = {}
        self.requests_lost = 0
        self.requests_retried = 0
        self.batches_retried = 0
        self.batches_lost = 0
        self.batches_deferred = 0
        self.deferred_s = 0.0
        self.wasted_s = 0.0
        self.throttle_extra_s = 0.0

    # -- per-event impact records --------------------------------------------------

    def _event_index(self, event: FaultEvent) -> int:
        return self.schedule.events.index(event)

    def _impact(self, event: FaultEvent) -> dict[str, Any]:
        """The (created-on-first-touch) impact record for ``event``."""
        index = self._event_index(event)
        record = self._impacts.get(index)
        if record is None:
            record = {
                "requests_lost": 0,
                "batches_retried": 0,
                "requests_retried": 0,
                "recovery_s": 0.0,
                "wasted_s": 0.0,
                "evicted_tenants": 0,
                "reship_bytes": 0,
                "throttled_batches": 0,
                "throttle_extra_s": 0.0,
            }
            self._impacts[index] = record
        return record

    # -- death side effects --------------------------------------------------------

    def apply_deaths(self, cluster: "StrixCluster", now: float) -> None:
        """Reclaim key memory for every death injected at or before ``now``.

        Each death applies exactly once (a device that died, healed and
        died again is two events).  Eviction that frees nothing — the
        device held no keys, e.g. the event healed before any batch ever
        flushed — leaves no impact record, which is what keeps zero-impact
        schedules byte-identical to no faults.
        """
        for event in self.schedule.deaths:
            if event.inject_s > now:
                break
            index = self._event_index(event)
            if index in self._deaths_applied:
                continue
            self._deaths_applied.add(index)
            evicted = cluster.key_residency.evict_device(event.device)
            if not evicted:
                continue
            record = self._impact(event)
            record["evicted_tenants"] += len(evicted)
            orphaned = {
                tenant
                for tenant in evicted
                if not cluster.key_residency.resident_devices(tenant)
            }
            if orphaned:
                self._pending_reship.setdefault(index, set()).update(orphaned)

    def _note_reships(self, cluster: "StrixCluster", params: "TFHEParameters") -> None:
        """Attribute re-shipped key sets to the death that orphaned them.

        A tenant orphaned by several deaths at once re-ships *once*, so it
        is charged to the earliest such event only — attribution must sum
        to the bytes actually moved.
        """
        if not self._pending_reship:
            return
        key_bytes = cluster.interconnect.key_set_bytes(params)
        charged: set[str] = set()
        for index in sorted(self._pending_reship):
            tenants = self._pending_reship[index]
            regained = {
                tenant
                for tenant in tenants
                if cluster.key_residency.resident_devices(tenant)
            }
            fresh = regained - charged
            if fresh:
                self._impacts[index]["reship_bytes"] += len(fresh) * key_bytes
                charged |= fresh
            tenants -= regained
            if not tenants:
                del self._pending_reship[index]

    # -- slow-device throttling ------------------------------------------------------

    def adjust_service(self, device: int, start_s: float, service_s: float) -> float:
        """Service time after thermal throttling on ``device`` at ``start_s``.

        The multiplier of every slow-device event active at the *start* of
        the work applies to the whole window (a batch does not re-price
        mid-flight); the extra seconds are charged to each event's impact
        record.  Returns ``service_s`` unchanged — the same float — when no
        slowdown is scheduled, so the no-fault path stays bit-identical.
        """
        if not self._has_slowdowns:
            return service_s
        adjusted = service_s
        for event in self.schedule.slowdowns:
            if event.device == device and event.active_at(start_s):
                extra = adjusted * (event.slow_factor - 1.0)
                adjusted += extra
                record = self._impact(event)
                record["throttled_batches"] += 1
                record["throttle_extra_s"] += extra
                self.throttle_extra_s += extra
        return adjusted

    # -- dispatch resolution -----------------------------------------------------------

    def run(
        self,
        cluster: "StrixCluster",
        batch: "Batch",
        now: float,
        params: "TFHEParameters",
    ) -> "Dispatch":
        """Dispatch ``batch`` under the schedule (the degraded-mode path).

        Only called when the schedule is non-empty; the no-fault path goes
        straight to the layout.  See the module docstring for the
        resolution algorithm.
        """
        from dataclasses import replace

        from repro.sched.layouts import Dispatch

        self.apply_deaths(cluster, now)
        devices = len(cluster.devices)
        t = self.schedule.first_available_s(now, devices)
        if t is None:
            return self._lose(batch, None, now)
        if t > now:
            self.batches_deferred += 1
            self.deferred_s += t - now
        causes: list[FaultEvent] = []
        attempt = 0
        while True:
            current = batch if attempt == 0 else replace(batch, attempt=attempt)
            snapshot = [
                (device.busy_until, device.busy_s, device.batches, device.pbs)
                for device in cluster.devices
            ]
            dispatch = cluster.layout.dispatch(cluster, current, t, params)
            failure = self._first_failure(dispatch)
            if failure is None:
                self._note_reships(cluster, params)
                if causes:
                    dispatch = replace(dispatch, retried=True)
                    for event in causes:
                        record = self._impact(event)
                        record["recovery_s"] = max(
                            record["recovery_s"], dispatch.end_s - event.inject_s
                        )
                return dispatch
            event, failed_at = failure
            for device, state in zip(cluster.devices, snapshot):
                device.busy_until, device.busy_s, device.batches, device.pbs = state
            wasted = self._book_partial(cluster, dispatch, failed_at)
            self.wasted_s += wasted
            record = self._impact(event)
            record["wasted_s"] += wasted
            # The death is now observed: reclaim the dead device's keys so
            # the replay pays (and attributes) any re-shipping.
            self.apply_deaths(cluster, failed_at)
            if self.on_death == "drop" or attempt + 1 >= MAX_RETRIES:
                return self._lose(batch, dispatch, failed_at, event)
            attempt += 1
            causes.append(event)
            record["batches_retried"] += 1
            record["requests_retried"] += len(batch.requests)
            self.batches_retried += 1
            self.requests_retried += len(batch.requests)
            t = self.schedule.first_available_s(failed_at, devices)
            if t is None:
                return self._lose(batch, dispatch, failed_at, event)
            if t > failed_at:
                self.batches_deferred += 1
                self.deferred_s += t - failed_at

    def _first_failure(
        self, dispatch: "Dispatch"
    ) -> "tuple[FaultEvent, float] | None":
        """The earliest death landing inside the dispatch's device windows.

        Pipeline dispatches fail per-stage window; single-device dispatches
        fail on their one execution window.  Returns ``(event, t)`` with
        ``t`` the failure instant (the death time, or the window start when
        the device was already dead as the work began), or ``None``.
        """
        if dispatch.stages:
            windows = [
                (stage.device, stage.start_s, stage.end_s)
                for stage in dispatch.stages
            ]
        else:
            windows = [(dispatch.device, dispatch.start_s, dispatch.end_s)]
        best: tuple[FaultEvent, float] | None = None
        for event in self.schedule.deaths:
            for device, start, end in windows:
                if (
                    event.device == device
                    and event.inject_s < end
                    and event.heal_s > start
                ):
                    failed_at = max(event.inject_s, start)
                    if best is None or failed_at < best[1]:
                        best = (event, failed_at)
        return best

    def _book_partial(
        self, cluster: "StrixCluster", dispatch: "Dispatch", failed_at: float
    ) -> float:
        """Re-book the work executed before the failure as wasted busy time.

        The devices really ran until the death; the batch just produced
        nothing.  Utilization stays honest (busy seconds include the wasted
        window) while batch/PBS completion counters do not move.
        """
        if dispatch.stages:
            windows = [
                (stage.device, stage.start_s, stage.end_s)
                for stage in dispatch.stages
            ]
        else:
            windows = [(dispatch.device, dispatch.start_s, dispatch.end_s)]
        wasted = 0.0
        for index, start, end in windows:
            if start >= failed_at:
                continue
            until = min(end, failed_at)
            device = cluster.devices[index]
            device.busy_until = max(device.busy_until, until)
            device.busy_s += until - start
            wasted += until - start
        return wasted

    def _lose(
        self,
        batch: "Batch",
        dispatch: "Dispatch | None",
        at_s: float,
        event: FaultEvent | None = None,
    ) -> "Dispatch":
        """Mark the batch lost and return the terminal (lost) dispatch."""
        from dataclasses import replace

        from repro.sched.layouts import Dispatch

        self.requests_lost += len(batch.requests)
        self.batches_lost += 1
        if event is not None:
            self._impact(event)["requests_lost"] += len(batch.requests)
        if dispatch is None:
            # No device ever accepted the batch: it is lost where it stood.
            return Dispatch(
                device=-1, start_s=at_s, end_s=at_s, devices=(), lost=True
            )
        return replace(dispatch, end_s=at_s, lost=True)

    # -- reporting ------------------------------------------------------------------

    def _had_impact(self) -> bool:
        return bool(
            self._impacts
            or self.requests_lost
            or self.batches_deferred
            or self.wasted_s
            or self.throttle_extra_s
        )

    def availability(self, horizon_s: float) -> dict[str, Any]:
        """The report's ``availability`` block; ``{}`` when nothing happened.

        ``degraded_s`` measures the union of the impact-bearing events'
        active windows clipped to ``[0, horizon_s]`` — seconds during which
        the cluster actually served degraded, not merely seconds a fault
        was nominally scheduled.
        """
        if not self._had_impact():
            return {}
        events = []
        intervals = []
        for index in sorted(self._impacts):
            event = self.schedule.events[index]
            record = self._impacts[index]
            events.append({**event.to_dict(), **record})
            start = min(event.inject_s, horizon_s)
            end = min(event.heal_s, horizon_s)
            if end > start:
                intervals.append((start, end))
        degraded = 0.0
        cursor = -math.inf
        for start, end in sorted(intervals):
            start = max(start, cursor)
            if end > start:
                degraded += end - start
                cursor = end
        return {
            "requests_lost": self.requests_lost,
            "requests_retried": self.requests_retried,
            "batches_lost": self.batches_lost,
            "batches_retried": self.batches_retried,
            "batches_deferred": self.batches_deferred,
            "deferred_s": self.deferred_s,
            "wasted_s": self.wasted_s,
            "throttle_extra_s": self.throttle_extra_s,
            "key_reship_bytes": sum(
                record["reship_bytes"] for record in self._impacts.values()
            ),
            "degraded_s": degraded,
            "events": events,
        }

    def stats_view(self) -> dict[str, float]:
        """Flat counters for the metrics registry's ``serve_faults`` view.

        Empty when no fault is scheduled, so registries (and the ``STATS``
        wire frame) stay byte-identical for fault-free servers.
        """
        if not self.active:
            return {}
        return {
            "events_scheduled": float(len(self.schedule)),
            "deaths_applied": float(len(self._deaths_applied)),
            "requests_lost": float(self.requests_lost),
            "requests_retried": float(self.requests_retried),
            "batches_lost": float(self.batches_lost),
            "batches_retried": float(self.batches_retried),
            "batches_deferred": float(self.batches_deferred),
            "wasted_s": self.wasted_s,
            "throttle_extra_s": self.throttle_extra_s,
        }
