"""Backend protocol and named registry.

A *backend* is anything that can execute a workload and report a
:class:`~repro.runtime.result.RunResult`: the functional TFHE interpreter,
the cycle-level Strix simulator, or an analytical platform model.  Backends
register themselves under short names (``"reference"``, ``"strix-sim"``,
``"cpu-analytical"``, ``"gpu-analytical"``) so callers select execution
targets by string — the pluggability every scaling layer (sharding, async
serving) builds on.
"""

from __future__ import annotations

import abc
import difflib
from typing import TYPE_CHECKING, Any, Callable, ClassVar

from repro.params import TFHEParameters
from repro.runtime.result import RunResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.runtime.session import Session


class Backend(abc.ABC):
    """Executes workloads; every concrete backend implements :meth:`run`."""

    #: Registry name of the backend (set by subclasses).
    name: ClassVar[str] = ""

    @abc.abstractmethod
    def run(
        self,
        workload: Any,
        *,
        params: TFHEParameters | str | None = None,
        session: "Session | None" = None,
        inputs: Any = None,
        instances: int = 1,
        **options: Any,
    ) -> RunResult:
        """Execute ``workload`` and return a :class:`RunResult`.

        Backends accept the full keyword set and ignore what they do not
        model (the simulator has no use for ``inputs``; the functional
        interpreter has no use for resource options), so one call signature
        works across all of them.
        """


class UnknownBackendError(KeyError):
    """Raised when a backend name is not in the registry.

    Subclasses ``KeyError`` for compatibility with callers that catch the
    registry's historical exception, but renders as a plain sentence (bare
    ``KeyError`` wraps its message in quotes) listing every registered
    backend and, when one is close, a did-you-mean suggestion.
    """

    def __init__(self, name: str, registered: list[str]):
        self.name = name
        self.registered = registered
        message = f"unknown backend {name!r}; registered backends: {registered}"
        matches = difflib.get_close_matches(name, registered, n=1)
        if matches:
            message += f" — did you mean {matches[0]!r}?"
        super().__init__(message)

    def __str__(self) -> str:  # KeyError.__str__ shows repr(args[0]); undo that.
        return self.args[0]

    def __reduce__(self):  # BaseException pickles as cls(*args); args is the message.
        return (type(self), (self.name, self.registered))


_REGISTRY: dict[str, Callable[..., Backend]] = {}


def register_backend(name: str, factory: Callable[..., Backend]) -> None:
    """Register a backend factory under ``name``.

    ``factory`` is called with the keyword arguments given to
    :func:`get_backend` and must return a :class:`Backend`.  Re-registering
    an existing name replaces the factory (deliberate: tests and downstream
    deployments swap implementations in).
    """
    if not name:
        raise ValueError("backend name must be non-empty")
    _REGISTRY[name] = factory


def unregister_backend(name: str) -> None:
    """Remove a backend from the registry (no-op when absent)."""
    _REGISTRY.pop(name, None)


def list_backends() -> list[str]:
    """Names of all registered backends, sorted."""
    return sorted(_REGISTRY)


def get_backend(name: str, **factory_options: Any) -> Backend:
    """Instantiate the backend registered under ``name``.

    Raises :class:`UnknownBackendError` (a ``KeyError``) listing the known
    names — plus a did-you-mean suggestion — when ``name`` is unknown.
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise UnknownBackendError(name, list_backends()) from None
    return factory(**factory_options)
