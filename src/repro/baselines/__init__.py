"""Baseline platform models.

The paper compares Strix against measured CPU (Concrete), GPU (NuFHE), FPGA
(YKP, XHEC) and ASIC (Matcha) implementations.  Those platforms are closed
systems we cannot run here, so this package provides two kinds of stand-ins
(documented as substitutions in DESIGN.md):

* analytical cost models of the CPU and GPU execution (operation counts,
  core counts, device-level batching and fragmentation) calibrated against
  the published parameter-set-I numbers — used for the workload breakdown
  (Fig. 1), the fragmentation study (Fig. 2) and the Deep-NN benchmark
  (Fig. 7);
* the published Table V latency/throughput numbers encoded verbatim as
  reference points — used for the cross-platform comparison table.
"""

from repro.baselines.cpu_model import ConcreteCpuModel, CpuWorkloadBreakdown
from repro.baselines.gpu_model import NuFheGpuModel
from repro.baselines.reference_platforms import (
    PublishedResult,
    PUBLISHED_PBS_RESULTS,
    published_results_for,
)

__all__ = [
    "ConcreteCpuModel",
    "CpuWorkloadBreakdown",
    "NuFheGpuModel",
    "PublishedResult",
    "PUBLISHED_PBS_RESULTS",
    "published_results_for",
]
