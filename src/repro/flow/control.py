"""The flow controller: executes admission decisions and accounts overload.

One :class:`FlowController` lives on each :class:`~repro.serve.Server`.
It is the single place every overload outcome funnels through, so the
``overload`` block of a :class:`~repro.serve.server.ServeReport` — and the
``serve_overload`` registry view the ``STATS`` frame scrapes — is one
consistent ledger:

* **admitted** — requests that entered the queue;
* **rejected** — turned away at admission (reject-newest / quota);
* **shed** — admitted earlier, evicted by a later arrival (shed-oldest);
* **expired** — admitted, but already past their ``deadline_s`` when the
  batcher went to put them in a batch (dropped at admit time, counted,
  never executed);
* **busy_replies** — ``BUSY`` frames the wire front-end sent on this
  server's behalf (credit-window exhaustion or admission rejection).

The conservation law the property suite pins: every submitted request is
exactly one of completed, rejected, shed, expired or lost-to-a-fault.

Everything here is deterministic — pure counter arithmetic driven by the
serving clock, no wall time, no randomness — so overload replays are
bit-for-bit reproducible, and a run in which nothing was ever rejected,
shed or expired reports an *empty* overload block, keeping unsaturated
traces byte-identical to the pre-flow-subsystem output.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.flow.admission import (
    AdmissionLimits,
    AdmissionPolicy,
    get_admission_policy,
)

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.serve.queue import RequestQueue
    from repro.serve.request import Request


class RequestRejectedError(RuntimeError):
    """Admission control turned a request away (or shed it from the queue).

    ``retry_after_s`` is the server's deterministic backoff hint — how long
    the client should wait before resubmitting; it rides the wire in the
    ``BUSY`` frame.
    """

    def __init__(self, message: str, retry_after_s: float = 0.0):
        super().__init__(message)
        self.retry_after_s = retry_after_s


class DeadlineExceededError(RuntimeError):
    """A request expired before the batcher could place it in a batch."""


class _TenantCounters:
    """Per-tenant overload tally (plain counters, cheap to copy out)."""

    __slots__ = ("admitted", "rejected", "shed", "expired")

    def __init__(self) -> None:
        self.admitted = 0
        self.rejected = 0
        self.shed = 0
        self.expired = 0

    def to_dict(self) -> dict[str, int]:
        return {
            "admitted": self.admitted,
            "rejected": self.rejected,
            "shed": self.shed,
            "expired": self.expired,
        }


class FlowController:
    """Admission execution and overload accounting for one server.

    ``policy=None`` disables admission control entirely: every request is
    admitted without even reading the limits (the queue's own ``capacity``
    then guards overflow with a loud
    :class:`~repro.serve.queue.QueueOverflowError`), nothing is counted on
    the admit path,
    and :meth:`overload` stays empty — the byte-identity fast path.
    """

    def __init__(
        self,
        policy: "str | AdmissionPolicy | None" = None,
        queue_capacity: int | None = None,
        tenant_capacity: int | None = None,
        retry_after_floor_s: float = 1e-3,
    ):
        self.policy = get_admission_policy(policy) if policy is not None else None
        self.limits = AdmissionLimits(
            queue_capacity=queue_capacity, tenant_capacity=tenant_capacity
        )
        #: Smallest retry-after hint a rejection carries (the hint scales
        #: up with backlog; the floor keeps an empty-queue rejection from
        #: telling clients to hammer the server immediately).
        self.retry_after_floor_s = retry_after_floor_s
        self.reset()

    def reset(self) -> None:
        """Clear every counter (a fresh simulation starts a fresh ledger)."""
        self.admitted = 0
        self.rejected = 0
        self.shed = 0
        self.expired = 0
        self.busy_replies = 0
        self._tenants: dict[str, _TenantCounters] = {}

    # -- state -------------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        """Whether admission control is actually on."""
        return self.policy is not None

    @property
    def touched(self) -> bool:
        """Whether any overload event has been counted this run."""
        return bool(
            self.admitted
            or self.rejected
            or self.shed
            or self.expired
            or self.busy_replies
        )

    def _tenant(self, tenant: str) -> _TenantCounters:
        counters = self._tenants.get(tenant)
        if counters is None:
            counters = self._tenants[tenant] = _TenantCounters()
        return counters

    # -- the admit path ----------------------------------------------------------

    def try_admit(
        self, queue: "RequestQueue", request: Request
    ) -> tuple[bool, list[Request], str]:
        """Run the policy and *execute* its decision against the queue.

        Returns ``(admitted, shed_victims, reason)``.  Victims have
        already been popped from the queue (and counted as shed); the
        caller fails their awaiting futures.  The arriving request itself
        is *not* pushed — on ``admitted=True`` the caller pushes it, so
        queue observation hooks fire in the caller's order.
        """
        if self.policy is None:
            return True, [], ""
        decision = self.policy.decide(queue, request, self.limits)
        if not decision.admit:
            self.rejected += 1
            self._tenant(request.tenant).rejected += 1
            return False, [], decision.reason
        victims: list[Request] = []
        for victim in decision.shed:
            # Policies only ever shed a subqueue head, so the fair-queuing
            # pop is the eviction primitive (and keeps counters exact).
            popped = queue.pop_for_tenant(victim.tenant)
            assert popped is victim, "admission policies may only shed queue heads"
            victims.append(popped)
            self.shed += 1
            self._tenant(victim.tenant).shed += 1
        self.admitted += 1
        self._tenant(request.tenant).admitted += 1
        return True, victims, decision.reason

    def note_expired(self, request: Request) -> None:
        """Count a request the batcher dropped as already past its deadline."""
        self.expired += 1
        self._tenant(request.tenant).expired += 1

    def note_busy_reply(self) -> None:
        """Count one ``BUSY`` frame the wire front-end sent for this server."""
        self.busy_replies += 1

    def retry_after_s(self, queue: "RequestQueue", drain_rate_hint_s: float) -> float:
        """Deterministic backoff hint for a rejection at the current backlog.

        ``drain_rate_hint_s`` is roughly how long one queue's worth of
        work takes to drain (the server passes its batcher deadline); the
        hint scales linearly with how full the queue is, so clients back
        off harder the deeper the overload — and identically on every
        replay of the same trace.
        """
        if self.limits.queue_capacity:
            fill = queue.depth / self.limits.queue_capacity
        else:
            fill = 1.0
        return max(self.retry_after_floor_s, drain_rate_hint_s * (1.0 + fill))

    # -- reporting ---------------------------------------------------------------

    def overload(self) -> dict[str, Any]:
        """The report's ``overload`` block (``{}`` when nothing happened).

        Empty-when-untouched is the determinism invariant: a server with
        admission enabled that never rejected, shed or expired anything
        still reports ``admitted`` counts (the knob was on and the ledger
        is real), but a server that never counted anything at all — the
        default configuration — contributes nothing to the report.
        """
        if not self.touched:
            return {}
        block: dict[str, Any] = {
            "admitted": self.admitted,
            "rejected": self.rejected,
            "shed": self.shed,
            "expired": self.expired,
        }
        if self.busy_replies:
            block["busy_replies"] = self.busy_replies
        block["per_tenant"] = {
            tenant: counters.to_dict()
            for tenant, counters in sorted(self._tenants.items())
        }
        if self.policy is not None:
            block["policy"] = self.policy.name
        return block

    def stats_view(self) -> dict[str, float]:
        """Flat registry view (rides ``STATS``; empty when untouched)."""
        if not self.touched:
            return {}
        return {
            "admitted": float(self.admitted),
            "rejected": float(self.rejected),
            "shed": float(self.shed),
            "expired": float(self.expired),
            "busy_replies": float(self.busy_replies),
        }
