"""repro.flow — end-to-end overload protection.

The serving stack survives *device* failures (``repro.faults``); this
package makes it survive *load*.  Three layers, one control loop:

* **Admission** (:mod:`repro.flow.admission`) — pluggable policies that
  decide, per arriving request, admit / shed-queued-work / reject, against
  bounded global and per-tenant queue capacities.
* **Control** (:mod:`repro.flow.control`) — the per-server
  :class:`FlowController` that executes decisions, drops expired work and
  keeps the deterministic overload ledger reports and STATS frames expose.
* **Retry** (:mod:`repro.flow.retry`) — the client half: capped
  exponential backoff with seeded jitter and a circuit breaker, driven by
  the server's typed BUSY replies and retry-after hints.

Everything is deterministic by construction: decisions are pure functions
of queue state, jitter is seeded, the breaker's clock is injected.  A
replayed overload trace sheds bit-for-bit the same requests every run,
and with the defaults (no admission, no capacities) the layer is inert —
output stays byte-identical to a stack without it.
"""

from repro.flow.admission import (
    AdmissionDecision,
    AdmissionLimits,
    AdmissionPolicy,
    RejectNewestPolicy,
    ShedOldestPolicy,
    TenantQuotaPolicy,
    get_admission_policy,
    list_admission_policies,
)
from repro.flow.control import (
    DeadlineExceededError,
    FlowController,
    RequestRejectedError,
)
from repro.flow.retry import (
    CircuitBreaker,
    CircuitOpenError,
    RequestTimeoutError,
    RetryPolicy,
    ServerBusyError,
)
from repro.serve.queue import QueueOverflowError

__all__ = [
    "AdmissionDecision",
    "AdmissionLimits",
    "AdmissionPolicy",
    "CircuitBreaker",
    "CircuitOpenError",
    "DeadlineExceededError",
    "FlowController",
    "QueueOverflowError",
    "RejectNewestPolicy",
    "RequestRejectedError",
    "RequestTimeoutError",
    "RetryPolicy",
    "ServerBusyError",
    "ShedOldestPolicy",
    "TenantQuotaPolicy",
    "get_admission_policy",
    "list_admission_policies",
]
