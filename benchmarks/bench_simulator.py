"""Library micro-benchmarks: the cycle-level simulator.

Measures the cost of scheduling representative workload graphs on the Strix
model, so the simulator itself stays fast enough for parameter sweeps.  The
same three scenarios also run as a plain script that records the timings in
``BENCH_sim.json`` for the cross-PR perf trajectory::

    python benchmarks/bench_simulator.py
"""

from __future__ import annotations

import pytest

if __name__ == "__main__":  # script mode: make src/ importable before repro imports
    from harness import ensure_repro_importable

    ensure_repro_importable()

from repro.apps.deep_nn import ZAMA_DEEP_NN_MODELS, build_deep_nn_graph
from repro.apps.workloads import pbs_batch_graph
from repro.arch.accelerator import StrixAccelerator
from repro.params import DEEP_NN_N1024, PARAM_SET_I
from repro.runtime.session import Session
from repro.sim.scheduler import StrixScheduler

#: Batch size of the ``kernel/*`` scalar-vs-vectorized comparison: the
#: paper's epoch-level gate batch (and the ISSUE's ≥5× speedup target).
KERNEL_BENCH_BATCH = 64


def _kernel_bench_session() -> tuple[Session, list, list]:
    """A TOY session plus two encrypted boolean operand batches of 64."""
    session = Session("TOY", seed=0)
    session.generate_server_keys()
    lhs = session.encrypt_boolean_batch([bool(i & 1) for i in range(KERNEL_BENCH_BATCH)])
    rhs = session.encrypt_boolean_batch([bool(i & 2) for i in range(KERNEL_BENCH_BATCH)])
    return session, lhs, rhs


def _gate_batch_with(session: Session, kernels: str, lhs, rhs):
    session.kernels = kernels
    try:
        return session.gate_batch("and", lhs, rhs)
    finally:
        session.kernels = "scalar"


@pytest.fixture(scope="module")
def scheduler():
    return StrixScheduler(StrixAccelerator())


def test_bench_schedule_pbs_batch(benchmark, scheduler):
    graph = pbs_batch_graph(PARAM_SET_I, 4096)
    result = benchmark(scheduler.run, graph)
    assert result.total_pbs == 4096


def test_bench_schedule_deep_nn_100(benchmark, scheduler):
    graph = build_deep_nn_graph(ZAMA_DEEP_NN_MODELS["NN-100"], DEEP_NN_N1024)
    result = benchmark(scheduler.run, graph)
    assert result.total_pbs == ZAMA_DEEP_NN_MODELS["NN-100"].pbs_count()


def test_bench_pbs_performance_sweep(benchmark):
    from repro.params import PAPER_PARAMETER_SETS

    accelerator = StrixAccelerator()

    def sweep():
        return [accelerator.pbs_performance(p) for p in PAPER_PARAMETER_SETS.values()]

    results = benchmark(sweep)
    assert len(results) == 4


def test_bench_vectorized_gate_bootstrap_batch64(benchmark):
    session, lhs, rhs = _kernel_bench_session()
    results = benchmark(_gate_batch_with, session, "vectorized", lhs, rhs)
    assert len(results) == KERNEL_BENCH_BATCH


def main() -> None:
    """Record the same three scenarios (plus deterministic model outputs)
    in ``BENCH_sim.json``."""
    import argparse

    from harness import BenchReport

    from repro.params import PAPER_PARAMETER_SETS

    parser = argparse.ArgumentParser(description="cycle-level simulator benchmark")
    parser.add_argument(
        "--output", default=None, help="output path (default: BENCH_sim.json)"
    )
    args = parser.parse_args()

    runner = StrixScheduler(StrixAccelerator())
    accelerator = StrixAccelerator()
    report = BenchReport("sim")
    report.time(
        "sim/schedule_pbs_batch_4096",
        lambda: runner.run(pbs_batch_graph(PARAM_SET_I, 4096)),
    )
    report.time(
        "sim/schedule_deep_nn_100",
        lambda: runner.run(
            build_deep_nn_graph(ZAMA_DEEP_NN_MODELS["NN-100"], DEEP_NN_N1024)
        ),
    )
    report.time(
        "sim/pbs_performance_sweep",
        lambda: [
            accelerator.pbs_performance(p) for p in PAPER_PARAMETER_SETS.values()
        ],
    )
    # Deterministic model outputs: these must not drift between commits
    # unless the performance model itself changed, which is exactly what the
    # regression gate (check_regression.py) exists to catch.
    batch_schedule = runner.run(pbs_batch_graph(PARAM_SET_I, 4096))
    report.add(
        "sim/pbs_batch_4096/latency", batch_schedule.total_time_s, "s"
    )
    nn_schedule = runner.run(
        build_deep_nn_graph(ZAMA_DEEP_NN_MODELS["NN-100"], DEEP_NN_N1024)
    )
    report.add("sim/deep_nn_100/latency", nn_schedule.total_time_s, "s")
    report.add("sim/deep_nn_100/epochs", nn_schedule.total_epochs, "epochs")
    for params in PAPER_PARAMETER_SETS.values():
        performance = accelerator.pbs_performance(params)
        report.add(
            f"sim/pbs_throughput/{params.name}",
            performance.throughput_pbs_per_s,
            "PBS/s",
        )
    # kernel/* family: scalar vs vectorized batch-64 gate bootstrap on the
    # real TFHE substrate.  The timings are wall clock (judged loosely); the
    # bit_exact record is deterministic — it flips to 0.0 if the vectorized
    # chain ever diverges from the scalar reference, which the regression
    # gate treats as a hard failure.
    session, lhs, rhs = _kernel_bench_session()
    scalar_s = report.time(
        "kernel/gate_bootstrap_batch64/scalar",
        lambda: _gate_batch_with(session, "scalar", lhs, rhs),
        repeats=1,
    )
    vectorized_s = report.time(
        "kernel/gate_bootstrap_batch64/vectorized",
        lambda: _gate_batch_with(session, "vectorized", lhs, rhs),
        repeats=3,
    )
    report.add(
        "kernel/gate_bootstrap_batch64/speedup",
        scalar_s / vectorized_s,
        "x",
        timed=True,
    )
    scalar_out = _gate_batch_with(session, "scalar", lhs, rhs)
    vectorized_out = _gate_batch_with(session, "vectorized", lhs, rhs)
    bit_exact = all(
        (a.mask == b.mask).all() and a.body == b.body
        for a, b in zip(scalar_out, vectorized_out)
    )
    report.add("kernel/gate_bootstrap_batch64/bit_exact", float(bit_exact), "bool")
    path = report.write(args.output)
    print(f"[saved {len(report.records)} records to {path}]")


if __name__ == "__main__":
    main()
