"""Tests for the CPU / GPU baseline models and published reference points."""

from __future__ import annotations

import pytest

from repro.apps.workloads import pbs_batch_graph
from repro.baselines.cpu_model import ConcreteCpuModel
from repro.baselines.gpu_model import NuFheGpuModel
from repro.baselines.reference_platforms import (
    PUBLISHED_PBS_RESULTS,
    published_results_for,
    published_strix_result,
)
from repro.params import PAPER_PARAMETER_SETS, PARAM_SET_I, PARAM_SET_II, PARAM_SET_III


class TestCpuModel:
    @pytest.fixture(scope="class")
    def cpu(self):
        return ConcreteCpuModel(threads=1)

    def test_calibrated_to_concrete_set_i(self, cpu):
        assert cpu.pbs_latency_ms(PARAM_SET_I) == pytest.approx(14.0, rel=1e-6)

    def test_latency_increases_with_parameter_size(self, cpu):
        latencies = [cpu.pbs_latency_ms(PAPER_PARAMETER_SETS[name]) for name in ("I", "II", "III", "IV")]
        assert latencies == sorted(latencies)

    def test_published_order_of_magnitude(self, cpu):
        """Modelled CPU latencies stay within ~2x of the published Table V rows."""
        published = {"I": 14.0, "II": 19.0, "III": 38.0, "IV": 969.0}
        for name, expected in published.items():
            modelled = cpu.pbs_latency_ms(PAPER_PARAMETER_SETS[name])
            assert expected / 2 <= modelled <= expected * 2, name

    def test_throughput_is_inverse_latency_times_threads(self):
        single = ConcreteCpuModel(threads=1)
        multi = ConcreteCpuModel(threads=16)
        assert multi.pbs_throughput(PARAM_SET_I) == pytest.approx(
            16 * single.pbs_throughput(PARAM_SET_I)
        )

    def test_breakdown_matches_fig1_shape(self, cpu):
        breakdown = cpu.workload_breakdown(PARAM_SET_I)
        assert breakdown.gate_shares["pbs"] == pytest.approx(0.65, abs=0.10)
        assert breakdown.gate_shares["keyswitch"] == pytest.approx(0.30, abs=0.10)
        assert breakdown.gate_shares["linear"] == pytest.approx(0.05, abs=0.03)
        assert breakdown.pbs_shares["blind_rotation"] > 0.95
        assert breakdown.dominant_gate_component() == "pbs"

    def test_breakdown_shares_sum_to_one(self, cpu):
        breakdown = cpu.workload_breakdown(PARAM_SET_II)
        for shares in (breakdown.gate_shares, breakdown.pbs_shares, breakdown.blind_rotation_shares):
            assert sum(shares.values()) == pytest.approx(1.0)

    def test_fft_dominates_blind_rotation_iteration(self, cpu):
        breakdown = cpu.workload_breakdown(PARAM_SET_I)
        shares = breakdown.blind_rotation_shares
        assert shares["fft"] == max(shares.values())
        # IFFT processes fewer polynomials than the forward FFT (lb:1 ratio).
        assert shares["accumulate_ifft"] < shares["fft"]

    def test_keyswitch_latency_smaller_than_pbs(self, cpu):
        assert cpu.keyswitch_latency_ms(PARAM_SET_I) < cpu.pbs_latency_ms(PARAM_SET_I)

    def test_execute_graph_scales_with_threads(self):
        graph = pbs_batch_graph(PARAM_SET_I, 64)
        single = ConcreteCpuModel(threads=1).execute_graph(graph)
        multi = ConcreteCpuModel(threads=8).execute_graph(graph)
        assert single == pytest.approx(8 * multi, rel=0.01)

    def test_invalid_thread_count(self):
        with pytest.raises(ValueError):
            ConcreteCpuModel(threads=0)


class TestGpuModel:
    @pytest.fixture(scope="class")
    def gpu(self):
        return NuFheGpuModel()

    def test_calibrated_to_nufhe_set_i(self, gpu):
        assert gpu.pbs_latency_ms(PARAM_SET_I) == pytest.approx(37.0, rel=0.05)
        assert gpu.pbs_throughput(PARAM_SET_I) == pytest.approx(2000, rel=0.05)

    def test_larger_parameters_slower(self, gpu):
        assert gpu.batch_time_ms(PARAM_SET_III) > gpu.batch_time_ms(PARAM_SET_II) > 0

    def test_device_level_profile_is_a_staircase(self, gpu):
        profile = gpu.device_level_profile([36, 72, 73, 144, 145, 216, 217, 288])
        by_count = {point.ciphertexts: point for point in profile}
        assert by_count[36].normalized_time == pytest.approx(by_count[72].normalized_time)
        assert by_count[73].normalized_time == pytest.approx(2 * by_count[72].normalized_time)
        assert by_count[145].normalized_time == pytest.approx(3 * by_count[72].normalized_time)
        assert by_count[217].normalized_time == pytest.approx(4 * by_count[72].normalized_time)
        assert by_count[288].fragments == 3

    def test_core_level_profile_grows_linearly(self, gpu):
        profile = gpu.core_level_profile([1, 2, 3])
        times = [point.execution_time_ms for point in profile]
        assert times[1] == pytest.approx(2 * times[0])
        assert times[2] == pytest.approx(3 * times[0])

    def test_execute_graph_fragmentation_penalty(self, gpu):
        fits = gpu.execute_graph(pbs_batch_graph(PARAM_SET_I, 72))
        overflows = gpu.execute_graph(pbs_batch_graph(PARAM_SET_I, 73))
        assert overflows == pytest.approx(2 * fits, rel=0.01)

    def test_custom_sm_count(self):
        small_gpu = NuFheGpuModel(streaming_multiprocessors=8)
        assert small_gpu.sms == 8
        assert small_gpu.pbs_throughput(PARAM_SET_I) < NuFheGpuModel().pbs_throughput(PARAM_SET_I)


class TestPublishedResults:
    def test_every_row_has_positive_throughput(self):
        for row in PUBLISHED_PBS_RESULTS:
            assert row.throughput_pbs_per_s > 0

    def test_filtering(self):
        strix_rows = published_results_for("Strix")
        assert {row.parameter_set for row in strix_rows} == {"I", "II", "III", "IV"}
        set1 = published_results_for(parameter_set="I")
        assert {row.platform for row in set1} >= {"Concrete", "NuFHE", "Matcha", "Strix"}

    def test_published_strix_lookup(self):
        row = published_strix_result("I")
        assert row.throughput_pbs_per_s == 74696
        with pytest.raises(KeyError):
            published_strix_result("V")

    def test_xhec_rows_have_no_latency(self):
        for row in published_results_for("XHEC"):
            assert not row.has_latency

    def test_strix_dominates_all_published_platforms(self):
        strix = {row.parameter_set: row for row in published_results_for("Strix")}
        for row in PUBLISHED_PBS_RESULTS:
            if row.platform == "Strix" or row.parameter_set not in strix:
                continue
            assert strix[row.parameter_set].throughput_pbs_per_s > row.throughput_pbs_per_s
