"""Exact reference implementations of negacyclic polynomial arithmetic.

These are deliberately written with Python integers so they are exact for any
coefficient width.  They are quadratic in the polynomial degree and are only
intended as ground truth for the unit and property tests of the fast
transforms in :mod:`repro.fft.negacyclic` and :mod:`repro.fft.folding`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def naive_negacyclic_convolution(
    a: Sequence[int], b: Sequence[int], modulus: int | None = None
) -> np.ndarray:
    """Multiply two polynomials modulo ``X^N + 1`` exactly.

    Parameters
    ----------
    a, b:
        Coefficient sequences of equal length ``N``.
    modulus:
        Optional modulus applied to the result coefficients.

    Returns
    -------
    numpy.ndarray
        Array of ``N`` Python integers (``dtype=object``) holding the
        negacyclic convolution ``a * b mod (X^N + 1)``.
    """
    n = len(a)
    if len(b) != n:
        raise ValueError(f"length mismatch: {len(a)} vs {len(b)}")
    result = [0] * n
    for i, ai in enumerate(a):
        ai = int(ai)
        if ai == 0:
            continue
        for j, bj in enumerate(b):
            bj = int(bj)
            if bj == 0:
                continue
            idx = i + j
            if idx < n:
                result[idx] += ai * bj
            else:
                result[idx - n] -= ai * bj
    if modulus is not None:
        result = [c % modulus for c in result]
    return np.array(result, dtype=object)


def naive_negacyclic_rotation(a: Sequence[int], amount: int) -> np.ndarray:
    """Multiply a polynomial by ``X^amount`` modulo ``X^N + 1`` exactly.

    A positive ``amount`` rotates coefficients towards higher degrees, with
    coefficients that wrap around past ``X^{N-1}`` re-entering negated.
    """
    n = len(a)
    amount = amount % (2 * n)
    result = [0] * n
    for i, coeff in enumerate(a):
        idx = i + amount
        sign = 1
        if idx >= 2 * n:
            idx -= 2 * n
        if idx >= n:
            idx -= n
            sign = -1
        result[idx] = sign * int(coeff)
    return np.array(result, dtype=object)


def naive_dft(values: Sequence[complex]) -> np.ndarray:
    """Direct ``O(N^2)`` discrete Fourier transform (forward, no scaling)."""
    x = np.asarray(values, dtype=np.complex128)
    n = len(x)
    indices = np.arange(n)
    matrix = np.exp(-2j * np.pi * np.outer(indices, indices) / n)
    return matrix @ x


def naive_idft(values: Sequence[complex]) -> np.ndarray:
    """Direct ``O(N^2)`` inverse discrete Fourier transform (scaled by 1/N)."""
    x = np.asarray(values, dtype=np.complex128)
    n = len(x)
    indices = np.arange(n)
    matrix = np.exp(2j * np.pi * np.outer(indices, indices) / n)
    return (matrix @ x) / n
